//! Lossless multiconductor transmission-line element.
//!
//! The model is built from per-unit-length `L` and `C` matrices (produced
//! by the 2-D field solver in `pdn-tline`) and a length. At construction it
//! performs the **modal analysis** the paper applies to signal nets:
//! the voltage eigenvectors `T` of the `L·C` product decouple the line into
//! scalar modes with individual velocities. In modal coordinates each mode
//! is a unit-impedance scalar line, so:
//!
//! * time domain — exact method-of-characteristics (Branin) update per
//!   mode, presented to MNA as a constant Norton admittance `Yc` plus
//!   history current sources (the matrix stays constant: the paper's fast
//!   solver path is preserved);
//! * frequency domain — exact hyperbolic two-port stamps per mode.

use pdn_num::{c64, generalized_symmetric_eigen, LuDecomposition, Matrix, SolveMatrixError};
use std::fmt;

/// Error from building a coupled-line model.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildLineError {
    /// Shapes of `L`/`C` are inconsistent or not square.
    BadShape,
    /// `L` or `C` is not symmetric positive definite.
    NotPassive(String),
}

impl fmt::Display for BuildLineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildLineError::BadShape => write!(f, "L and C must be square and equally sized"),
            BuildLineError::NotPassive(s) => {
                write!(f, "L/C matrices not symmetric positive definite: {s}")
            }
        }
    }
}

impl std::error::Error for BuildLineError {}

/// A lossless multiconductor line model (modal decomposition of `L`, `C`).
///
/// # Examples
///
/// ```
/// use pdn_circuit::CoupledLineModel;
/// use pdn_num::Matrix;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A single 50 Ω line in vacuum-like medium.
/// let z0: f64 = 50.0;
/// let v = 2e8;
/// let l = Matrix::from_rows(&[&[z0 / v]]);
/// let c = Matrix::from_rows(&[&[1.0 / (z0 * v)]]);
/// let line = CoupledLineModel::new(l, c, 0.1)?;
/// assert!((line.delays()[0] - 0.1 / v).abs() < 1e-15);
/// assert!((line.characteristic_admittance()[(0, 0)] - 1.0 / z0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CoupledLineModel {
    n: usize,
    length: f64,
    /// Voltage modal transform: `V = Tv · v_m`.
    tv: Matrix<f64>,
    /// Inverse of `Tv`.
    tv_inv: Matrix<f64>,
    /// Current transform: `I = W · i_m`, `W = C·Tv·diag(v_k)`.
    w: Matrix<f64>,
    /// Characteristic admittance `Yc = W · Tv⁻¹`.
    yc: Matrix<f64>,
    /// Modal phase velocities (m/s), one per mode.
    velocities: Vec<f64>,
    /// Modal one-way delays (s).
    delays: Vec<f64>,
}

impl CoupledLineModel {
    /// Builds the model from per-unit-length matrices (H/m, F/m) and a
    /// physical length (m).
    ///
    /// # Errors
    ///
    /// Returns [`BuildLineError`] for shape mismatches or non-SPD inputs.
    pub fn new(l: Matrix<f64>, c: Matrix<f64>, length: f64) -> Result<Self, BuildLineError> {
        if !l.is_square() || l.shape() != c.shape() {
            return Err(BuildLineError::BadShape);
        }
        let n = l.nrows();
        // Generalized symmetric-definite problem: C·v = λ·L⁻¹·v ⇔ LC·v = λ·v.
        let l_inv = pdn_num::lu::invert(l.clone())
            .map_err(|e| BuildLineError::NotPassive(e.to_string()))?;
        // Symmetrize L⁻¹ against round-off (L is symmetric).
        let l_inv = Matrix::from_fn(n, n, |i, j| 0.5 * (l_inv[(i, j)] + l_inv[(j, i)]));
        let eig = generalized_symmetric_eigen(&c, &l_inv)
            .map_err(|e: SolveMatrixError| BuildLineError::NotPassive(e.to_string()))?;
        // λ_k = 1/v_k²; eigen-values ascending, all must be positive.
        if eig.values.iter().any(|&v| v <= 0.0) {
            return Err(BuildLineError::NotPassive(
                "non-positive LC eigenvalue".into(),
            ));
        }
        let velocities: Vec<f64> = eig.values.iter().map(|&lam| 1.0 / lam.sqrt()).collect();
        let delays: Vec<f64> = velocities.iter().map(|&v| length / v).collect();
        let tv = eig.vectors;
        let tv_inv = LuDecomposition::new(tv.clone())
            .and_then(|lu| lu.inverse())
            .map_err(|e| BuildLineError::NotPassive(e.to_string()))?;
        // W = C · Tv · diag(v_k)
        let mut ctv = c.matmul(&tv);
        for i in 0..n {
            for k in 0..n {
                ctv[(i, k)] *= velocities[k];
            }
        }
        let w = ctv;
        let yc = w.matmul(&tv_inv);
        Ok(CoupledLineModel {
            n,
            length,
            tv,
            tv_inv,
            w,
            yc,
            velocities,
            delays,
        })
    }

    /// Number of signal conductors.
    pub fn conductor_count(&self) -> usize {
        self.n
    }

    /// Physical length in meters.
    pub fn length(&self) -> f64 {
        self.length
    }

    /// Modal phase velocities, ascending with mode index.
    pub fn velocities(&self) -> &[f64] {
        &self.velocities
    }

    /// Modal one-way delays.
    pub fn delays(&self) -> &[f64] {
        &self.delays
    }

    /// The node-space characteristic admittance matrix `Yc` (S).
    pub fn characteristic_admittance(&self) -> &Matrix<f64> {
        &self.yc
    }

    /// Voltage modal transform `Tv` (`V = Tv·v_m`).
    pub fn voltage_transform(&self) -> &Matrix<f64> {
        &self.tv
    }

    /// Converts terminal voltages to modal voltages `v_m = Tv⁻¹·V`.
    pub fn to_modal_voltage(&self, v: &[f64]) -> Vec<f64> {
        self.tv_inv.matvec(v)
    }

    /// Converts modal currents to terminal currents `I = W·i_m`.
    pub fn from_modal_current(&self, im: &[f64]) -> Vec<f64> {
        self.w.matvec(im)
    }

    /// Converts terminal currents to modal currents `i_m = W⁻¹·I`
    /// (computed as `diag(1/v)·Tvᵀ... ` via a dense solve for robustness).
    pub fn to_modal_current(&self, i: &[f64]) -> Vec<f64> {
        // W is small (n × n); solve directly.
        let lu = LuDecomposition::new(self.w.clone()).expect("W invertible by construction");
        lu.solve(i).expect("dimension checked")
    }

    /// Exact frequency-domain admittance blocks at angular frequency
    /// `omega`: returns `(Y_self, Y_mutual)` such that
    ///
    /// ```text
    /// [I_near]   [Y_self   Y_mutual] [V_near]
    /// [I_far ] = [Y_mutual Y_self  ] [V_far ]
    /// ```
    ///
    /// with currents flowing *into* the line. Per mode (unit impedance):
    /// `y_self = −j·cot(θ)`, `y_mut = j/sin(θ)`, `θ = ω·τ`.
    ///
    /// Near modal half-wave resonance (`sin θ → 0`) entries grow without
    /// bound; callers should avoid landing exactly on those frequencies.
    pub fn ac_blocks(&self, omega: f64) -> (Matrix<c64>, Matrix<c64>) {
        let n = self.n;
        let mut y_self_m = vec![c64::ZERO; n];
        let mut y_mut_m = vec![c64::ZERO; n];
        for k in 0..n {
            let theta = omega * self.delays[k];
            let s = theta.sin();
            let c = theta.cos();
            // Guard the resonance singularity with a tiny loss.
            let s_safe = if s.abs() < 1e-9 {
                1e-9_f64.copysign(if s == 0.0 { 1.0 } else { s })
            } else {
                s
            };
            y_self_m[k] = c64::new(0.0, -c / s_safe);
            y_mut_m[k] = c64::new(0.0, 1.0 / s_safe);
        }
        // Node space: Y = W · diag(y_m) · Tv⁻¹.
        let build = |diag: &[c64]| -> Matrix<c64> {
            let mut m = Matrix::<c64>::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    let mut acc = c64::ZERO;
                    for (k, &d) in diag.iter().enumerate() {
                        acc += c64::from_re(self.w[(i, k)]) * d * c64::from_re(self.tv_inv[(k, j)]);
                    }
                    m[(i, j)] = acc;
                }
            }
            m
        };
        (build(&y_self_m), build(&y_mut_m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdn_num::approx_eq;

    fn single_line(z0: f64, v: f64, len: f64) -> CoupledLineModel {
        let l = Matrix::from_rows(&[&[z0 / v]]);
        let c = Matrix::from_rows(&[&[1.0 / (z0 * v)]]);
        CoupledLineModel::new(l, c, len).unwrap()
    }

    #[test]
    fn single_line_characteristics() {
        let m = single_line(50.0, 2e8, 0.3);
        assert!(approx_eq(m.velocities()[0], 2e8, 1e-9));
        assert!(approx_eq(m.delays()[0], 1.5e-9, 1e-9));
        assert!(approx_eq(m.characteristic_admittance()[(0, 0)], 0.02, 1e-9));
    }

    #[test]
    fn symmetric_coupled_pair_even_odd_modes() {
        // Symmetric pair: modes are even/odd with velocities
        // v = 1/√((L±Lm)(C±Cm)).
        let (l0, lm) = (400e-9, 80e-9);
        let (c0, cm) = (100e-12, -15e-12);
        let l = Matrix::from_rows(&[&[l0, lm], &[lm, l0]]);
        let c = Matrix::from_rows(&[&[c0, cm], &[cm, c0]]);
        let m = CoupledLineModel::new(l, c, 0.1).unwrap();
        let v_even = 1.0 / ((l0 + lm) * (c0 + cm)).sqrt();
        let v_odd = 1.0 / ((l0 - lm) * (c0 - cm)).sqrt();
        let mut got = m.velocities().to_vec();
        got.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut expect = [v_even, v_odd];
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(approx_eq(got[0], expect[0], 1e-9));
        assert!(approx_eq(got[1], expect[1], 1e-9));
    }

    #[test]
    fn characteristic_admittance_symmetric_and_positive_definite() {
        let l = Matrix::from_rows(&[&[350e-9, 60e-9], &[60e-9, 350e-9]]);
        let c = Matrix::from_rows(&[&[120e-12, -18e-12], &[-18e-12, 120e-12]]);
        let m = CoupledLineModel::new(l, c, 0.2).unwrap();
        let yc = m.characteristic_admittance();
        assert!(yc.symmetry_defect() < 1e-9 * yc.max_abs());
        assert!(pdn_num::cholesky::is_positive_definite(&Matrix::from_fn(
            2,
            2,
            |i, j| 0.5 * (yc[(i, j)] + yc[(j, i)])
        )));
    }

    #[test]
    fn modal_roundtrip() {
        let l = Matrix::from_rows(&[&[350e-9, 60e-9], &[60e-9, 350e-9]]);
        let c = Matrix::from_rows(&[&[120e-12, -18e-12], &[-18e-12, 120e-12]]);
        let m = CoupledLineModel::new(l, c, 0.2).unwrap();
        let v = [1.0, -0.5];
        let vm = m.to_modal_voltage(&v);
        let back = m.voltage_transform().matvec(&vm);
        assert!(approx_eq(back[0], 1.0, 1e-10));
        assert!(approx_eq(back[1], -0.5, 1e-10));
        let i = [0.01, 0.02];
        let im = m.to_modal_current(&i);
        let iback = m.from_modal_current(&im);
        assert!(approx_eq(iback[0], 0.01, 1e-10));
        assert!(approx_eq(iback[1], 0.02, 1e-10));
    }

    #[test]
    fn ac_blocks_match_known_single_line_forms() {
        let z0 = 50.0;
        let m = single_line(z0, 2e8, 0.1);
        let tau = m.delays()[0];
        // Pick θ = π/4.
        let omega = std::f64::consts::FRAC_PI_4 / tau;
        let (ys, ym) = m.ac_blocks(omega);
        let expect_self = -1.0 / z0 / std::f64::consts::FRAC_PI_4.tan();
        let expect_mut = 1.0 / z0 / std::f64::consts::FRAC_PI_4.sin();
        assert!(ys[(0, 0)].re.abs() < 1e-12);
        assert!(approx_eq(ys[(0, 0)].im, expect_self, 1e-9));
        assert!(approx_eq(ym[(0, 0)].im, expect_mut, 1e-9));
    }

    #[test]
    fn quarter_wave_self_admittance_vanishes() {
        let m = single_line(50.0, 2e8, 0.1);
        let tau = m.delays()[0];
        let omega = std::f64::consts::FRAC_PI_2 / tau; // θ = π/2
        let (ys, ym) = m.ac_blocks(omega);
        assert!(ys[(0, 0)].norm() < 1e-9);
        assert!(approx_eq(ym[(0, 0)].im, 1.0 / 50.0, 1e-9));
    }

    #[test]
    fn bad_shapes_rejected() {
        let l = Matrix::from_rows(&[&[1e-9, 0.0]]);
        let c = Matrix::identity(2);
        assert_eq!(
            CoupledLineModel::new(l, c, 0.1).unwrap_err(),
            BuildLineError::BadShape
        );
    }

    #[test]
    fn non_spd_rejected() {
        let l = Matrix::from_rows(&[&[1e-9, 2e-9], &[2e-9, 1e-9]]); // indefinite
        let c = Matrix::identity(2).scale(1e-12);
        assert!(matches!(
            CoupledLineModel::new(l, c, 0.1),
            Err(BuildLineError::NotPassive(_))
        ));
    }
}
