//! Frequency-domain (AC) analysis.
//!
//! Complex modified nodal analysis solved per frequency point. The paper
//! uses this path for verification against S-parameter measurements
//! (Section 5.1: "frequency domain simulations are useful for gaining
//! insight of high frequency characteristics").

use crate::netlist::{Circuit, Element, NodeId, SimulateCircuitError, SourceId};
use pdn_num::rational::{self, SweepAccuracy, SweepError, SweepOutcome};
use pdn_num::{c64, LuDecomposition, Matrix};
use std::f64::consts::PI;

/// Maps a sweep-engine error onto the circuit error type: grid/tolerance
/// problems become [`SimulateCircuitError::InvalidSpec`], solver failures
/// pass through.
pub(crate) fn from_sweep_err(e: SweepError<SimulateCircuitError>) -> SimulateCircuitError {
    match e {
        SweepError::InvalidInput(msg) => SimulateCircuitError::InvalidSpec(msg),
        SweepError::Eval(e) => e,
    }
}

/// A frequency sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct AcSweep {
    freqs: Vec<f64>,
}

impl AcSweep {
    /// Linear sweep from `f_start` to `f_stop` with `points` samples.
    ///
    /// # Panics
    ///
    /// Panics unless `points >= 2` and frequencies are positive.
    pub fn linear(f_start: f64, f_stop: f64, points: usize) -> Self {
        assert!(points >= 2, "need at least two sweep points");
        assert!(f_start > 0.0 && f_stop > f_start, "invalid frequency range");
        let freqs = (0..points)
            .map(|k| f_start + (f_stop - f_start) * k as f64 / (points - 1) as f64)
            .collect();
        AcSweep { freqs }
    }

    /// Logarithmic sweep from `f_start` to `f_stop` with `points` samples.
    ///
    /// # Panics
    ///
    /// Panics unless `points >= 2` and frequencies are positive.
    pub fn log(f_start: f64, f_stop: f64, points: usize) -> Self {
        assert!(points >= 2, "need at least two sweep points");
        assert!(f_start > 0.0 && f_stop > f_start, "invalid frequency range");
        let (l0, l1) = (f_start.log10(), f_stop.log10());
        let freqs = (0..points)
            .map(|k| 10f64.powf(l0 + (l1 - l0) * k as f64 / (points - 1) as f64))
            .collect();
        AcSweep { freqs }
    }

    /// The sweep frequencies.
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }
}

/// Result of an AC sweep: node voltage phasors per frequency.
#[derive(Debug, Clone)]
pub struct AcResult {
    freqs: Vec<f64>,
    /// `voltages[fi][node_id]` (index 0 = ground = 0).
    voltages: Vec<Vec<c64>>,
}

impl AcResult {
    /// The sweep frequencies.
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Node voltage phasor at sweep point `fi`.
    ///
    /// # Panics
    ///
    /// Panics for out-of-range indices.
    pub fn voltage(&self, fi: usize, node: NodeId) -> c64 {
        self.voltages[fi][node.0]
    }

    /// Magnitude (in dB) of a node voltage across the sweep.
    pub fn magnitude_db(&self, node: NodeId) -> Vec<f64> {
        self.voltages.iter().map(|v| v[node.0].db()).collect()
    }
}

impl Circuit {
    /// Builds the complex MNA matrix at angular frequency `omega` with all
    /// independent sources deactivated (V → short, I → open).
    fn ac_matrix(&self, omega: f64) -> Matrix<c64> {
        let n = self.n_nodes;
        let dim = n + self.n_vsources;
        let mut a = Matrix::<c64>::zeros(dim, dim);
        let stamp_y = |p: NodeId, q: NodeId, y: c64, a: &mut Matrix<c64>| {
            if p.0 > 0 {
                a[(p.0 - 1, p.0 - 1)] += y;
            }
            if q.0 > 0 {
                a[(q.0 - 1, q.0 - 1)] += y;
            }
            if p.0 > 0 && q.0 > 0 {
                a[(p.0 - 1, q.0 - 1)] -= y;
                a[(q.0 - 1, p.0 - 1)] -= y;
            }
        };
        for e in &self.elements {
            match e {
                Element::Resistor { a: p, b: q, ohms } => {
                    stamp_y(*p, *q, c64::from_re(1.0 / ohms), &mut a);
                }
                Element::Capacitor { a: p, b: q, farads } => {
                    stamp_y(*p, *q, c64::from_im(omega * farads), &mut a);
                }
                Element::Inductor {
                    a: p,
                    b: q,
                    henries,
                } => {
                    stamp_y(*p, *q, c64::from_im(-1.0 / (omega * henries)), &mut a);
                }
                Element::CoupledInductors {
                    a1,
                    b1,
                    a2,
                    b2,
                    l1,
                    l2,
                    m,
                } => {
                    // Y = (jωL)⁻¹ for the 2×2 inductance matrix.
                    let det = l1 * l2 - m * m;
                    let y11 = c64::from_im(-l2 / (omega * det));
                    let y22 = c64::from_im(-l1 / (omega * det));
                    let y12 = c64::from_im(m / (omega * det));
                    stamp_y(*a1, *b1, y11, &mut a);
                    stamp_y(*a2, *b2, y22, &mut a);
                    for (ni, sgn_i) in [(*a1, 1.0), (*b1, -1.0)] {
                        for (nj, sgn_j) in [(*a2, 1.0), (*b2, -1.0)] {
                            if ni.0 > 0 && nj.0 > 0 {
                                a[(ni.0 - 1, nj.0 - 1)] += y12 * sgn_i * sgn_j;
                                a[(nj.0 - 1, ni.0 - 1)] += y12 * sgn_i * sgn_j;
                            }
                        }
                    }
                }
                Element::SwitchResistor {
                    a: p,
                    b: q,
                    g_on,
                    s,
                    invert,
                } => {
                    // Small-signal: conductance frozen at its initial state.
                    let sv = s.initial_value().clamp(0.0, 1.0);
                    let frac = if *invert { 1.0 - sv } else { sv };
                    stamp_y(*p, *q, c64::from_re((g_on * frac).max(g_on * 1e-9)), &mut a);
                }
                Element::VSource {
                    plus, minus, index, ..
                } => {
                    let row = n + index;
                    if plus.0 > 0 {
                        a[(plus.0 - 1, row)] += c64::ONE;
                        a[(row, plus.0 - 1)] += c64::ONE;
                    }
                    if minus.0 > 0 {
                        a[(minus.0 - 1, row)] -= c64::ONE;
                        a[(row, minus.0 - 1)] -= c64::ONE;
                    }
                }
                Element::ISource { .. } => {}
                Element::ReducedOrder { nodes, model } => {
                    // Ground-referenced multiport admittance block.
                    let y = model.evaluate(omega / (2.0 * std::f64::consts::PI));
                    for (i, ni) in nodes.iter().enumerate() {
                        for (j, nj) in nodes.iter().enumerate() {
                            if ni.0 > 0 && nj.0 > 0 {
                                a[(ni.0 - 1, nj.0 - 1)] += y[(i, j)];
                            }
                        }
                    }
                }
                Element::CoupledLine { model, near, far } => {
                    let (ys, ym) = model.ac_blocks(omega);
                    let nc = model.conductor_count();
                    let add = |p: NodeId, q: NodeId, y: c64, a: &mut Matrix<c64>| {
                        if p.0 > 0 && q.0 > 0 {
                            a[(p.0 - 1, q.0 - 1)] += y;
                        }
                    };
                    for i in 0..nc {
                        for j in 0..nc {
                            add(near[i], near[j], ys[(i, j)], &mut a);
                            add(far[i], far[j], ys[(i, j)], &mut a);
                            add(near[i], far[j], ym[(i, j)], &mut a);
                            add(far[i], near[j], ym[(i, j)], &mut a);
                        }
                    }
                }
            }
        }
        a
    }

    /// Runs an AC sweep with unit excitation on voltage source `excite`
    /// (all other independent sources deactivated).
    ///
    /// Sweep points are independent complex solves, fanned out over
    /// [`pdn_num::parallel`] workers (`PDN_THREADS` pins the count). The
    /// result is ordered by frequency and identical for any worker count.
    ///
    /// # Errors
    ///
    /// Returns [`SimulateCircuitError::Singular`] if the complex MNA matrix
    /// cannot be factored at some frequency (the lowest failing frequency
    /// is reported).
    pub fn ac(&self, sweep: &AcSweep, excite: SourceId) -> Result<AcResult, SimulateCircuitError> {
        self.ac_with(sweep, excite, SweepAccuracy::Exact)
    }

    /// [`ac`](Self::ac) with an explicit [`SweepAccuracy`] policy —
    /// `Rational` factors only adaptively chosen anchor frequencies and
    /// fills the rest from a certified rational interpolant of the node
    /// voltage vector (see `pdn_num::rational`).
    ///
    /// # Errors
    ///
    /// Same contract as [`ac`](Self::ac), plus
    /// [`SimulateCircuitError::InvalidSpec`] for an invalid tolerance.
    pub fn ac_with(
        &self,
        sweep: &AcSweep,
        excite: SourceId,
        accuracy: SweepAccuracy,
    ) -> Result<AcResult, SimulateCircuitError> {
        let n = self.n_nodes;
        let dim = n + self.n_vsources;
        let outcome = rational::sweep("circuit.ac", &sweep.freqs, accuracy, |f| {
            let omega = 2.0 * PI * f;
            let a = self.ac_matrix(omega);
            let mut rhs = vec![c64::ZERO; dim];
            rhs[n + excite.0] = c64::ONE;
            let x = LuDecomposition::new(a)
                .and_then(|lu| lu.solve(&rhs))
                .map_err(|e| SimulateCircuitError::Singular(format!("f = {f}: {e}")))?;
            let mut v = Matrix::<c64>::zeros(n + 1, 1);
            for (node, &xk) in x[..n].iter().enumerate() {
                v[(node + 1, 0)] = xk;
            }
            Ok(v)
        })
        .map_err(from_sweep_err)?;
        let voltages = outcome
            .values
            .into_iter()
            .map(|v| (0..n + 1).map(|node| v[(node, 0)]).collect())
            .collect();
        Ok(AcResult {
            freqs: sweep.freqs.clone(),
            voltages,
        })
    }

    /// Port impedance matrix at frequency `f`: unit AC current injected at
    /// each port node (ground return), all independent sources deactivated.
    ///
    /// # Errors
    ///
    /// Returns [`SimulateCircuitError`] for `f <= 0` or a singular matrix.
    ///
    /// # Panics
    ///
    /// Panics if a port is the ground node.
    pub fn impedance_matrix(
        &self,
        f: f64,
        ports: &[NodeId],
    ) -> Result<Matrix<c64>, SimulateCircuitError> {
        if f <= 0.0 {
            return Err(SimulateCircuitError::InvalidSpec(
                "impedance matrix requires f > 0".into(),
            ));
        }
        let n = self.n_nodes;
        let dim = n + self.n_vsources;
        let a = self.ac_matrix(2.0 * PI * f);
        let lu =
            LuDecomposition::new(a).map_err(|e| SimulateCircuitError::Singular(e.to_string()))?;
        let np = ports.len();
        let mut z = Matrix::<c64>::zeros(np, np);
        for (pj, &port_j) in ports.iter().enumerate() {
            assert!(!port_j.is_ground(), "port cannot be the ground node");
            let mut rhs = vec![c64::ZERO; dim];
            rhs[port_j.0 - 1] = c64::ONE;
            let x = lu
                .solve(&rhs)
                .map_err(|e| SimulateCircuitError::Singular(e.to_string()))?;
            for (pi, &port_i) in ports.iter().enumerate() {
                z[(pi, pj)] = x[port_i.0 - 1];
            }
        }
        Ok(z)
    }

    /// Batched [`impedance_matrix`](Self::impedance_matrix): one port
    /// impedance matrix per frequency, computed on [`pdn_num::parallel`]
    /// workers. Each sweep point factors its complex MNA matrix once and
    /// reuses the factorization across all port excitations. Equivalent
    /// to [`impedance_sweep_with`](Self::impedance_sweep_with) at
    /// [`SweepAccuracy::Exact`].
    ///
    /// # Errors
    ///
    /// Returns the error of the lowest-index failing frequency; the grid
    /// must be finite, strictly positive, and strictly increasing.
    ///
    /// # Panics
    ///
    /// Panics if a port is the ground node.
    pub fn impedance_sweep(
        &self,
        freqs: &[f64],
        ports: &[NodeId],
    ) -> Result<Vec<Matrix<c64>>, SimulateCircuitError> {
        self.impedance_sweep_with(freqs, ports, SweepAccuracy::Exact)
    }

    /// [`impedance_sweep`](Self::impedance_sweep) with an explicit
    /// [`SweepAccuracy`] policy.
    ///
    /// # Errors
    ///
    /// [`SimulateCircuitError::InvalidSpec`] for an invalid grid or
    /// tolerance; otherwise the lowest-index failing frequency's error.
    ///
    /// # Panics
    ///
    /// Panics if a port is the ground node.
    pub fn impedance_sweep_with(
        &self,
        freqs: &[f64],
        ports: &[NodeId],
        accuracy: SweepAccuracy,
    ) -> Result<Vec<Matrix<c64>>, SimulateCircuitError> {
        Ok(self
            .impedance_sweep_detailed(freqs, ports, accuracy)?
            .values)
    }

    /// [`impedance_sweep_with`](Self::impedance_sweep_with) returning the
    /// full [`SweepOutcome`] (values, engine stats, rational model).
    ///
    /// # Errors
    ///
    /// Same contract as
    /// [`impedance_sweep_with`](Self::impedance_sweep_with).
    ///
    /// # Panics
    ///
    /// Panics if a port is the ground node.
    pub fn impedance_sweep_detailed(
        &self,
        freqs: &[f64],
        ports: &[NodeId],
        accuracy: SweepAccuracy,
    ) -> Result<SweepOutcome, SimulateCircuitError> {
        rational::sweep("circuit.impedance", freqs, accuracy, |f| {
            self.impedance_matrix(f, ports)
        })
        .map_err(from_sweep_err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::Waveform;
    use pdn_num::approx_eq;

    #[test]
    fn sweep_constructors() {
        let lin = AcSweep::linear(1e6, 10e6, 10);
        assert_eq!(lin.freqs().len(), 10);
        assert!(approx_eq(lin.freqs()[0], 1e6, 1e-12));
        assert!(approx_eq(lin.freqs()[9], 10e6, 1e-12));
        let log = AcSweep::log(1e6, 1e9, 4);
        assert!(approx_eq(log.freqs()[1], 1e7, 1e-9));
        assert!(approx_eq(log.freqs()[2], 1e8, 1e-9));
    }

    #[test]
    fn rc_lowpass_transfer() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        let src = ckt.voltage_source(vin, Circuit::GND, Waveform::dc(0.0));
        ckt.resistor(vin, out, 1e3);
        ckt.capacitor(out, Circuit::GND, 1e-9);
        // Corner at 1/(2πRC) ≈ 159 kHz.
        let fc = 1.0 / (2.0 * PI * 1e3 * 1e-9);
        let sweep = AcSweep::linear(fc, fc + 1.0, 2);
        let res = ckt.ac(&sweep, src).unwrap();
        let h = res.voltage(0, out);
        assert!(approx_eq(h.norm(), 1.0 / 2f64.sqrt(), 1e-3)); // −3 dB
        assert!(approx_eq(h.arg(), -PI / 4.0, 1e-3)); // −45°
    }

    #[test]
    fn decap_branch_series_resonance() {
        // A decoupling capacitor with ESR and ESL: capacitive below the
        // series resonance, |Z| ≈ ESR at resonance, inductive above.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let c = ckt.node("c");
        ckt.resistor(a, b, 0.1); // ESR
        ckt.inductor(b, c, 1e-9); // ESL
        ckt.capacitor(c, Circuit::GND, 100e-9);
        let f0 = 1.0 / (2.0 * PI * (1e-9_f64 * 100e-9).sqrt());
        let z_lo = ckt.impedance_matrix(f0 / 100.0, &[a]).unwrap()[(0, 0)];
        let z_hi = ckt.impedance_matrix(f0 * 100.0, &[a]).unwrap()[(0, 0)];
        assert!(z_lo.im < 0.0, "below resonance: capacitive, got {z_lo}");
        assert!(z_hi.im > 0.0, "above resonance: inductive, got {z_hi}");
        let z_res = ckt.impedance_matrix(f0, &[a]).unwrap()[(0, 0)];
        assert!(
            approx_eq(z_res.norm(), 0.1, 1e-3),
            "|Z(f0)| = {}",
            z_res.norm()
        );
    }

    #[test]
    fn impedance_of_resistor_divider() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.resistor(a, Circuit::GND, 100.0);
        ckt.resistor(a, Circuit::GND, 100.0);
        let z = ckt.impedance_matrix(1e6, &[a]).unwrap();
        assert!(approx_eq(z[(0, 0)].re, 50.0, 1e-9));
        assert!(z[(0, 0)].im.abs() < 1e-9);
    }

    #[test]
    fn matched_line_impedance_is_z0_everywhere() {
        // Input impedance of a 50 Ω line terminated in 50 Ω is 50 Ω at any
        // frequency.
        let z0 = 50.0;
        let v = 2e8;
        let model = crate::CoupledLineModel::new(
            pdn_num::Matrix::from_rows(&[&[z0 / v]]),
            pdn_num::Matrix::from_rows(&[&[1.0 / (z0 * v)]]),
            0.123,
        )
        .unwrap();
        let mut ckt = Circuit::new();
        let near = ckt.node("near");
        let far = ckt.node("far");
        ckt.coupled_line(model, vec![near], vec![far]);
        ckt.resistor(far, Circuit::GND, z0);
        for &f in &[10e6, 137e6, 1.1e9] {
            let z = ckt.impedance_matrix(f, &[near]).unwrap()[(0, 0)];
            assert!(approx_eq(z.re, z0, 1e-6), "f={f}: {z}");
            assert!(z.im.abs() < 1e-6 * z0, "f={f}: {z}");
        }
    }

    #[test]
    fn quarter_wave_open_line_looks_short() {
        let z0 = 50.0;
        let v = 2e8;
        let len = 0.1;
        let tau = len / v;
        let f_quarter = 1.0 / (4.0 * tau);
        let model = crate::CoupledLineModel::new(
            pdn_num::Matrix::from_rows(&[&[z0 / v]]),
            pdn_num::Matrix::from_rows(&[&[1.0 / (z0 * v)]]),
            len,
        )
        .unwrap();
        let mut ckt = Circuit::new();
        let near = ckt.node("near");
        let far = ckt.node("far");
        ckt.coupled_line(model, vec![near], vec![far]);
        ckt.resistor(far, Circuit::GND, 1e9); // open
        let z = ckt.impedance_matrix(f_quarter, &[near]).unwrap()[(0, 0)];
        assert!(z.norm() < 0.1, "quarter-wave open transforms to short: {z}");
    }

    #[test]
    fn impedance_requires_positive_frequency() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.resistor(a, Circuit::GND, 1.0);
        assert!(ckt.impedance_matrix(0.0, &[a]).is_err());
    }

    #[test]
    fn impedance_sweep_matches_per_point_solves() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let c = ckt.node("c");
        ckt.resistor(a, b, 0.1);
        ckt.inductor(b, c, 1e-9);
        ckt.capacitor(c, Circuit::GND, 100e-9);
        let freqs: Vec<f64> = (1..=64).map(|k| k as f64 * 5e6).collect();
        let batch = ckt.impedance_sweep(&freqs, &[a]).unwrap();
        assert_eq!(batch.len(), freqs.len());
        for (k, &f) in freqs.iter().enumerate() {
            // Same code path per point — bit-identical to the serial call.
            assert_eq!(batch[k], ckt.impedance_matrix(f, &[a]).unwrap(), "f = {f}");
        }
        // A bad point reports the lowest failing frequency.
        assert!(ckt.impedance_sweep(&[1e6, 0.0], &[a]).is_err());
    }
}

#[cfg(test)]
mod ac_result_tests {
    use super::*;
    use crate::waveform::Waveform;

    #[test]
    fn magnitude_db_tracks_transfer() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        let src = ckt.voltage_source(vin, Circuit::GND, Waveform::dc(0.0));
        // 20 dB attenuator: 9R / 1R divider.
        ckt.resistor(vin, out, 9.0);
        ckt.resistor(out, Circuit::GND, 1.0);
        let res = ckt.ac(&AcSweep::linear(1e6, 2e6, 3), src).unwrap();
        assert_eq!(res.freqs().len(), 3);
        for db in res.magnitude_db(out) {
            assert!((db + 20.0).abs() < 1e-9, "divider is −20 dB, got {db}");
        }
        // The driven node sits at 0 dB.
        for db in res.magnitude_db(vin) {
            assert!(db.abs() < 1e-9);
        }
    }

    #[test]
    fn coupled_inductor_ac_is_reciprocal() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.coupled_inductors(a, Circuit::GND, b, Circuit::GND, 1e-6, 4e-6, 0.6);
        ckt.resistor(a, Circuit::GND, 1e3);
        ckt.resistor(b, Circuit::GND, 1e3);
        let z = ckt.impedance_matrix(10e6, &[a, b]).unwrap();
        assert!((z[(0, 1)] - z[(1, 0)]).norm() < 1e-12 * z.max_abs());
    }
}
