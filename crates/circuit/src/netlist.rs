//! Circuit construction: nodes and element stamps.

use crate::tline_elem::CoupledLineModel;
use crate::waveform::Waveform;
use pdn_num::PoleResidueModel;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A circuit node handle. `Circuit::GND` is the reference node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Returns `true` for the ground/reference node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }

    /// The raw node index (0 = ground), usable to index DC operating-point
    /// vectors.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Errors from building or simulating a circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum SimulateCircuitError {
    /// The system matrix is singular (floating node, inconsistent sources).
    Singular(String),
    /// An invalid analysis specification (non-positive step, empty sweep…).
    InvalidSpec(String),
}

impl fmt::Display for SimulateCircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulateCircuitError::Singular(s) => write!(f, "singular circuit matrix: {s}"),
            SimulateCircuitError::InvalidSpec(s) => write!(f, "invalid analysis spec: {s}"),
        }
    }
}

impl Error for SimulateCircuitError {}

/// Identifies a voltage source (for current probing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SourceId(pub(crate) usize);

#[derive(Debug, Clone)]
pub(crate) enum Element {
    Resistor {
        a: NodeId,
        b: NodeId,
        ohms: f64,
    },
    Capacitor {
        a: NodeId,
        b: NodeId,
        farads: f64,
    },
    Inductor {
        a: NodeId,
        b: NodeId,
        henries: f64,
    },
    /// Time-varying conductance `g(t) = g_on · s(t)` (or `g_on·(1−s(t))`
    /// when `invert`), clamped to `[g_min, g_on]`. The behavioral CMOS
    /// output-stage model.
    SwitchResistor {
        a: NodeId,
        b: NodeId,
        g_on: f64,
        s: Waveform,
        invert: bool,
    },
    /// Two magnetically coupled inductors (2×2 inductance matrix).
    CoupledInductors {
        a1: NodeId,
        b1: NodeId,
        a2: NodeId,
        b2: NodeId,
        l1: f64,
        l2: f64,
        m: f64,
    },
    VSource {
        plus: NodeId,
        minus: NodeId,
        wave: Waveform,
        index: usize,
    },
    ISource {
        from: NodeId,
        to: NodeId,
        wave: Waveform,
    },
    CoupledLine {
        model: CoupledLineModel,
        near: Vec<NodeId>,
        far: Vec<NodeId>,
    },
    /// A passive pole–residue macromodel of a multiport admittance,
    /// ground-referenced at each port and simulated by recursive
    /// convolution (see [`pdn_num::prom`]).
    ReducedOrder {
        nodes: Vec<NodeId>,
        model: std::sync::Arc<PoleResidueModel>,
    },
}

/// A circuit under construction.
///
/// Nodes are created with [`node`](Circuit::node) (by name) or
/// [`new_node`](Circuit::new_node) (anonymous); elements are added with the
/// builder methods and analyses run with
/// [`transient`](Circuit::transient) / [`ac`](Circuit::ac).
///
/// # Examples
///
/// ```
/// use pdn_circuit::{Circuit, Waveform};
///
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// ckt.voltage_source(a, Circuit::GND, Waveform::dc(1.0));
/// ckt.resistor(a, Circuit::GND, 50.0);
/// assert_eq!(ckt.node_count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    pub(crate) elements: Vec<Element>,
    pub(crate) n_nodes: usize,
    pub(crate) n_vsources: usize,
    names: HashMap<String, NodeId>,
}

impl Circuit {
    /// The ground / reference node.
    pub const GND: NodeId = NodeId(0);

    /// Creates an empty circuit.
    pub fn new() -> Self {
        Circuit::default()
    }

    /// Returns the node with the given name, creating it on first use.
    pub fn node(&mut self, name: impl Into<String>) -> NodeId {
        let name = name.into();
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return Circuit::GND;
        }
        if let Some(&id) = self.names.get(&name) {
            return id;
        }
        let id = self.new_node();
        self.names.insert(name, id);
        id
    }

    /// Creates an anonymous node.
    pub fn new_node(&mut self) -> NodeId {
        self.n_nodes += 1;
        NodeId(self.n_nodes)
    }

    /// Looks up a previously created named node.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return Some(Circuit::GND);
        }
        self.names.get(name).copied()
    }

    /// Number of non-ground nodes.
    pub fn node_count(&self) -> usize {
        self.n_nodes
    }

    /// Number of elements.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Number of independent voltage sources.
    pub fn vsource_count(&self) -> usize {
        self.n_vsources
    }

    /// Adds a resistor.
    ///
    /// # Panics
    ///
    /// Panics unless `ohms` is positive and finite.
    pub fn resistor(&mut self, a: NodeId, b: NodeId, ohms: f64) {
        assert!(
            ohms > 0.0 && ohms.is_finite(),
            "resistance must be positive"
        );
        self.elements.push(Element::Resistor { a, b, ohms });
    }

    /// Adds a capacitor.
    ///
    /// # Panics
    ///
    /// Panics unless `farads` is positive and finite.
    pub fn capacitor(&mut self, a: NodeId, b: NodeId, farads: f64) {
        assert!(
            farads > 0.0 && farads.is_finite(),
            "capacitance must be positive"
        );
        self.elements.push(Element::Capacitor { a, b, farads });
    }

    /// Adds an inductor. Negative values are accepted (extracted macromodel
    /// branches can carry negative partial inductance), zero is not.
    ///
    /// # Panics
    ///
    /// Panics if `henries` is zero or not finite.
    pub fn inductor(&mut self, a: NodeId, b: NodeId, henries: f64) {
        assert!(
            henries != 0.0 && henries.is_finite(),
            "inductance must be non-zero"
        );
        self.elements.push(Element::Inductor { a, b, henries });
    }

    /// Adds a pair of magnetically coupled inductors: `l1` between
    /// `a1`–`b1`, `l2` between `a2`–`b2`, coupled by the coupling factor
    /// `k` (mutual inductance `M = k·√(l1·l2)`).
    ///
    /// # Panics
    ///
    /// Panics unless both inductances are positive and `|k| < 1`
    /// (passivity bound).
    #[allow(clippy::too_many_arguments)]
    pub fn coupled_inductors(
        &mut self,
        a1: NodeId,
        b1: NodeId,
        a2: NodeId,
        b2: NodeId,
        l1: f64,
        l2: f64,
        k: f64,
    ) {
        assert!(l1 > 0.0 && l2 > 0.0, "coupled inductances must be positive");
        assert!(k.abs() < 1.0, "coupling factor must satisfy |k| < 1");
        let m = k * (l1 * l2).sqrt();
        self.elements.push(Element::CoupledInductors {
            a1,
            b1,
            a2,
            b2,
            l1,
            l2,
            m,
        });
    }

    /// Adds an independent voltage source (`plus` − `minus` = waveform) and
    /// returns its id for current probing.
    pub fn voltage_source(
        &mut self,
        plus: NodeId,
        minus: NodeId,
        wave: impl Into<Waveform>,
    ) -> SourceId {
        let index = self.n_vsources;
        self.n_vsources += 1;
        self.elements.push(Element::VSource {
            plus,
            minus,
            wave: wave.into(),
            index,
        });
        SourceId(index)
    }

    /// Adds an independent current source pushing current from `from` to
    /// `to` (through the source).
    pub fn current_source(&mut self, from: NodeId, to: NodeId, wave: impl Into<Waveform>) {
        self.elements.push(Element::ISource {
            from,
            to,
            wave: wave.into(),
        });
    }

    /// Adds a time-varying switch conductance `g(t) = s(t)/r_on`
    /// (`(1−s(t))/r_on` when `invert`), with `s` expected in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics unless `r_on` is positive.
    pub fn switch_resistor(&mut self, a: NodeId, b: NodeId, r_on: f64, s: Waveform, invert: bool) {
        assert!(r_on > 0.0, "on-resistance must be positive");
        self.elements.push(Element::SwitchResistor {
            a,
            b,
            g_on: 1.0 / r_on,
            s,
            invert,
        });
    }

    /// Adds a behavioral CMOS totem-pole driver: a pull-up switch from
    /// `out` to `vcc` driven by `data` and a complementary pull-down switch
    /// from `out` to `gnd`, both with on-resistance `r_on`.
    ///
    /// `data` should swing between 0 (output low) and 1 (output high); use
    /// a [`Waveform::pulse`] with realistic rise/fall times to model the
    /// switching transient that draws the SSN current spike through the
    /// supply pins.
    pub fn cmos_driver(
        &mut self,
        out: NodeId,
        vcc: NodeId,
        gnd: NodeId,
        r_on: f64,
        data: Waveform,
    ) {
        self.switch_resistor(out, vcc, r_on, data.clone(), false);
        self.switch_resistor(out, gnd, r_on, data, true);
    }

    /// Adds a lossless multiconductor transmission line. `near[i]` and
    /// `far[i]` are the terminals of conductor `i`; the reference conductor
    /// is ground.
    ///
    /// # Panics
    ///
    /// Panics if the node lists don't match the model's conductor count.
    pub fn coupled_line(&mut self, model: CoupledLineModel, near: Vec<NodeId>, far: Vec<NodeId>) {
        assert_eq!(near.len(), model.conductor_count(), "near terminal count");
        assert_eq!(far.len(), model.conductor_count(), "far terminal count");
        self.elements
            .push(Element::CoupledLine { model, near, far });
    }

    /// Stamps a passive pole–residue macromodel ([`PoleResidueModel`],
    /// built by `pdn_num::prom` from a certified rational fit) as a
    /// multiport admittance block. Port `k` of the model is connected
    /// between `nodes[k]` and ground; in a transient analysis the block
    /// is simulated by recursive convolution, costing
    /// `O(poles × ports²)` per step instead of the full network stamp.
    pub fn reduced_order_block(
        &mut self,
        nodes: &[NodeId],
        model: std::sync::Arc<PoleResidueModel>,
    ) {
        assert_eq!(
            nodes.len(),
            model.ports(),
            "one terminal node per macromodel port"
        );
        self.elements.push(Element::ReducedOrder {
            nodes: nodes.to_vec(),
            model,
        });
    }

    /// Adds a package pin parasitic π-model between `outer` and `inner`:
    /// series `r` + `l`, with `c/2` shunt capacitance at each end.
    ///
    /// Returns the internal node between R and L.
    pub fn package_pin(&mut self, outer: NodeId, inner: NodeId, r: f64, l: f64, c: f64) -> NodeId {
        let mid = self.new_node();
        if c > 0.0 {
            self.capacitor(outer, Circuit::GND, 0.5 * c);
            self.capacitor(inner, Circuit::GND, 0.5 * c);
        }
        self.resistor(outer, mid, r.max(1e-6));
        self.inductor(mid, inner, l);
        mid
    }

    /// Adds a decoupling capacitor with ESR and ESL between `a` and `b`.
    pub fn decoupling_cap(&mut self, a: NodeId, b: NodeId, c: f64, esr: f64, esl: f64) {
        let m1 = self.new_node();
        let m2 = self.new_node();
        self.resistor(a, m1, esr.max(1e-6));
        self.inductor(m1, m2, esl.max(1e-15));
        self.capacitor(m2, b, c);
    }

    /// `true` when any element's value changes with time (switch
    /// resistors), which forces a per-step refactorization in transient
    /// analysis.
    pub fn has_time_varying_topology(&self) -> bool {
        self.elements
            .iter()
            .any(|e| matches!(e, Element::SwitchResistor { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_nodes_are_deduplicated() {
        let mut c = Circuit::new();
        let a1 = c.node("vdd");
        let a2 = c.node("vdd");
        assert_eq!(a1, a2);
        assert_eq!(c.node_count(), 1);
        assert_eq!(c.find_node("vdd"), Some(a1));
        assert_eq!(c.find_node("missing"), None);
    }

    #[test]
    fn ground_aliases() {
        let mut c = Circuit::new();
        assert_eq!(c.node("0"), Circuit::GND);
        assert_eq!(c.node("gnd"), Circuit::GND);
        assert_eq!(c.node("GND"), Circuit::GND);
        assert!(Circuit::GND.is_ground());
        assert_eq!(c.node_count(), 0);
    }

    #[test]
    fn element_and_source_counting() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.resistor(a, b, 10.0);
        c.capacitor(b, Circuit::GND, 1e-12);
        c.inductor(a, Circuit::GND, 1e-9);
        let s = c.voltage_source(a, Circuit::GND, 1.0);
        assert_eq!(c.element_count(), 4);
        assert_eq!(c.vsource_count(), 1);
        assert_eq!(s, SourceId(0));
    }

    #[test]
    fn package_pin_builds_rlc_ladder() {
        let mut c = Circuit::new();
        let a = c.node("pad");
        let b = c.node("die");
        c.package_pin(a, b, 0.01, 2e-9, 1e-12);
        assert_eq!(c.element_count(), 4); // 2×C/2, R, L
    }

    #[test]
    fn decap_builds_three_elements() {
        let mut c = Circuit::new();
        let a = c.node("vdd");
        c.decoupling_cap(a, Circuit::GND, 100e-9, 0.01, 1e-9);
        assert_eq!(c.element_count(), 3);
    }

    #[test]
    fn time_varying_detection() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor(a, Circuit::GND, 1.0);
        assert!(!c.has_time_varying_topology());
        c.cmos_driver(
            a,
            Circuit::GND,
            Circuit::GND,
            10.0,
            Waveform::step(1.0, 0.0),
        );
        assert!(c.has_time_varying_topology());
    }

    #[test]
    #[should_panic(expected = "resistance must be positive")]
    fn zero_resistor_panics() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor(a, Circuit::GND, 0.0);
    }

    #[test]
    #[should_panic(expected = "inductance must be non-zero")]
    fn zero_inductor_panics() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.inductor(a, Circuit::GND, 0.0);
    }
}
