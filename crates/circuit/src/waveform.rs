//! Time-domain source waveforms.

/// An independent-source waveform.
///
/// All times in seconds, amplitudes in volts (or amperes for current
/// sources).
///
/// # Examples
///
/// ```
/// use pdn_circuit::Waveform;
///
/// // The paper's Figure 5 stimulus: 5 V pulse, 0.3 ns rise/fall, 1 ns wide.
/// let w = Waveform::pulse(0.0, 5.0, 0.0, 0.3e-9, 0.3e-9, 1.0e-9);
/// assert_eq!(w.eval(0.0), 0.0);
/// assert_eq!(w.eval(0.3e-9), 5.0);
/// assert_eq!(w.eval(0.3e-9 + 1.0e-9), 5.0); // end of flat top
/// assert_eq!(w.eval(1.0e-8), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// Step from `initial` to `level` at `delay`, instantaneous.
    Step {
        /// Value after the step.
        level: f64,
        /// Step time in seconds.
        delay: f64,
        /// Value before the step.
        initial: f64,
    },
    /// Trapezoidal pulse: `v0` → `v1` with linear ramps.
    Pulse {
        /// Base value.
        v0: f64,
        /// Pulse value.
        v1: f64,
        /// Start of the rising edge.
        delay: f64,
        /// Rise time (0 allowed).
        rise: f64,
        /// Fall time (0 allowed).
        fall: f64,
        /// Flat-top duration between the end of rise and start of fall.
        width: f64,
    },
    /// Piece-wise linear `(time, value)` points; clamped outside the range.
    Pwl(Vec<(f64, f64)>),
    /// `offset + amplitude·sin(2πf(t−delay))`, zero before `delay`.
    Sine {
        /// DC offset.
        offset: f64,
        /// Peak amplitude.
        amplitude: f64,
        /// Frequency in Hz.
        frequency: f64,
        /// Start delay in seconds.
        delay: f64,
    },
}

impl Waveform {
    /// DC value shorthand.
    pub fn dc(v: f64) -> Self {
        Waveform::Dc(v)
    }

    /// Step shorthand (starts at 0).
    pub fn step(level: f64, delay: f64) -> Self {
        Waveform::Step {
            level,
            delay,
            initial: 0.0,
        }
    }

    /// Trapezoidal pulse shorthand.
    pub fn pulse(v0: f64, v1: f64, delay: f64, rise: f64, fall: f64, width: f64) -> Self {
        Waveform::Pulse {
            v0,
            v1,
            delay,
            rise,
            fall,
            width,
        }
    }

    /// Piece-wise linear shorthand.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or times are not strictly increasing.
    pub fn pwl(points: Vec<(f64, f64)>) -> Self {
        assert!(!points.is_empty(), "PWL needs at least one point");
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "PWL times must be strictly increasing");
        }
        Waveform::Pwl(points)
    }

    /// Evaluates the waveform at time `t`.
    pub fn eval(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Step {
                level,
                delay,
                initial,
            } => {
                if t < *delay {
                    *initial
                } else {
                    *level
                }
            }
            Waveform::Pulse {
                v0,
                v1,
                delay,
                rise,
                fall,
                width,
            } => {
                let t = t - delay;
                if t <= 0.0 {
                    *v0
                } else if t < *rise {
                    v0 + (v1 - v0) * t / rise
                } else if t <= rise + width {
                    *v1
                } else if t < rise + width + fall {
                    v1 + (v0 - v1) * (t - rise - width) / fall
                } else {
                    *v0
                }
            }
            Waveform::Pwl(points) => {
                if t <= points[0].0 {
                    return points[0].1;
                }
                for w in points.windows(2) {
                    let ((t0, v0), (t1, v1)) = (w[0], w[1]);
                    if t <= t1 {
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points.last().expect("non-empty").1
            }
            Waveform::Sine {
                offset,
                amplitude,
                frequency,
                delay,
            } => {
                if t < *delay {
                    *offset
                } else {
                    offset
                        + amplitude * (2.0 * std::f64::consts::PI * frequency * (t - delay)).sin()
                }
            }
        }
    }

    /// A periodic 0→1 clock as a PWL pattern: `cycles` periods of the
    /// given `period`, switching with linear edges of `edge` duration at
    /// 50 % duty cycle.
    ///
    /// # Panics
    ///
    /// Panics unless `period > 2·edge > 0` and `cycles > 0`.
    pub fn clock(period: f64, edge: f64, cycles: usize) -> Self {
        assert!(edge > 0.0, "edge time must be positive");
        assert!(period > 2.0 * edge, "period must exceed both edges");
        assert!(cycles > 0, "need at least one cycle");
        let half = 0.5 * period;
        let mut pts = vec![(0.0, 0.0)];
        for k in 0..cycles {
            // Rising edge at the cycle start, falling edge at half period.
            let t0 = k as f64 * period;
            pts.push((t0 + edge, 1.0));
            pts.push((t0 + half, 1.0));
            pts.push((t0 + half + edge, 0.0));
            pts.push((t0 + period, 0.0));
        }
        Waveform::pwl(pts)
    }

    /// A non-return-to-zero bit pattern as a PWL waveform: each bit lasts
    /// `bit_time`, transitions take `edge`, levels are 0 and 1.
    ///
    /// # Panics
    ///
    /// Panics unless `bits` is non-empty and `0 < edge < bit_time`.
    pub fn bit_pattern(bits: &[bool], bit_time: f64, edge: f64) -> Self {
        assert!(!bits.is_empty(), "need at least one bit");
        assert!(edge > 0.0 && edge < bit_time, "edge must fit in a bit");
        let lvl = |b: bool| if b { 1.0 } else { 0.0 };
        let mut pts = vec![(0.0, lvl(bits[0]))];
        for (k, w) in bits.windows(2).enumerate() {
            if w[0] != w[1] {
                let t0 = (k as f64 + 1.0) * bit_time;
                pts.push((t0, lvl(w[0])));
                pts.push((t0 + edge, lvl(w[1])));
            }
        }
        let t_end = bits.len() as f64 * bit_time;
        if pts.last().expect("nonempty").0 < t_end {
            pts.push((t_end, lvl(*bits.last().expect("nonempty"))));
        }
        Waveform::pwl(pts)
    }

    /// `true` when the waveform never changes (a DC source). Constant
    /// switch drives can then be folded into constant matrices.
    pub fn is_constant(&self) -> bool {
        matches!(self, Waveform::Dc(_))
    }

    /// The value at `t = 0⁻` (initial condition for DC operating point).
    pub fn initial_value(&self) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Step { initial, .. } => *initial,
            Waveform::Pulse { v0, .. } => *v0,
            Waveform::Pwl(points) => points[0].1,
            Waveform::Sine { offset, .. } => *offset,
        }
    }
}

impl From<f64> for Waveform {
    fn from(v: f64) -> Self {
        Waveform::Dc(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_flat() {
        let w = Waveform::dc(3.3);
        assert_eq!(w.eval(0.0), 3.3);
        assert_eq!(w.eval(1.0), 3.3);
        assert_eq!(w.initial_value(), 3.3);
    }

    #[test]
    fn step_transitions_at_delay() {
        let w = Waveform::step(5.0, 1e-9);
        assert_eq!(w.eval(0.999e-9), 0.0);
        assert_eq!(w.eval(1e-9), 5.0);
        assert_eq!(w.initial_value(), 0.0);
    }

    #[test]
    fn pulse_profile() {
        let w = Waveform::pulse(0.0, 5.0, 1e-9, 0.3e-9, 0.3e-9, 1.0e-9);
        assert_eq!(w.eval(0.5e-9), 0.0);
        assert!((w.eval(1.15e-9) - 2.5).abs() < 1e-12); // mid-rise
        assert_eq!(w.eval(1.8e-9), 5.0); // flat top
        assert!((w.eval(2.45e-9) - 2.5).abs() < 1e-12); // mid-fall
        assert_eq!(w.eval(3.0e-9), 0.0);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = Waveform::pwl(vec![(0.0, 0.0), (1.0, 2.0), (3.0, -2.0)]);
        assert_eq!(w.eval(-1.0), 0.0);
        assert!((w.eval(0.5) - 1.0).abs() < 1e-12);
        assert!((w.eval(2.0) - 0.0).abs() < 1e-12);
        assert_eq!(w.eval(5.0), -2.0);
    }

    #[test]
    fn sine_starts_after_delay() {
        let w = Waveform::Sine {
            offset: 1.0,
            amplitude: 2.0,
            frequency: 1.0,
            delay: 0.5,
        };
        assert_eq!(w.eval(0.25), 1.0);
        assert!((w.eval(0.5 + 0.25) - 3.0).abs() < 1e-12); // quarter period
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn pwl_bad_times_panics() {
        let _ = Waveform::pwl(vec![(0.0, 1.0), (0.0, 2.0)]);
    }

    #[test]
    fn from_f64_gives_dc() {
        let w: Waveform = 2.5.into();
        assert_eq!(w, Waveform::Dc(2.5));
    }
}

#[cfg(test)]
mod pattern_tests {
    use super::*;

    #[test]
    fn clock_levels_and_period() {
        let w = Waveform::clock(2e-9, 0.2e-9, 3);
        assert_eq!(w.eval(0.0), 0.0);
        assert_eq!(w.eval(0.5e-9), 1.0); // after the rising edge
        assert_eq!(w.eval(1.5e-9), 0.0); // second half
        assert_eq!(w.eval(2.5e-9), 1.0); // next cycle high
        assert_eq!(w.eval(10e-9), 0.0); // after the pattern
    }

    #[test]
    fn clock_edges_are_linear() {
        let w = Waveform::clock(2e-9, 0.2e-9, 1);
        assert!((w.eval(0.1e-9) - 0.5).abs() < 1e-9);
        assert!((w.eval(1.1e-9) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn bit_pattern_follows_bits() {
        let w = Waveform::bit_pattern(&[true, true, false, true], 1e-9, 0.1e-9);
        assert_eq!(w.eval(0.5e-9), 1.0);
        assert_eq!(w.eval(1.5e-9), 1.0);
        assert_eq!(w.eval(2.6e-9), 0.0);
        assert_eq!(w.eval(3.5e-9), 1.0);
        // Transition midpoint.
        assert!((w.eval(2.05e-9) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn constant_bit_pattern_is_flat() {
        let w = Waveform::bit_pattern(&[true, true, true], 1e-9, 0.1e-9);
        for k in 0..30 {
            assert_eq!(w.eval(k as f64 * 0.1e-9), 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "edge must fit")]
    fn bad_bit_edge_panics() {
        let _ = Waveform::bit_pattern(&[true], 1e-9, 2e-9);
    }
}
