#![warn(missing_docs)]
//! Modified-nodal-analysis circuit simulation for the `pdn` toolkit.
//!
//! Implements the paper's Section 5.1: an efficient solver for the large
//! linear equivalent circuits extracted from the EM solution, plus the
//! general machinery needed for system-level co-simulation —
//!
//! * elements: R, L, C, independent V/I sources with waveforms,
//!   time-varying switch resistors (the behavioral CMOS driver stage),
//!   lossless **coupled transmission lines** (modal method of
//!   characteristics in the time domain, exact hyperbolic stamps in the
//!   frequency domain);
//! * **transient analysis** with first-order (backward Euler) and
//!   second-order (trapezoidal) integration; inductors use companion models
//!   so no internal inductance nodes are created, and with a uniform time
//!   step and a linear network the system matrix is factored exactly once —
//!   the paper's fast path;
//! * **AC analysis**, port impedance matrices, and S-parameters.
//!
//! # Examples
//!
//! A series RC step response:
//!
//! ```
//! use pdn_circuit::{Circuit, TransientSpec, Waveform};
//!
//! # fn main() -> Result<(), pdn_circuit::SimulateCircuitError> {
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let out = ckt.node("out");
//! ckt.voltage_source(vin, Circuit::GND, Waveform::step(1.0, 0.0));
//! ckt.resistor(vin, out, 1e3);
//! ckt.capacitor(out, Circuit::GND, 1e-9);
//! let result = ckt.transient(&TransientSpec::new(10e-6, 10e-9))?;
//! let v_end = *result.voltage(out).last().expect("samples exist");
//! assert!((v_end - 1.0).abs() < 1e-3); // fully charged after 10 τ
//! # Ok(())
//! # }
//! ```

pub mod ac;
pub mod netlist;
pub mod sparams;
pub mod tline_elem;
pub mod transient;
pub mod waveform;

pub use ac::{AcResult, AcSweep};
pub use netlist::{Circuit, NodeId, SimulateCircuitError, SourceId};
pub use sparams::{insertion_loss_db, s_from_z, s_sweep_from_z, touchstone, z_from_s};
pub use tline_elem::CoupledLineModel;
pub use transient::{Integration, SolverMode, TransientPlan, TransientResult, TransientSpec};
pub use waveform::Waveform;
