//! Scattering-parameter conversions.
//!
//! The paper verifies its extracted models against measured S-parameters
//! (Fig. 7). These helpers convert between impedance and scattering
//! matrices for a uniform real reference impedance:
//!
//! ```text
//! S = (Z − Z₀I)(Z + Z₀I)⁻¹          Z = Z₀(I + S)(I − S)⁻¹
//! ```

use crate::netlist::{Circuit, NodeId, SimulateCircuitError};
use pdn_num::rational::{self, SweepAccuracy};
use pdn_num::{c64, parallel, LuDecomposition, Matrix, SolveMatrixError};

/// Converts an impedance matrix to a scattering matrix with reference
/// impedance `z0` (Ω) at every port.
///
/// # Errors
///
/// Returns an error when `Z + Z₀I` is singular (never for passive `Z` and
/// positive `z0`).
///
/// # Examples
///
/// ```
/// use pdn_num::{c64, Matrix};
///
/// # fn main() -> Result<(), pdn_num::SolveMatrixError> {
/// // A 1-port of exactly 50 Ω has S11 = 0.
/// let z = Matrix::from_rows(&[&[c64::from_re(50.0)]]);
/// let s = pdn_circuit::s_from_z(&z, 50.0)?;
/// assert!(s[(0, 0)].norm() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn s_from_z(z: &Matrix<c64>, z0: f64) -> Result<Matrix<c64>, SolveMatrixError> {
    let n = z.nrows();
    let z0c = c64::from_re(z0);
    let mut num = z.clone();
    let mut den = z.clone();
    for i in 0..n {
        num[(i, i)] -= z0c;
        den[(i, i)] += z0c;
    }
    // S = num · den⁻¹  ⇔  Sᵀ = (denᵀ)⁻¹ · numᵀ; Z symmetric for reciprocal
    // networks but do not rely on it:
    let den_lu = LuDecomposition::new(den.transpose())?;
    let st = den_lu.solve_matrix(&num.transpose())?;
    Ok(st.transpose())
}

/// Converts a scattering matrix back to an impedance matrix.
///
/// # Errors
///
/// Returns an error when `I − S` is singular (an ideal open at every
/// port).
pub fn z_from_s(s: &Matrix<c64>, z0: f64) -> Result<Matrix<c64>, SolveMatrixError> {
    let n = s.nrows();
    let mut i_plus = s.clone();
    let mut i_minus = -s;
    for i in 0..n {
        i_plus[(i, i)] += c64::ONE;
        i_minus[(i, i)] += c64::ONE;
    }
    // Z = z0 · (I+S)(I−S)⁻¹; compute via transposed solves as above.
    let lu = LuDecomposition::new(i_minus.transpose())?;
    let zt = lu.solve_matrix(&i_plus.transpose())?;
    Ok(zt.transpose().scale(c64::from_re(z0)))
}

/// Converts a frequency sweep of impedance matrices to scattering
/// matrices, one [`s_from_z`] conversion per point on
/// [`pdn_num::parallel`] workers. Output order matches the input and is
/// identical for any worker count.
///
/// # Errors
///
/// Returns the error of the lowest-index failing conversion.
pub fn s_sweep_from_z(
    z_mats: &[Matrix<c64>],
    z0: f64,
) -> Result<Vec<Matrix<c64>>, SolveMatrixError> {
    parallel::try_par_map_indexed(z_mats.len(), |k| s_from_z(&z_mats[k], z0))
}

impl Circuit {
    /// S-parameter sweep over the given port nodes with reference
    /// impedance `z0`: each frequency point solves the complex MNA system
    /// once (factorization cached across port excitations) and converts
    /// the resulting impedance matrix to S, with points fanned out over
    /// [`pdn_num::parallel`] workers.
    ///
    /// # Errors
    ///
    /// Returns the error of the lowest-index failing frequency (`f <= 0`,
    /// singular MNA matrix, or a failed S conversion).
    ///
    /// # Panics
    ///
    /// Panics if a port is the ground node.
    pub fn s_parameter_sweep(
        &self,
        freqs: &[f64],
        ports: &[NodeId],
        z0: f64,
    ) -> Result<Vec<Matrix<c64>>, SimulateCircuitError> {
        self.s_parameter_sweep_with(freqs, ports, z0, SweepAccuracy::Exact)
    }

    /// [`s_parameter_sweep`](Self::s_parameter_sweep) with an explicit
    /// [`SweepAccuracy`] policy — under `Rational`, the scattering matrix
    /// itself is interpolated (S inherits the rational structure of Z), so
    /// only the adaptively chosen anchor frequencies pay an exact solve.
    ///
    /// # Errors
    ///
    /// [`SimulateCircuitError::InvalidSpec`] for an invalid grid or
    /// tolerance; otherwise the lowest-index failing frequency's error.
    ///
    /// # Panics
    ///
    /// Panics if a port is the ground node.
    pub fn s_parameter_sweep_with(
        &self,
        freqs: &[f64],
        ports: &[NodeId],
        z0: f64,
        accuracy: SweepAccuracy,
    ) -> Result<Vec<Matrix<c64>>, SimulateCircuitError> {
        rational::sweep("circuit.sparams", freqs, accuracy, |f| {
            let z = self.impedance_matrix(f, ports)?;
            s_from_z(&z, z0).map_err(|e| SimulateCircuitError::Singular(format!("f = {f}: {e}")))
        })
        .map_err(crate::ac::from_sweep_err)
        .map(|outcome| outcome.values)
    }
}

/// Insertion loss `|S21|` in dB for a two-port impedance matrix.
///
/// # Errors
///
/// Propagates conversion failures.
///
/// # Panics
///
/// Panics unless `z` is at least 2×2.
pub fn insertion_loss_db(z: &Matrix<c64>, z0: f64) -> Result<f64, SolveMatrixError> {
    assert!(z.nrows() >= 2 && z.ncols() >= 2, "need a two-port");
    let s = s_from_z(z, z0)?;
    Ok(s[(1, 0)].db())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdn_num::approx_eq;

    fn c(re: f64, im: f64) -> c64 {
        c64::new(re, im)
    }

    #[test]
    fn matched_load_has_zero_reflection() {
        let z = Matrix::from_rows(&[&[c(50.0, 0.0)]]);
        let s = s_from_z(&z, 50.0).unwrap();
        assert!(s[(0, 0)].norm() < 1e-14);
    }

    #[test]
    fn short_and_open_reflections() {
        let z_short = Matrix::from_rows(&[&[c(1e-9, 0.0)]]);
        let s = s_from_z(&z_short, 50.0).unwrap();
        assert!(approx_eq(s[(0, 0)].re, -1.0, 1e-9));
        let z_open = Matrix::from_rows(&[&[c(1e12, 0.0)]]);
        let s = s_from_z(&z_open, 50.0).unwrap();
        assert!(approx_eq(s[(0, 0)].re, 1.0, 1e-9));
    }

    #[test]
    fn roundtrip_z_s_z() {
        let z = Matrix::from_rows(&[
            &[c(30.0, 12.0), c(5.0, -2.0)],
            &[c(5.0, -2.0), c(80.0, -40.0)],
        ]);
        let s = s_from_z(&z, 50.0).unwrap();
        let back = z_from_s(&s, 50.0).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!((back[(i, j)] - z[(i, j)]).norm() < 1e-9);
            }
        }
    }

    #[test]
    fn reciprocal_z_gives_reciprocal_s() {
        let z = Matrix::from_rows(&[&[c(20.0, 5.0), c(8.0, 1.0)], &[c(8.0, 1.0), c(35.0, -3.0)]]);
        let s = s_from_z(&z, 50.0).unwrap();
        assert!((s[(0, 1)] - s[(1, 0)]).norm() < 1e-12);
    }

    #[test]
    fn series_z0_attenuator_s21() {
        // A series resistor R between two Z0 ports: Z = [[R, R],[R, R]] +
        // ... actually for a single series R: Z11 = Z12 = Z21 = Z22 = ∞ is
        // wrong; use the known result S21 = 2Z0/(2Z0 + R) via the
        // impedance matrix of a series element: Z = [[R+..]]. Represent
        // the series R as a 2-port with a shunt-free T: Z = [[R, 0],[0, 0]]
        // is not it either — instead test a shunt R to ground at the
        // junction of both ports: Z = [[R, R],[R, R]], S21 = 2R/(2R+Z0).
        let r = 25.0;
        let z = Matrix::from_rows(&[&[c(r, 0.0), c(r, 0.0)], &[c(r, 0.0), c(r, 0.0)]]);
        let s = s_from_z(&z, 50.0).unwrap();
        let expect = 2.0 * r / (2.0 * r + 50.0);
        assert!(approx_eq(s[(1, 0)].re, expect, 1e-9), "{}", s[(1, 0)]);
        assert!(s[(1, 0)].im.abs() < 1e-12);
    }

    #[test]
    fn passivity_of_lossless_reactance() {
        // A pure reactance reflects all power: |S11| = 1.
        let z = Matrix::from_rows(&[&[c(0.0, 37.0)]]);
        let s = s_from_z(&z, 50.0).unwrap();
        assert!(approx_eq(s[(0, 0)].norm(), 1.0, 1e-12));
    }

    #[test]
    fn s_sweep_matches_per_point_conversion() {
        let z_mats: Vec<Matrix<c64>> = (0..40)
            .map(|k| {
                let w = 1.0 + k as f64;
                Matrix::from_rows(&[
                    &[c(30.0, 0.5 * w), c(5.0, -0.1 * w)],
                    &[c(5.0, -0.1 * w), c(80.0, -0.3 * w)],
                ])
            })
            .collect();
        let batch = s_sweep_from_z(&z_mats, 50.0).unwrap();
        for (k, z) in z_mats.iter().enumerate() {
            assert_eq!(batch[k], s_from_z(z, 50.0).unwrap(), "point {k}");
        }
    }

    #[test]
    fn circuit_s_parameter_sweep_matches_manual_conversion() {
        use crate::netlist::Circuit;
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.resistor(a, b, 25.0);
        ckt.capacitor(b, Circuit::GND, 10e-12);
        ckt.resistor(b, Circuit::GND, 75.0);
        let freqs: Vec<f64> = (1..=32).map(|k| k as f64 * 1e8).collect();
        let s_batch = ckt.s_parameter_sweep(&freqs, &[a, b], 50.0).unwrap();
        for (k, &f) in freqs.iter().enumerate() {
            let z = ckt.impedance_matrix(f, &[a, b]).unwrap();
            assert_eq!(s_batch[k], s_from_z(&z, 50.0).unwrap(), "f = {f}");
        }
    }
}

/// Renders a frequency sweep of S-parameter matrices as a Touchstone
/// (version 1) document in real/imaginary format with the given reference
/// impedance — the interchange format of network analyzers and SI tools.
///
/// For 2-ports the canonical Touchstone column order
/// `S11 S21 S12 S22` is used; for other port counts, row-major order with
/// one line per matrix row.
///
/// # Panics
///
/// Panics if `freqs` and `matrices` have different lengths or the
/// matrices are not square and equally sized.
///
/// # Examples
///
/// ```
/// use pdn_num::{c64, Matrix};
///
/// let s = Matrix::from_rows(&[&[c64::new(0.1, -0.2)]]);
/// let doc = pdn_circuit::touchstone(&[1e9], &[s], 50.0);
/// assert!(doc.contains("# HZ S RI R 50"));
/// ```
pub fn touchstone(freqs: &[f64], matrices: &[Matrix<c64>], z0: f64) -> String {
    assert_eq!(freqs.len(), matrices.len(), "one matrix per frequency");
    let n = matrices.first().map_or(0, Matrix::nrows);
    for m in matrices {
        assert!(
            m.is_square() && m.nrows() == n,
            "matrices must be square and equally sized"
        );
    }
    let mut out = String::new();
    out.push_str("! S-parameters exported by pdn\n");
    out.push_str(&format!(
        "! {n}-port network, {} frequency points\n",
        freqs.len()
    ));
    out.push_str(&format!("# HZ S RI R {z0}\n"));
    for (f, s) in freqs.iter().zip(matrices) {
        if n == 2 {
            // Touchstone's historical 2-port order: S11 S21 S12 S22.
            out.push_str(&format!(
                "{f:.6e} {:.9e} {:.9e} {:.9e} {:.9e} {:.9e} {:.9e} {:.9e} {:.9e}\n",
                s[(0, 0)].re,
                s[(0, 0)].im,
                s[(1, 0)].re,
                s[(1, 0)].im,
                s[(0, 1)].re,
                s[(0, 1)].im,
                s[(1, 1)].re,
                s[(1, 1)].im,
            ));
        } else {
            out.push_str(&format!("{f:.6e}"));
            for i in 0..n {
                for j in 0..n {
                    out.push_str(&format!(" {:.9e} {:.9e}", s[(i, j)].re, s[(i, j)].im));
                }
                if i + 1 < n && n > 2 {
                    out.push('\n');
                }
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod touchstone_tests {
    use super::*;

    fn s2(f_scale: f64) -> Matrix<c64> {
        Matrix::from_rows(&[
            &[c64::new(0.1 * f_scale, -0.2), c64::new(0.5, 0.1)],
            &[c64::new(0.5, 0.1), c64::new(-0.05, 0.3)],
        ])
    }

    #[test]
    fn two_port_column_order() {
        let doc = touchstone(&[1e9], &[s2(1.0)], 50.0);
        let data_line = doc.lines().last().expect("data line");
        let fields: Vec<f64> = data_line
            .split_whitespace()
            .map(|v| v.parse().expect("numeric"))
            .collect();
        assert_eq!(fields.len(), 9);
        assert!((fields[0] - 1e9).abs() < 1.0);
        assert!((fields[1] - 0.1).abs() < 1e-12); // S11 re
        assert!((fields[3] - 0.5).abs() < 1e-12); // S21 re
        assert!((fields[7] + 0.05).abs() < 1e-12); // S22 re
    }

    #[test]
    fn header_and_counts() {
        let doc = touchstone(&[1e9, 2e9, 3e9], &[s2(1.0), s2(2.0), s2(3.0)], 75.0);
        assert!(doc.contains("# HZ S RI R 75"));
        let data_lines = doc.lines().filter(|l| !l.starts_with(['!', '#'])).count();
        assert_eq!(data_lines, 3);
    }

    #[test]
    fn one_port_format() {
        let s = Matrix::from_rows(&[&[c64::new(0.9, -0.1)]]);
        let doc = touchstone(&[5e8], &[s], 50.0);
        let data_line = doc.lines().last().expect("data");
        assert_eq!(data_line.split_whitespace().count(), 3);
    }

    #[test]
    #[should_panic(expected = "one matrix per frequency")]
    fn mismatched_lengths_panic() {
        let _ = touchstone(&[1e9, 2e9], &[s2(1.0)], 50.0);
    }
}
