//! Time-domain (transient) analysis.
//!
//! Modified nodal formulation with companion models (paper Section 5.1):
//! capacitors and inductors are replaced each step by a conductance plus a
//! history current source, so **no internal inductance nodes** are added
//! and — with a uniform time step and a linear network — the system matrix
//! is constant and factored exactly once. Time-varying switch resistors
//! (behavioral drivers) either force a per-step refactorization
//! ([`SolverMode::Monolithic`]) or are folded into an exact rank-k
//! Sherman–Morrison–Woodbury update over the single factorization
//! ([`SolverMode::Partitioned`] — the paper's partitioned co-simulation,
//! Section 5.2).
//!
//! Both integration orders of the paper are available: first order
//! (backward Euler, strongly damping, used for the DC settle phase) and
//! second order (trapezoidal, the default).

use crate::netlist::{Circuit, Element, NodeId, SimulateCircuitError};
use crate::waveform::Waveform;
use pdn_num::{LuDecomposition, Matrix};
use std::cmp::Ordering;

/// Integration method for the companion models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integration {
    /// Second-order trapezoidal rule (A-stable, non-dissipative).
    #[default]
    Trapezoidal,
    /// First-order backward Euler (A-stable, strongly dissipative).
    BackwardEuler,
}

/// How time-varying switch resistors are handled each step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverMode {
    /// Rebuild and refactor the MNA matrix every step while any switch
    /// resistor is present. Exact; `O(n³)` per step.
    #[default]
    Monolithic,
    /// The paper's partitioned co-simulation, solved exactly: the matrix
    /// is factored ONCE with every switch frozen at half conductance; the
    /// time-varying remainder is a rank-k update (k = number of switches)
    /// applied per step with the Sherman–Morrison–Woodbury identity.
    /// `O(n² + k³)` per step after the single factorization, and
    /// bit-for-bit equivalent to the monolithic solution up to round-off.
    Partitioned,
}

/// Transient analysis specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientSpec {
    /// Stop time, seconds. The simulation always covers the full duration:
    /// the last recorded sample is the first time-grid point `n·dt ≥
    /// t_stop` (with 1e-9 relative tolerance, so a commensurate
    /// `t_stop/dt` yields exactly `t_stop/dt` steps).
    pub t_stop: f64,
    /// Uniform time step, seconds.
    pub dt: f64,
    /// Integration method.
    pub integration: Integration,
    /// Pre-roll duration simulated with sources held at their initial
    /// values (backward Euler) to reach DC steady state before `t = 0`.
    pub settle: f64,
    /// Switch-resistor handling.
    pub solver: SolverMode,
}

impl TransientSpec {
    /// Creates a spec with trapezoidal integration and no settle phase.
    pub fn new(t_stop: f64, dt: f64) -> Self {
        TransientSpec {
            t_stop,
            dt,
            integration: Integration::Trapezoidal,
            settle: 0.0,
            solver: SolverMode::Monolithic,
        }
    }

    /// Sets the integration method (builder style).
    pub fn with_integration(mut self, integration: Integration) -> Self {
        self.integration = integration;
        self
    }

    /// Enables a DC settle pre-roll of the given duration (builder style).
    pub fn with_settle(mut self, settle: f64) -> Self {
        self.settle = settle;
        self
    }

    /// Selects the partitioned fast solver (builder style).
    pub fn with_partitioned_solver(mut self) -> Self {
        self.solver = SolverMode::Partitioned;
        self
    }
}

/// Result of a transient run: node voltages and source currents per step.
#[derive(Debug, Clone)]
pub struct TransientResult {
    times: Vec<f64>,
    /// `voltages[k]` is the waveform of node id `k`; index 0 is ground.
    voltages: Vec<Vec<f64>>,
    /// Branch current of each voltage source (flowing internally from the
    /// `+` terminal to the `−` terminal).
    source_currents: Vec<Vec<f64>>,
}

impl TransientResult {
    /// Sample times, starting at `t = 0`.
    pub fn time(&self) -> &[f64] {
        &self.times
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Voltage waveform of a node (all zeros for ground).
    ///
    /// # Panics
    ///
    /// Panics for a node id not created on the simulated circuit.
    pub fn voltage(&self, node: NodeId) -> &[f64] {
        &self.voltages[node.0]
    }

    /// Branch current waveform of the `k`-th voltage source, flowing
    /// internally from `+` to `−` (a supply delivering current reads
    /// negative).
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range source index.
    pub fn source_current(&self, source: crate::netlist::SourceId) -> &[f64] {
        &self.source_currents[source.0]
    }

    /// Largest absolute excursion of a node voltage from its first sample —
    /// the "peak noise" measure used in the SSN studies.
    pub fn peak_excursion(&self, node: NodeId) -> f64 {
        let w = self.voltage(node);
        let base = w.first().copied().unwrap_or(0.0);
        w.iter().map(|&v| (v - base).abs()).fold(0.0, f64::max)
    }
}

/// Per-line method-of-characteristics state: sample buffers of the
/// outgoing wave `v_m + i_m` launched at each end, one per mode.
struct LineState {
    near_hist: Vec<Vec<f64>>,
    far_hist: Vec<Vec<f64>>,
    /// Modal delays in (fractional) steps.
    delay_steps: Vec<f64>,
}

/// Integration-rule factor: trapezoidal companion conductances carry a
/// factor of 2 relative to backward Euler.
fn k_int(integ: Integration) -> f64 {
    match integ {
        Integration::Trapezoidal => 2.0,
        Integration::BackwardEuler => 1.0,
    }
}

impl Circuit {
    /// Validates a transient spec against this circuit (finite positive
    /// step and stop time, finite non-negative settle, step below every
    /// transmission-line modal delay).
    fn validate_transient_spec(&self, spec: &TransientSpec) -> Result<(), SimulateCircuitError> {
        if spec.dt.partial_cmp(&0.0) != Some(Ordering::Greater)
            || spec.t_stop.partial_cmp(&0.0) != Some(Ordering::Greater)
            || !spec.dt.is_finite()
            || !spec.t_stop.is_finite()
        {
            return Err(SimulateCircuitError::InvalidSpec(
                "dt and t_stop must be positive and finite".into(),
            ));
        }
        if !spec.settle.is_finite() || spec.settle < 0.0 {
            return Err(SimulateCircuitError::InvalidSpec(format!(
                "settle must be finite and non-negative, got {}",
                spec.settle
            )));
        }
        for e in &self.elements {
            if let Element::CoupledLine { model, .. } = e {
                let min_tau = model.delays().iter().fold(f64::INFINITY, |a, &b| a.min(b));
                if spec.dt > min_tau {
                    return Err(SimulateCircuitError::InvalidSpec(format!(
                        "dt = {} exceeds smallest line modal delay {min_tau}",
                        spec.dt
                    )));
                }
            }
        }
        Ok(())
    }

    /// The settle-phase step size. The settle phase uses large
    /// backward-Euler steps (unconditionally stable) so a high-Q supply
    /// network reaches DC in a few hundred steps regardless of duration.
    /// With transmission lines present the settle step must match the main
    /// step so the wave history buffers stay uniformly sampled.
    fn settle_step(&self, spec: &TransientSpec) -> f64 {
        let has_lines = self
            .elements
            .iter()
            .any(|e| matches!(e, Element::CoupledLine { .. }));
        if spec.settle > 0.0 && !has_lines {
            (spec.settle / 256.0).max(spec.dt)
        } else {
            spec.dt
        }
    }

    /// Per-element flag: `true` for switch resistors whose drive genuinely
    /// varies with time. In partitioned mode only those join the rank-k
    /// update; constant (idle) switches are stamped at their actual
    /// conductance in the base matrix.
    fn active_switch_mask(&self) -> Vec<bool> {
        self.elements
            .iter()
            .map(|e| match e {
                Element::SwitchResistor { s, .. } => !s.is_constant(),
                _ => false,
            })
            .collect()
    }

    /// Stamps the MNA matrix for one integration rule and step size.
    ///
    /// `t = None` means "DC settle": switches at their initial state (or
    /// frozen at half conductance in partitioned mode, where `t = Some(_)`
    /// never reaches the switch arm).
    fn mna_matrix(
        &self,
        integ: Integration,
        t: Option<f64>,
        dt: f64,
        partitioned: bool,
        switch_active: &[bool],
    ) -> Matrix<f64> {
        let n = self.n_nodes;
        let dim = n + self.n_vsources;
        {
            let kk = k_int(integ);
            let mut a = Matrix::zeros(dim, dim);
            let stamp_g = |p: NodeId, q: NodeId, g: f64, a: &mut Matrix<f64>| {
                if p.0 > 0 {
                    a[(p.0 - 1, p.0 - 1)] += g;
                }
                if q.0 > 0 {
                    a[(q.0 - 1, q.0 - 1)] += g;
                }
                if p.0 > 0 && q.0 > 0 {
                    a[(p.0 - 1, q.0 - 1)] -= g;
                    a[(q.0 - 1, p.0 - 1)] -= g;
                }
            };
            for (ei, e) in self.elements.iter().enumerate() {
                match e {
                    Element::Resistor { a: p, b: q, ohms } => {
                        stamp_g(*p, *q, 1.0 / ohms, &mut a);
                    }
                    Element::Capacitor { a: p, b: q, farads } => {
                        stamp_g(*p, *q, kk * farads / dt, &mut a);
                    }
                    Element::Inductor {
                        a: p,
                        b: q,
                        henries,
                    } => {
                        stamp_g(*p, *q, dt / (kk * henries), &mut a);
                    }
                    Element::CoupledInductors {
                        a1,
                        b1,
                        a2,
                        b2,
                        l1,
                        l2,
                        m: lm,
                    } => {
                        // Geq = (dt/kk)·L⁻¹ for the 2×2 inductance matrix.
                        let det = l1 * l2 - lm * lm;
                        let s = dt / (kk * det);
                        let g11 = s * l2;
                        let g22 = s * l1;
                        let g12 = -s * lm;
                        stamp_g(*a1, *b1, g11, &mut a);
                        stamp_g(*a2, *b2, g22, &mut a);
                        // Cross conductance: i1 += g12·(v_a2 − v_b2), etc.
                        let cross = |p: NodeId,
                                     q: NodeId,
                                     r: NodeId,
                                     sn: NodeId,
                                     g: f64,
                                     a: &mut Matrix<f64>| {
                            // current g·(v_r − v_s) enters branch (p→q)
                            for (ni, sgn_i) in [(p, 1.0), (q, -1.0)] {
                                for (nj, sgn_j) in [(r, 1.0), (sn, -1.0)] {
                                    if ni.0 > 0 && nj.0 > 0 {
                                        a[(ni.0 - 1, nj.0 - 1)] += sgn_i * sgn_j * g;
                                    }
                                }
                            }
                        };
                        cross(*a1, *b1, *a2, *b2, g12, &mut a);
                        cross(*a2, *b2, *a1, *b1, g12, &mut a);
                    }
                    Element::SwitchResistor {
                        a: p,
                        b: q,
                        g_on,
                        s,
                        invert,
                    } => {
                        let g = if partitioned && switch_active[ei] {
                            // Frozen midpoint: corrections are Norton
                            // currents added per step.
                            0.5 * g_on
                        } else {
                            let sv = match t {
                                Some(t) => s.eval(t),
                                None => s.initial_value(),
                            }
                            .clamp(0.0, 1.0);
                            let frac = if *invert { 1.0 - sv } else { sv };
                            // Keep a tiny off conductance so the node never
                            // floats.
                            (g_on * frac).max(g_on * 1e-9)
                        };
                        stamp_g(*p, *q, g, &mut a);
                    }
                    Element::VSource {
                        plus, minus, index, ..
                    } => {
                        let row = n + index;
                        if plus.0 > 0 {
                            a[(plus.0 - 1, row)] += 1.0;
                            a[(row, plus.0 - 1)] += 1.0;
                        }
                        if minus.0 > 0 {
                            a[(minus.0 - 1, row)] -= 1.0;
                            a[(row, minus.0 - 1)] -= 1.0;
                        }
                    }
                    Element::ISource { .. } => {}
                    Element::ReducedOrder { nodes, model } => {
                        // Recursive-convolution companion admittance,
                        // ground-referenced at each port.
                        let g = model.companion_admittance(kk, dt);
                        for (i, p) in nodes.iter().enumerate() {
                            for (j, q) in nodes.iter().enumerate() {
                                if p.0 > 0 && q.0 > 0 {
                                    a[(p.0 - 1, q.0 - 1)] += g[(i, j)];
                                }
                            }
                        }
                    }
                    Element::CoupledLine { model, near, far } => {
                        let yc = model.characteristic_admittance();
                        let nc = model.conductor_count();
                        // Yc is a full admittance block referenced to ground
                        // at each end.
                        for (ends, _) in [(near, 0), (far, 1)] {
                            for i in 0..nc {
                                for j in 0..nc {
                                    let g = yc[(i, j)];
                                    let (p, q) = (ends[i], ends[j]);
                                    if p.0 > 0 && q.0 > 0 {
                                        a[(p.0 - 1, q.0 - 1)] += g;
                                    }
                                }
                            }
                        }
                    }
                }
            }
            a
        }
    }
}

/// The reusable, scenario-invariant preparation of a transient solve: the
/// factored MNA matrices for the settle and main phases, plus the
/// partitioned solver's Woodbury factors.
///
/// With a uniform time step and a linear network the MNA matrix does not
/// depend on source or switch *waveforms* — only on the element topology,
/// values, integration rule, and step sizes. A plan built once with
/// [`TransientPlan::new`] can therefore drive
/// [`Circuit::transient_with_plan`] on any circuit whose stamped matrices
/// are identical (e.g. co-simulation scenarios that differ only in
/// switching patterns or source levels), skipping the `O(n³)`
/// factorization. [`TransientPlan::matches`] is the exact compatibility
/// check: it re-stamps the matrices (`O(n²)`) and compares bit-for-bit, so
/// a reused plan yields results identical to a fresh
/// [`Circuit::transient`] run.
#[derive(Clone)]
pub struct TransientPlan {
    dt: f64,
    dt_settle: f64,
    integration: Integration,
    solver: SolverMode,
    dim: usize,
    settle_matrix: Matrix<f64>,
    /// `None` when the circuit is time-varying in monolithic mode (the
    /// matrix is rebuilt every step and nothing can be pre-factored).
    main_matrix: Option<Matrix<f64>>,
    settle_lu: LuDecomposition<f64>,
    main_lu: Option<LuDecomposition<f64>>,
    /// Active-switch terminals and on-conductances, in element order
    /// (partitioned mode only).
    switches: Vec<(NodeId, NodeId, f64)>,
    w_settle: Vec<Vec<f64>>,
    s0_settle: Matrix<f64>,
    w_main: Vec<Vec<f64>>,
    s0_main: Matrix<f64>,
}

impl TransientPlan {
    /// Builds (stamps and factors) the plan for a circuit and spec.
    ///
    /// # Errors
    ///
    /// Returns [`SimulateCircuitError::InvalidSpec`] for a bad spec and
    /// [`SimulateCircuitError::Singular`] when the MNA matrix cannot be
    /// factored (floating nodes, voltage-source loops).
    pub fn new(ckt: &Circuit, spec: &TransientSpec) -> Result<Self, SimulateCircuitError> {
        ckt.validate_transient_spec(spec)?;
        let dim = ckt.n_nodes + ckt.n_vsources;
        let partitioned = spec.solver == SolverMode::Partitioned;
        let switch_active = ckt.active_switch_mask();
        let dt_settle = ckt.settle_step(spec);
        let singular = |e: pdn_num::SolveMatrixError| SimulateCircuitError::Singular(e.to_string());
        let settle_matrix = ckt.mna_matrix(
            Integration::BackwardEuler,
            None,
            dt_settle,
            partitioned,
            &switch_active,
        );
        let settle_lu = LuDecomposition::new(settle_matrix.clone()).map_err(singular)?;
        let time_varying = ckt.has_time_varying_topology() && !partitioned;
        let (main_matrix, main_lu) = if time_varying {
            (None, None)
        } else {
            let a = ckt.mna_matrix(
                spec.integration,
                Some(0.0),
                spec.dt,
                partitioned,
                &switch_active,
            );
            let lu = LuDecomposition::new(a.clone()).map_err(singular)?;
            (Some(a), Some(lu))
        };

        // Partitioned mode: precompute the Woodbury factors. Each switch
        // between nodes (p, q) perturbs the constant matrix by
        // Δg·(e_p−e_q)(e_p−e_q)ᵀ. With U the n×k incidence of the
        // switches and W = A₀⁻¹U (computed once per phase matrix),
        //   x = z − W·(I + D·S₀)⁻¹·D·Uᵀz ,   S₀ = UᵀW, D = diag(Δg(t)).
        let (switches, w_settle, s0_settle, w_main, s0_main) = if partitioned {
            let switches: Vec<(NodeId, NodeId, f64)> = ckt.active_switch_terminals(&switch_active);
            let k = switches.len();
            let build_w = |lu: &LuDecomposition<f64>| -> Result<
                (Vec<Vec<f64>>, Matrix<f64>),
                SimulateCircuitError,
            > {
                let mut w = Vec::with_capacity(k);
                for (p, q, _) in &switches {
                    let mut u = vec![0.0; dim];
                    if p.0 > 0 {
                        u[p.0 - 1] += 1.0;
                    }
                    if q.0 > 0 {
                        u[q.0 - 1] -= 1.0;
                    }
                    w.push(
                        lu.solve(&u)
                            .map_err(|e| SimulateCircuitError::Singular(e.to_string()))?,
                    );
                }
                let s0 = Matrix::from_fn(k, k, |i, j| {
                    let (p, q, _) = switches[i];
                    let mut v = 0.0;
                    if p.0 > 0 {
                        v += w[j][p.0 - 1];
                    }
                    if q.0 > 0 {
                        v -= w[j][q.0 - 1];
                    }
                    v
                });
                Ok((w, s0))
            };
            let (w_settle, s0_settle) = build_w(&settle_lu)?;
            let main = main_lu
                .as_ref()
                .expect("constant matrix in partitioned mode");
            let (w_main, s0_main) = build_w(main)?;
            (switches, w_settle, s0_settle, w_main, s0_main)
        } else {
            (
                Vec::new(),
                Vec::new(),
                Matrix::zeros(0, 0),
                Vec::new(),
                Matrix::zeros(0, 0),
            )
        };

        Ok(TransientPlan {
            dt: spec.dt,
            dt_settle,
            integration: spec.integration,
            solver: spec.solver,
            dim,
            settle_matrix,
            main_matrix,
            settle_lu,
            main_lu,
            switches,
            w_settle,
            s0_settle,
            w_main,
            s0_main,
        })
    }

    /// `true` when this plan's factored matrices are exactly the ones a
    /// fresh [`TransientPlan::new`] would stamp for `(ckt, spec)` — i.e.
    /// reusing the plan is bit-identical to refactoring from scratch.
    ///
    /// Costs one `O(n²)` matrix re-stamp and compare, versus the `O(n³)`
    /// factorization it saves.
    pub fn matches(&self, ckt: &Circuit, spec: &TransientSpec) -> bool {
        if ckt.validate_transient_spec(spec).is_err() {
            return false;
        }
        let dim = ckt.n_nodes + ckt.n_vsources;
        if self.dim != dim
            || self.dt != spec.dt
            || self.integration != spec.integration
            || self.solver != spec.solver
            || self.dt_settle != ckt.settle_step(spec)
        {
            return false;
        }
        let partitioned = spec.solver == SolverMode::Partitioned;
        let switch_active = ckt.active_switch_mask();
        if partitioned && ckt.active_switch_terminals(&switch_active) != self.switches {
            return false;
        }
        if ckt.mna_matrix(
            Integration::BackwardEuler,
            None,
            self.dt_settle,
            partitioned,
            &switch_active,
        ) != self.settle_matrix
        {
            return false;
        }
        let time_varying = ckt.has_time_varying_topology() && !partitioned;
        match (&self.main_matrix, time_varying) {
            (None, true) => true,
            (Some(m), false) => {
                ckt.mna_matrix(
                    spec.integration,
                    Some(0.0),
                    spec.dt,
                    partitioned,
                    &switch_active,
                ) == *m
            }
            _ => false,
        }
    }

    /// MNA system dimension (nodes + voltage sources) the plan was built
    /// for.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

impl Circuit {
    /// Active-switch terminals `(p, q, g_on)` in element order.
    fn active_switch_terminals(&self, switch_active: &[bool]) -> Vec<(NodeId, NodeId, f64)> {
        self.elements
            .iter()
            .enumerate()
            .filter_map(|(ei, e)| match e {
                Element::SwitchResistor { a, b, g_on, .. } if switch_active[ei] => {
                    Some((*a, *b, *g_on))
                }
                _ => None,
            })
            .collect()
    }

    /// Runs a transient analysis.
    ///
    /// # Errors
    ///
    /// Returns [`SimulateCircuitError::InvalidSpec`] for a non-positive
    /// step/stop time or a step larger than the smallest transmission-line
    /// modal delay, and [`SimulateCircuitError::Singular`] when the MNA
    /// matrix cannot be factored (floating nodes, voltage-source loops).
    pub fn transient(&self, spec: &TransientSpec) -> Result<TransientResult, SimulateCircuitError> {
        let plan = TransientPlan::new(self, spec)?;
        self.run_transient(spec, &plan)
    }

    /// Runs a transient analysis reusing a previously built
    /// [`TransientPlan`], skipping the matrix factorization.
    ///
    /// The result is bit-identical to [`transient`](Circuit::transient):
    /// the plan is only accepted when [`TransientPlan::matches`] confirms
    /// its factored matrices are exactly the ones this circuit would stamp.
    ///
    /// # Errors
    ///
    /// Returns [`SimulateCircuitError::InvalidSpec`] when the plan was
    /// built for a different circuit structure or spec, plus everything
    /// [`transient`](Circuit::transient) can return.
    pub fn transient_with_plan(
        &self,
        spec: &TransientSpec,
        plan: &TransientPlan,
    ) -> Result<TransientResult, SimulateCircuitError> {
        if !plan.matches(self, spec) {
            return Err(SimulateCircuitError::InvalidSpec(
                "transient plan does not match this circuit/spec (different MNA structure)".into(),
            ));
        }
        self.run_transient(spec, plan)
    }

    /// The shared time-stepping loop behind [`transient`](Circuit::transient)
    /// and [`transient_with_plan`](Circuit::transient_with_plan). `plan`
    /// must satisfy `plan.matches(self, spec)`.
    fn run_transient(
        &self,
        spec: &TransientSpec,
        plan: &TransientPlan,
    ) -> Result<TransientResult, SimulateCircuitError> {
        let n = self.n_nodes;
        let m = self.n_vsources;
        let dim = n + m;
        // Snap rule for the timebase: the run always covers `t_stop`. The
        // last sample lands on the first grid point `n·dt ≥ t_stop`, with a
        // relative tolerance of 1e-9 so a commensurate `t_stop/dt` (up to
        // round-off) keeps exactly `t_stop/dt` steps instead of gaining a
        // spurious extra one. A `round()` here would silently simulate a
        // shorter duration whenever `t_stop` is not a multiple of `dt`.
        let n_steps = ((spec.t_stop / spec.dt) * (1.0 - 1e-9)).ceil().max(1.0) as usize;
        let dt_settle = plan.dt_settle;
        let n_settle = if spec.settle > 0.0 {
            (spec.settle / dt_settle).ceil() as usize
        } else {
            0
        };
        let partitioned = spec.solver == SolverMode::Partitioned;
        let switch_active = self.active_switch_mask();
        // Waveform parameters of the active switches, in the same element
        // order as `plan.switches` (incidence equality is checked by
        // `matches`; drives are deliberately *not* part of the plan so one
        // factorization serves every switching pattern).
        let switch_drives: Vec<(f64, &Waveform, bool)> = self
            .elements
            .iter()
            .enumerate()
            .filter_map(|(ei, e)| match e {
                Element::SwitchResistor {
                    g_on, s, invert, ..
                } if switch_active[ei] => Some((*g_on, s, *invert)),
                _ => None,
            })
            .collect();

        // --- Element states ------------------------------------------------
        struct CapState {
            i: f64,
            v: f64,
        }
        struct IndState {
            i: f64,
            v: f64,
        }
        struct CoupledIndState {
            i: [f64; 2],
            v: [f64; 2],
        }
        let mut cap_states: Vec<CapState> = Vec::new();
        let mut ind_states: Vec<IndState> = Vec::new();
        let mut cind_states: Vec<CoupledIndState> = Vec::new();
        let mut line_states: Vec<LineState> = Vec::new();
        let mut rom_states: Vec<pdn_num::RomTransientState> = Vec::new();
        for e in &self.elements {
            match e {
                Element::Capacitor { .. } => cap_states.push(CapState { i: 0.0, v: 0.0 }),
                Element::Inductor { .. } => ind_states.push(IndState { i: 0.0, v: 0.0 }),
                Element::CoupledInductors { .. } => cind_states.push(CoupledIndState {
                    i: [0.0; 2],
                    v: [0.0; 2],
                }),
                Element::ReducedOrder { model, .. } => rom_states.push(model.new_state()),
                Element::CoupledLine { model, .. } => {
                    let nc = model.conductor_count();
                    line_states.push(LineState {
                        near_hist: vec![Vec::new(); nc],
                        far_hist: vec![Vec::new(); nc],
                        delay_steps: model.delays().iter().map(|&t| t / spec.dt).collect(),
                    });
                }
                _ => {}
            }
        }

        // --- Results ------------------------------------------------------
        let mut times = Vec::with_capacity(n_steps + 1);
        let mut voltages = vec![Vec::with_capacity(n_steps + 1); n + 1];
        let mut source_currents = vec![Vec::with_capacity(n_steps + 1); m];
        let mut x = vec![0.0; dim];

        let total_steps = n_settle + n_steps + 1;
        for step in 0..total_steps {
            let settling = step < n_settle;
            let t = if settling {
                0.0
            } else {
                (step - n_settle) as f64 * spec.dt
            };
            let integ = if settling {
                Integration::BackwardEuler
            } else {
                spec.integration
            };
            let kk = k_int(integ);
            let dt_now = if settling { dt_settle } else { spec.dt };

            // Build RHS.
            let mut rhs = vec![0.0; dim];
            let add = |node: NodeId, i: f64, rhs: &mut Vec<f64>| {
                if node.0 > 0 {
                    rhs[node.0 - 1] += i;
                }
            };
            let mut ci = 0;
            let mut li = 0;
            let mut cli = 0;
            let mut lsi = 0;
            let mut ri = 0;
            for e in &self.elements {
                match e {
                    Element::Capacitor { a: p, b: q, farads } => {
                        let st = &cap_states[ci];
                        ci += 1;
                        let g = kk * farads / dt_now;
                        // Trapezoidal: i = g·v − (g·v_prev + i_prev);
                        // backward Euler: i = g·v − g·v_prev.
                        let hist = match integ {
                            Integration::Trapezoidal => g * st.v + st.i,
                            Integration::BackwardEuler => g * st.v,
                        };
                        add(*p, hist, &mut rhs);
                        add(*q, -hist, &mut rhs);
                    }
                    Element::Inductor {
                        a: p,
                        b: q,
                        henries,
                    } => {
                        let st = &ind_states[li];
                        li += 1;
                        let g = dt_now / (kk * henries);
                        // i = g·v + hist; hist_trap = i_prev + g·v_prev,
                        // hist_be = i_prev.
                        let hist = match integ {
                            Integration::Trapezoidal => st.i + g * st.v,
                            Integration::BackwardEuler => st.i,
                        };
                        add(*p, -hist, &mut rhs);
                        add(*q, hist, &mut rhs);
                    }
                    Element::CoupledInductors {
                        a1,
                        b1,
                        a2,
                        b2,
                        l1,
                        l2,
                        m: lm,
                    } => {
                        let st = &cind_states[cli];
                        cli += 1;
                        // hist = i_prev (+ Geq·v_prev for trapezoidal).
                        let det = l1 * l2 - lm * lm;
                        let s = dt_now / (kk * det);
                        let (g11, g22, g12) = (s * l2, s * l1, -s * lm);
                        let hist = match integ {
                            Integration::Trapezoidal => [
                                st.i[0] + g11 * st.v[0] + g12 * st.v[1],
                                st.i[1] + g12 * st.v[0] + g22 * st.v[1],
                            ],
                            Integration::BackwardEuler => st.i,
                        };
                        add(*a1, -hist[0], &mut rhs);
                        add(*b1, hist[0], &mut rhs);
                        add(*a2, -hist[1], &mut rhs);
                        add(*b2, hist[1], &mut rhs);
                    }
                    Element::VSource { wave, index, .. } => {
                        rhs[n + index] = if settling {
                            wave.initial_value()
                        } else {
                            wave.eval(t)
                        };
                    }
                    Element::ISource { from, to, wave } => {
                        let i = if settling {
                            wave.initial_value()
                        } else {
                            wave.eval(t)
                        };
                        add(*from, -i, &mut rhs);
                        add(*to, i, &mut rhs);
                    }
                    Element::CoupledLine { model, near, far } => {
                        let ls = &line_states[lsi];
                        lsi += 1;
                        let nc = model.conductor_count();
                        // Incoming modal waves from the opposite end.
                        let mut h_near = vec![0.0; nc];
                        let mut h_far = vec![0.0; nc];
                        for k in 0..nc {
                            h_near[k] = ls_incoming(&ls.far_hist, &ls.delay_steps, k, step);
                            h_far[k] = ls_incoming(&ls.near_hist, &ls.delay_steps, k, step);
                        }
                        // Norton history currents J = W · h.
                        let j_near = model.from_modal_current(&h_near);
                        let j_far = model.from_modal_current(&h_far);
                        for k in 0..nc {
                            add(near[k], j_near[k], &mut rhs);
                            add(far[k], j_far[k], &mut rhs);
                        }
                    }
                    Element::ReducedOrder { nodes, model } => {
                        let st = &rom_states[ri];
                        ri += 1;
                        // i⁺ = G·v⁺ + h, so the Norton history current −h
                        // enters the RHS at each port node.
                        let h = model.history_current(kk, dt_now, st);
                        for (k, nd) in nodes.iter().enumerate() {
                            add(*nd, -h[k], &mut rhs);
                        }
                    }
                    _ => {}
                }
            }

            // Solve.
            x = if partitioned {
                let (lu, w_cols, s0) = if settling {
                    (&plan.settle_lu, &plan.w_settle, &plan.s0_settle)
                } else {
                    (
                        plan.main_lu
                            .as_ref()
                            .expect("constant matrix in partitioned mode"),
                        &plan.w_main,
                        &plan.s0_main,
                    )
                };
                let z = lu
                    .solve(&rhs)
                    .map_err(|e| SimulateCircuitError::Singular(e.to_string()))?;
                let k = plan.switches.len();
                if k == 0 {
                    z
                } else {
                    // D = diag(g_actual(t) − g_frozen).
                    let mut d = vec![0.0; k];
                    for (idx, (g_on, s, invert)) in switch_drives.iter().enumerate() {
                        let sv = if settling {
                            s.initial_value()
                        } else {
                            s.eval(t)
                        }
                        .clamp(0.0, 1.0);
                        let frac = if *invert { 1.0 - sv } else { sv };
                        d[idx] = (g_on * frac).max(g_on * 1e-9) - 0.5 * g_on;
                    }
                    // Small system (I + D·S₀)·y = D·Uᵀz.
                    let m_small = Matrix::from_fn(k, k, |i, j| {
                        let delta = if i == j { 1.0 } else { 0.0 };
                        delta + d[i] * s0[(i, j)]
                    });
                    let mut rhs_small = vec![0.0; k];
                    for (idx, &(p, q, _)) in plan.switches.iter().enumerate() {
                        let mut v = 0.0;
                        if p.0 > 0 {
                            v += z[p.0 - 1];
                        }
                        if q.0 > 0 {
                            v -= z[q.0 - 1];
                        }
                        rhs_small[idx] = d[idx] * v;
                    }
                    let y = LuDecomposition::new(m_small)
                        .and_then(|lu| lu.solve(&rhs_small))
                        .map_err(|e| SimulateCircuitError::Singular(e.to_string()))?;
                    let mut sol = z;
                    for (col, &yk) in w_cols.iter().zip(&y) {
                        for (si, &wi) in sol.iter_mut().zip(col) {
                            *si -= wi * yk;
                        }
                    }
                    sol
                }
            } else if settling {
                plan.settle_lu
                    .solve(&rhs)
                    .map_err(|e| SimulateCircuitError::Singular(e.to_string()))?
            } else if let Some(lu) = &plan.main_lu {
                lu.solve(&rhs)
                    .map_err(|e| SimulateCircuitError::Singular(e.to_string()))?
            } else {
                let a = self.mna_matrix(integ, Some(t), dt_now, partitioned, &switch_active);
                LuDecomposition::new(a)
                    .and_then(|lu| lu.solve(&rhs))
                    .map_err(|e| SimulateCircuitError::Singular(e.to_string()))?
            };

            // Update element states.
            let volt = |node: NodeId, x: &[f64]| if node.0 > 0 { x[node.0 - 1] } else { 0.0 };
            let (mut ci, mut li, mut cli, mut lsi, mut ri) = (0, 0, 0, 0, 0);
            for e in &self.elements {
                match e {
                    Element::Capacitor { a: p, b: q, farads } => {
                        let g = kk * farads / dt_now;
                        let v = volt(*p, &x) - volt(*q, &x);
                        let st = &mut cap_states[ci];
                        ci += 1;
                        let i = match integ {
                            Integration::Trapezoidal => g * v - (g * st.v + st.i),
                            Integration::BackwardEuler => g * (v - st.v),
                        };
                        st.i = i;
                        st.v = v;
                    }
                    Element::Inductor {
                        a: p,
                        b: q,
                        henries,
                    } => {
                        let g = dt_now / (kk * henries);
                        let v = volt(*p, &x) - volt(*q, &x);
                        let st = &mut ind_states[li];
                        li += 1;
                        let i = match integ {
                            Integration::Trapezoidal => g * v + st.i + g * st.v,
                            Integration::BackwardEuler => g * v + st.i,
                        };
                        st.i = i;
                        st.v = v;
                    }
                    Element::CoupledInductors {
                        a1,
                        b1,
                        a2,
                        b2,
                        l1,
                        l2,
                        m: lm,
                    } => {
                        let det = l1 * l2 - lm * lm;
                        let s = dt_now / (kk * det);
                        let (g11, g22, g12) = (s * l2, s * l1, -s * lm);
                        let v1 = volt(*a1, &x) - volt(*b1, &x);
                        let v2 = volt(*a2, &x) - volt(*b2, &x);
                        let st = &mut cind_states[cli];
                        cli += 1;
                        let hist = match integ {
                            Integration::Trapezoidal => [
                                st.i[0] + g11 * st.v[0] + g12 * st.v[1],
                                st.i[1] + g12 * st.v[0] + g22 * st.v[1],
                            ],
                            Integration::BackwardEuler => st.i,
                        };
                        st.i = [g11 * v1 + g12 * v2 + hist[0], g12 * v1 + g22 * v2 + hist[1]];
                        st.v = [v1, v2];
                    }
                    Element::CoupledLine { model, near, far } => {
                        let ls = &mut line_states[lsi];
                        lsi += 1;
                        let nc = model.conductor_count();
                        let yc = model.characteristic_admittance();
                        // `from_far == true` means we are at the near end
                        // (its incoming wave was launched at the far end).
                        for (ends, from_far) in [(near, true), (far, false)] {
                            // Terminal voltages and currents into the line:
                            // I = Yc·V − J_hist (same J as used in the RHS).
                            let v: Vec<f64> = (0..nc).map(|k| volt(ends[k], &x)).collect();
                            let mut i = yc.matvec(&v);
                            let mut hin = vec![0.0; nc];
                            for (k, h) in hin.iter_mut().enumerate() {
                                *h = ls_incoming(
                                    if from_far {
                                        &ls.far_hist
                                    } else {
                                        &ls.near_hist
                                    },
                                    &ls.delay_steps,
                                    k,
                                    step,
                                );
                            }
                            let j = model.from_modal_current(&hin);
                            for k in 0..nc {
                                i[k] -= j[k];
                            }
                            // Outgoing wave launched at this end: v_m + i_m.
                            let vm = model.to_modal_voltage(&v);
                            let im = model.to_modal_current(&i);
                            let this_hist = if from_far {
                                &mut ls.near_hist
                            } else {
                                &mut ls.far_hist
                            };
                            for k in 0..nc {
                                this_hist[k].push(vm[k] + im[k]);
                            }
                        }
                    }
                    Element::ReducedOrder { nodes, model } => {
                        let st = &mut rom_states[ri];
                        ri += 1;
                        let v_new: Vec<f64> = nodes.iter().map(|&nd| volt(nd, &x)).collect();
                        model.advance_state(kk, dt_now, &v_new, st);
                    }
                    _ => {}
                }
            }

            // Record (skip the settle phase).
            if !settling {
                times.push(t);
                voltages[0].push(0.0);
                for k in 1..=n {
                    voltages[k].push(x[k - 1]);
                }
                for s in 0..m {
                    source_currents[s].push(x[n + s]);
                }
            }
        }

        Ok(TransientResult {
            times,
            voltages,
            source_currents,
        })
    }
}

/// Free-function version of [`LineState::incoming`] usable while the state
/// is mutably borrowed elsewhere.
fn ls_incoming(hist: &[Vec<f64>], delay_steps: &[f64], mode: usize, step: usize) -> f64 {
    let pos = step as f64 - delay_steps[mode];
    if pos < 0.0 {
        return 0.0;
    }
    let i0 = pos.floor() as usize;
    let frac = pos - i0 as f64;
    let a = hist[mode].get(i0).copied().unwrap_or(0.0);
    let b = hist[mode].get(i0 + 1).copied().unwrap_or(a);
    a + frac * (b - a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::Waveform;
    use crate::CoupledLineModel;
    use pdn_num::approx_eq;

    #[test]
    fn rc_step_response_matches_exponential() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.voltage_source(vin, Circuit::GND, Waveform::step(1.0, 0.0));
        ckt.resistor(vin, out, 1e3);
        ckt.capacitor(out, Circuit::GND, 1e-9);
        let tau = 1e-6;
        let res = ckt.transient(&TransientSpec::new(5e-6, 5e-9)).unwrap();
        for (&t, &v) in res.time().iter().zip(res.voltage(out)) {
            let expect = 1.0 - (-t / tau).exp();
            assert!((v - expect).abs() < 5e-3, "t={t}: {v} vs {expect}");
        }
    }

    #[test]
    fn lc_ringing_frequency() {
        // Series L, shunt C driven by a step through small R: ringing at
        // f = 1/(2π√(LC)) ≈ 5.033 MHz.
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let a = ckt.node("a");
        let out = ckt.node("out");
        ckt.voltage_source(vin, Circuit::GND, Waveform::step(1.0, 0.0));
        ckt.resistor(vin, a, 1.0);
        ckt.inductor(a, out, 1e-6);
        ckt.capacitor(out, Circuit::GND, 1e-9);
        let res = ckt.transient(&TransientSpec::new(2e-6, 0.5e-9)).unwrap();
        // Count mean distance between rising crossings of 1.0 V.
        let v = res.voltage(out);
        let t = res.time();
        let mut crossings = Vec::new();
        for i in 1..v.len() {
            if v[i - 1] < 1.0 && v[i] >= 1.0 {
                crossings.push(t[i]);
            }
        }
        assert!(crossings.len() >= 3, "expected ringing");
        let period = (crossings[crossings.len() - 1] - crossings[0]) / (crossings.len() - 1) as f64;
        let f = 1.0 / period;
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (1e-6_f64 * 1e-9).sqrt());
        assert!(approx_eq(f, f0, 0.02), "f = {f}, expect {f0}");
    }

    #[test]
    fn source_current_through_resistor() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let src = ckt.voltage_source(a, Circuit::GND, Waveform::dc(2.0));
        ckt.resistor(a, Circuit::GND, 100.0);
        let res = ckt.transient(&TransientSpec::new(1e-9, 1e-10)).unwrap();
        // Delivering 20 mA: MNA branch current is −0.02.
        let i = res.source_current(src).last().copied().unwrap();
        assert!(approx_eq(i, -0.02, 1e-9));
    }

    #[test]
    fn settle_reaches_dc_before_recording() {
        // RC charged by a DC source: with settle, the recording starts at
        // the steady state.
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.voltage_source(vin, Circuit::GND, Waveform::dc(3.3));
        ckt.resistor(vin, out, 10.0);
        ckt.capacitor(out, Circuit::GND, 1e-9);
        let spec = TransientSpec::new(100e-9, 0.1e-9).with_settle(500e-9);
        let res = ckt.transient(&spec).unwrap();
        assert!((res.voltage(out)[0] - 3.3).abs() < 1e-3);
        assert!(res.peak_excursion(out) < 1e-3);
    }

    #[test]
    fn backward_euler_damps_trapezoidal_rings() {
        let build = || {
            let mut ckt = Circuit::new();
            let vin = ckt.node("in");
            let a = ckt.node("a");
            let out = ckt.node("out");
            ckt.voltage_source(vin, Circuit::GND, Waveform::step(1.0, 0.0));
            ckt.resistor(vin, a, 0.5);
            ckt.inductor(a, out, 1e-6);
            ckt.capacitor(out, Circuit::GND, 1e-9);
            ckt
        };
        let trap = build().transient(&TransientSpec::new(4e-6, 1e-9)).unwrap();
        let be = build()
            .transient(&TransientSpec::new(4e-6, 1e-9).with_integration(Integration::BackwardEuler))
            .unwrap();
        let peak_trap = trap
            .voltage(NodeId(3))
            .iter()
            .fold(0.0f64, |m, &v| m.max(v));
        let peak_be = be.voltage(NodeId(3)).iter().fold(0.0f64, |m, &v| m.max(v));
        assert!(peak_trap > 1.5, "trapezoidal preserves overshoot");
        assert!(peak_be < peak_trap, "BE numerically damps");
    }

    #[test]
    fn cmos_driver_swings_rail_to_rail() {
        let mut ckt = Circuit::new();
        let vcc = ckt.node("vcc");
        let out = ckt.node("out");
        ckt.voltage_source(vcc, Circuit::GND, Waveform::dc(3.3));
        ckt.cmos_driver(
            out,
            vcc,
            Circuit::GND,
            10.0,
            Waveform::pulse(0.0, 1.0, 1e-9, 0.3e-9, 0.3e-9, 3e-9),
        );
        ckt.capacitor(out, Circuit::GND, 5e-12);
        let res = ckt
            .transient(&TransientSpec::new(8e-9, 0.01e-9).with_settle(2e-9))
            .unwrap();
        let v = res.voltage(out);
        let t = res.time();
        // Starts low, goes high after the rise, returns low.
        assert!(v[0] < 0.1);
        let idx_high = t.iter().position(|&tt| tt > 3e-9).unwrap();
        assert!((v[idx_high] - 3.3).abs() < 0.05, "v_high = {}", v[idx_high]);
        assert!(v.last().unwrap() < &0.1);
    }

    #[test]
    fn matched_single_line_delays_pulse() {
        // 50 Ω line, 1 ns delay, matched at both ends: far end sees the
        // half-amplitude pulse delayed by exactly τ.
        let z0 = 50.0;
        let v = 2e8;
        let len = 0.2; // τ = 1 ns
        let l = Matrix::from_rows(&[&[z0 / v]]);
        let c = Matrix::from_rows(&[&[1.0 / (z0 * v)]]);
        let model = CoupledLineModel::new(l, c, len).unwrap();
        let mut ckt = Circuit::new();
        let src = ckt.node("src");
        let near = ckt.node("near");
        let far = ckt.node("far");
        ckt.voltage_source(
            src,
            Circuit::GND,
            Waveform::pulse(0.0, 1.0, 0.5e-9, 0.1e-9, 0.1e-9, 2e-9),
        );
        ckt.resistor(src, near, z0);
        ckt.coupled_line(model, vec![near], vec![far]);
        ckt.resistor(far, Circuit::GND, z0);
        let res = ckt.transient(&TransientSpec::new(6e-9, 0.01e-9)).unwrap();
        let t = res.time();
        let vf = res.voltage(far);
        // Before τ + delay: nothing at the far end.
        let idx_before = t.iter().position(|&tt| tt > 1.3e-9).unwrap();
        assert!(vf[idx_before].abs() < 1e-3);
        // After arrival: half amplitude (divider) transmitted fully.
        let idx_after = t.iter().position(|&tt| tt > 2.2e-9).unwrap();
        assert!((vf[idx_after] - 0.5).abs() < 0.02, "vf = {}", vf[idx_after]);
        // Matched: no reflection → near end flat at 0.5 during the pulse.
        let vn = res.voltage(near);
        assert!((vn[idx_after] - 0.5).abs() < 0.02);
    }

    #[test]
    fn open_line_doubles_voltage() {
        let z0 = 50.0;
        let v = 2e8;
        let model = CoupledLineModel::new(
            Matrix::from_rows(&[&[z0 / v]]),
            Matrix::from_rows(&[&[1.0 / (z0 * v)]]),
            0.2,
        )
        .unwrap();
        let mut ckt = Circuit::new();
        let src = ckt.node("src");
        let near = ckt.node("near");
        let far = ckt.node("far");
        ckt.voltage_source(src, Circuit::GND, Waveform::step(1.0, 0.2e-9));
        ckt.resistor(src, near, z0);
        ckt.coupled_line(model, vec![near], vec![far]);
        ckt.resistor(far, Circuit::GND, 1e9); // effectively open
        let res = ckt.transient(&TransientSpec::new(8e-9, 0.01e-9)).unwrap();
        let t = res.time();
        let vf = res.voltage(far);
        let idx = t.iter().position(|&tt| tt > 2.5e-9).unwrap();
        assert!(
            (vf[idx] - 1.0).abs() < 0.02,
            "open end doubles: {}",
            vf[idx]
        );
    }

    #[test]
    fn dt_larger_than_line_delay_rejected() {
        let model = CoupledLineModel::new(
            Matrix::from_rows(&[&[2.5e-7]]),
            Matrix::from_rows(&[&[1e-10]]),
            0.01,
        )
        .unwrap();
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.resistor(a, Circuit::GND, 50.0);
        ckt.resistor(b, Circuit::GND, 50.0);
        ckt.coupled_line(model, vec![a], vec![b]);
        let err = ckt.transient(&TransientSpec::new(1e-6, 1e-8)).unwrap_err();
        assert!(matches!(err, SimulateCircuitError::InvalidSpec(_)));
    }

    #[test]
    fn invalid_spec_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.resistor(a, Circuit::GND, 1.0);
        assert!(ckt.transient(&TransientSpec::new(0.0, 1e-9)).is_err());
        assert!(ckt.transient(&TransientSpec::new(1e-9, 0.0)).is_err());
        assert!(ckt
            .transient(&TransientSpec::new(f64::INFINITY, 1e-9))
            .is_err());
        assert!(ckt.transient(&TransientSpec::new(1e-9, f64::NAN)).is_err());
    }

    #[test]
    fn non_finite_or_negative_settle_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.resistor(a, Circuit::GND, 1.0);
        for settle in [-1e-9, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = ckt
                .transient(&TransientSpec::new(1e-9, 1e-10).with_settle(settle))
                .unwrap_err();
            match err {
                SimulateCircuitError::InvalidSpec(msg) => {
                    assert!(msg.contains("settle"), "message: {msg}");
                }
                other => panic!("expected InvalidSpec, got {other:?}"),
            }
        }
        // Zero settle stays valid (the documented "no pre-roll" value).
        assert!(ckt
            .transient(&TransientSpec::new(1e-9, 1e-10).with_settle(0.0))
            .is_ok());
    }

    #[test]
    fn non_commensurate_t_stop_still_covers_duration() {
        // t_stop/dt = 3333.33…: round() used to truncate the run to
        // 3333 steps (t_last < t_stop). The snap rule must extend to the
        // first grid point ≥ t_stop.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.voltage_source(a, Circuit::GND, Waveform::dc(1.0));
        ckt.resistor(a, Circuit::GND, 1.0);
        let (t_stop, dt) = (1e-6, 3e-10);
        let res = ckt.transient(&TransientSpec::new(t_stop, dt)).unwrap();
        let t_last = *res.time().last().unwrap();
        assert!(
            t_last >= t_stop && t_last < t_stop + dt,
            "t_last = {t_last:e}, t_stop = {t_stop:e}"
        );
        assert_eq!(res.len(), 3335); // 3334 steps + the t = 0 sample

        // Commensurate spec: exactly t_stop/dt steps, last sample at
        // t_stop (even when t_stop/dt is not representable exactly).
        let res = ckt.transient(&TransientSpec::new(1e-6, 1e-9)).unwrap();
        assert_eq!(res.len(), 1001);
        let t_last = *res.time().last().unwrap();
        assert!((t_last - 1e-6).abs() < 1e-15, "t_last = {t_last:e}");
    }

    #[test]
    fn floating_node_is_singular() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.resistor(a, Circuit::GND, 1.0);
        let _ = b; // b floats with a capacitor chain to nothing
        ckt.current_source(Circuit::GND, b, Waveform::dc(1e-3));
        let err = ckt.transient(&TransientSpec::new(1e-9, 1e-10)).unwrap_err();
        assert!(matches!(err, SimulateCircuitError::Singular(_)));
    }
}

#[cfg(test)]
mod reduced_order_tests {
    use super::*;
    use crate::waveform::Waveform;
    use pdn_num::rational::{sweep, SweepAccuracy};
    use pdn_num::{c64, Matrix, PoleResidueModel, PromOptions};
    use std::sync::Arc;

    /// One-port Y(s) = G + sC + 1/(R₂ + sL): a conductance and capacitor
    /// to ground in parallel with a series-RL branch — exactly realizable
    /// with circuit primitives, so the macromodel path can be compared
    /// against explicit stamping.
    fn analytic_y(g: f64, c: f64, r2: f64, l: f64, f: f64) -> Matrix<c64> {
        let s = c64::from_im(2.0 * std::f64::consts::PI * f);
        Matrix::from_fn(1, 1, |_, _| {
            c64::from_re(g) + s * c + (s * l + c64::from_re(r2)).recip()
        })
    }

    fn rom_from_rlc(g: f64, c: f64, r2: f64, l: f64) -> Arc<PoleResidueModel> {
        let grid: Vec<f64> = (0..50)
            .map(|k| 1e6 * (5e9f64 / 1e6).powf(k as f64 / 49.0))
            .collect();
        let outcome = sweep(
            "circuit.rom_test",
            &grid,
            SweepAccuracy::Rational { rel_tol: 1e-8 },
            |f| Ok::<_, std::convert::Infallible>(analytic_y(g, c, r2, l, f)),
        )
        .unwrap();
        let model = outcome.model.expect("rational fit certified");
        let holdout: Vec<f64> = (0..6)
            .map(|k| (grid[6 * k] * grid[6 * k + 1]).sqrt())
            .collect();
        let holdout_values: Vec<Matrix<c64>> = holdout
            .iter()
            .map(|&f| analytic_y(g, c, r2, l, f))
            .collect();
        Arc::new(
            PoleResidueModel::from_rational(
                "circuit.rom_test",
                &model,
                &grid,
                &outcome.values,
                &holdout,
                &holdout_values,
                &PromOptions { cert_tol: 1e-4 },
            )
            .unwrap(),
        )
    }

    #[test]
    fn reduced_order_ac_stamp_matches_model_evaluate() {
        let rom = rom_from_rlc(2e-3, 1e-12, 1.0, 1e-9);
        let mut ckt = Circuit::new();
        let p = ckt.node("p");
        ckt.reduced_order_block(&[p], rom.clone());
        for f in [1e7, 1.37e8, 2.9e9] {
            let z = ckt.impedance_matrix(f, &[p]).unwrap();
            let expect = rom.evaluate(f)[(0, 0)].recip();
            let rel = (z[(0, 0)] - expect).norm() / expect.norm();
            assert!(rel < 1e-9, "f = {f:e}: rel {rel:.3e}");
        }
    }

    /// Transient of the macromodel against the explicit RLC realization.
    /// Trapezoidal companion stamps and recursive convolution are both
    /// exact bilinear transforms of the same Y(s), so the two waveforms
    /// agree to the (tiny) rational-fit error.
    #[test]
    fn reduced_order_transient_matches_explicit_network() {
        let (g, c, r2, l) = (2e-3, 1e-12, 1.0, 1e-9);
        let drive = Waveform::pulse(0.0, 0.05, 1e-9, 0.2e-9, 0.2e-9, 4e-9);

        let mut full = Circuit::new();
        let out = full.node("out");
        let mid = full.node("mid");
        full.current_source(Circuit::GND, out, drive.clone());
        full.resistor(out, Circuit::GND, 1.0 / g);
        full.capacitor(out, Circuit::GND, c);
        full.resistor(out, mid, r2);
        full.inductor(mid, Circuit::GND, l);

        let mut red = Circuit::new();
        let rout = red.node("out");
        red.current_source(Circuit::GND, rout, drive);
        red.reduced_order_block(&[rout], rom_from_rlc(g, c, r2, l));

        let spec = TransientSpec::new(10e-9, 2e-12);
        let vf = full.transient(&spec).unwrap();
        let vr = red.transient(&spec).unwrap();
        let a = vf.voltage(out);
        let b = vr.voltage(rout);
        assert_eq!(a.len(), b.len());
        let peak = a.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(peak > 1e-3, "drive produced no response");
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() < 1e-4 * peak,
                "step {i}: full {x:e} vs reduced {y:e} (peak {peak:e})"
            );
        }
    }
}

#[cfg(test)]
mod coupled_inductor_tests {
    use super::*;
    use crate::waveform::Waveform;
    use pdn_num::approx_eq;

    /// Transformer with k near 1 driven through a source resistor: the
    /// secondary open-circuit voltage approaches the turns-ratio times the
    /// primary voltage.
    #[test]
    fn transformer_voltage_ratio() {
        let turns = 2.0; // n = √(L2/L1)
        let (l1, l2) = (1e-6, turns * turns * 1e-6);
        let mut ckt = Circuit::new();
        let src = ckt.node("src");
        let p = ckt.node("p");
        let s = ckt.node("s");
        ckt.voltage_source(
            src,
            Circuit::GND,
            Waveform::Sine {
                offset: 0.0,
                amplitude: 1.0,
                frequency: 10e6,
                delay: 0.0,
            },
        );
        ckt.resistor(src, p, 1.0);
        ckt.coupled_inductors(p, Circuit::GND, s, Circuit::GND, l1, l2, 0.9999);
        ckt.resistor(s, Circuit::GND, 1e6); // light load
        let res = ckt.transient(&TransientSpec::new(1e-6, 0.2e-9)).unwrap();
        // After start-up, compare amplitude over the last half.
        let half = res.len() / 2;
        let vp = res.voltage(p)[half..]
            .iter()
            .fold(0.0f64, |m, &v| m.max(v.abs()));
        let vs = res.voltage(s)[half..]
            .iter()
            .fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(
            approx_eq(vs / vp, turns, 0.05),
            "voltage ratio {:.3} vs turns {turns}",
            vs / vp
        );
    }

    /// With zero coupling the two windings behave as independent
    /// inductors.
    #[test]
    fn uncoupled_windings_are_independent() {
        let build = |coupled: bool| {
            let mut ckt = Circuit::new();
            let a = ckt.node("a");
            let b = ckt.node("b");
            ckt.voltage_source(a, Circuit::GND, Waveform::step(1.0, 0.0));
            if coupled {
                ckt.coupled_inductors(a, Circuit::GND, b, Circuit::GND, 1e-6, 1e-6, 1e-9);
            } else {
                ckt.inductor(a, Circuit::GND, 1e-6);
                ckt.inductor(b, Circuit::GND, 1e-6);
            }
            ckt.resistor(b, Circuit::GND, 50.0);
            let res = ckt.transient(&TransientSpec::new(100e-9, 0.1e-9)).unwrap();
            res.voltage(b).last().copied().unwrap()
        };
        let vb_coupled = build(true);
        let vb_plain = build(false);
        assert!(
            (vb_coupled - vb_plain).abs() < 1e-6,
            "{vb_coupled} vs {vb_plain}"
        );
    }

    /// AC: the open-circuit transfer of a coupled pair equals M/L1.
    #[test]
    fn ac_mutual_transfer_ratio() {
        let (l1, l2, k) = (2e-6, 8e-6, 0.5);
        let mut ckt = Circuit::new();
        let src = ckt.node("src");
        let p = ckt.node("p");
        let s = ckt.node("s");
        let drive = ckt.voltage_source(src, Circuit::GND, Waveform::dc(0.0));
        ckt.resistor(src, p, 1e-3);
        ckt.coupled_inductors(p, Circuit::GND, s, Circuit::GND, l1, l2, k);
        ckt.resistor(s, Circuit::GND, 1e9);
        let sweep = crate::AcSweep::linear(1e6, 1e6 + 1.0, 2);
        let res = ckt.ac(&sweep, drive).unwrap();
        let ratio = (res.voltage(0, s) / res.voltage(0, p)).norm();
        let m = k * (l1 * l2).sqrt();
        assert!(
            approx_eq(ratio, m / l1, 1e-3),
            "transfer {ratio:.4} vs M/L1 = {:.4}",
            m / l1
        );
    }

    /// Energy pumped into a shorted coupled pair stays bounded (passive).
    #[test]
    fn coupled_pair_transient_stable() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.voltage_source(
            a,
            Circuit::GND,
            Waveform::pulse(0.0, 1.0, 0.0, 1e-9, 1e-9, 5e-9),
        );
        ckt.coupled_inductors(a, Circuit::GND, b, Circuit::GND, 1e-7, 1e-7, 0.95);
        ckt.resistor(b, Circuit::GND, 10.0);
        ckt.capacitor(b, Circuit::GND, 1e-12);
        let res = ckt.transient(&TransientSpec::new(100e-9, 0.05e-9)).unwrap();
        let vmax = res.voltage(b).iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(vmax < 5.0, "bounded: {vmax}");
    }

    /// Coupling factor at the passivity bound is rejected.
    #[test]
    #[should_panic(expected = "coupling factor")]
    fn unity_coupling_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.coupled_inductors(a, Circuit::GND, b, Circuit::GND, 1e-6, 1e-6, 1.0);
    }
}

#[cfg(test)]
mod partitioned_tests {
    use super::*;
    use crate::waveform::Waveform;

    fn driver_circuit() -> Circuit {
        let mut ckt = Circuit::new();
        let vcc = ckt.node("vcc");
        let out = ckt.node("out");
        ckt.voltage_source(vcc, Circuit::GND, Waveform::dc(3.3));
        // A little supply impedance so the rail actually bounces.
        let rail = ckt.node("rail");
        ckt.resistor(vcc, rail, 0.2);
        ckt.inductor(rail, ckt.find_node("vcc").unwrap(), 1e-12); // keep rail defined
        ckt.cmos_driver(
            out,
            rail,
            Circuit::GND,
            12.0,
            Waveform::pulse(0.0, 1.0, 1e-9, 0.5e-9, 0.5e-9, 3e-9),
        );
        ckt.capacitor(out, Circuit::GND, 10e-12);
        ckt
    }

    #[test]
    fn partitioned_matches_monolithic() {
        let ckt = driver_circuit();
        let dt = 0.01e-9;
        let mono = ckt
            .transient(&TransientSpec::new(8e-9, dt).with_settle(2e-9))
            .unwrap();
        let part = ckt
            .transient(
                &TransientSpec::new(8e-9, dt)
                    .with_settle(2e-9)
                    .with_partitioned_solver(),
            )
            .unwrap();
        let out = ckt.find_node("out").unwrap();
        let mut max_diff = 0.0f64;
        for (a, b) in mono.voltage(out).iter().zip(part.voltage(out)) {
            max_diff = max_diff.max((a - b).abs());
        }
        assert!(
            max_diff < 0.02,
            "partitioned tracks monolithic: max diff {max_diff}"
        );
    }

    #[test]
    fn partitioned_swings_rail_to_rail() {
        let ckt = driver_circuit();
        let res = ckt
            .transient(
                &TransientSpec::new(8e-9, 0.01e-9)
                    .with_settle(2e-9)
                    .with_partitioned_solver(),
            )
            .unwrap();
        let out = ckt.find_node("out").unwrap();
        let v = res.voltage(out);
        let vmax = v.iter().fold(0.0f64, |m, &x| m.max(x));
        let vend = *v.last().unwrap();
        assert!(vmax > 3.0, "reaches the rail: {vmax}");
        assert!(vend < 0.2, "returns low: {vend}");
    }

    #[test]
    fn partitioned_without_switches_is_plain_fast_path() {
        // No switch resistors: both modes are literally the same constant
        // matrix; results must be bit-comparable.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.voltage_source(a, Circuit::GND, Waveform::step(1.0, 0.0));
        ckt.resistor(a, b, 10.0);
        ckt.capacitor(b, Circuit::GND, 1e-12);
        let mono = ckt.transient(&TransientSpec::new(1e-9, 1e-12)).unwrap();
        let part = ckt
            .transient(&TransientSpec::new(1e-9, 1e-12).with_partitioned_solver())
            .unwrap();
        for (x, y) in mono.voltage(b).iter().zip(part.voltage(b)) {
            assert!((x - y).abs() < 1e-12);
        }
    }
}

impl Circuit {
    /// Computes the DC operating point: capacitors open, inductors
    /// shorted, switch resistors and sources at their initial (`t = 0⁻`)
    /// values.
    ///
    /// Internally this runs the giant-step backward-Euler settle used by
    /// [`transient`](Circuit::transient), which converges to the DC
    /// solution at fixed cost regardless of the circuit's time constants.
    /// Returns one voltage per node id (index 0 is ground).
    ///
    /// # Errors
    ///
    /// Returns [`SimulateCircuitError::Singular`] when the DC system has
    /// no unique solution (floating nodes, source loops).
    ///
    /// # Examples
    ///
    /// ```
    /// use pdn_circuit::{Circuit, Waveform};
    ///
    /// # fn main() -> Result<(), pdn_circuit::SimulateCircuitError> {
    /// let mut ckt = Circuit::new();
    /// let a = ckt.node("a");
    /// let b = ckt.node("b");
    /// ckt.voltage_source(a, Circuit::GND, Waveform::dc(10.0));
    /// ckt.resistor(a, b, 6.0);
    /// ckt.resistor(b, Circuit::GND, 4.0);
    /// let op = ckt.dc_operating_point()?;
    /// assert!((op[b.index()] - 4.0).abs() < 1e-6); // divider
    /// # Ok(())
    /// # }
    /// ```
    pub fn dc_operating_point(&self) -> Result<Vec<f64>, SimulateCircuitError> {
        let min_delay = self
            .elements
            .iter()
            .filter_map(|e| match e {
                Element::CoupledLine { model, .. } => model
                    .delays()
                    .iter()
                    .fold(None::<f64>, |a, &b| Some(a.map_or(b, |x| x.min(b)))),
                _ => None,
            })
            .fold(f64::INFINITY, f64::min);
        let (dt, settle) = if min_delay.is_finite() {
            // Lines pin the settle step to dt; give the settle enough
            // round trips to reach steady state.
            let dt = min_delay / 4.0;
            (dt, 4000.0 * dt)
        } else {
            (1e-9, 1.0)
        };
        let spec = TransientSpec::new(dt, dt).with_settle(settle);
        let res = self.transient(&spec)?;
        let mut out = Vec::with_capacity(self.n_nodes + 1);
        for k in 0..=self.n_nodes {
            out.push(res.voltage(NodeId(k)).first().copied().unwrap_or(0.0));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod dc_tests {
    use super::*;
    use crate::waveform::Waveform;

    #[test]
    fn resistor_divider() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.voltage_source(a, Circuit::GND, Waveform::dc(10.0));
        ckt.resistor(a, b, 6.0);
        ckt.resistor(b, Circuit::GND, 4.0);
        let op = ckt.dc_operating_point().unwrap();
        assert!((op[b.index()] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn inductors_short_capacitors_open() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let c = ckt.node("c");
        ckt.voltage_source(a, Circuit::GND, Waveform::dc(5.0));
        ckt.inductor(a, b, 1e-6); // DC short: b = 5 V
        ckt.capacitor(b, Circuit::GND, 1e-9);
        ckt.resistor(b, c, 1e3);
        ckt.capacitor(c, Circuit::GND, 1e-9); // no DC path onward: c = b
        ckt.resistor(c, Circuit::GND, 1e9); // keep c weakly grounded
        let op = ckt.dc_operating_point().unwrap();
        assert!((op[b.index()] - 5.0).abs() < 1e-4, "b = {}", op[b.index()]);
        assert!((op[c.index()] - 5.0).abs() < 1e-2, "c = {}", op[c.index()]);
    }

    #[test]
    fn driver_initial_state_pulls_low() {
        let mut ckt = Circuit::new();
        let vcc = ckt.node("vcc");
        let out = ckt.node("out");
        ckt.voltage_source(vcc, Circuit::GND, Waveform::dc(3.3));
        ckt.cmos_driver(
            out,
            vcc,
            Circuit::GND,
            10.0,
            Waveform::pulse(0.0, 1.0, 5e-9, 1e-9, 1e-9, 5e-9),
        );
        let op = ckt.dc_operating_point().unwrap();
        assert!(
            op[out.index()] < 0.01,
            "output idles low: {}",
            op[out.index()]
        );
    }

    #[test]
    fn matched_line_passes_dc() {
        let z0 = 50.0;
        let v = 2e8;
        let model = crate::CoupledLineModel::new(
            Matrix::from_rows(&[&[z0 / v]]),
            Matrix::from_rows(&[&[1.0 / (z0 * v)]]),
            0.1,
        )
        .unwrap();
        let mut ckt = Circuit::new();
        let src = ckt.node("src");
        let near = ckt.node("near");
        let far = ckt.node("far");
        ckt.voltage_source(src, Circuit::GND, Waveform::dc(2.0));
        ckt.resistor(src, near, z0);
        ckt.coupled_line(model, vec![near], vec![far]);
        ckt.resistor(far, Circuit::GND, z0);
        let op = ckt.dc_operating_point().unwrap();
        // DC divider: the line is transparent, far = 2·z0/(2·z0) ... the
        // load divides with the source resistance: 1.0 V at both ends.
        assert!(
            (op[near.index()] - 1.0).abs() < 1e-3,
            "near {}",
            op[near.index()]
        );
        assert!(
            (op[far.index()] - 1.0).abs() < 1e-3,
            "far {}",
            op[far.index()]
        );
    }
}
