#![warn(missing_docs)]
//! Offline, std-only shim of the small `proptest` API surface this
//! workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! `proptest` crate cannot be vendored. This shim keeps the property-based
//! test sources unchanged: it provides the [`proptest!`] macro, range and
//! [`any`] strategies, `prop_assert*` macros, and [`ProptestConfig`], all
//! backed by a deterministic splitmix64 generator seeded from the test
//! name. Unlike the real proptest there is no shrinking — a failing case
//! panics with the sampled inputs so it can be reproduced (the stream is
//! deterministic per test).

use std::ops::Range;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic splitmix64 stream used to sample strategy values.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a test's fully qualified name so every test
    /// sees a distinct but reproducible sequence.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name gives a stable non-zero seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of random values for one test-parameter position.
pub trait Strategy {
    /// The sampled value type.
    type Value;
    /// Draws one value from the deterministic stream.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

/// Types with a whole-domain default strategy (see [`any`]).
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy adapter returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The whole-domain strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Everything the test sources import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
    };
}

/// Asserts a property holds for the current case (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two expressions are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` item
/// becomes a `#[test]` that samples its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range strategies stay inside their bounds.
        #[test]
        fn ranges_in_bounds(n in 2usize..25, x in -1.5f64..2.5, seed in any::<u64>()) {
            prop_assert!((2..25).contains(&n));
            prop_assert!((-1.5..2.5).contains(&x));
            let _ = seed;
        }
    }

    #[test]
    fn stream_is_deterministic() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        for _ in 0..100 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = crate::TestRng::for_test("y");
        prop_assert!(c.next_u64() != crate::TestRng::for_test("x").next_u64());
    }
}
