//! The [`Scalar`] abstraction shared by the dense linear-algebra kernels.
//!
//! `Scalar` is implemented for `f64` and [`crate::c64`] so that the LU
//! factorization and matrix containers can be written once and used for both
//! the real quasi-static extraction path and the complex frequency-domain
//! (AC / S-parameter) path.

use crate::c64;
use std::fmt::{Debug, Display};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A field element usable by the dense kernels (`f64` or [`c64`]).
///
/// The trait is sealed in spirit: it exists for the two concrete types this
/// toolkit needs and is not intended as a general numeric tower.
///
/// # Examples
///
/// ```
/// use pdn_num::Scalar;
///
/// fn trace<T: Scalar>(diag: &[T]) -> T {
///     diag.iter().fold(T::zero(), |acc, &x| acc + x)
/// }
/// assert_eq!(trace(&[1.0_f64, 2.0, 3.0]), 6.0);
/// ```
pub trait Scalar:
    Copy
    + Debug
    + Display
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Send
    + Sync
    + 'static
{
    /// The additive identity.
    fn zero() -> Self;
    /// The multiplicative identity.
    fn one() -> Self;
    /// Embeds an `f64` (as a real value).
    fn from_f64(x: f64) -> Self;
    /// Magnitude used for pivot selection.
    fn abs(self) -> f64;
    /// Complex conjugate (identity for reals).
    fn conj(self) -> Self;
    /// Real part.
    fn real(self) -> f64;
    /// `true` when every component is finite.
    fn is_finite(self) -> bool;
}

impl Scalar for f64 {
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline]
    fn abs(self) -> f64 {
        f64::abs(self)
    }
    #[inline]
    fn conj(self) -> Self {
        self
    }
    #[inline]
    fn real(self) -> f64 {
        self
    }
    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
}

impl Scalar for c64 {
    #[inline]
    fn zero() -> Self {
        c64::ZERO
    }
    #[inline]
    fn one() -> Self {
        c64::ONE
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        c64::from_re(x)
    }
    #[inline]
    fn abs(self) -> f64 {
        self.norm()
    }
    #[inline]
    fn conj(self) -> Self {
        c64::conj(self)
    }
    #[inline]
    fn real(self) -> f64 {
        self.re
    }
    #[inline]
    fn is_finite(self) -> bool {
        c64::is_finite(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_sum<T: Scalar>(xs: &[T]) -> T {
        xs.iter().fold(T::zero(), |a, &b| a + b)
    }

    #[test]
    fn works_for_f64_and_c64() {
        assert_eq!(generic_sum(&[1.0, 2.0, 3.0]), 6.0);
        let s = generic_sum(&[c64::new(1.0, 1.0), c64::new(2.0, -3.0)]);
        assert_eq!(s, c64::new(3.0, -2.0));
    }

    #[test]
    fn abs_and_conj() {
        assert_eq!(Scalar::abs(-3.0_f64), 3.0);
        assert_eq!(Scalar::conj(-3.0_f64), -3.0);
        assert_eq!(Scalar::abs(c64::new(3.0, 4.0)), 5.0);
        assert_eq!(Scalar::conj(c64::new(3.0, 4.0)), c64::new(3.0, -4.0));
    }

    #[test]
    fn from_f64_embeds_reals() {
        assert_eq!(<c64 as Scalar>::from_f64(2.5), c64::new(2.5, 0.0));
        assert_eq!(<f64 as Scalar>::from_f64(2.5), 2.5);
        assert_eq!(<c64 as Scalar>::from_f64(2.5).real(), 2.5);
    }
}
