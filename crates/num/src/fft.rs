//! Radix-2 fast Fourier transform.
//!
//! Used to inspect the spectral content of transient waveforms (e.g. the
//! switching-noise spectrum in the SSN studies) and to cross-check AC sweeps
//! against time-domain simulations.

use crate::c64;

/// Rounds `n` up to the next power of two (minimum 1).
///
/// # Examples
///
/// ```
/// assert_eq!(pdn_num::next_pow2(5), 8);
/// assert_eq!(pdn_num::next_pow2(8), 8);
/// assert_eq!(pdn_num::next_pow2(0), 1);
/// ```
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
///
/// # Examples
///
/// ```
/// use pdn_num::{c64, fft};
/// let mut x = vec![c64::ONE; 4];
/// fft(&mut x);
/// assert!((x[0].re - 4.0).abs() < 1e-12); // DC bin
/// assert!(x[1].norm() < 1e-12);
/// ```
pub fn fft(data: &mut [c64]) {
    fft_dir(data, false);
}

/// In-place inverse FFT (normalized by `1/N`).
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn ifft(data: &mut [c64]) {
    fft_dir(data, true);
    let n = data.len() as f64;
    for x in data.iter_mut() {
        *x = *x / n;
    }
}

fn fft_dir(data: &mut [c64], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "fft length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = c64::from_polar(1.0, ang);
        let mut i = 0;
        while i < n {
            let mut w = c64::ONE;
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Magnitude spectrum of a real signal, zero-padded to a power of two.
///
/// Returns `(frequencies, magnitudes)` for the first `N/2 + 1` bins, where
/// `dt` is the sampling interval of `signal`.
///
/// # Examples
///
/// ```
/// // A pure 1 kHz tone sampled at 16 kHz peaks in the 1 kHz bin.
/// let dt = 1.0 / 16_000.0;
/// let sig: Vec<f64> = (0..64)
///     .map(|n| (2.0 * std::f64::consts::PI * 1000.0 * n as f64 * dt).sin())
///     .collect();
/// let (freqs, mags) = pdn_num::real_fft_magnitude(&sig, dt);
/// let peak = mags
///     .iter()
///     .enumerate()
///     .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
///     .unwrap()
///     .0;
/// assert!((freqs[peak] - 1000.0).abs() < 1.0);
/// ```
pub fn real_fft_magnitude(signal: &[f64], dt: f64) -> (Vec<f64>, Vec<f64>) {
    let n = next_pow2(signal.len());
    let mut buf: Vec<c64> = signal.iter().map(|&x| c64::from_re(x)).collect();
    buf.resize(n, c64::ZERO);
    fft(&mut buf);
    let df = 1.0 / (n as f64 * dt);
    let half = n / 2 + 1;
    let freqs = (0..half).map(|k| k as f64 * df).collect();
    let mags = buf[..half].iter().map(|z| z.norm()).collect();
    (freqs, mags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn fft_of_delta_is_flat() {
        let mut x = vec![c64::ZERO; 8];
        x[0] = c64::ONE;
        fft(&mut x);
        for z in &x {
            assert!(approx_eq(z.re, 1.0, 1e-12));
            assert!(z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_ifft_roundtrip() {
        let orig: Vec<c64> = (0..16)
            .map(|i| c64::new((i as f64).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let mut x = orig.clone();
        fft(&mut x);
        ifft(&mut x);
        for (a, b) in x.iter().zip(&orig) {
            assert!((a.re - b.re).abs() < 1e-12);
            assert!((a.im - b.im).abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let orig: Vec<c64> = (0..32)
            .map(|i| c64::new((i as f64 * 0.3).sin(), 0.0))
            .collect();
        let time_energy: f64 = orig.iter().map(|z| z.norm_sqr()).sum();
        let mut x = orig;
        fft(&mut x);
        let freq_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum::<f64>() / 32.0;
        assert!(approx_eq(time_energy, freq_energy, 1e-10));
    }

    #[test]
    fn single_tone_lands_in_correct_bin() {
        let n = 64;
        let k0 = 5;
        let mut x: Vec<c64> = (0..n)
            .map(|i| {
                c64::from_polar(
                    1.0,
                    2.0 * std::f64::consts::PI * k0 as f64 * i as f64 / n as f64,
                )
            })
            .collect();
        fft(&mut x);
        for (k, z) in x.iter().enumerate() {
            if k == k0 {
                assert!(approx_eq(z.norm(), n as f64, 1e-9));
            } else {
                assert!(z.norm() < 1e-9, "leakage in bin {k}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_panics() {
        let mut x = vec![c64::ZERO; 6];
        fft(&mut x);
    }

    #[test]
    fn real_spectrum_of_dc() {
        let (f, m) = real_fft_magnitude(&[1.0; 16], 1e-9);
        assert_eq!(f[0], 0.0);
        assert!(approx_eq(m[0], 16.0, 1e-12));
        assert!(m[1] < 1e-12);
    }
}
