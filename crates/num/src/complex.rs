//! A double-precision complex number type.
//!
//! The type is named [`c64`] to mirror the common numerics convention
//! (`f64` → `c64`). It is a plain `Copy` value type with the full set of
//! arithmetic operators, the elementary functions needed by frequency-domain
//! circuit analysis (`exp`, `sqrt`, `ln`), and polar helpers.

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// # Examples
///
/// ```
/// use pdn_num::c64;
///
/// let z = c64::new(3.0, 4.0);
/// assert_eq!(z.norm(), 5.0);
/// assert_eq!((z * z.conj()).re, 25.0);
/// ```
#[allow(non_camel_case_types)]
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct c64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl c64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: c64 = c64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: c64 = c64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: c64 = c64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    ///
    /// # Examples
    ///
    /// ```
    /// let z = pdn_num::c64::new(1.0, -2.0);
    /// assert_eq!(z.im, -2.0);
    /// ```
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        c64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        c64 { re, im: 0.0 }
    }

    /// Creates a purely imaginary complex number.
    #[inline]
    pub const fn from_im(im: f64) -> Self {
        c64 { re: 0.0, im }
    }

    /// Creates a complex number from polar form `r·e^{iθ}`.
    ///
    /// # Examples
    ///
    /// ```
    /// use pdn_num::c64;
    /// let z = c64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z.re).abs() < 1e-15);
    /// assert!((z.im - 2.0).abs() < 1e-15);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        c64::new(r * theta.cos(), r * theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        c64::new(self.re, -self.im)
    }

    /// Magnitude `|z|`, computed with `hypot` for robustness.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Principal argument in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns infinities when `z` is zero, matching `f64` division
    /// semantics.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        c64::new(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^z`.
    ///
    /// # Examples
    ///
    /// ```
    /// use pdn_num::c64;
    /// let z = c64::from_im(std::f64::consts::PI).exp();
    /// assert!((z.re + 1.0).abs() < 1e-15);
    /// ```
    #[inline]
    pub fn exp(self) -> Self {
        c64::from_polar(self.re.exp(), self.im)
    }

    /// Principal natural logarithm.
    #[inline]
    pub fn ln(self) -> Self {
        c64::new(self.norm().ln(), self.arg())
    }

    /// Principal square root (branch cut along the negative real axis).
    ///
    /// # Examples
    ///
    /// ```
    /// use pdn_num::c64;
    /// let z = c64::new(-4.0, 0.0).sqrt();
    /// assert!((z.im - 2.0).abs() < 1e-15);
    /// ```
    #[inline]
    pub fn sqrt(self) -> Self {
        c64::from_polar(self.norm().sqrt(), 0.5 * self.arg())
    }

    /// Raises the number to a real power using the principal branch.
    #[inline]
    pub fn powf(self, p: f64) -> Self {
        if self == c64::ZERO {
            return c64::ZERO;
        }
        c64::from_polar(self.norm().powf(p), self.arg() * p)
    }

    /// Returns `true` when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Magnitude in decibels, `20·log10(|z|)`.
    ///
    /// Returns `-inf` for zero. Used for S-parameter plots.
    #[inline]
    pub fn db(self) -> f64 {
        20.0 * self.norm().log10()
    }
}

impl From<f64> for c64 {
    fn from(re: f64) -> Self {
        c64::from_re(re)
    }
}

impl fmt::Display for c64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for c64 {
    type Output = c64;
    #[inline]
    fn add(self, o: c64) -> c64 {
        c64::new(self.re + o.re, self.im + o.im)
    }
}
impl Sub for c64 {
    type Output = c64;
    #[inline]
    fn sub(self, o: c64) -> c64 {
        c64::new(self.re - o.re, self.im - o.im)
    }
}
impl Mul for c64 {
    type Output = c64;
    #[inline]
    fn mul(self, o: c64) -> c64 {
        c64::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}
impl Div for c64 {
    type Output = c64;
    // Division via the conjugate reciprocal is the whole point here.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn div(self, o: c64) -> c64 {
        self * o.recip()
    }
}
impl Neg for c64 {
    type Output = c64;
    #[inline]
    fn neg(self) -> c64 {
        c64::new(-self.re, -self.im)
    }
}

impl Add<f64> for c64 {
    type Output = c64;
    #[inline]
    fn add(self, o: f64) -> c64 {
        c64::new(self.re + o, self.im)
    }
}
impl Sub<f64> for c64 {
    type Output = c64;
    #[inline]
    fn sub(self, o: f64) -> c64 {
        c64::new(self.re - o, self.im)
    }
}
impl Mul<f64> for c64 {
    type Output = c64;
    #[inline]
    fn mul(self, o: f64) -> c64 {
        c64::new(self.re * o, self.im * o)
    }
}
impl Div<f64> for c64 {
    type Output = c64;
    #[inline]
    fn div(self, o: f64) -> c64 {
        c64::new(self.re / o, self.im / o)
    }
}
impl Mul<c64> for f64 {
    type Output = c64;
    #[inline]
    fn mul(self, o: c64) -> c64 {
        o * self
    }
}
impl Add<c64> for f64 {
    type Output = c64;
    #[inline]
    fn add(self, o: c64) -> c64 {
        o + self
    }
}

impl AddAssign for c64 {
    #[inline]
    fn add_assign(&mut self, o: c64) {
        *self = *self + o;
    }
}
impl SubAssign for c64 {
    #[inline]
    fn sub_assign(&mut self, o: c64) {
        *self = *self - o;
    }
}
impl MulAssign for c64 {
    #[inline]
    fn mul_assign(&mut self, o: c64) {
        *self = *self * o;
    }
}
impl DivAssign for c64 {
    #[inline]
    fn div_assign(&mut self, o: c64) {
        *self = *self / o;
    }
}

impl Sum for c64 {
    fn sum<I: Iterator<Item = c64>>(iter: I) -> c64 {
        iter.fold(c64::ZERO, |a, b| a + b)
    }
}
impl Product for c64 {
    fn product<I: Iterator<Item = c64>>(iter: I) -> c64 {
        iter.fold(c64::ONE, |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn arithmetic_identities() {
        let z = c64::new(2.0, -3.0);
        assert_eq!(z + c64::ZERO, z);
        assert_eq!(z * c64::ONE, z);
        assert_eq!(z - z, c64::ZERO);
        let w = z * z.recip();
        assert!(approx_eq(w.re, 1.0, 1e-14));
        assert!(approx_eq(w.im, 0.0, 1e-14));
    }

    #[test]
    fn multiplication_matches_expansion() {
        let a = c64::new(1.5, 2.5);
        let b = c64::new(-0.5, 4.0);
        let p = a * b;
        assert!(approx_eq(p.re, 1.5 * -0.5 - 2.5 * 4.0, 1e-14));
        assert!(approx_eq(p.im, 1.5 * 4.0 + 2.5 * -0.5, 1e-14));
    }

    #[test]
    fn division_is_inverse_of_multiplication() {
        let a = c64::new(3.0, -7.0);
        let b = c64::new(0.25, 1.75);
        let q = (a * b) / b;
        assert!(approx_eq(q.re, a.re, 1e-12));
        assert!(approx_eq(q.im, a.im, 1e-12));
    }

    #[test]
    fn euler_identity() {
        let z = (c64::I * std::f64::consts::PI).exp();
        assert!(approx_eq(z.re, -1.0, 1e-14));
        assert!(z.im.abs() < 1e-14);
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[(4.0, 0.0), (-1.0, 0.0), (3.0, -4.0), (0.0, 2.0)] {
            let z = c64::new(re, im);
            let s = z.sqrt();
            let back = s * s;
            assert!(approx_eq(back.re, re, 1e-12), "{z}");
            assert!(approx_eq(back.im, im, 1e-12), "{z}");
            // Principal branch: non-negative real part.
            assert!(s.re >= -1e-15);
        }
    }

    #[test]
    fn ln_exp_roundtrip() {
        let z = c64::new(0.7, -1.3);
        let back = z.ln().exp();
        assert!(approx_eq(back.re, z.re, 1e-12));
        assert!(approx_eq(back.im, z.im, 1e-12));
    }

    #[test]
    fn polar_roundtrip() {
        let z = c64::new(-2.0, 5.0);
        let back = c64::from_polar(z.norm(), z.arg());
        assert!(approx_eq(back.re, z.re, 1e-12));
        assert!(approx_eq(back.im, z.im, 1e-12));
    }

    #[test]
    fn db_of_unity_is_zero() {
        assert!(c64::ONE.db().abs() < 1e-12);
        assert!(approx_eq(c64::new(10.0, 0.0).db(), 20.0, 1e-12));
    }

    #[test]
    fn sum_and_product_iterators() {
        let v = [c64::new(1.0, 1.0), c64::new(2.0, -1.0), c64::new(-3.0, 0.5)];
        let s: c64 = v.iter().copied().sum();
        assert!(approx_eq(s.re, 0.0, 1e-14));
        assert!(approx_eq(s.im, 0.5, 1e-14));
        let p: c64 = v.iter().copied().product();
        let expect = v[0] * v[1] * v[2];
        assert!(approx_eq(p.re, expect.re, 1e-13));
        assert!(approx_eq(p.im, expect.im, 1e-13));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(c64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(c64::new(1.0, -2.0).to_string(), "1-2i");
    }
}
