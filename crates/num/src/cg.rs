//! Preconditioned conjugate-gradient solver for symmetric
//! positive-definite systems.
//!
//! The direct LU/Cholesky factorizations serve every extraction in this
//! toolkit comfortably; CG exists for the scaling path — meshes with many
//! thousands of cells where `O(n³)` factorization becomes the bottleneck
//! but the SPD matrices (potential coefficients, inductance) remain well
//! conditioned after Jacobi scaling.

use crate::{Matrix, Vector};
use std::error::Error;
use std::fmt;

/// Error from an iterative solve.
#[derive(Debug, Clone, PartialEq)]
pub enum IterativeSolveError {
    /// The matrix is not square or sizes mismatch.
    BadShape,
    /// The iteration hit its limit before reaching the tolerance.
    NotConverged {
        /// Iterations performed.
        iterations: usize,
        /// Final relative residual.
        residual: f64,
    },
    /// A breakdown (zero curvature) occurred — the matrix is not SPD.
    Breakdown,
}

impl fmt::Display for IterativeSolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IterativeSolveError::BadShape => write!(f, "matrix/vector shape mismatch"),
            IterativeSolveError::NotConverged {
                iterations,
                residual,
            } => write!(
                f,
                "CG did not converge in {iterations} iterations (residual {residual:.3e})"
            ),
            IterativeSolveError::Breakdown => {
                write!(f, "CG breakdown: matrix is not positive definite")
            }
        }
    }
}

impl Error for IterativeSolveError {}

/// Solves `A·x = b` for symmetric positive-definite `A` with
/// Jacobi-preconditioned conjugate gradients.
///
/// Stops when the residual 2-norm falls below `tol · ‖b‖` or after
/// `max_iter` iterations.
///
/// # Errors
///
/// Returns [`IterativeSolveError`] on shape mismatch, non-convergence, or
/// an indefinite matrix.
///
/// # Examples
///
/// ```
/// use pdn_num::{cg::solve_spd, Matrix};
///
/// # fn main() -> Result<(), pdn_num::cg::IterativeSolveError> {
/// let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
/// let x = solve_spd(&a, &[1.0, 2.0], 1e-12, 100)?;
/// assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn solve_spd(
    a: &Matrix<f64>,
    b: &[f64],
    tol: f64,
    max_iter: usize,
) -> Result<Vector<f64>, IterativeSolveError> {
    if !a.is_square() || a.nrows() != b.len() {
        return Err(IterativeSolveError::BadShape);
    }
    let diag: Vec<f64> = (0..b.len()).map(|i| a[(i, i)]).collect();
    solve_spd_op(b.len(), &|x| a.matvec(x), &diag, b, tol, max_iter)
}

/// Operator form of [`solve_spd`]: solves `A·x = b` given only the
/// matrix-vector product `apply` and the diagonal of `A` (for the Jacobi
/// preconditioner). This is the entry point for compressed or otherwise
/// implicitly represented SPD operators where `A` is never densified.
///
/// Stops when the residual 2-norm falls below `tol · ‖b‖` or after
/// `max_iter` iterations. Identical arithmetic to [`solve_spd`], so the
/// two agree bit-for-bit on the same operator.
///
/// # Errors
///
/// Returns [`IterativeSolveError`] on shape mismatch, non-convergence, or
/// an indefinite operator.
pub fn solve_spd_op(
    n: usize,
    apply: &dyn Fn(&[f64]) -> Vector<f64>,
    diag: &[f64],
    b: &[f64],
    tol: f64,
    max_iter: usize,
) -> Result<Vector<f64>, IterativeSolveError> {
    if diag.len() != n || b.len() != n {
        return Err(IterativeSolveError::BadShape);
    }
    // Jacobi preconditioner M⁻¹ = diag(A)⁻¹.
    let m_inv: Vec<f64> = diag
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d } else { 1.0 })
        .collect();
    let b_norm = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if b_norm == 0.0 {
        return Ok(vec![0.0; n]);
    }
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut z: Vec<f64> = r.iter().zip(&m_inv).map(|(ri, mi)| ri * mi).collect();
    let mut p = z.clone();
    let mut rz: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
    for it in 0..max_iter {
        let ap = apply(&p);
        if ap.len() != n {
            return Err(IterativeSolveError::BadShape);
        }
        let p_ap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
        if p_ap <= 0.0 {
            return Err(IterativeSolveError::Breakdown);
        }
        let alpha = rz / p_ap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let r_norm = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        if r_norm <= tol * b_norm {
            return Ok(x);
        }
        for i in 0..n {
            z[i] = r[i] * m_inv[i];
        }
        let rz_new: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
        if it + 1 == max_iter {
            return Err(IterativeSolveError::NotConverged {
                iterations: max_iter,
                residual: r_norm / b_norm,
            });
        }
    }
    Err(IterativeSolveError::NotConverged {
        iterations: max_iter,
        residual: 1.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn spd(n: usize) -> Matrix<f64> {
        let m = Matrix::from_fn(n, n, |i, j| ((i * 5 + j * 3) % 13) as f64 / 13.0);
        let mut a = m.transpose().matmul(&m);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn matches_direct_solve() {
        let a = spd(30);
        let b: Vec<f64> = (0..30).map(|i| (i as f64 * 0.37).sin()).collect();
        let x_cg = solve_spd(&a, &b, 1e-12, 500).unwrap();
        let x_lu = crate::lu::solve(a.clone(), &b).unwrap();
        for i in 0..30 {
            assert!(approx_eq(x_cg[i], x_lu[i], 1e-8), "entry {i}");
        }
    }

    #[test]
    fn exact_in_n_iterations_for_small_systems() {
        // CG converges in at most n iterations in exact arithmetic.
        let a = spd(5);
        let b = vec![1.0; 5];
        let x = solve_spd(&a, &b, 1e-12, 10).unwrap();
        let r: f64 = a
            .matvec(&x)
            .iter()
            .zip(&b)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        assert!(r < 1e-9);
    }

    #[test]
    fn zero_rhs_gives_zero() {
        let a = spd(4);
        let x = solve_spd(&a, &[0.0; 4], 1e-12, 10).unwrap();
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn indefinite_matrix_breaks_down() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, -1.0]]);
        assert!(matches!(
            solve_spd(&a, &[1.0, 1.0], 1e-12, 10),
            Err(IterativeSolveError::Breakdown)
        ));
    }

    #[test]
    fn iteration_cap_reported() {
        // An ill-conditioned SPD system with a tiny iteration budget.
        let mut a = spd(20);
        a[(0, 0)] += 1e9;
        match solve_spd(&a, &[1.0; 20], 1e-14, 2) {
            Err(IterativeSolveError::NotConverged { iterations, .. }) => {
                assert_eq!(iterations, 2);
            }
            other => panic!("expected NotConverged, got {other:?}"),
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = spd(3);
        assert_eq!(
            solve_spd(&a, &[1.0, 2.0], 1e-9, 10).unwrap_err(),
            IterativeSolveError::BadShape
        );
    }

    #[test]
    fn operator_form_is_bit_identical_to_matrix_form() {
        let a = spd(24);
        let b: Vec<f64> = (0..24).map(|i| (i as f64 * 0.61).cos()).collect();
        let x_mat = solve_spd(&a, &b, 1e-12, 500).unwrap();
        let diag: Vec<f64> = (0..24).map(|i| a[(i, i)]).collect();
        let x_op = solve_spd_op(24, &|v| a.matvec(v), &diag, &b, 1e-12, 500).unwrap();
        for i in 0..24 {
            assert_eq!(x_mat[i].to_bits(), x_op[i].to_bits(), "entry {i}");
        }
    }

    #[test]
    fn operator_form_rejects_shape_mismatch() {
        assert_eq!(
            solve_spd_op(3, &|v| v.to_vec(), &[1.0, 1.0], &[1.0; 3], 1e-9, 10).unwrap_err(),
            IterativeSolveError::BadShape
        );
        assert_eq!(
            solve_spd_op(3, &|_| vec![0.0; 2], &[1.0; 3], &[1.0; 3], 1e-9, 10).unwrap_err(),
            IterativeSolveError::BadShape
        );
    }

    #[test]
    fn solves_bem_style_potential_matrix() {
        // A potential-coefficient-like matrix: diagonally dominant with
        // 1/distance off-diagonal decay.
        let n = 64;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                10.0
            } else {
                1.0 / (i as f64 - j as f64).abs()
            }
        });
        let b: Vec<f64> = (0..n).map(|i| if i == 7 { 1.0 } else { 0.0 }).collect();
        let x = solve_spd(&a, &b, 1e-10, 300).unwrap();
        let r: f64 = a
            .matvec(&x)
            .iter()
            .zip(&b)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        assert!(r < 1e-8);
    }
}
