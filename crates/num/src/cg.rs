//! Preconditioned conjugate-gradient solvers for symmetric
//! positive-definite systems.
//!
//! The direct LU/Cholesky factorizations serve every extraction in this
//! toolkit comfortably; CG exists for the scaling path — meshes with many
//! thousands of cells where `O(n³)` factorization becomes the bottleneck
//! but the SPD operators (potential coefficients, inductance) remain well
//! conditioned after preconditioning. Three drivers share one contract:
//!
//! * [`solve_spd`] / [`solve_spd_op`] — scalar Jacobi-preconditioned CG
//!   (matrix and operator forms, bit-identical to each other);
//! * [`solve_spd_pc`] — scalar CG with a caller-supplied
//!   [`Preconditioner`] (hierarchical block-Jacobi for the compressed
//!   BEM kernels);
//! * [`solve_spd_block`] — multi-RHS block CG: one operator application
//!   per iteration covers the whole column panel, the direction Gram
//!   matrix is rank-revealed by pivoted Cholesky (dependent directions
//!   deflate instead of breaking down), and converged columns retire
//!   from the panel so kernel traffic is never spent on them again.
//!
//! All drivers are serial in their recurrences (the only parallelism is
//! whatever the caller's `apply` closure does internally), so solutions
//! are bit-identical for any `PDN_THREADS`. Set `PDN_CG_STATS=1` to
//! print per-solve iteration/deflation/residual diagnostics to stderr.

use crate::precond::{JacobiPreconditioner, Preconditioner};
use crate::{Matrix, Vector};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Error from an iterative solve.
#[derive(Debug, Clone, PartialEq)]
pub enum IterativeSolveError {
    /// The matrix is not square or sizes mismatch.
    BadShape,
    /// The iteration hit its limit before reaching the tolerance.
    NotConverged {
        /// Iterations performed.
        iterations: usize,
        /// Final relative residual (the worst column for block solves).
        residual: f64,
        /// The relative tolerance that was requested.
        tol: f64,
        /// Whether the solve ran under a plain Jacobi (diagonal)
        /// preconditioner — a hierarchical preconditioner is the usual
        /// fix on fine meshes.
        jacobi: bool,
    },
    /// A breakdown occurred — the operator is not SPD. Carries the
    /// offending index when a specific diagonal entry is to blame.
    Breakdown {
        /// Index of the non-positive diagonal entry, when known.
        index: Option<usize>,
    },
}

impl fmt::Display for IterativeSolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IterativeSolveError::BadShape => write!(f, "matrix/vector shape mismatch"),
            IterativeSolveError::NotConverged {
                iterations,
                residual,
                tol,
                jacobi,
            } => {
                write!(
                    f,
                    "CG did not converge in {iterations} iterations \
                     (residual {residual:.3e} vs requested rel tol {tol:.1e})"
                )?;
                if *jacobi {
                    write!(
                        f,
                        "; preconditioner is plain Jacobi — a hierarchical \
                         block-Cholesky preconditioner usually fixes this on fine meshes"
                    )?;
                }
                Ok(())
            }
            IterativeSolveError::Breakdown { index: Some(i) } => write!(
                f,
                "CG breakdown: non-positive diagonal at index {i} — operator is not \
                 positive definite"
            ),
            IterativeSolveError::Breakdown { index: None } => {
                write!(f, "CG breakdown: operator is not positive definite")
            }
        }
    }
}

impl Error for IterativeSolveError {}

/// Whether `PDN_CG_STATS=1` per-solve diagnostics are enabled.
fn cg_stats_enabled() -> bool {
    std::env::var("PDN_CG_STATS").as_deref() == Ok("1")
}

/// Global CG iteration counter — every completed solver iteration
/// (scalar, or one panel iteration of the block driver) adds one.
static CG_ITERATIONS: AtomicUsize = AtomicUsize::new(0);

/// Monotone process-wide count of CG iterations across every solve in
/// this crate. Snapshot it before and after a workload to attribute
/// iteration cost — the companion of `pdn-bem`'s kernel-matvec counter
/// in the extraction benchmarks.
pub fn cg_iteration_count() -> usize {
    CG_ITERATIONS.load(Ordering::Relaxed)
}

/// Solves `A·x = b` for symmetric positive-definite `A` with
/// Jacobi-preconditioned conjugate gradients.
///
/// Stops when the residual 2-norm falls below `tol · ‖b‖` or after
/// `max_iter` iterations.
///
/// # Errors
///
/// Returns [`IterativeSolveError`] on shape mismatch, non-convergence, or
/// an indefinite matrix (including a zero or negative diagonal entry,
/// reported with its index).
///
/// # Examples
///
/// ```
/// use pdn_num::{cg::solve_spd, Matrix};
///
/// # fn main() -> Result<(), pdn_num::cg::IterativeSolveError> {
/// let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
/// let x = solve_spd(&a, &[1.0, 2.0], 1e-12, 100)?;
/// assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn solve_spd(
    a: &Matrix<f64>,
    b: &[f64],
    tol: f64,
    max_iter: usize,
) -> Result<Vector<f64>, IterativeSolveError> {
    if !a.is_square() || a.nrows() != b.len() {
        return Err(IterativeSolveError::BadShape);
    }
    let diag: Vec<f64> = (0..b.len()).map(|i| a[(i, i)]).collect();
    solve_spd_op(b.len(), &|x| a.matvec(x), &diag, b, tol, max_iter)
}

/// Operator form of [`solve_spd`]: solves `A·x = b` given only the
/// matrix-vector product `apply` and the diagonal of `A` (for the Jacobi
/// preconditioner). This is the entry point for compressed or otherwise
/// implicitly represented SPD operators where `A` is never densified.
///
/// Stops when the residual 2-norm falls below `tol · ‖b‖` or after
/// `max_iter` iterations. Identical arithmetic to [`solve_spd`], so the
/// two agree bit-for-bit on the same operator.
///
/// # Errors
///
/// Returns [`IterativeSolveError`] on shape mismatch, non-convergence,
/// or an indefinite operator. A zero or negative diagonal entry on a
/// claimed-SPD operator is a [`IterativeSolveError::Breakdown`] carrying
/// the offending index — never a silent substitution.
pub fn solve_spd_op(
    n: usize,
    apply: &dyn Fn(&[f64]) -> Vector<f64>,
    diag: &[f64],
    b: &[f64],
    tol: f64,
    max_iter: usize,
) -> Result<Vector<f64>, IterativeSolveError> {
    if diag.len() != n {
        return Err(IterativeSolveError::BadShape);
    }
    let pc = JacobiPreconditioner::new(diag)?;
    solve_spd_pc(n, apply, &pc, b, tol, max_iter)
}

/// Scalar preconditioned CG with a caller-supplied [`Preconditioner`].
///
/// With a [`JacobiPreconditioner`] this is arithmetically identical to
/// [`solve_spd_op`]; a [`BlockJacobiPreconditioner`] built from the
/// compressed-kernel cluster tree converges in strictly fewer iterations
/// on ill-conditioned fine meshes (see `docs/COMPRESSION.md`).
///
/// [`BlockJacobiPreconditioner`]: crate::precond::BlockJacobiPreconditioner
///
/// # Errors
///
/// Returns [`IterativeSolveError`] on shape mismatch, non-convergence,
/// or an indefinite operator.
pub fn solve_spd_pc(
    n: usize,
    apply: &dyn Fn(&[f64]) -> Vector<f64>,
    pc: &dyn Preconditioner,
    b: &[f64],
    tol: f64,
    max_iter: usize,
) -> Result<Vector<f64>, IterativeSolveError> {
    if pc.len() != n || b.len() != n {
        return Err(IterativeSolveError::BadShape);
    }
    let b_norm = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if b_norm == 0.0 {
        return Ok(vec![0.0; n]);
    }
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut z = vec![0.0; n];
    pc.apply_into(&r, &mut z);
    let mut p = z.clone();
    let mut rz: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
    for it in 0..max_iter {
        CG_ITERATIONS.fetch_add(1, Ordering::Relaxed);
        let ap = apply(&p);
        if ap.len() != n {
            return Err(IterativeSolveError::BadShape);
        }
        let p_ap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
        if p_ap <= 0.0 {
            return Err(IterativeSolveError::Breakdown { index: None });
        }
        let alpha = rz / p_ap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let r_norm = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        if r_norm <= tol * b_norm {
            if cg_stats_enabled() {
                eprintln!(
                    "[pdn-cg] scalar: n={n} iters={} relres={:.3e} jacobi={}",
                    it + 1,
                    r_norm / b_norm,
                    pc.is_jacobi(),
                );
            }
            return Ok(x);
        }
        if it + 1 == max_iter {
            return Err(IterativeSolveError::NotConverged {
                iterations: max_iter,
                residual: r_norm / b_norm,
                tol,
                jacobi: pc.is_jacobi(),
            });
        }
        pc.apply_into(&r, &mut z);
        let rz_new: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    Err(IterativeSolveError::NotConverged {
        iterations: max_iter,
        residual: 1.0,
        tol,
        jacobi: pc.is_jacobi(),
    })
}

/// Lane width of the grouped panel reductions and updates below — a
/// fixed constant, so the pass structure never depends on the worker
/// count (the same determinism contract as the solvers themselves).
const DIR_LANES: usize = 8;

/// `out[k] = Σ_t a[t]·vs[k][t]` for every vector in `vs`, streaming `a`
/// once per [`DIR_LANES`]-sized group and running the group's
/// accumulator chains interleaved. Each individual sum still
/// accumulates in ascending `t`, so every entry is bit-identical to a
/// serial `dot(a, vs[k])` — the grouping only breaks the dependent-add
/// latency chain that makes one-at-a-time dots reduction-bound.
fn dots_grouped(a: &[f64], vs: &[&Vec<f64>]) -> Vec<f64> {
    let mut out = Vec::with_capacity(vs.len());
    for group in vs.chunks(DIR_LANES) {
        let g = group.len();
        let mut acc = [0.0f64; DIR_LANES];
        for (t, &at) in a.iter().enumerate() {
            for (ak, v) in acc[..g].iter_mut().zip(group) {
                *ak += at * v[t];
            }
        }
        out.extend_from_slice(&acc[..g]);
    }
    out
}

/// `out[t] += Σ_k c_k·vs[k][t]`, applied in ascending `k` for every
/// element — the exact per-element add sequence of one axpy pass per
/// `(c_k, vs[k])` term, fused into one streaming pass over `out` per
/// [`DIR_LANES`]-sized group.
fn axpys_grouped(out: &mut [f64], terms: &[(f64, &Vec<f64>)]) {
    for group in terms.chunks(DIR_LANES) {
        for (t, o) in out.iter_mut().enumerate() {
            for &(c, v) in group {
                *o += c * v[t];
            }
        }
    }
}

/// Pivoted Cholesky rank reveal of a small symmetric Gram matrix.
///
/// Pivots on the largest remaining diagonal (lowest index on ties) and
/// stops when it drops below `thresh` — the retained pivots index the
/// numerically independent directions. Returns `(pivots, l)` where `l`
/// is the lower-triangular factor over pivot positions:
/// `S[piv[i], piv[j]] = Σ_t l[i][t]·l[j][t]`.
#[allow(clippy::needless_range_loop)]
fn pivoted_cholesky(s: &[Vec<f64>], thresh: f64) -> (Vec<usize>, Vec<Vec<f64>>) {
    let m = s.len();
    let mut order: Vec<usize> = (0..m).collect();
    let mut d: Vec<f64> = (0..m).map(|i| s[i][i]).collect();
    let mut l = vec![vec![0.0; m]; m];
    let mut rank = 0;
    for k in 0..m {
        // Deterministic pivot: max remaining updated diagonal, lowest
        // original index on ties.
        let mut best = k;
        for t in (k + 1)..m {
            let (dt, db) = (d[order[t]], d[order[best]]);
            if dt > db || (dt == db && order[t] < order[best]) {
                best = t;
            }
        }
        if d[order[best]] <= thresh {
            break;
        }
        order.swap(k, best);
        l.swap(k, best);
        let pk = order[k];
        let lkk = d[pk].sqrt();
        l[k][k] = lkk;
        for t in (k + 1)..m {
            let pt = order[t];
            let mut acc = s[pt][pk];
            for u in 0..k {
                acc -= l[t][u] * l[k][u];
            }
            let ltk = acc / lkk;
            l[t][k] = ltk;
            d[pt] -= ltk * ltk;
        }
        rank = k + 1;
    }
    order.truncate(rank);
    l.truncate(rank);
    for (i, row) in l.iter_mut().enumerate() {
        row.truncate(i + 1);
    }
    (order, l)
}

/// Solves `L·Lᵀ·x = rhs` for the rank-revealed factor of
/// [`pivoted_cholesky`], one column at a time.
fn chol_solve_cols(l: &[Vec<f64>], rhs: &mut [Vec<f64>]) {
    let r = l.len();
    for col in rhs.iter_mut() {
        for i in 0..r {
            let mut v = col[i];
            for t in 0..i {
                v -= l[i][t] * col[t];
            }
            col[i] = v / l[i][i];
        }
        for i in (0..r).rev() {
            let mut v = col[i];
            for t in (i + 1)..r {
                v -= l[t][i] * col[t];
            }
            col[i] = v / l[i][i];
        }
    }
}

/// Multi-RHS block conjugate gradients for a symmetric positive-definite
/// operator: solves `A·X = B` for all columns of `B` in one Krylov
/// iteration, so every operator application (`apply_block` over the
/// whole direction panel) amortizes kernel traffic across the columns.
///
/// Mechanics per iteration:
///
/// 1. `Q = A·P` over the active direction panel (one blocked operator
///    sweep);
/// 2. the direction Gram matrix `PᵀQ` is **rank-revealed** by pivoted
///    Cholesky — numerically dependent directions are deflated out of
///    the panel instead of breaking the iteration;
/// 3. the panel step `α` solves the Galerkin system on the retained
///    directions, updating every active column;
/// 4. columns whose residual reaches `tol · ‖b_j‖` **retire** from the
///    panel — later iterations never spend matvecs on them;
/// 5. the next panel A-orthogonalizes the preconditioned residuals
///    against the retained directions.
///
/// All recurrences are serial and the panel order is fixed (ascending
/// column index), so the result is bit-identical for any `PDN_THREADS`
/// — the caller's `apply_block` must be deterministic too (the
/// compressed-kernel block matvecs are).
///
/// Agrees with per-column [`solve_spd_pc`] to the solver tolerance
/// (property-tested in `tests/block_solver.rs`), not bit-for-bit: the
/// shared Krylov panel takes a different (shorter) path to the same
/// tolerance.
///
/// # Errors
///
/// [`IterativeSolveError::BadShape`] on dimension mismatches,
/// [`IterativeSolveError::NotConverged`] (worst remaining column
/// residual, requested tolerance, and a Jacobi hint) when `max_iter` is
/// exhausted, and [`IterativeSolveError::Breakdown`] when the operator
/// shows non-positive curvature.
#[allow(clippy::type_complexity, clippy::needless_range_loop)]
pub fn solve_spd_block(
    n: usize,
    apply_block: &dyn Fn(&[Vec<f64>]) -> Vec<Vec<f64>>,
    pc: &dyn Preconditioner,
    b: &[Vec<f64>],
    tol: f64,
    max_iter: usize,
) -> Result<Vec<Vec<f64>>, IterativeSolveError> {
    let s = b.len();
    if pc.len() != n || b.iter().any(|col| col.len() != n) {
        return Err(IterativeSolveError::BadShape);
    }
    let b_norm: Vec<f64> = b
        .iter()
        .map(|col| col.iter().map(|v| v * v).sum::<f64>().sqrt())
        .collect();
    let mut x = vec![vec![0.0; n]; s];
    // Zero columns are already solved; everything else starts active, in
    // ascending column order — the panel order is part of the
    // determinism contract.
    let mut active: Vec<usize> = (0..s).filter(|&j| b_norm[j] > 0.0).collect();
    let mut r: Vec<Vec<f64>> = active.iter().map(|&j| b[j].clone()).collect();
    let mut p: Vec<Vec<f64>> = vec![vec![0.0; n]; r.len()];
    pc.apply_panel_into(&r, &mut p);
    let initial_rhs = active.len();
    let mut matvecs = 0usize;
    let mut deflations = 0usize;
    let mut iters = 0usize;
    let mut final_res = 0.0f64;
    while !active.is_empty() {
        if iters == max_iter {
            let worst = active
                .iter()
                .zip(&r)
                .map(|(&j, rc)| rc.iter().map(|v| v * v).sum::<f64>().sqrt() / b_norm[j])
                .fold(0.0f64, f64::max);
            return Err(IterativeSolveError::NotConverged {
                iterations: max_iter,
                residual: worst,
                tol,
                jacobi: pc.is_jacobi(),
            });
        }
        iters += 1;
        CG_ITERATIONS.fetch_add(1, Ordering::Relaxed);
        let q = apply_block(&p);
        if q.len() != p.len() || q.iter().any(|col| col.len() != n) {
            return Err(IterativeSolveError::BadShape);
        }
        matvecs += p.len();
        // Direction Gram matrix S = PᵀQ (= PᵀAP), symmetrized.
        let sa = p.len();
        let q_all: Vec<&Vec<f64>> = q.iter().collect();
        let mut gram: Vec<Vec<f64>> = p.iter().map(|pi| dots_grouped(pi, &q_all)).collect();
        for i in 0..sa {
            for j in (i + 1)..sa {
                let v = 0.5 * (gram[i][j] + gram[j][i]);
                gram[i][j] = v;
                gram[j][i] = v;
            }
        }
        let d0 = (0..sa)
            .map(|i| gram[i][i])
            .fold(f64::NEG_INFINITY, f64::max);
        if d0 <= 0.0 {
            // No direction has positive curvature: the operator is not
            // SPD (the scalar driver's `pᵀAp ≤ 0` check, panel-wide).
            return Err(IterativeSolveError::Breakdown { index: None });
        }
        let thresh = d0 * (sa as f64) * f64::EPSILON * 64.0;
        if (0..sa).any(|i| gram[i][i] < -thresh) {
            return Err(IterativeSolveError::Breakdown { index: None });
        }
        let (piv, l) = pivoted_cholesky(&gram, thresh);
        let rank = piv.len();
        if rank == 0 {
            return Err(IterativeSolveError::Breakdown { index: None });
        }
        deflations += sa - rank;
        // Galerkin step on the retained directions: α = S_r⁻¹ · P_rᵀR.
        let p_piv: Vec<&Vec<f64>> = piv.iter().map(|&d| &p[d]).collect();
        let q_piv: Vec<&Vec<f64>> = piv.iter().map(|&d| &q[d]).collect();
        let mut alpha: Vec<Vec<f64>> = r.iter().map(|rc| dots_grouped(rc, &p_piv)).collect();
        chol_solve_cols(&l, &mut alpha);
        for (c, &j) in active.iter().enumerate() {
            // Zero coefficients are skipped outright (never added as
            // `+ 0.0`, which could flip a `-0.0`), exactly like the
            // per-direction passes this fuses.
            let x_terms: Vec<(f64, &Vec<f64>)> = alpha[c]
                .iter()
                .zip(&p_piv)
                .filter(|(&a, _)| a != 0.0)
                .map(|(&a, &pd)| (a, pd))
                .collect();
            axpys_grouped(&mut x[j], &x_terms);
            let r_terms: Vec<(f64, &Vec<f64>)> = alpha[c]
                .iter()
                .zip(&q_piv)
                .filter(|(&a, _)| a != 0.0)
                .map(|(&a, &qd)| (-a, qd))
                .collect();
            axpys_grouped(&mut r[c], &r_terms);
        }
        // Retire converged columns (checked in panel order).
        let mut keep_r: Vec<Vec<f64>> = Vec::with_capacity(r.len());
        let mut keep_active: Vec<usize> = Vec::with_capacity(active.len());
        for (c, &j) in active.iter().enumerate() {
            let res = r[c].iter().map(|v| v * v).sum::<f64>().sqrt() / b_norm[j];
            if res <= tol {
                final_res = final_res.max(res);
            } else {
                keep_active.push(j);
                keep_r.push(std::mem::take(&mut r[c]));
            }
        }
        active = keep_active;
        r = keep_r;
        if active.is_empty() {
            break;
        }
        // Next panel: preconditioned residuals, A-orthogonalized against
        // the retained directions (β = S_r⁻¹ · Q_rᵀZ).
        let mut z: Vec<Vec<f64>> = vec![vec![0.0; n]; r.len()];
        pc.apply_panel_into(&r, &mut z);
        let mut beta: Vec<Vec<f64>> = z.iter().map(|zc| dots_grouped(zc, &q_piv)).collect();
        chol_solve_cols(&l, &mut beta);
        let mut p_next: Vec<Vec<f64>> = Vec::with_capacity(z.len());
        for (c, mut zc) in z.into_iter().enumerate() {
            let terms: Vec<(f64, &Vec<f64>)> = beta[c]
                .iter()
                .zip(&p_piv)
                .filter(|(&bc, _)| bc != 0.0)
                .map(|(&bc, &pd)| (-bc, pd))
                .collect();
            axpys_grouped(&mut zc, &terms);
            p_next.push(zc);
        }
        p = p_next;
    }
    if cg_stats_enabled() {
        eprintln!(
            "[pdn-cg] block: n={n} rhs={initial_rhs} iters={iters} deflations={deflations} \
             matvecs={matvecs} relres={final_res:.3e} jacobi={}",
            pc.is_jacobi(),
        );
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::precond::BlockJacobiPreconditioner;

    fn spd(n: usize) -> Matrix<f64> {
        let m = Matrix::from_fn(n, n, |i, j| ((i * 5 + j * 3) % 13) as f64 / 13.0);
        let mut a = m.transpose().matmul(&m);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn matches_direct_solve() {
        let a = spd(30);
        let b: Vec<f64> = (0..30).map(|i| (i as f64 * 0.37).sin()).collect();
        let x_cg = solve_spd(&a, &b, 1e-12, 500).unwrap();
        let x_lu = crate::lu::solve(a.clone(), &b).unwrap();
        for i in 0..30 {
            assert!(approx_eq(x_cg[i], x_lu[i], 1e-8), "entry {i}");
        }
    }

    #[test]
    fn exact_in_n_iterations_for_small_systems() {
        // CG converges in at most n iterations in exact arithmetic.
        let a = spd(5);
        let b = vec![1.0; 5];
        let x = solve_spd(&a, &b, 1e-12, 10).unwrap();
        let r: f64 = a
            .matvec(&x)
            .iter()
            .zip(&b)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        assert!(r < 1e-9);
    }

    #[test]
    fn zero_rhs_gives_zero() {
        let a = spd(4);
        let x = solve_spd(&a, &[0.0; 4], 1e-12, 10).unwrap();
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn indefinite_matrix_breaks_down() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, -1.0]]);
        // The negative diagonal trips the Jacobi construction, with the
        // offending index reported.
        assert_eq!(
            solve_spd(&a, &[1.0, 1.0], 1e-12, 10).unwrap_err(),
            IterativeSolveError::Breakdown { index: Some(1) }
        );
    }

    #[test]
    fn indefinite_with_positive_diagonal_breaks_down_in_iteration() {
        // Positive diagonal but indefinite: breakdown has no single
        // diagonal culprit.
        let a = Matrix::from_rows(&[&[1.0, 4.0], &[4.0, 1.0]]);
        // [1, -1] is the negative-eigenvalue direction.
        assert_eq!(
            solve_spd(&a, &[1.0, -1.0], 1e-12, 10).unwrap_err(),
            IterativeSolveError::Breakdown { index: None }
        );
    }

    #[test]
    fn zero_diagonal_is_breakdown_with_index_not_silent_substitution() {
        // A zero diagonal entry on a claimed-SPD operator used to be
        // silently replaced by 1.0 in the Jacobi preconditioner.
        let diag = [2.0, 0.0, 3.0];
        let err = solve_spd_op(3, &|v| v.to_vec(), &diag, &[1.0; 3], 1e-9, 10).unwrap_err();
        assert_eq!(err, IterativeSolveError::Breakdown { index: Some(1) });
        assert!(err.to_string().contains("index 1"), "{err}");
    }

    #[test]
    fn iteration_cap_reported() {
        // An ill-conditioned SPD system with a tiny iteration budget.
        let mut a = spd(20);
        a[(0, 0)] += 1e9;
        match solve_spd(&a, &[1.0; 20], 1e-14, 2) {
            Err(IterativeSolveError::NotConverged {
                iterations,
                tol,
                jacobi,
                ..
            }) => {
                assert_eq!(iterations, 2);
                assert_eq!(tol, 1e-14);
                assert!(jacobi);
            }
            other => panic!("expected NotConverged, got {other:?}"),
        }
    }

    #[test]
    fn not_converged_display_names_tolerance_and_jacobi_hint() {
        let err = IterativeSolveError::NotConverged {
            iterations: 7,
            residual: 3.2e-3,
            tol: 1e-10,
            jacobi: true,
        };
        let msg = err.to_string();
        assert!(msg.contains("7 iterations"), "{msg}");
        assert!(msg.contains("1.0e-10"), "{msg}");
        assert!(msg.contains("Jacobi"), "{msg}");
        let quiet = IterativeSolveError::NotConverged {
            iterations: 7,
            residual: 3.2e-3,
            tol: 1e-10,
            jacobi: false,
        };
        assert!(!quiet.to_string().contains("Jacobi"));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = spd(3);
        assert_eq!(
            solve_spd(&a, &[1.0, 2.0], 1e-9, 10).unwrap_err(),
            IterativeSolveError::BadShape
        );
    }

    #[test]
    fn operator_form_is_bit_identical_to_matrix_form() {
        let a = spd(24);
        let b: Vec<f64> = (0..24).map(|i| (i as f64 * 0.61).cos()).collect();
        let x_mat = solve_spd(&a, &b, 1e-12, 500).unwrap();
        let diag: Vec<f64> = (0..24).map(|i| a[(i, i)]).collect();
        let x_op = solve_spd_op(24, &|v| a.matvec(v), &diag, &b, 1e-12, 500).unwrap();
        for i in 0..24 {
            assert_eq!(x_mat[i].to_bits(), x_op[i].to_bits(), "entry {i}");
        }
    }

    #[test]
    fn operator_form_rejects_shape_mismatch() {
        assert_eq!(
            solve_spd_op(3, &|v| v.to_vec(), &[1.0, 1.0], &[1.0; 3], 1e-9, 10).unwrap_err(),
            IterativeSolveError::BadShape
        );
        assert_eq!(
            solve_spd_op(3, &|_| vec![0.0; 2], &[1.0; 3], &[1.0; 3], 1e-9, 10).unwrap_err(),
            IterativeSolveError::BadShape
        );
    }

    #[test]
    fn solves_bem_style_potential_matrix() {
        // A potential-coefficient-like matrix: diagonally dominant with
        // 1/distance off-diagonal decay.
        let n = 64;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                10.0
            } else {
                1.0 / (i as f64 - j as f64).abs()
            }
        });
        let b: Vec<f64> = (0..n).map(|i| if i == 7 { 1.0 } else { 0.0 }).collect();
        let x = solve_spd(&a, &b, 1e-10, 300).unwrap();
        let r: f64 = a
            .matvec(&x)
            .iter()
            .zip(&b)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        assert!(r < 1e-8);
    }

    // --- block CG ---------------------------------------------------------

    fn block_apply(a: &Matrix<f64>) -> impl Fn(&[Vec<f64>]) -> Vec<Vec<f64>> + '_ {
        |cols: &[Vec<f64>]| cols.iter().map(|c| a.matvec(c)).collect()
    }

    #[test]
    fn block_agrees_with_scalar_per_column() {
        let a = spd(40);
        let diag: Vec<f64> = (0..40).map(|i| a[(i, i)]).collect();
        let pc = JacobiPreconditioner::new(&diag).unwrap();
        let b: Vec<Vec<f64>> = (0..6)
            .map(|j| {
                (0..40)
                    .map(|i| ((i * (j + 2)) as f64 * 0.23).sin())
                    .collect()
            })
            .collect();
        let xs = solve_spd_block(40, &block_apply(&a), &pc, &b, 1e-11, 500).unwrap();
        for (j, col) in b.iter().enumerate() {
            let x_scalar = solve_spd_pc(40, &|v| a.matvec(v), &pc, col, 1e-11, 500).unwrap();
            for i in 0..40 {
                assert!(
                    (xs[j][i] - x_scalar[i]).abs() <= 1e-8 * x_scalar[i].abs().max(1.0),
                    "col {j} entry {i}: {} vs {}",
                    xs[j][i],
                    x_scalar[i]
                );
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn block_deflates_duplicate_columns() {
        // Two identical RHS columns make the direction panel rank
        // deficient from iteration one; the solver must deflate, not
        // break down, and both columns must solve.
        let a = spd(24);
        let diag: Vec<f64> = (0..24).map(|i| a[(i, i)]).collect();
        let pc = JacobiPreconditioner::new(&diag).unwrap();
        let col: Vec<f64> = (0..24).map(|i| (i as f64 * 0.4).cos()).collect();
        let b = vec![col.clone(), col.clone(), col];
        let xs = solve_spd_block(24, &block_apply(&a), &pc, &b, 1e-11, 200).unwrap();
        for j in 0..3 {
            let back = a.matvec(&xs[j]);
            for i in 0..24 {
                assert!(approx_eq(back[i], b[j][i], 1e-8), "col {j} entry {i}");
            }
        }
        // Duplicates converge to the bit-identical solution: same panel,
        // same deterministic arithmetic.
        for i in 0..24 {
            assert_eq!(xs[0][i].to_bits(), xs[1][i].to_bits(), "entry {i}");
        }
    }

    #[test]
    fn block_handles_zero_and_empty_columns() {
        let a = spd(8);
        let diag: Vec<f64> = (0..8).map(|i| a[(i, i)]).collect();
        let pc = JacobiPreconditioner::new(&diag).unwrap();
        let b = vec![vec![0.0; 8], (0..8).map(|i| i as f64).collect()];
        let xs = solve_spd_block(8, &block_apply(&a), &pc, &b, 1e-11, 100).unwrap();
        assert!(xs[0].iter().all(|&v| v == 0.0));
        let back = a.matvec(&xs[1]);
        for i in 0..8 {
            assert!(approx_eq(back[i], b[1][i], 1e-8), "entry {i}");
        }
        assert!(solve_spd_block(8, &block_apply(&a), &pc, &[], 1e-11, 100)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn block_reports_worst_residual_on_iteration_cap() {
        let mut a = spd(20);
        a[(0, 0)] += 1e9;
        let diag: Vec<f64> = (0..20).map(|i| a[(i, i)]).collect();
        let pc = JacobiPreconditioner::new(&diag).unwrap();
        let b = vec![vec![1.0; 20], (0..20).map(|i| i as f64 - 10.0).collect()];
        let apply = block_apply(&a);
        match solve_spd_block(20, &apply, &pc, &b, 1e-14, 2) {
            Err(IterativeSolveError::NotConverged {
                iterations,
                residual,
                tol,
                jacobi,
            }) => {
                assert_eq!(iterations, 2);
                assert!(residual > 0.0);
                assert_eq!(tol, 1e-14);
                assert!(jacobi);
            }
            other => panic!("expected NotConverged, got {other:?}"),
        }
    }

    #[test]
    fn block_breaks_down_on_indefinite_operator() {
        let a = Matrix::from_rows(&[&[1.0, 4.0], &[4.0, 1.0]]);
        let pc = JacobiPreconditioner::new(&[1.0, 1.0]).unwrap();
        let b = vec![vec![1.0, -1.0]];
        assert!(matches!(
            solve_spd_block(2, &block_apply(&a), &pc, &b, 1e-12, 10),
            Err(IterativeSolveError::Breakdown { .. })
        ));
    }

    #[test]
    fn block_with_hierarchical_preconditioner_converges() {
        // Block-Jacobi over two clusters on a moderately conditioned
        // matrix: same answers as the direct solve.
        let a = spd(16);
        let c0: Vec<usize> = (0..8).collect();
        let c1: Vec<usize> = (8..16).collect();
        let pc = BlockJacobiPreconditioner::from_blocks(
            16,
            vec![
                (c0.clone(), a.submatrix(&c0, &c0)),
                (c1.clone(), a.submatrix(&c1, &c1)),
            ],
        )
        .unwrap();
        let b: Vec<Vec<f64>> = (0..4)
            .map(|j| (0..16).map(|i| ((i + j * 3) as f64 * 0.7).sin()).collect())
            .collect();
        let xs = solve_spd_block(16, &block_apply(&a), &pc, &b, 1e-12, 200).unwrap();
        for (j, col) in b.iter().enumerate() {
            let x_lu = crate::lu::solve(a.clone(), col).unwrap();
            for i in 0..16 {
                assert!(approx_eq(xs[j][i], x_lu[i], 1e-8), "col {j} entry {i}");
            }
        }
    }
}
