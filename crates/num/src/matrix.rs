//! Dense row-major matrix and vector containers.
//!
//! [`Matrix<T>`] is the workhorse container for BEM system matrices,
//! MNA stamps, and S-parameter blocks. It is deliberately simple: row-major
//! storage, `O(1)` indexing, and the handful of BLAS-2/3 style operations the
//! toolkit needs (`matmul`, `matvec`, transpose, slicing of sub-blocks).

use crate::Scalar;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense vector; plain `Vec<T>` alias used for readability in signatures.
pub type Vector<T> = Vec<T>;

/// A dense, row-major matrix over a [`Scalar`] type.
///
/// # Examples
///
/// ```
/// use pdn_num::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b);
/// assert_eq!(c[(1, 0)], 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Examples
    ///
    /// ```
    /// let m: pdn_num::Matrix<f64> = pdn_num::Matrix::zeros(2, 3);
    /// assert_eq!(m.shape(), (2, 3));
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::zero(); rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::one();
        }
        m
    }

    /// Builds a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[&[T]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix by evaluating `f(i, j)` at every position.
    ///
    /// # Examples
    ///
    /// ```
    /// let h = pdn_num::Matrix::from_fn(3, 3, |i, j| 1.0 / (i + j + 1) as f64);
    /// assert_eq!(h[(0, 0)], 1.0);
    /// ```
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a square diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[T]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrowed view of the raw row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the raw row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Borrowed view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        assert!(i < self.rows, "row index out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows()`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        assert!(i < self.rows, "row index out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Owned copy of column `j`.
    pub fn col(&self, j: usize) -> Vector<T> {
        assert!(j < self.cols, "column index out of bounds");
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Self {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Conjugate-transposed copy (equals [`transpose`](Self::transpose) for
    /// real matrices).
    pub fn hermitian_transpose(&self) -> Self {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Matrix–matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix<T>) -> Matrix<T> {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == T::zero() {
                    continue;
                }
                let orow = other.row(k);
                let crow = out.row_mut(i);
                for (cij, &bkj) in crow.iter_mut().zip(orow) {
                    *cij += a * bkj;
                }
            }
        }
        out
    }

    /// Matrix–vector product `self · x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols()`.
    pub fn matvec(&self, x: &[T]) -> Vector<T> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows)
            .map(|i| {
                self.row(i)
                    .iter()
                    .zip(x)
                    .fold(T::zero(), |acc, (&a, &b)| acc + a * b)
            })
            .collect()
    }

    /// Scales every entry by `s`.
    pub fn scale(&self, s: T) -> Matrix<T> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| x * s).collect(),
        }
    }

    /// Extracts the sub-matrix at the given row and column index sets.
    ///
    /// Used heavily by the Kron-reduction code in `pdn-extract`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn submatrix(&self, row_idx: &[usize], col_idx: &[usize]) -> Matrix<T> {
        Matrix::from_fn(row_idx.len(), col_idx.len(), |i, j| {
            self[(row_idx[i], col_idx[j])]
        })
    }

    /// Maximum absolute entry (`∞`-norm of the flattened data).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|x| x.abs()).fold(0.0, f64::max)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|x| x.abs() * x.abs())
            .sum::<f64>()
            .sqrt()
    }

    /// Symmetry defect `max |A - Aᵀ|`; zero for symmetric matrices.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn symmetry_defect(&self) -> f64 {
        assert!(self.is_square(), "symmetry_defect requires a square matrix");
        let mut d = 0.0f64;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                d = d.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        d
    }

    /// Converts entry-wise through `f`, e.g. a real matrix to complex.
    pub fn map<U: Scalar>(&self, f: impl Fn(T) -> U) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }
}

impl Matrix<f64> {
    /// Promotes a real matrix to a complex one.
    ///
    /// # Examples
    ///
    /// ```
    /// use pdn_num::{c64, Matrix};
    /// let m = Matrix::identity(2).to_complex();
    /// assert_eq!(m[(0, 0)], c64::ONE);
    /// ```
    pub fn to_complex(&self) -> Matrix<crate::c64> {
        self.map(crate::c64::from_re)
    }
}

impl<T: Scalar> Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl<T: Scalar> Add for &Matrix<T> {
    type Output = Matrix<T>;
    fn add(self, o: &Matrix<T>) -> Matrix<T> {
        assert_eq!(self.shape(), o.shape(), "matrix add shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&o.data)
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }
}

impl<T: Scalar> Sub for &Matrix<T> {
    type Output = Matrix<T>;
    fn sub(self, o: &Matrix<T>) -> Matrix<T> {
        assert_eq!(self.shape(), o.shape(), "matrix sub shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&o.data)
                .map(|(&a, &b)| a - b)
                .collect(),
        }
    }
}

impl<T: Scalar> Neg for &Matrix<T> {
    type Output = Matrix<T>;
    fn neg(self) -> Matrix<T> {
        self.scale(-T::one())
    }
}

impl<T: Scalar> Mul for &Matrix<T> {
    type Output = Matrix<T>;
    fn mul(self, o: &Matrix<T>) -> Matrix<T> {
        self.matmul(o)
    }
}

impl<T: Scalar> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>14} ", self[(i, j)].to_string())?;
            }
            writeln!(f, "{}", if self.cols > 8 { " ..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

/// Dot product of two equal-length vectors.
///
/// # Panics
///
/// Panics on length mismatch.
///
/// # Examples
///
/// ```
/// assert_eq!(pdn_num::matrix::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot<T: Scalar>(a: &[T], b: &[T]) -> T {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).fold(T::zero(), |acc, (&x, &y)| acc + x * y)
}

/// `a + s·b` element-wise.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn axpy<T: Scalar>(a: &[T], s: T, b: &[T]) -> Vector<T> {
    assert_eq!(a.len(), b.len(), "axpy length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x + s * y).collect()
}

/// Euclidean norm of a vector.
pub fn norm2<T: Scalar>(a: &[T]) -> f64 {
    a.iter().map(|x| x.abs() * x.abs()).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{approx_eq, c64};

    #[test]
    fn identity_is_multiplicative_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let i3 = Matrix::identity(3);
        assert_eq!(a.matmul(&i3), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |i, j| (i * 5 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (5, 3));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_fn(4, 4, |i, j| ((i + 1) * (j + 2)) as f64);
        let x = vec![1.0, -1.0, 2.0, 0.5];
        let y = a.matvec(&x);
        let xm = Matrix::from_fn(4, 1, |i, _| x[i]);
        let ym = a.matmul(&xm);
        for i in 0..4 {
            assert!(approx_eq(y[i], ym[(i, 0)], 1e-13));
        }
    }

    #[test]
    fn complex_matmul() {
        let a = Matrix::from_rows(&[&[c64::I, c64::ONE], &[c64::ZERO, c64::I]]);
        let sq = a.matmul(&a);
        // [[i,1],[0,i]]^2 = [[-1, 2i],[0,-1]]
        assert_eq!(sq[(0, 0)], c64::new(-1.0, 0.0));
        assert_eq!(sq[(0, 1)], c64::new(0.0, 2.0));
        assert_eq!(sq[(1, 1)], c64::new(-1.0, 0.0));
    }

    #[test]
    fn submatrix_extracts_block() {
        let a = Matrix::from_fn(4, 4, |i, j| (10 * i + j) as f64);
        let s = a.submatrix(&[1, 3], &[0, 2]);
        assert_eq!(s, Matrix::from_rows(&[&[10.0, 12.0], &[30.0, 32.0]]));
    }

    #[test]
    fn hermitian_transpose_conjugates() {
        let a = Matrix::from_rows(&[&[c64::new(1.0, 2.0)]]);
        assert_eq!(a.hermitian_transpose()[(0, 0)], c64::new(1.0, -2.0));
    }

    #[test]
    fn symmetry_defect_detects_asymmetry() {
        let s = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 5.0]]);
        assert_eq!(s.symmetry_defect(), 0.0);
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.5, 5.0]]);
        assert!(approx_eq(a.symmetry_defect(), 0.5, 1e-15));
    }

    #[test]
    fn add_sub_neg() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[4.0, 3.0], &[2.0, 1.0]]);
        let s = &a + &b;
        assert_eq!(s, Matrix::from_rows(&[&[5.0, 5.0], &[5.0, 5.0]]));
        let d = &s - &b;
        assert_eq!(d, a);
        let n = -&a;
        assert_eq!(n[(1, 1)], -4.0);
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        let v = axpy(&[1.0, 1.0], 2.0, &[3.0, -1.0]);
        assert_eq!(v, vec![7.0, -1.0]);
        assert!(approx_eq(norm2(&[3.0, 4.0]), 5.0, 1e-15));
    }

    #[test]
    fn from_diag_and_col() {
        let d = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d.col(1), vec![0.0, 2.0, 0.0]);
        assert_eq!(d[(2, 2)], 3.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_mismatch_panics() {
        let a = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::<f64>::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
