//! Cholesky factorization of symmetric positive-definite real matrices.
//!
//! Capacitance and inductance matrices produced by the quasi-static BEM are
//! symmetric positive definite; Cholesky is both the cheapest solver for them
//! and a *validity check* — a failed factorization flags a non-physical
//! extraction. It also underpins the generalized symmetric-definite
//! eigensolver used for transmission-line modal analysis.

use crate::gemm::{GemmScalar, BLOCK, ROW_TILE};
use crate::{parallel, Matrix, SolveMatrixError, Vector};

/// Minimum multiply-accumulate count before a trailing update is fanned
/// out over worker threads (same rationale and value as the LU module).
const PAR_MIN_MACS: usize = 1 << 18;

/// A Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite
/// matrix.
///
/// # Examples
///
/// ```
/// use pdn_num::{CholeskyDecomposition, Matrix};
///
/// # fn main() -> Result<(), pdn_num::SolveMatrixError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let ch = CholeskyDecomposition::new(&a)?;
/// let x = ch.solve(&[1.0, 1.0])?;
/// assert!((4.0 * x[0] + 2.0 * x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CholeskyDecomposition {
    l: Matrix<f64>,
}

impl CholeskyDecomposition {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read, so slight asymmetry from
    /// floating-point assembly noise is tolerated.
    ///
    /// The factorization is blocked like the LU: each [`BLOCK`]-wide panel
    /// is factored by the classical scalar recurrence (restricted to
    /// within-panel columns), and the trailing symmetric update
    /// `A₂₂ -= L₂₁·L₂₁ᵀ` goes through the cache-tiled [`crate::gemm`]
    /// microkernel, fanned over [`parallel`] row tiles when large enough
    /// to pay for the threads. Tile sizes are
    /// fixed constants, so the factor is bit-identical for any
    /// `PDN_THREADS`; matrices up to one block (`n ≤ 64`) reproduce the
    /// historical scalar arithmetic exactly.
    ///
    /// # Errors
    ///
    /// Returns [`SolveMatrixError::NotSquare`] for non-square input and
    /// [`SolveMatrixError::Singular`] when the matrix is not positive
    /// definite.
    pub fn new(a: &Matrix<f64>) -> Result<Self, SolveMatrixError> {
        if !a.is_square() {
            return Err(SolveMatrixError::NotSquare {
                rows: a.nrows(),
                cols: a.ncols(),
            });
        }
        let n = a.nrows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                l[(i, j)] = a[(i, j)];
            }
        }
        let data = l.as_mut_slice();
        let mut k0 = 0;
        while k0 < n {
            let k1 = (k0 + BLOCK).min(n);
            let kb = k1 - k0;
            // Panel: columns k0..k1, rows k0..n. Contributions from columns
            // before k0 were already applied by earlier trailing updates.
            for j in k0..k1 {
                let mut d = data[j * n + j];
                for k in k0..j {
                    d -= data[j * n + k] * data[j * n + k];
                }
                if d <= 0.0 || !d.is_finite() {
                    return Err(SolveMatrixError::Singular { column: j });
                }
                let djj = d.sqrt();
                data[j * n + j] = djj;
                for i in (j + 1)..n {
                    let mut s = data[i * n + j];
                    for k in k0..j {
                        s -= data[i * n + k] * data[j * n + k];
                    }
                    data[i * n + j] = s / djj;
                }
            }
            // Trailing symmetric update A22 -= L21·L21ᵀ through the GEMM
            // microkernel. The rectangular tiles also write the strictly
            // upper part of the trailing block; those entries are never
            // read by later panels and are zeroed below.
            if k1 < n {
                let nr = n - k1;
                let nc = n - k1;
                let mut l21 = Vec::with_capacity(nr * kb);
                for r in 0..nr {
                    l21.extend_from_slice(&data[(k1 + r) * n + k0..(k1 + r) * n + k0 + kb]);
                }
                let mut l21t = vec![0.0f64; kb * nc];
                for k in 0..kb {
                    for j in 0..nc {
                        l21t[k * nc + j] = l21[j * kb + k];
                    }
                }
                let (_, bottom) = data.split_at_mut(k1 * n);
                let tile = |ci: usize, chunk: &mut [f64]| {
                    let rows = chunk.len() / n;
                    f64::gemm_sub(
                        &mut chunk[k1..],
                        n,
                        rows,
                        nc,
                        &l21[ci * ROW_TILE * kb..],
                        kb,
                        &l21t,
                        nc,
                        kb,
                    );
                };
                if nr * nc * kb >= PAR_MIN_MACS {
                    parallel::par_for_each_chunk_mut(bottom, ROW_TILE * n, tile);
                } else {
                    for (ci, chunk) in bottom.chunks_mut(ROW_TILE * n).enumerate() {
                        tile(ci, chunk);
                    }
                }
            }
            k0 = k1;
        }
        // Scrub the scratch the rectangular trailing tiles left above the
        // diagonal so `l()` is a clean lower-triangular factor.
        for i in 0..n {
            for j in (i + 1)..n {
                data[i * n + j] = 0.0;
            }
        }
        Ok(CholeskyDecomposition { l })
    }

    /// System dimension.
    pub fn dim(&self) -> usize {
        self.l.nrows()
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix<f64> {
        &self.l
    }

    /// Solves `A·x = b` via two triangular solves.
    ///
    /// # Errors
    ///
    /// Returns [`SolveMatrixError::DimensionMismatch`] for a wrong-length
    /// right-hand side.
    pub fn solve(&self, b: &[f64]) -> Result<Vector<f64>, SolveMatrixError> {
        let n = self.dim();
        if b.len() != n {
            return Err(SolveMatrixError::DimensionMismatch {
                expected: n,
                got: b.len(),
            });
        }
        let mut y = b.to_vec();
        for i in 0..n {
            let mut s = y[i];
            for (k, &yk) in y.iter().enumerate().take(i) {
                s -= self.l[(i, k)] * yk;
            }
            y[i] = s / self.l[(i, i)];
        }
        for i in (0..n).rev() {
            let mut s = y[i];
            for (k, &yk) in y.iter().enumerate().skip(i + 1) {
                s -= self.l[(k, i)] * yk;
            }
            y[i] = s / self.l[(i, i)];
        }
        Ok(y)
    }

    /// Solves `L·y = b` (forward substitution only).
    ///
    /// Needed by the generalized eigensolver to form `L⁻¹ A L⁻ᵀ`.
    ///
    /// # Errors
    ///
    /// Returns [`SolveMatrixError::DimensionMismatch`] for a wrong-length
    /// right-hand side.
    pub fn solve_lower(&self, b: &[f64]) -> Result<Vector<f64>, SolveMatrixError> {
        let n = self.dim();
        if b.len() != n {
            return Err(SolveMatrixError::DimensionMismatch {
                expected: n,
                got: b.len(),
            });
        }
        let mut y = b.to_vec();
        for i in 0..n {
            let mut s = y[i];
            for (k, &yk) in y.iter().enumerate().take(i) {
                s -= self.l[(i, k)] * yk;
            }
            y[i] = s / self.l[(i, i)];
        }
        Ok(y)
    }

    /// Solves `Lᵀ·x = b` (backward substitution only).
    ///
    /// # Errors
    ///
    /// Returns [`SolveMatrixError::DimensionMismatch`] for a wrong-length
    /// right-hand side.
    pub fn solve_upper(&self, b: &[f64]) -> Result<Vector<f64>, SolveMatrixError> {
        let n = self.dim();
        if b.len() != n {
            return Err(SolveMatrixError::DimensionMismatch {
                expected: n,
                got: b.len(),
            });
        }
        let mut x = b.to_vec();
        for i in (0..n).rev() {
            let mut s = x[i];
            for (k, &xk) in x.iter().enumerate().skip(i + 1) {
                s -= self.l[(k, i)] * xk;
            }
            x[i] = s / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Log-determinant of `A` (twice the log-sum of the diagonal of `L`).
    pub fn log_det(&self) -> f64 {
        2.0 * (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>()
    }
}

/// Returns `true` when the symmetric matrix is positive definite.
///
/// # Examples
///
/// ```
/// use pdn_num::Matrix;
/// let spd = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
/// assert!(pdn_num::cholesky::is_positive_definite(&spd));
/// let indef = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
/// assert!(!pdn_num::cholesky::is_positive_definite(&indef));
/// ```
pub fn is_positive_definite(a: &Matrix<f64>) -> bool {
    CholeskyDecomposition::new(a).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn spd(n: usize) -> Matrix<f64> {
        // A = Mᵀ M + n·I is SPD for any M.
        let m = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 3) % 11) as f64 / 11.0);
        let mut a = m.transpose().matmul(&m);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd(6);
        let ch = CholeskyDecomposition::new(&a).unwrap();
        let back = ch.l().matmul(&ch.l().transpose());
        for i in 0..6 {
            for j in 0..6 {
                assert!(approx_eq(back[(i, j)], a[(i, j)], 1e-11));
            }
        }
    }

    #[test]
    fn solve_matches_lu() {
        let a = spd(8);
        let b: Vec<f64> = (0..8).map(|i| (i as f64).sin()).collect();
        let x_ch = CholeskyDecomposition::new(&a).unwrap().solve(&b).unwrap();
        let x_lu = crate::lu::solve(a, &b).unwrap();
        for i in 0..8 {
            assert!(approx_eq(x_ch[i], x_lu[i], 1e-10));
        }
    }

    #[test]
    fn indefinite_rejected() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!(matches!(
            CholeskyDecomposition::new(&a),
            Err(SolveMatrixError::Singular { .. })
        ));
    }

    #[test]
    fn triangular_solves_compose() {
        let a = spd(5);
        let ch = CholeskyDecomposition::new(&a).unwrap();
        let b: Vec<f64> = (0..5).map(|i| i as f64 + 1.0).collect();
        let y = ch.solve_lower(&b).unwrap();
        let x = ch.solve_upper(&y).unwrap();
        let direct = ch.solve(&b).unwrap();
        for i in 0..5 {
            assert!(approx_eq(x[i], direct[i], 1e-12));
        }
    }

    /// The pre-blocking scalar kernel, kept for equivalence testing.
    fn factor_scalar_reference(a: &Matrix<f64>) -> Matrix<f64> {
        let n = a.nrows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            let djj = d.sqrt();
            l[(j, j)] = djj;
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / djj;
            }
        }
        l
    }

    #[test]
    fn small_factor_bit_identical_to_scalar_reference() {
        for n in [1usize, 5, 33, 64] {
            let a = spd(n);
            let blocked = CholeskyDecomposition::new(&a).unwrap();
            let reference = factor_scalar_reference(&a);
            for i in 0..n {
                for j in 0..=i {
                    assert_eq!(
                        blocked.l()[(i, j)].to_bits(),
                        reference[(i, j)].to_bits(),
                        "n={n} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn blocked_factor_matches_scalar_reference_large() {
        let n = 150;
        let a = spd(n);
        let blocked = CholeskyDecomposition::new(&a).unwrap();
        let reference = factor_scalar_reference(&a);
        for i in 0..n {
            for j in 0..n {
                assert!(
                    approx_eq(blocked.l()[(i, j)], reference[(i, j)], 1e-10),
                    "({i},{j}): {} vs {}",
                    blocked.l()[(i, j)],
                    reference[(i, j)]
                );
            }
            // The strict upper triangle must be scrubbed clean.
            for j in (i + 1)..n {
                assert_eq!(blocked.l()[(i, j)], 0.0);
            }
        }
        let back = blocked.l().matmul(&blocked.l().transpose());
        for i in 0..n {
            for j in 0..n {
                assert!(approx_eq(back[(i, j)], a[(i, j)], 1e-9), "({i},{j})");
            }
        }
    }

    #[test]
    fn log_det_matches_lu_det() {
        let a = spd(4);
        let ch = CholeskyDecomposition::new(&a).unwrap();
        let det = crate::LuDecomposition::new(a).unwrap().det();
        assert!(approx_eq(ch.log_det(), det.ln(), 1e-10));
    }
}
