//! Cholesky factorization of symmetric positive-definite real matrices.
//!
//! Capacitance and inductance matrices produced by the quasi-static BEM are
//! symmetric positive definite; Cholesky is both the cheapest solver for them
//! and a *validity check* — a failed factorization flags a non-physical
//! extraction. It also underpins the generalized symmetric-definite
//! eigensolver used for transmission-line modal analysis.

use crate::{Matrix, SolveMatrixError, Vector};

/// A Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite
/// matrix.
///
/// # Examples
///
/// ```
/// use pdn_num::{CholeskyDecomposition, Matrix};
///
/// # fn main() -> Result<(), pdn_num::SolveMatrixError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let ch = CholeskyDecomposition::new(&a)?;
/// let x = ch.solve(&[1.0, 1.0])?;
/// assert!((4.0 * x[0] + 2.0 * x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CholeskyDecomposition {
    l: Matrix<f64>,
}

impl CholeskyDecomposition {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read, so slight asymmetry from
    /// floating-point assembly noise is tolerated.
    ///
    /// # Errors
    ///
    /// Returns [`SolveMatrixError::NotSquare`] for non-square input and
    /// [`SolveMatrixError::Singular`] when the matrix is not positive
    /// definite.
    pub fn new(a: &Matrix<f64>) -> Result<Self, SolveMatrixError> {
        if !a.is_square() {
            return Err(SolveMatrixError::NotSquare {
                rows: a.nrows(),
                cols: a.ncols(),
            });
        }
        let n = a.nrows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(SolveMatrixError::Singular { column: j });
            }
            let djj = d.sqrt();
            l[(j, j)] = djj;
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / djj;
            }
        }
        Ok(CholeskyDecomposition { l })
    }

    /// System dimension.
    pub fn dim(&self) -> usize {
        self.l.nrows()
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix<f64> {
        &self.l
    }

    /// Solves `A·x = b` via two triangular solves.
    ///
    /// # Errors
    ///
    /// Returns [`SolveMatrixError::DimensionMismatch`] for a wrong-length
    /// right-hand side.
    pub fn solve(&self, b: &[f64]) -> Result<Vector<f64>, SolveMatrixError> {
        let n = self.dim();
        if b.len() != n {
            return Err(SolveMatrixError::DimensionMismatch {
                expected: n,
                got: b.len(),
            });
        }
        let mut y = b.to_vec();
        for i in 0..n {
            let mut s = y[i];
            for (k, &yk) in y.iter().enumerate().take(i) {
                s -= self.l[(i, k)] * yk;
            }
            y[i] = s / self.l[(i, i)];
        }
        for i in (0..n).rev() {
            let mut s = y[i];
            for (k, &yk) in y.iter().enumerate().skip(i + 1) {
                s -= self.l[(k, i)] * yk;
            }
            y[i] = s / self.l[(i, i)];
        }
        Ok(y)
    }

    /// Solves `L·y = b` (forward substitution only).
    ///
    /// Needed by the generalized eigensolver to form `L⁻¹ A L⁻ᵀ`.
    ///
    /// # Errors
    ///
    /// Returns [`SolveMatrixError::DimensionMismatch`] for a wrong-length
    /// right-hand side.
    pub fn solve_lower(&self, b: &[f64]) -> Result<Vector<f64>, SolveMatrixError> {
        let n = self.dim();
        if b.len() != n {
            return Err(SolveMatrixError::DimensionMismatch {
                expected: n,
                got: b.len(),
            });
        }
        let mut y = b.to_vec();
        for i in 0..n {
            let mut s = y[i];
            for (k, &yk) in y.iter().enumerate().take(i) {
                s -= self.l[(i, k)] * yk;
            }
            y[i] = s / self.l[(i, i)];
        }
        Ok(y)
    }

    /// Solves `Lᵀ·x = b` (backward substitution only).
    ///
    /// # Errors
    ///
    /// Returns [`SolveMatrixError::DimensionMismatch`] for a wrong-length
    /// right-hand side.
    pub fn solve_upper(&self, b: &[f64]) -> Result<Vector<f64>, SolveMatrixError> {
        let n = self.dim();
        if b.len() != n {
            return Err(SolveMatrixError::DimensionMismatch {
                expected: n,
                got: b.len(),
            });
        }
        let mut x = b.to_vec();
        for i in (0..n).rev() {
            let mut s = x[i];
            for (k, &xk) in x.iter().enumerate().skip(i + 1) {
                s -= self.l[(k, i)] * xk;
            }
            x[i] = s / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Log-determinant of `A` (twice the log-sum of the diagonal of `L`).
    pub fn log_det(&self) -> f64 {
        2.0 * (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>()
    }
}

/// Returns `true` when the symmetric matrix is positive definite.
///
/// # Examples
///
/// ```
/// use pdn_num::Matrix;
/// let spd = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
/// assert!(pdn_num::cholesky::is_positive_definite(&spd));
/// let indef = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
/// assert!(!pdn_num::cholesky::is_positive_definite(&indef));
/// ```
pub fn is_positive_definite(a: &Matrix<f64>) -> bool {
    CholeskyDecomposition::new(a).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn spd(n: usize) -> Matrix<f64> {
        // A = Mᵀ M + n·I is SPD for any M.
        let m = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 3) % 11) as f64 / 11.0);
        let mut a = m.transpose().matmul(&m);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd(6);
        let ch = CholeskyDecomposition::new(&a).unwrap();
        let back = ch.l().matmul(&ch.l().transpose());
        for i in 0..6 {
            for j in 0..6 {
                assert!(approx_eq(back[(i, j)], a[(i, j)], 1e-11));
            }
        }
    }

    #[test]
    fn solve_matches_lu() {
        let a = spd(8);
        let b: Vec<f64> = (0..8).map(|i| (i as f64).sin()).collect();
        let x_ch = CholeskyDecomposition::new(&a).unwrap().solve(&b).unwrap();
        let x_lu = crate::lu::solve(a, &b).unwrap();
        for i in 0..8 {
            assert!(approx_eq(x_ch[i], x_lu[i], 1e-10));
        }
    }

    #[test]
    fn indefinite_rejected() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!(matches!(
            CholeskyDecomposition::new(&a),
            Err(SolveMatrixError::Singular { .. })
        ));
    }

    #[test]
    fn triangular_solves_compose() {
        let a = spd(5);
        let ch = CholeskyDecomposition::new(&a).unwrap();
        let b: Vec<f64> = (0..5).map(|i| i as f64 + 1.0).collect();
        let y = ch.solve_lower(&b).unwrap();
        let x = ch.solve_upper(&y).unwrap();
        let direct = ch.solve(&b).unwrap();
        for i in 0..5 {
            assert!(approx_eq(x[i], direct[i], 1e-12));
        }
    }

    #[test]
    fn log_det_matches_lu_det() {
        let a = spd(4);
        let ch = CholeskyDecomposition::new(&a).unwrap();
        let det = crate::LuDecomposition::new(a).unwrap().det();
        assert!(approx_eq(ch.log_det(), det.ln(), 1e-10));
    }
}
