//! Physical constants (SI units) shared by the electromagnetic crates.
//!
//! Centralizing these here keeps every solver (BEM, FDTD, transmission-line
//! MoM) numerically consistent: they all see exactly the same `ε₀`, `μ₀`,
//! and `c₀`.

/// Vacuum permittivity `ε₀` in F/m.
pub const EPS0: f64 = 8.854_187_812_8e-12;

/// Vacuum permeability `μ₀` in H/m.
pub const MU0: f64 = 1.256_637_062_12e-6;

/// Speed of light in vacuum `c₀` in m/s.
pub const C0: f64 = 299_792_458.0;

/// Free-space wave impedance `η₀ = √(μ₀/ε₀)` in ohms (≈ 376.73 Ω).
pub const ETA0: f64 = 376.730_313_668;

/// Copper conductivity in S/m at room temperature.
pub const SIGMA_COPPER: f64 = 5.8e7;

/// Tungsten conductivity in S/m (the HP test-plane metal).
pub const SIGMA_TUNGSTEN: f64 = 1.79e7;

/// Phase velocity in a homogeneous dielectric with relative permittivity
/// `eps_r`.
///
/// # Examples
///
/// ```
/// let v = pdn_num::phys::phase_velocity(4.0);
/// assert!((v - pdn_num::phys::C0 / 2.0).abs() < 1.0);
/// ```
pub fn phase_velocity(eps_r: f64) -> f64 {
    C0 / eps_r.sqrt()
}

/// Skin depth `δ = √(2/(ωμσ))` in meters at frequency `f` (Hz) for
/// conductivity `sigma` (S/m).
///
/// # Examples
///
/// ```
/// // Copper at 1 GHz: δ ≈ 2.09 µm.
/// let d = pdn_num::phys::skin_depth(1e9, pdn_num::phys::SIGMA_COPPER);
/// assert!((d - 2.09e-6).abs() < 0.05e-6);
/// ```
pub fn skin_depth(f: f64, sigma: f64) -> f64 {
    (1.0 / (std::f64::consts::PI * f * MU0 * sigma)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn constants_are_consistent() {
        // c₀ = 1/√(μ₀ε₀)
        assert!(approx_eq(C0, 1.0 / (MU0 * EPS0).sqrt(), 1e-7));
        // η₀ = √(μ₀/ε₀)
        assert!(approx_eq(ETA0, (MU0 / EPS0).sqrt(), 1e-7));
    }

    #[test]
    fn phase_velocity_scales_with_sqrt_eps() {
        assert!(approx_eq(phase_velocity(1.0), C0, 1e-12));
        assert!(approx_eq(phase_velocity(9.0), C0 / 3.0, 1e-9));
    }

    #[test]
    fn skin_depth_decreases_with_frequency() {
        let d1 = skin_depth(1e6, SIGMA_COPPER);
        let d2 = skin_depth(100e6, SIGMA_COPPER);
        assert!(approx_eq(d1 / d2, 10.0, 1e-9));
    }
}
