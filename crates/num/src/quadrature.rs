//! Gauss–Legendre quadrature.
//!
//! The BEM panel integrals of the layered Green's functions (far
//! interactions) and the Galerkin testing inner products are evaluated with
//! tensor-product Gauss–Legendre rules. Nodes and weights are computed at
//! run time by Newton iteration on the Legendre polynomials, so any order is
//! available.

/// A Gauss–Legendre rule on the canonical interval `[-1, 1]`.
///
/// # Examples
///
/// ```
/// use pdn_num::GaussLegendre;
///
/// let rule = GaussLegendre::new(5);
/// // ∫_{-1}^{1} x⁴ dx = 2/5; a 5-point rule is exact for degree ≤ 9.
/// let integral = rule.integrate(-1.0, 1.0, |x| x.powi(4));
/// assert!((integral - 0.4).abs() < 1e-14);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GaussLegendre {
    nodes: Vec<f64>,
    weights: Vec<f64>,
}

impl GaussLegendre {
    /// Builds an `n`-point rule.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "quadrature order must be positive");
        let mut nodes = vec![0.0; n];
        let mut weights = vec![0.0; n];
        let m = n.div_ceil(2);
        for i in 0..m {
            // Initial guess (Abramowitz & Stegun 25.4.30 style).
            let mut x = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
            let mut dp = 0.0;
            for _ in 0..100 {
                // Evaluate P_n(x) and P'_n(x) by recurrence.
                let (mut p0, mut p1) = (1.0f64, x);
                for k in 2..=n {
                    let pk = ((2 * k - 1) as f64 * x * p1 - (k - 1) as f64 * p0) / k as f64;
                    p0 = p1;
                    p1 = pk;
                }
                dp = n as f64 * (x * p1 - p0) / (x * x - 1.0);
                let dx = p1 / dp;
                x -= dx;
                if dx.abs() < 1e-15 {
                    break;
                }
            }
            let w = 2.0 / ((1.0 - x * x) * dp * dp);
            nodes[i] = -x;
            nodes[n - 1 - i] = x;
            weights[i] = w;
            weights[n - 1 - i] = w;
        }
        GaussLegendre { nodes, weights }
    }

    /// Number of points in the rule.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the rule has no points (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Nodes on `[-1, 1]`.
    pub fn nodes(&self) -> &[f64] {
        &self.nodes
    }

    /// Weights matching [`nodes`](Self::nodes).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Integrates `f` over `[a, b]`.
    pub fn integrate(&self, a: f64, b: f64, mut f: impl FnMut(f64) -> f64) -> f64 {
        let half = 0.5 * (b - a);
        let mid = 0.5 * (a + b);
        self.nodes
            .iter()
            .zip(&self.weights)
            .map(|(&x, &w)| w * f(mid + half * x))
            .sum::<f64>()
            * half
    }

    /// Integrates `f(x, y)` over the rectangle `[ax, bx] × [ay, by]` with a
    /// tensor-product rule.
    ///
    /// # Examples
    ///
    /// ```
    /// let rule = pdn_num::GaussLegendre::new(4);
    /// let v = rule.integrate_2d(0.0, 1.0, 0.0, 2.0, |x, y| x * y);
    /// assert!((v - 1.0).abs() < 1e-13);
    /// ```
    pub fn integrate_2d(
        &self,
        ax: f64,
        bx: f64,
        ay: f64,
        by: f64,
        mut f: impl FnMut(f64, f64) -> f64,
    ) -> f64 {
        let hx = 0.5 * (bx - ax);
        let mx = 0.5 * (ax + bx);
        let hy = 0.5 * (by - ay);
        let my = 0.5 * (ay + by);
        let mut sum = 0.0;
        for (&xi, &wi) in self.nodes.iter().zip(&self.weights) {
            let x = mx + hx * xi;
            for (&yj, &wj) in self.nodes.iter().zip(&self.weights) {
                sum += wi * wj * f(x, my + hy * yj);
            }
        }
        sum * hx * hy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn weights_sum_to_interval_length() {
        for n in 1..=12 {
            let rule = GaussLegendre::new(n);
            let s: f64 = rule.weights().iter().sum();
            assert!(approx_eq(s, 2.0, 1e-13), "order {n}");
        }
    }

    #[test]
    fn exact_for_polynomials_up_to_degree_2n_minus_1() {
        for n in 1..=8 {
            let rule = GaussLegendre::new(n);
            for d in 0..(2 * n) {
                let exact = if d % 2 == 0 {
                    2.0 / (d as f64 + 1.0)
                } else {
                    0.0
                };
                let got = rule.integrate(-1.0, 1.0, |x| x.powi(d as i32));
                assert!(approx_eq(got, exact, 1e-12), "n={n} degree={d}");
            }
        }
    }

    #[test]
    fn nodes_symmetric_about_origin() {
        let rule = GaussLegendre::new(7);
        for i in 0..7 {
            assert!(approx_eq(rule.nodes()[i], -rule.nodes()[6 - i], 1e-14));
        }
        // Odd order has a node at zero.
        assert!(rule.nodes()[3].abs() < 1e-15);
    }

    #[test]
    fn transformed_interval() {
        let rule = GaussLegendre::new(10);
        let got = rule.integrate(0.0, std::f64::consts::PI, f64::sin);
        assert!(approx_eq(got, 2.0, 1e-10));
    }

    #[test]
    fn two_dimensional_gaussian_bump() {
        let rule = GaussLegendre::new(16);
        // ∫∫ exp(-(x²+y²)) over [-3,3]² ≈ π·erf(3)² ≈ 3.14153.
        let got = rule.integrate_2d(-3.0, 3.0, -3.0, 3.0, |x, y| (-(x * x + y * y)).exp());
        assert!(approx_eq(got, std::f64::consts::PI, 1e-4));
    }

    #[test]
    fn known_5_point_weights() {
        let rule = GaussLegendre::new(5);
        // Reference values from Abramowitz & Stegun.
        assert!(approx_eq(rule.weights()[2], 128.0 / 225.0, 1e-13));
        assert!(approx_eq(rule.nodes()[4], 0.906179845938664, 1e-12));
    }
}
