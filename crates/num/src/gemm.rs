//! Cache-tiled GEMM-style microkernels behind the blocked factorizations.
//!
//! The blocked LU ([`crate::LuDecomposition`]) and Cholesky
//! ([`crate::CholeskyDecomposition`]) spend almost all of their time in one
//! operation: the trailing-matrix update `C -= A·B`. This module is that
//! operation, written the same way the ACA panel kernels of
//! [`crate::aca`] are: explicit fixed-width f64 lane groups ([`LANES`] = 8)
//! with zero-held tails and a fixed reduction order, so the result is
//! **bit-identical for any worker count** — the lane loops carry no
//! cross-lane reductions and every accumulator sums its `k` products in
//! ascending order.
//!
//! Complex matrices are processed in split re/im form: each `B` column
//! group is unpacked once into separate real and imaginary f64 planes, and
//! the inner loop runs the four-real-multiply complex MAC on plain f64
//! lanes. Both element types implement [`GemmScalar`], the trait bound the
//! blocked factorizations use.
//!
//! # Instruction-set dispatch
//!
//! On `x86_64` the kernel bodies are additionally compiled under
//! `#[target_feature(enable = "avx2")]` and selected at runtime with
//! [`std::arch::is_x86_feature_detected!`]. The wide path runs the *same*
//! element-wise IEEE multiplies, adds, and subtracts in the same reduction
//! order — `fma` is deliberately **not** enabled, so no contraction can
//! change rounding — which makes its results bit-identical to the portable
//! path; only the register width differs. Other architectures always take
//! the portable path.

use crate::{c64, Scalar};

/// Fixed f64 lane-group width of every microkernel in this module.
///
/// Matches the interleave width of the ACA panel kernels
/// ([`crate::aca::PANEL_LANES`]); chosen so a lane group is one cache line
/// of f64.
pub const LANES: usize = 8;

/// Panel (block) width used by the blocked LU and Cholesky factorizations.
///
/// Fixed — never derived from the worker count — so factorizations are
/// reproducible bit-for-bit under any `PDN_THREADS`.
pub const BLOCK: usize = 64;

/// Row-tile height used when a trailing update is fanned out over
/// [`crate::parallel`] workers. Tile boundaries depend only on this
/// constant, so the work decomposition (and therefore every accumulator's
/// contents) is identical for any worker count.
pub const ROW_TILE: usize = 32;

/// Element types with a lane-group `C -= A·B` microkernel.
///
/// Implemented for `f64` (direct lanes) and [`c64`] (split re/im planes).
/// The contract shared by both: for every output element `c[i][j]`, the
/// products `a[i][k]·b[k][j]` are accumulated into a fresh lane accumulator
/// in ascending `k` order and subtracted from `c[i][j]` once — the same
/// arithmetic for the full-width and zero-held tail paths, and independent
/// of how callers tile the row range.
pub trait GemmScalar: Scalar {
    /// Real flops per scalar multiply-accumulate, used by the
    /// `PDN_LU_STATS` GFLOP/s report (2 for `f64`, 8 for [`c64`]).
    const FLOPS_PER_MAC: f64;

    /// Short type label used by the `PDN_LU_STATS` report.
    const LABEL: &'static str;

    /// The rank-1 pivot-row update of the panel factorization, applied to
    /// every row strictly below the pivot.
    ///
    /// `rows` holds whole matrix rows of stride `ld`. For each row, the
    /// multiplier `m = row[col] / pivot` is stored back into `row[col]`
    /// and, when nonzero, `row[col + 1..end] -= m·u` is applied
    /// element-wise, where `u` is the pivot row's `col + 1..end` segment
    /// (so `u.len() == end - col - 1`, at most [`BLOCK`] − 1).
    ///
    /// Bit-identical to the classical scalar elimination statement for
    /// statement: every element sees the same divide, the same
    /// fully-formed product, and the same single subtract — there is no
    /// cross-element reduction, and the split re/im staging of the
    /// complex path copies values without refactoring any expression.
    fn panel_rank1(rows: &mut [Self], ld: usize, col: usize, end: usize, pivot: Self, u: &[Self]);

    /// Rank-`kb` update `C -= A·B` on strided row-major operands.
    ///
    /// `c` is `m×n` with row stride `ldc`, `a` is `m×kb` with row stride
    /// `lda`, and `b` is `kb×n` with row stride `ldb`. Only the first `n`
    /// (resp. `kb`) elements of each row are touched; the strides let the
    /// operands live inside larger matrices.
    #[allow(clippy::too_many_arguments)]
    fn gemm_sub(
        c: &mut [Self],
        ldc: usize,
        m: usize,
        n: usize,
        a: &[Self],
        lda: usize,
        b: &[Self],
        ldb: usize,
        kb: usize,
    );
}

#[inline]
#[allow(clippy::too_many_arguments)]
fn check_operands<T>(
    c: &[T],
    ldc: usize,
    m: usize,
    n: usize,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    kb: usize,
) {
    if m == 0 || n == 0 || kb == 0 {
        return;
    }
    debug_assert!(c.len() >= (m - 1) * ldc + n, "C operand too short");
    debug_assert!(a.len() >= (m - 1) * lda + kb, "A operand too short");
    debug_assert!(b.len() >= (kb - 1) * ldb + n, "B operand too short");
    debug_assert!(ldc >= n && ldb >= n && lda >= kb, "stride below row width");
}

impl GemmScalar for f64 {
    const FLOPS_PER_MAC: f64 = 2.0;
    const LABEL: &'static str = "f64";

    #[inline]
    fn panel_rank1(rows: &mut [Self], ld: usize, col: usize, end: usize, pivot: Self, u: &[Self]) {
        debug_assert_eq!(u.len(), end - col - 1, "pivot-row segment mismatch");
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the feature was just detected at runtime.
            unsafe { panel_rank1_f64_avx2(rows, ld, col, end, pivot, u) };
            return;
        }
        panel_rank1_f64_body(rows, ld, col, end, pivot, u);
    }

    #[inline]
    fn gemm_sub(
        c: &mut [Self],
        ldc: usize,
        m: usize,
        n: usize,
        a: &[Self],
        lda: usize,
        b: &[Self],
        ldb: usize,
        kb: usize,
    ) {
        check_operands(c, ldc, m, n, a, lda, b, ldb, kb);
        if m == 0 || n == 0 || kb == 0 {
            return;
        }
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the feature was just detected at runtime.
            unsafe { gemm_sub_f64_avx2(c, ldc, m, n, a, lda, b, ldb, kb) };
            return;
        }
        gemm_sub_f64_body(c, ldc, m, n, a, lda, b, ldb, kb);
    }
}

#[inline(always)]
fn panel_rank1_f64_body(
    rows: &mut [f64],
    ld: usize,
    col: usize,
    end: usize,
    pivot: f64,
    u: &[f64],
) {
    for row in rows.chunks_exact_mut(ld) {
        let m = row[col] / pivot;
        row[col] = m;
        if m == 0.0 {
            continue;
        }
        for (yq, &xq) in row[col + 1..end].iter_mut().zip(u) {
            *yq -= m * xq;
        }
    }
}

/// The same body, compiled for 256-bit registers — bit-identical output.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn panel_rank1_f64_avx2(
    rows: &mut [f64],
    ld: usize,
    col: usize,
    end: usize,
    pivot: f64,
    u: &[f64],
) {
    panel_rank1_f64_body(rows, ld, col, end, pivot, u);
}

#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn gemm_sub_f64_body(
    c: &mut [f64],
    ldc: usize,
    m: usize,
    n: usize,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    kb: usize,
) {
    {
        let mut jb = 0;
        while jb < n {
            let w = (n - jb).min(LANES);
            if w == LANES {
                // Full-width column group: fixed-trip-count lane loops the
                // compiler turns into packed f64 arithmetic.
                for i in 0..m {
                    let arow = &a[i * lda..i * lda + kb];
                    let mut acc = [0.0f64; LANES];
                    for (k, &aik) in arow.iter().enumerate() {
                        let brow = &b[k * ldb + jb..k * ldb + jb + LANES];
                        for q in 0..LANES {
                            acc[q] += aik * brow[q];
                        }
                    }
                    let crow = &mut c[i * ldc + jb..i * ldc + jb + LANES];
                    for q in 0..LANES {
                        crow[q] -= acc[q];
                    }
                }
            } else {
                // Tail group: zero-held lanes — the same fixed-width
                // arithmetic on a zero-padded load, only `w` lanes stored.
                for i in 0..m {
                    let arow = &a[i * lda..i * lda + kb];
                    let mut acc = [0.0f64; LANES];
                    for (k, &aik) in arow.iter().enumerate() {
                        let mut bl = [0.0f64; LANES];
                        bl[..w].copy_from_slice(&b[k * ldb + jb..k * ldb + jb + w]);
                        for q in 0..LANES {
                            acc[q] += aik * bl[q];
                        }
                    }
                    let crow = &mut c[i * ldc + jb..i * ldc + jb + w];
                    for (q, cq) in crow.iter_mut().enumerate() {
                        *cq -= acc[q];
                    }
                }
            }
            jb += w;
        }
    }
}

/// The same body, compiled for 256-bit registers — bit-identical output.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2")]
unsafe fn gemm_sub_f64_avx2(
    c: &mut [f64],
    ldc: usize,
    m: usize,
    n: usize,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    kb: usize,
) {
    gemm_sub_f64_body(c, ldc, m, n, a, lda, b, ldb, kb);
}

impl GemmScalar for c64 {
    const FLOPS_PER_MAC: f64 = 8.0;
    const LABEL: &'static str = "c64";

    #[inline]
    fn panel_rank1(rows: &mut [Self], ld: usize, col: usize, end: usize, pivot: Self, u: &[Self]) {
        debug_assert_eq!(u.len(), end - col - 1, "pivot-row segment mismatch");
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the feature was just detected at runtime.
            unsafe { panel_rank1_c64_avx2(rows, ld, col, end, pivot, u) };
            return;
        }
        panel_rank1_c64_body(rows, ld, col, end, pivot, u);
    }

    #[inline]
    fn gemm_sub(
        c: &mut [Self],
        ldc: usize,
        m: usize,
        n: usize,
        a: &[Self],
        lda: usize,
        b: &[Self],
        ldb: usize,
        kb: usize,
    ) {
        check_operands(c, ldc, m, n, a, lda, b, ldb, kb);
        if m == 0 || n == 0 || kb == 0 {
            return;
        }
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the feature was just detected at runtime.
            unsafe { gemm_sub_c64_avx2(c, ldc, m, n, a, lda, b, ldb, kb) };
            return;
        }
        gemm_sub_c64_body(c, ldc, m, n, a, lda, b, ldb, kb);
    }
}

#[inline(always)]
fn panel_rank1_c64_body(
    rows: &mut [c64],
    ld: usize,
    col: usize,
    end: usize,
    pivot: c64,
    u: &[c64],
) {
    // Stage the pivot-row segment into split re/im planes once — the
    // same trick as the gemm kernel: the inner loop then reads
    // contiguous f64 lanes instead of interleaved pairs. Copying values
    // does not change them; each update is still the spelled-out form of
    // `y[q] -= m * u[q]`: the product is the exact four-multiply
    // expression of `c64::mul`, fully formed before the subtraction —
    // identical rounding to the scalar path.
    let w = end - col - 1;
    debug_assert!(w < BLOCK, "panel wider than BLOCK");
    let mut ur = [0.0f64; BLOCK];
    let mut ui = [0.0f64; BLOCK];
    for (q, uq) in u.iter().enumerate() {
        ur[q] = uq.re;
        ui[q] = uq.im;
    }
    for row in rows.chunks_exact_mut(ld) {
        let m = row[col] / pivot;
        row[col] = m;
        if m == c64::new(0.0, 0.0) {
            continue;
        }
        let (mr, mi) = (m.re, m.im);
        let yrow = &mut row[col + 1..end];
        for (q, yq) in yrow.iter_mut().enumerate() {
            let pr = mr * ur[q] - mi * ui[q];
            let pi = mr * ui[q] + mi * ur[q];
            yq.re -= pr;
            yq.im -= pi;
        }
    }
}

/// The same body, compiled for 256-bit registers — bit-identical output.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn panel_rank1_c64_avx2(
    rows: &mut [c64],
    ld: usize,
    col: usize,
    end: usize,
    pivot: c64,
    u: &[c64],
) {
    panel_rank1_c64_body(rows, ld, col, end, pivot, u);
}

#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn gemm_sub_c64_body(
    c: &mut [c64],
    ldc: usize,
    m: usize,
    n: usize,
    a: &[c64],
    lda: usize,
    b: &[c64],
    ldb: usize,
    kb: usize,
) {
    {
        // Split re/im planes for one B column group, one k-chunk at a time.
        // All scratch lives on the stack: the B planes are BLOCK×LANES f64
        // (4 KiB each) and the accumulators ROW_TILE×LANES f64 (2 KiB
        // each), so a whole working set fits in L1.
        let mut bre = [0.0f64; BLOCK * LANES];
        let mut bim = [0.0f64; BLOCK * LANES];
        for i0 in (0..m).step_by(ROW_TILE) {
            let mt = (m - i0).min(ROW_TILE);
            let mut jb = 0;
            while jb < n {
                let w = (n - jb).min(LANES);
                // Accumulators persist across k-chunks so the per-element
                // reduction order is plain ascending k however the chunk
                // and tile loops slice the operands.
                let mut acc_re = [[0.0f64; LANES]; ROW_TILE];
                let mut acc_im = [[0.0f64; LANES]; ROW_TILE];
                let mut k0 = 0;
                while k0 < kb {
                    let kc = (kb - k0).min(BLOCK);
                    // Unpack the B group chunk once; tail lanes held at zero.
                    for k in 0..kc {
                        let brow = &b[(k0 + k) * ldb + jb..(k0 + k) * ldb + jb + w];
                        let re = &mut bre[k * LANES..(k + 1) * LANES];
                        let im = &mut bim[k * LANES..(k + 1) * LANES];
                        for q in 0..LANES {
                            if q < w {
                                re[q] = brow[q].re;
                                im[q] = brow[q].im;
                            } else {
                                re[q] = 0.0;
                                im[q] = 0.0;
                            }
                        }
                    }
                    for ii in 0..mt {
                        let arow = &a[(i0 + ii) * lda + k0..(i0 + ii) * lda + k0 + kc];
                        let (are, aim) = (&mut acc_re[ii], &mut acc_im[ii]);
                        for (k, aik) in arow.iter().enumerate() {
                            let (ar, ai) = (aik.re, aik.im);
                            let br = &bre[k * LANES..(k + 1) * LANES];
                            let bi = &bim[k * LANES..(k + 1) * LANES];
                            for q in 0..LANES {
                                are[q] += ar * br[q] - ai * bi[q];
                                aim[q] += ar * bi[q] + ai * br[q];
                            }
                        }
                    }
                    k0 += kc;
                }
                for ii in 0..mt {
                    let crow = &mut c[(i0 + ii) * ldc + jb..(i0 + ii) * ldc + jb + w];
                    for (q, cq) in crow.iter_mut().enumerate() {
                        cq.re -= acc_re[ii][q];
                        cq.im -= acc_im[ii][q];
                    }
                }
                jb += w;
            }
        }
    }
}

/// The same body, compiled for 256-bit registers — bit-identical output.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2")]
unsafe fn gemm_sub_c64_avx2(
    c: &mut [c64],
    ldc: usize,
    m: usize,
    n: usize,
    a: &[c64],
    lda: usize,
    b: &[c64],
    ldb: usize,
    kb: usize,
) {
    gemm_sub_c64_body(c, ldc, m, n, a, lda, b, ldb, kb);
}

/// In-place unit-lower triangular solve `X := L⁻¹·X` over lane groups of
/// the columns of `X`.
///
/// `l` is a packed `k×k` row-major block whose strict lower triangle holds
/// the multipliers (the diagonal is implicitly 1); `x` is `k×n` with row
/// stride `ldx`. Each column is solved independently with the forward
/// recurrence accumulated in ascending row order, so the result does not
/// depend on how columns are grouped.
pub fn trsm_lower_unit<T: Scalar>(l: &[T], k: usize, x: &mut [T], ldx: usize, n: usize) {
    if k == 0 || n == 0 {
        return;
    }
    debug_assert!(l.len() >= k * k, "L block too short");
    debug_assert!(x.len() >= (k - 1) * ldx + n, "X operand too short");
    let mut jb = 0;
    while jb < n {
        let w = (n - jb).min(LANES);
        // Load the column group into a contiguous tile (zero-held tails),
        // run the whole forward solve on lanes, store back.
        let mut tile = vec![[T::zero(); LANES]; k];
        for (i, row) in tile.iter_mut().enumerate() {
            let src = &x[i * ldx + jb..i * ldx + jb + w];
            row[..w].copy_from_slice(src);
        }
        for i in 1..k {
            let mut acc = [T::zero(); LANES];
            for t in 0..i {
                let lit = l[i * k + t];
                let xr = &tile[t];
                for q in 0..LANES {
                    acc[q] += lit * xr[q];
                }
            }
            for q in 0..LANES {
                tile[i][q] -= acc[q];
            }
        }
        for (i, row) in tile.iter().enumerate() {
            x[i * ldx + jb..i * ldx + jb + w].copy_from_slice(&row[..w]);
        }
        jb += w;
    }
}

/// In-place non-unit upper triangular solve `X := U⁻¹·X` over lane groups
/// of the columns of `X`.
///
/// `u` is a packed `k×k` row-major block whose upper triangle (including
/// the diagonal) holds the factor; `x` is `k×n` with row stride `ldx`.
/// Backward recurrence, ascending-`t` accumulation per row — fixed order,
/// independent of column grouping.
pub fn trsm_upper<T: Scalar>(u: &[T], k: usize, x: &mut [T], ldx: usize, n: usize) {
    if k == 0 || n == 0 {
        return;
    }
    debug_assert!(u.len() >= k * k, "U block too short");
    debug_assert!(x.len() >= (k - 1) * ldx + n, "X operand too short");
    let mut jb = 0;
    while jb < n {
        let w = (n - jb).min(LANES);
        let mut tile = vec![[T::zero(); LANES]; k];
        for (i, row) in tile.iter_mut().enumerate() {
            let src = &x[i * ldx + jb..i * ldx + jb + w];
            row[..w].copy_from_slice(src);
        }
        for i in (0..k).rev() {
            let mut acc = [T::zero(); LANES];
            for t in (i + 1)..k {
                let uit = u[i * k + t];
                let xr = &tile[t];
                for q in 0..LANES {
                    acc[q] += uit * xr[q];
                }
            }
            let uii = u[i * k + i];
            for q in 0..LANES {
                let v = tile[i][q] - acc[q];
                tile[i][q] = v / uii;
            }
        }
        for (i, row) in tile.iter().enumerate() {
            x[i * ldx + jb..i * ldx + jb + w].copy_from_slice(&row[..w]);
        }
        jb += w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    }

    #[allow(clippy::too_many_arguments)]
    fn naive_gemm_sub<T: Scalar>(
        c: &mut [T],
        ldc: usize,
        m: usize,
        n: usize,
        a: &[T],
        lda: usize,
        b: &[T],
        ldb: usize,
        kb: usize,
    ) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = T::zero();
                for k in 0..kb {
                    acc += a[i * lda + k] * b[k * ldb + j];
                }
                c[i * ldc + j] -= acc;
            }
        }
    }

    #[test]
    fn f64_matches_naive_including_tails() {
        let mut state = 7u64;
        for &(m, n, kb) in &[(1, 1, 1), (3, 5, 2), (8, 8, 8), (13, 29, 17), (32, 65, 64)] {
            let a: Vec<f64> = (0..m * kb).map(|_| lcg(&mut state)).collect();
            let b: Vec<f64> = (0..kb * n).map(|_| lcg(&mut state)).collect();
            let mut c: Vec<f64> = (0..m * n).map(|_| lcg(&mut state)).collect();
            let mut c_ref = c.clone();
            f64::gemm_sub(&mut c, n, m, n, &a, kb, &b, n, kb);
            naive_gemm_sub(&mut c_ref, n, m, n, &a, kb, &b, n, kb);
            for (x, y) in c.iter().zip(&c_ref) {
                assert!((x - y).abs() <= 1e-12 * y.abs().max(1.0), "{m}x{n}x{kb}");
            }
        }
    }

    #[test]
    fn c64_matches_naive_including_tails() {
        let mut state = 11u64;
        for &(m, n, kb) in &[(1, 1, 1), (2, 9, 3), (8, 16, 8), (7, 27, 70), (16, 33, 129)] {
            let cx = |s: &mut u64| c64::new(lcg(s), lcg(s));
            let a: Vec<c64> = (0..m * kb).map(|_| cx(&mut state)).collect();
            let b: Vec<c64> = (0..kb * n).map(|_| cx(&mut state)).collect();
            let mut c: Vec<c64> = (0..m * n).map(|_| cx(&mut state)).collect();
            let mut c_ref = c.clone();
            c64::gemm_sub(&mut c, n, m, n, &a, kb, &b, n, kb);
            naive_gemm_sub(&mut c_ref, n, m, n, &a, kb, &b, n, kb);
            for (x, y) in c.iter().zip(&c_ref) {
                assert!(
                    (*x - *y).norm() <= 1e-12 * y.norm().max(1.0),
                    "{m}x{n}x{kb}"
                );
            }
        }
    }

    #[test]
    fn strided_operands_leave_padding_untouched() {
        // Strides larger than the row width: the pad columns must survive.
        let (m, n, kb, ld) = (4, 5, 3, 9);
        let mut state = 3u64;
        let a: Vec<f64> = (0..m * ld).map(|_| lcg(&mut state)).collect();
        let b: Vec<f64> = (0..kb * ld).map(|_| lcg(&mut state)).collect();
        let mut c: Vec<f64> = (0..m * ld).map(|_| lcg(&mut state)).collect();
        let pad: Vec<f64> = c
            .iter()
            .enumerate()
            .filter(|(idx, _)| idx % ld >= n)
            .map(|(_, &v)| v)
            .collect();
        f64::gemm_sub(&mut c, ld, m, n, &a, ld, &b, ld, kb);
        let pad_after: Vec<f64> = c
            .iter()
            .enumerate()
            .filter(|(idx, _)| idx % ld >= n)
            .map(|(_, &v)| v)
            .collect();
        assert_eq!(pad, pad_after);
    }

    #[test]
    fn tail_grouping_is_bitwise_stable() {
        // The same (i, j) element must come out bit-identical whether it
        // sits in a full lane group or a tail: compute an n=24 product and
        // an n=21 product over the same data and compare the overlap.
        let (m, kb) = (6, 10);
        let mut state = 19u64;
        let a: Vec<f64> = (0..m * kb).map(|_| lcg(&mut state)).collect();
        let b: Vec<f64> = (0..kb * 24).map(|_| lcg(&mut state)).collect();
        let base: Vec<f64> = (0..m * 24).map(|_| lcg(&mut state)).collect();
        let mut full = base.clone();
        f64::gemm_sub(&mut full, 24, m, 24, &a, kb, &b, 24, kb);
        let mut narrow = base.clone();
        f64::gemm_sub(&mut narrow, 24, m, 21, &a, kb, &b, 24, kb);
        for i in 0..m {
            for j in 0..21 {
                assert_eq!(full[i * 24 + j].to_bits(), narrow[i * 24 + j].to_bits());
            }
        }
    }

    #[test]
    fn trsm_round_trips_against_matmul() {
        let k = 13;
        let n = 21;
        let mut state = 23u64;
        // Unit lower L and non-unit upper U packed into k×k blocks.
        let mut l = vec![0.0f64; k * k];
        let mut u = vec![0.0f64; k * k];
        for i in 0..k {
            l[i * k + i] = 1.0;
            u[i * k + i] = 2.0 + lcg(&mut state).abs();
            for j in 0..i {
                l[i * k + j] = lcg(&mut state);
                u[j * k + i] = lcg(&mut state);
            }
        }
        let x0: Vec<f64> = (0..k * n).map(|_| lcg(&mut state)).collect();
        // Forward: solve L y = x0, then check L·y == x0.
        let mut y = x0.clone();
        trsm_lower_unit(&l, k, &mut y, n, n);
        for i in 0..k {
            for j in 0..n {
                let mut s = 0.0;
                for t in 0..k {
                    s += l[i * k + t] * y[t * n + j];
                }
                assert!((s - x0[i * n + j]).abs() < 1e-10);
            }
        }
        // Backward: solve U z = x0, then check U·z == x0.
        let mut z = x0.clone();
        trsm_upper(&u, k, &mut z, n, n);
        for i in 0..k {
            for j in 0..n {
                let mut s = 0.0;
                for t in i..k {
                    s += u[i * k + t] * z[t * n + j];
                }
                assert!((s - x0[i * n + j]).abs() < 1e-10);
            }
        }
    }
}
