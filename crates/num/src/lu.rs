//! LU factorization with partial pivoting.
//!
//! This is the single direct solver behind the whole toolkit: the BEM port
//! solve, the capacitance inversion `C = P⁻¹`, the reluctance computation
//! `B = AᵀL⁻¹A`, the MNA transient step (factor once, back-substitute every
//! step — the paper's "efficient circuit solver"), and the AC sweep.

use crate::{Matrix, Scalar, Vector};
use std::error::Error;
use std::fmt;

/// Error returned when a matrix cannot be factored or a solve is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveMatrixError {
    /// The matrix is not square.
    NotSquare {
        /// Row count of the offending matrix.
        rows: usize,
        /// Column count of the offending matrix.
        cols: usize,
    },
    /// A zero (or numerically negligible) pivot was encountered.
    Singular {
        /// Elimination column at which factorization broke down.
        column: usize,
    },
    /// The right-hand side length does not match the system dimension.
    DimensionMismatch {
        /// System dimension.
        expected: usize,
        /// Provided right-hand-side length.
        got: usize,
    },
}

impl fmt::Display for SolveMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveMatrixError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square ({rows}x{cols})")
            }
            SolveMatrixError::Singular { column } => {
                write!(f, "matrix is singular at elimination column {column}")
            }
            SolveMatrixError::DimensionMismatch { expected, got } => {
                write!(f, "right-hand side has length {got}, expected {expected}")
            }
        }
    }
}

impl Error for SolveMatrixError {}

/// An LU factorization `P·A = L·U` with partial (row) pivoting.
///
/// The factorization is performed once; [`solve`](Self::solve) then costs
/// only a pair of triangular substitutions. This is exactly the structure the
/// paper exploits for uniform-time-step transient simulation.
///
/// # Examples
///
/// ```
/// use pdn_num::{LuDecomposition, Matrix};
///
/// # fn main() -> Result<(), pdn_num::SolveMatrixError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
/// let lu = LuDecomposition::new(a)?;
/// let x = lu.solve(&[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct LuDecomposition<T> {
    lu: Matrix<T>,
    perm: Vec<usize>,
    sign: f64,
}

impl<T: Scalar> fmt::Debug for LuDecomposition<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LuDecomposition")
            .field("dim", &self.lu.nrows())
            .field("sign", &self.sign)
            .finish()
    }
}

impl<T: Scalar> LuDecomposition<T> {
    /// Factors the matrix, consuming it.
    ///
    /// # Errors
    ///
    /// Returns [`SolveMatrixError::NotSquare`] for non-square input and
    /// [`SolveMatrixError::Singular`] when a pivot underflows the numerical
    /// threshold.
    pub fn new(a: Matrix<T>) -> Result<Self, SolveMatrixError> {
        if !a.is_square() {
            return Err(SolveMatrixError::NotSquare {
                rows: a.nrows(),
                cols: a.ncols(),
            });
        }
        let n = a.nrows();
        let mut lu = a;
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let scale = lu.max_abs().max(1.0);
        let tiny = scale * 1e-300;
        for k in 0..n {
            // Partial pivoting: find the largest entry in column k at/below
            // the diagonal.
            let mut p = k;
            let mut pmax = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax <= tiny {
                return Err(SolveMatrixError::Singular { column: k });
            }
            if p != k {
                perm.swap(p, k);
                sign = -sign;
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m == T::zero() {
                    continue;
                }
                for j in (k + 1)..n {
                    let u = lu[(k, j)];
                    lu[(i, j)] -= m * u;
                }
            }
        }
        Ok(LuDecomposition { lu, perm, sign })
    }

    /// System dimension.
    pub fn dim(&self) -> usize {
        self.lu.nrows()
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`SolveMatrixError::DimensionMismatch`] when `b` has the wrong
    /// length.
    pub fn solve(&self, b: &[T]) -> Result<Vector<T>, SolveMatrixError> {
        let n = self.dim();
        if b.len() != n {
            return Err(SolveMatrixError::DimensionMismatch {
                expected: n,
                got: b.len(),
            });
        }
        // Apply permutation, then forward and backward substitution.
        let mut x: Vector<T> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                s -= self.lu[(i, j)] * xj;
            }
            x[i] = s;
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                s -= self.lu[(i, j)] * xj;
            }
            x[i] = s / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A·X = B` for a matrix right-hand side, column by column.
    ///
    /// # Errors
    ///
    /// Returns [`SolveMatrixError::DimensionMismatch`] when `b.nrows()` does
    /// not equal the system dimension.
    pub fn solve_matrix(&self, b: &Matrix<T>) -> Result<Matrix<T>, SolveMatrixError> {
        let n = self.dim();
        if b.nrows() != n {
            return Err(SolveMatrixError::DimensionMismatch {
                expected: n,
                got: b.nrows(),
            });
        }
        let mut out = Matrix::zeros(n, b.ncols());
        for j in 0..b.ncols() {
            let col = b.col(j);
            let x = self.solve(&col)?;
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// Computes the matrix inverse.
    ///
    /// # Errors
    ///
    /// Propagates solve errors (cannot occur for a successfully factored
    /// system of matching dimension).
    pub fn inverse(&self) -> Result<Matrix<T>, SolveMatrixError> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Determinant, as the product of pivots times the permutation sign.
    pub fn det(&self) -> T {
        let mut d = T::from_f64(self.sign);
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

/// Convenience one-shot solve of `A·x = b`.
///
/// # Errors
///
/// See [`LuDecomposition::new`] and [`LuDecomposition::solve`].
///
/// # Examples
///
/// ```
/// use pdn_num::Matrix;
/// # fn main() -> Result<(), pdn_num::SolveMatrixError> {
/// let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, -1.0]]);
/// let x = pdn_num::lu::solve(a, &[3.0, 1.0])?;
/// assert!((x[0] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn solve<T: Scalar>(a: Matrix<T>, b: &[T]) -> Result<Vector<T>, SolveMatrixError> {
    LuDecomposition::new(a)?.solve(b)
}

/// Convenience inverse of a square matrix.
///
/// # Errors
///
/// See [`LuDecomposition::new`].
pub fn invert<T: Scalar>(a: Matrix<T>) -> Result<Matrix<T>, SolveMatrixError> {
    LuDecomposition::new(a)?.inverse()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{approx_eq, c64};

    #[test]
    fn solve_small_real_system() {
        let a = Matrix::from_rows(&[&[3.0, 2.0, -1.0], &[2.0, -2.0, 4.0], &[-1.0, 0.5, -1.0]]);
        let x = solve(a, &[1.0, -2.0, 0.0]).unwrap();
        assert!(approx_eq(x[0], 1.0, 1e-12));
        assert!(approx_eq(x[1], -2.0, 1e-12));
        assert!(approx_eq(x[2], -2.0, 1e-12));
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_matrix_reports_error() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        match LuDecomposition::new(a) {
            Err(SolveMatrixError::Singular { .. }) => {}
            other => panic!("expected Singular, got {other:?}"),
        }
    }

    #[test]
    fn not_square_reports_error() {
        let a = Matrix::<f64>::zeros(2, 3);
        assert_eq!(
            LuDecomposition::new(a).unwrap_err(),
            SolveMatrixError::NotSquare { rows: 2, cols: 3 }
        );
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Matrix::from_fn(5, 5, |i, j| {
            if i == j {
                4.0
            } else {
                1.0 / (1.0 + (i as f64 - j as f64).abs())
            }
        });
        let inv = invert(a.clone()).unwrap();
        let id = a.matmul(&inv);
        for i in 0..5 {
            for j in 0..5 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(approx_eq(id[(i, j)], expect, 1e-11), "({i},{j})");
            }
        }
    }

    #[test]
    fn determinant_of_triangular_and_permuted() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 3.0]]);
        let lu = LuDecomposition::new(a).unwrap();
        assert!(approx_eq(lu.det(), 6.0, 1e-12));
        // Swapping rows flips the sign.
        let b = Matrix::from_rows(&[&[0.0, 3.0], &[2.0, 1.0]]);
        let lub = LuDecomposition::new(b).unwrap();
        assert!(approx_eq(lub.det(), -6.0, 1e-12));
    }

    #[test]
    fn complex_system() {
        // (1+i) x + y = 2 ; x - i y = 0  =>  x = i y.
        let a = Matrix::from_rows(&[
            &[c64::new(1.0, 1.0), c64::ONE],
            &[c64::ONE, c64::new(0.0, -1.0)],
        ]);
        let x = solve(a.clone(), &[c64::new(2.0, 0.0), c64::ZERO]).unwrap();
        let r0 = a[(0, 0)] * x[0] + a[(0, 1)] * x[1];
        assert!((r0 - c64::new(2.0, 0.0)).norm() < 1e-12);
        let r1 = a[(1, 0)] * x[0] + a[(1, 1)] * x[1];
        assert!(r1.norm() < 1e-12);
    }

    #[test]
    fn solve_matrix_right_hand_sides() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let lu = LuDecomposition::new(a.clone()).unwrap();
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let x = lu.solve_matrix(&b).unwrap();
        let back = a.matmul(&x);
        assert!(approx_eq(back[(0, 0)], 1.0, 1e-12));
        assert!(approx_eq(back[(0, 1)], 0.0, 1e-12));
    }

    #[test]
    fn dimension_mismatch_on_solve() {
        let lu = LuDecomposition::new(Matrix::<f64>::identity(3)).unwrap();
        assert_eq!(
            lu.solve(&[1.0, 2.0]).unwrap_err(),
            SolveMatrixError::DimensionMismatch {
                expected: 3,
                got: 2
            }
        );
    }

    #[test]
    fn random_system_residual_small() {
        // Deterministic pseudo-random fill (LCG) keeps the test hermetic.
        let mut state: u64 = 0x243F_6A88_85A3_08D3;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let n = 30;
        let a = Matrix::from_fn(n, n, |i, j| next() + if i == j { 4.0 } else { 0.0 });
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = solve(a.clone(), &b).unwrap();
        let r = a.matvec(&x);
        for i in 0..n {
            assert!(approx_eq(r[i], b[i], 1e-10));
        }
    }
}
