//! Blocked LU factorization with partial pivoting.
//!
//! This is the single direct solver behind the whole toolkit: the BEM port
//! solve, the capacitance inversion `C = P⁻¹`, the reluctance computation
//! `B = AᵀL⁻¹A`, the MNA transient step (factor once, back-substitute every
//! step — the paper's "efficient circuit solver"), and the AC sweep.
//!
//! The factorization is right-looking and blocked: each [`gemm::BLOCK`]-wide
//! panel is factored with partial pivoting by the classical scalar
//! recurrence, the matching `U` row block is obtained by a lane-group
//! triangular solve, and the trailing matrix is updated through the
//! cache-tiled [`gemm`] microkernel — fanned out over
//! [`parallel`](crate::parallel) row tiles when the update is large enough
//! to pay for the threads. Tile and block sizes are fixed constants, never
//! derived from the worker count, so factors and solves are **bit-identical
//! for any `PDN_THREADS`**. For matrices up to one block (`n ≤ 64`) the
//! blocked loop degenerates to exactly the scalar elimination, so small
//! systems (ports, MNA stamps, transmission lines) keep their historical
//! bit patterns.
//!
//! Set `PDN_LU_STATS=1` to print a per-factorization stderr line with the
//! matrix dimension, block size, panel/solve/update time split, and the
//! effective GFLOP/s (matrices of at least one block only).

use crate::gemm::{self, GemmScalar, BLOCK, ROW_TILE};
use crate::{parallel, Matrix, Vector};
use std::error::Error;
use std::fmt;
use std::time::Instant;

/// Minimum multiply-accumulate count before a trailing update is fanned
/// out over worker threads; below this the spawn cost dominates. The
/// serial and parallel paths compute identical tiles in either case.
const PAR_MIN_MACS: usize = 1 << 18;

/// Error returned when a matrix cannot be factored or a solve is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveMatrixError {
    /// The matrix is not square.
    NotSquare {
        /// Row count of the offending matrix.
        rows: usize,
        /// Column count of the offending matrix.
        cols: usize,
    },
    /// A zero (or numerically negligible) pivot was encountered.
    Singular {
        /// Elimination column at which factorization broke down.
        column: usize,
    },
    /// The right-hand side length does not match the system dimension.
    DimensionMismatch {
        /// System dimension.
        expected: usize,
        /// Provided right-hand-side length.
        got: usize,
    },
    /// The input matrix contains a NaN or infinite entry. Rejected up
    /// front: a NaN entry would otherwise poison the elimination and
    /// surface as a misleading [`Singular`](Self::Singular) error.
    NonFinite {
        /// Row of the first non-finite entry (row-major scan order).
        row: usize,
        /// Column of the first non-finite entry.
        col: usize,
    },
}

impl fmt::Display for SolveMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveMatrixError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square ({rows}x{cols})")
            }
            SolveMatrixError::Singular { column } => {
                write!(f, "matrix is singular at elimination column {column}")
            }
            SolveMatrixError::DimensionMismatch { expected, got } => {
                write!(f, "right-hand side has length {got}, expected {expected}")
            }
            SolveMatrixError::NonFinite { row, col } => {
                write!(
                    f,
                    "matrix entry ({row},{col}) is NaN or infinite; cannot factor"
                )
            }
        }
    }
}

impl Error for SolveMatrixError {}

fn stats_enabled() -> bool {
    std::env::var("PDN_LU_STATS").as_deref() == Ok("1")
}

/// An LU factorization `P·A = L·U` with partial (row) pivoting.
///
/// The factorization is performed once; [`solve`](Self::solve) then costs
/// only a pair of triangular substitutions. This is exactly the structure the
/// paper exploits for uniform-time-step transient simulation.
///
/// # Examples
///
/// ```
/// use pdn_num::{LuDecomposition, Matrix};
///
/// # fn main() -> Result<(), pdn_num::SolveMatrixError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
/// let lu = LuDecomposition::new(a)?;
/// let x = lu.solve(&[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct LuDecomposition<T> {
    lu: Matrix<T>,
    perm: Vec<usize>,
    sign: f64,
}

impl<T: GemmScalar> fmt::Debug for LuDecomposition<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LuDecomposition")
            .field("dim", &self.lu.nrows())
            .field("sign", &self.sign)
            .finish()
    }
}

impl<T: GemmScalar> LuDecomposition<T> {
    /// Factors the matrix, consuming it.
    ///
    /// # Errors
    ///
    /// Returns [`SolveMatrixError::NotSquare`] for non-square input,
    /// [`SolveMatrixError::NonFinite`] when any entry is NaN or infinite,
    /// and [`SolveMatrixError::Singular`] when a pivot underflows the
    /// numerical threshold.
    pub fn new(a: Matrix<T>) -> Result<Self, SolveMatrixError> {
        if !a.is_square() {
            return Err(SolveMatrixError::NotSquare {
                rows: a.nrows(),
                cols: a.ncols(),
            });
        }
        let n = a.nrows();
        if let Some(idx) = a.as_slice().iter().position(|v| !v.is_finite()) {
            return Err(SolveMatrixError::NonFinite {
                row: idx / n,
                col: idx % n,
            });
        }
        let mut lu = a;
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let scale = lu.max_abs().max(1.0);
        let tiny = scale * 1e-300;

        let stats = stats_enabled() && n >= BLOCK;
        let t_start = stats.then(Instant::now);
        let mut panel_s = 0.0f64;
        let mut trsm_s = 0.0f64;
        let mut update_s = 0.0f64;

        let mut k0 = 0;
        while k0 < n {
            let k1 = (k0 + BLOCK).min(n);
            let kb = k1 - k0;
            let t0 = stats.then(Instant::now);

            // --- Panel factorization: columns k0..k1, rows k0..n ---------
            // Classical partial-pivot elimination restricted to the panel
            // columns; pivot columns are fully updated because every
            // previous panel already applied its trailing update here.
            {
                let data = lu.as_mut_slice();
                for j in k0..k1 {
                    let mut p = j;
                    let mut pmax = data[j * n + j].abs();
                    for i in (j + 1)..n {
                        let v = data[i * n + j].abs();
                        if v > pmax {
                            pmax = v;
                            p = i;
                        }
                    }
                    if pmax <= tiny {
                        return Err(SolveMatrixError::Singular { column: j });
                    }
                    if p != j {
                        perm.swap(p, j);
                        sign = -sign;
                        let (lo, hi) = data.split_at_mut(p * n);
                        lo[j * n..j * n + n].swap_with_slice(&mut hi[..n]);
                    }
                    let pivot = data[j * n + j];
                    // Rank-1 update of the panel columns: split the pivot
                    // row off so the `U` row and the target rows can be
                    // borrowed together, then hand the whole sweep to the
                    // lane-group panel kernel. Same arithmetic, same order
                    // as the classical loop.
                    let (top, rest) = data.split_at_mut((j + 1) * n);
                    let urow = &top[j * n + j + 1..j * n + k1];
                    T::panel_rank1(rest, n, j, k1, pivot, urow);
                }
            }
            if let Some(t0) = t0 {
                panel_s += t0.elapsed().as_secs_f64();
            }

            if k1 < n {
                let nc = n - k1;
                let nr = n - k1;
                let data = lu.as_mut_slice();
                let (top, bottom) = data.split_at_mut(k1 * n);

                // --- U12 := L11⁻¹ · A12 -----------------------------------
                let t1 = stats.then(Instant::now);
                let mut l11 = vec![T::zero(); kb * kb];
                for r in 0..kb {
                    l11[r * kb..(r + 1) * kb]
                        .copy_from_slice(&top[(k0 + r) * n + k0..(k0 + r) * n + k1]);
                }
                gemm::trsm_lower_unit(&l11, kb, &mut top[k0 * n + k1..], n, nc);
                if let Some(t1) = t1 {
                    trsm_s += t1.elapsed().as_secs_f64();
                }

                // --- Trailing update A22 -= L21 · U12 ---------------------
                let t2 = stats.then(Instant::now);
                // Pack L21 contiguously before C is mutated (the multiplier
                // columns live in the same rows as the update target).
                let mut l21 = Vec::with_capacity(nr * kb);
                for r in 0..nr {
                    l21.extend_from_slice(&bottom[r * n + k0..r * n + k0 + kb]);
                }
                let u12 = &top[k0 * n + k1..];
                let tile = |ci: usize, chunk: &mut [T]| {
                    let rows = chunk.len() / n;
                    T::gemm_sub(
                        &mut chunk[k1..],
                        n,
                        rows,
                        nc,
                        &l21[ci * ROW_TILE * kb..],
                        kb,
                        u12,
                        n,
                        kb,
                    );
                };
                if nr * nc * kb >= PAR_MIN_MACS {
                    parallel::par_for_each_chunk_mut(bottom, ROW_TILE * n, tile);
                } else {
                    for (ci, chunk) in bottom.chunks_mut(ROW_TILE * n).enumerate() {
                        tile(ci, chunk);
                    }
                }
                if let Some(t2) = t2 {
                    update_s += t2.elapsed().as_secs_f64();
                }
            }
            k0 = k1;
        }
        if let Some(t_start) = t_start {
            let total = t_start.elapsed().as_secs_f64();
            let flops = T::FLOPS_PER_MAC * (n as f64).powi(3) / 3.0;
            eprintln!(
                "[pdn-lu] factor {} n={n} nb={BLOCK} panel={panel_s:.3}s trsm={trsm_s:.3}s \
                 update={update_s:.3}s total={total:.3}s {:.2} GFLOP/s",
                T::LABEL,
                flops / total.max(1e-12) / 1e9,
            );
        }
        Ok(LuDecomposition { lu, perm, sign })
    }

    /// System dimension.
    pub fn dim(&self) -> usize {
        self.lu.nrows()
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`SolveMatrixError::DimensionMismatch`] when `b` has the wrong
    /// length.
    pub fn solve(&self, b: &[T]) -> Result<Vector<T>, SolveMatrixError> {
        let n = self.dim();
        if b.len() != n {
            return Err(SolveMatrixError::DimensionMismatch {
                expected: n,
                got: b.len(),
            });
        }
        // Apply permutation, then forward and backward substitution.
        let mut x: Vector<T> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                s -= self.lu[(i, j)] * xj;
            }
            x[i] = s;
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                s -= self.lu[(i, j)] * xj;
            }
            x[i] = s / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A·X = B` for a matrix right-hand side with blocked
    /// multi-column forward/backward substitution: the permuted right-hand
    /// sides are solved in place through lane-group triangular kernels and
    /// [`gemm`] off-diagonal updates — no per-column allocation or
    /// per-column passes over `L`/`U`.
    ///
    /// # Errors
    ///
    /// Returns [`SolveMatrixError::DimensionMismatch`] when `b.nrows()` does
    /// not equal the system dimension.
    pub fn solve_matrix(&self, b: &Matrix<T>) -> Result<Matrix<T>, SolveMatrixError> {
        let n = self.dim();
        if b.nrows() != n {
            return Err(SolveMatrixError::DimensionMismatch {
                expected: n,
                got: b.nrows(),
            });
        }
        let nrhs = b.ncols();
        if n == 0 || nrhs == 0 {
            return Ok(Matrix::zeros(n, nrhs));
        }
        let stats = stats_enabled() && n >= BLOCK;
        let t_start = stats.then(Instant::now);

        let mut x = Matrix::zeros(n, nrhs);
        for i in 0..n {
            x.row_mut(i).copy_from_slice(b.row(self.perm[i]));
        }
        let lu = self.lu.as_slice();
        let xd = x.as_mut_slice();
        let n_blocks = n.div_ceil(BLOCK);

        // --- Forward: L (unit lower) ------------------------------------
        for bi in 0..n_blocks {
            let k0 = bi * BLOCK;
            let k1 = (k0 + BLOCK).min(n);
            let kb = k1 - k0;
            let mut l11 = vec![T::zero(); kb * kb];
            for r in 0..kb {
                l11[r * kb..(r + 1) * kb]
                    .copy_from_slice(&lu[(k0 + r) * n + k0..(k0 + r) * n + k1]);
            }
            gemm::trsm_lower_unit(&l11, kb, &mut xd[k0 * nrhs..k1 * nrhs], nrhs, nrhs);
            if k1 < n {
                let (head, tail) = xd.split_at_mut(k1 * nrhs);
                let bmat = &head[k0 * nrhs..];
                let tile = |ci: usize, chunk: &mut [T]| {
                    let rows = chunk.len() / nrhs;
                    let a = &lu[(k1 + ci * ROW_TILE) * n + k0..];
                    T::gemm_sub(chunk, nrhs, rows, nrhs, a, n, bmat, nrhs, kb);
                };
                if (n - k1) * nrhs * kb >= PAR_MIN_MACS {
                    parallel::par_for_each_chunk_mut(tail, ROW_TILE * nrhs, tile);
                } else {
                    for (ci, chunk) in tail.chunks_mut(ROW_TILE * nrhs).enumerate() {
                        tile(ci, chunk);
                    }
                }
            }
        }

        // --- Backward: U (non-unit upper) -------------------------------
        for bi in (0..n_blocks).rev() {
            let k0 = bi * BLOCK;
            let k1 = (k0 + BLOCK).min(n);
            let kb = k1 - k0;
            let mut u11 = vec![T::zero(); kb * kb];
            for r in 0..kb {
                u11[r * kb + r..(r + 1) * kb]
                    .copy_from_slice(&lu[(k0 + r) * n + k0 + r..(k0 + r) * n + k1]);
            }
            gemm::trsm_upper(&u11, kb, &mut xd[k0 * nrhs..k1 * nrhs], nrhs, nrhs);
            if k0 > 0 {
                let (head, tail) = xd.split_at_mut(k0 * nrhs);
                let bmat = &tail[..kb * nrhs];
                let tile = |ci: usize, chunk: &mut [T]| {
                    let rows = chunk.len() / nrhs;
                    let a = &lu[ci * ROW_TILE * n + k0..];
                    T::gemm_sub(chunk, nrhs, rows, nrhs, a, n, bmat, nrhs, kb);
                };
                if k0 * nrhs * kb >= PAR_MIN_MACS {
                    parallel::par_for_each_chunk_mut(head, ROW_TILE * nrhs, tile);
                } else {
                    for (ci, chunk) in head.chunks_mut(ROW_TILE * nrhs).enumerate() {
                        tile(ci, chunk);
                    }
                }
            }
        }
        if let Some(t_start) = t_start {
            let total = t_start.elapsed().as_secs_f64();
            let flops = T::FLOPS_PER_MAC * (n as f64) * (n as f64) * nrhs as f64;
            eprintln!(
                "[pdn-lu] solve {} n={n} rhs={nrhs} nb={BLOCK} total={total:.3}s {:.2} GFLOP/s",
                T::LABEL,
                flops / total.max(1e-12) / 1e9,
            );
        }
        Ok(x)
    }

    /// Computes the matrix inverse.
    ///
    /// # Errors
    ///
    /// Propagates solve errors (cannot occur for a successfully factored
    /// system of matching dimension).
    pub fn inverse(&self) -> Result<Matrix<T>, SolveMatrixError> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Determinant, as the product of pivots times the permutation sign.
    pub fn det(&self) -> T {
        let mut d = T::from_f64(self.sign);
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

/// Convenience one-shot solve of `A·x = b`.
///
/// # Errors
///
/// See [`LuDecomposition::new`] and [`LuDecomposition::solve`].
///
/// # Examples
///
/// ```
/// use pdn_num::Matrix;
/// # fn main() -> Result<(), pdn_num::SolveMatrixError> {
/// let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, -1.0]]);
/// let x = pdn_num::lu::solve(a, &[3.0, 1.0])?;
/// assert!((x[0] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn solve<T: GemmScalar>(a: Matrix<T>, b: &[T]) -> Result<Vector<T>, SolveMatrixError> {
    LuDecomposition::new(a)?.solve(b)
}

/// Convenience inverse of a square matrix.
///
/// # Errors
///
/// See [`LuDecomposition::new`].
pub fn invert<T: GemmScalar>(a: Matrix<T>) -> Result<Matrix<T>, SolveMatrixError> {
    LuDecomposition::new(a)?.inverse()
}

/// Reference scalar LU kernel: the pre-blocking elimination, kept in-tree
/// for equivalence testing of the blocked factorization. Returns the
/// combined `L\U` matrix, the permutation, and the pivot sign.
#[cfg(test)]
pub(crate) fn factor_scalar_reference<T: crate::Scalar>(
    a: Matrix<T>,
) -> Result<(Matrix<T>, Vec<usize>, f64), SolveMatrixError> {
    if !a.is_square() {
        return Err(SolveMatrixError::NotSquare {
            rows: a.nrows(),
            cols: a.ncols(),
        });
    }
    let n = a.nrows();
    let mut lu = a;
    let mut perm: Vec<usize> = (0..n).collect();
    let mut sign = 1.0;
    let scale = lu.max_abs().max(1.0);
    let tiny = scale * 1e-300;
    for k in 0..n {
        let mut p = k;
        let mut pmax = lu[(k, k)].abs();
        for i in (k + 1)..n {
            let v = lu[(i, k)].abs();
            if v > pmax {
                pmax = v;
                p = i;
            }
        }
        if pmax <= tiny {
            return Err(SolveMatrixError::Singular { column: k });
        }
        if p != k {
            perm.swap(p, k);
            sign = -sign;
            for j in 0..n {
                let tmp = lu[(k, j)];
                lu[(k, j)] = lu[(p, j)];
                lu[(p, j)] = tmp;
            }
        }
        let pivot = lu[(k, k)];
        for i in (k + 1)..n {
            let m = lu[(i, k)] / pivot;
            lu[(i, k)] = m;
            if m == T::zero() {
                continue;
            }
            for j in (k + 1)..n {
                let u = lu[(k, j)];
                lu[(i, j)] -= m * u;
            }
        }
    }
    Ok((lu, perm, sign))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{approx_eq, c64, Scalar};
    use proptest::prelude::*;

    /// Solve with the reference scalar factors (perm + scalar forward/back
    /// substitution, exactly the pre-blocking algorithm).
    fn solve_scalar_reference<T: Scalar>(lu: &Matrix<T>, perm: &[usize], b: &[T]) -> Vec<T> {
        let n = perm.len();
        let mut x: Vec<T> = perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                s -= lu[(i, j)] * xj;
            }
            x[i] = s;
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                s -= lu[(i, j)] * xj;
            }
            x[i] = s / lu[(i, i)];
        }
        x
    }

    fn rng_f64(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    }

    #[test]
    fn solve_small_real_system() {
        let a = Matrix::from_rows(&[&[3.0, 2.0, -1.0], &[2.0, -2.0, 4.0], &[-1.0, 0.5, -1.0]]);
        let x = solve(a, &[1.0, -2.0, 0.0]).unwrap();
        assert!(approx_eq(x[0], 1.0, 1e-12));
        assert!(approx_eq(x[1], -2.0, 1e-12));
        assert!(approx_eq(x[2], -2.0, 1e-12));
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_matrix_reports_error() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        match LuDecomposition::new(a) {
            Err(SolveMatrixError::Singular { .. }) => {}
            other => panic!("expected Singular, got {other:?}"),
        }
    }

    #[test]
    fn not_square_reports_error() {
        let a = Matrix::<f64>::zeros(2, 3);
        assert_eq!(
            LuDecomposition::new(a).unwrap_err(),
            SolveMatrixError::NotSquare { rows: 2, cols: 3 }
        );
    }

    #[test]
    fn non_finite_entries_rejected_up_front() {
        let mut a = Matrix::<f64>::identity(5);
        a[(2, 3)] = f64::NAN;
        assert_eq!(
            LuDecomposition::new(a).unwrap_err(),
            SolveMatrixError::NonFinite { row: 2, col: 3 }
        );
        let mut b = Matrix::<f64>::identity(4);
        b[(0, 1)] = f64::INFINITY;
        assert_eq!(
            LuDecomposition::new(b).unwrap_err(),
            SolveMatrixError::NonFinite { row: 0, col: 1 }
        );
        let mut c = Matrix::<c64>::identity(3);
        c[(1, 0)] = c64::new(0.0, f64::NEG_INFINITY);
        assert_eq!(
            LuDecomposition::new(c).unwrap_err(),
            SolveMatrixError::NonFinite { row: 1, col: 0 }
        );
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Matrix::from_fn(5, 5, |i, j| {
            if i == j {
                4.0
            } else {
                1.0 / (1.0 + (i as f64 - j as f64).abs())
            }
        });
        let inv = invert(a.clone()).unwrap();
        let id = a.matmul(&inv);
        for i in 0..5 {
            for j in 0..5 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(approx_eq(id[(i, j)], expect, 1e-11), "({i},{j})");
            }
        }
    }

    #[test]
    fn determinant_of_triangular_and_permuted() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 3.0]]);
        let lu = LuDecomposition::new(a).unwrap();
        assert!(approx_eq(lu.det(), 6.0, 1e-12));
        // Swapping rows flips the sign.
        let b = Matrix::from_rows(&[&[0.0, 3.0], &[2.0, 1.0]]);
        let lub = LuDecomposition::new(b).unwrap();
        assert!(approx_eq(lub.det(), -6.0, 1e-12));
    }

    #[test]
    fn complex_system() {
        // (1+i) x + y = 2 ; x - i y = 0  =>  x = i y.
        let a = Matrix::from_rows(&[
            &[c64::new(1.0, 1.0), c64::ONE],
            &[c64::ONE, c64::new(0.0, -1.0)],
        ]);
        let x = solve(a.clone(), &[c64::new(2.0, 0.0), c64::ZERO]).unwrap();
        let r0 = a[(0, 0)] * x[0] + a[(0, 1)] * x[1];
        assert!((r0 - c64::new(2.0, 0.0)).norm() < 1e-12);
        let r1 = a[(1, 0)] * x[0] + a[(1, 1)] * x[1];
        assert!(r1.norm() < 1e-12);
    }

    #[test]
    fn solve_matrix_right_hand_sides() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let lu = LuDecomposition::new(a.clone()).unwrap();
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let x = lu.solve_matrix(&b).unwrap();
        let back = a.matmul(&x);
        assert!(approx_eq(back[(0, 0)], 1.0, 1e-12));
        assert!(approx_eq(back[(0, 1)], 0.0, 1e-12));
    }

    #[test]
    fn dimension_mismatch_on_solve() {
        let lu = LuDecomposition::new(Matrix::<f64>::identity(3)).unwrap();
        assert_eq!(
            lu.solve(&[1.0, 2.0]).unwrap_err(),
            SolveMatrixError::DimensionMismatch {
                expected: 3,
                got: 2
            }
        );
    }

    #[test]
    fn random_system_residual_small() {
        // Deterministic pseudo-random fill (LCG) keeps the test hermetic.
        let mut state: u64 = 0x243F_6A88_85A3_08D3;
        let mut next = move || rng_f64(&mut state);
        let n = 30;
        let a = Matrix::from_fn(n, n, |i, j| next() + if i == j { 4.0 } else { 0.0 });
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = solve(a.clone(), &b).unwrap();
        let r = a.matvec(&x);
        for i in 0..n {
            assert!(approx_eq(r[i], b[i], 1e-10));
        }
    }

    #[test]
    fn small_matrices_bit_identical_to_scalar_reference() {
        // Up to one block the panel loop degenerates to exactly the scalar
        // elimination — the factors must match bit for bit. This pins the
        // historical results of every small system in the toolkit.
        let mut state = 0xD1CEu64;
        for n in [1usize, 2, 7, 33, BLOCK] {
            let a = Matrix::from_fn(n, n, |i, j| {
                rng_f64(&mut state) + if i == j { 3.0 } else { 0.0 }
            });
            let blocked = LuDecomposition::new(a.clone()).unwrap();
            let (lu_ref, perm_ref, sign_ref) = factor_scalar_reference(a).unwrap();
            assert_eq!(blocked.perm, perm_ref, "n={n}");
            assert_eq!(blocked.sign, sign_ref, "n={n}");
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(
                        blocked.lu[(i, j)].to_bits(),
                        lu_ref[(i, j)].to_bits(),
                        "n={n} ({i},{j})"
                    );
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Blocked factor + solve + inverse + det agree with the reference
        /// scalar kernel on random diagonally dominant real systems that
        /// span several panel widths.
        #[test]
        fn blocked_matches_scalar_reference_real(n in 65usize..180, seed in any::<u64>()) {
            let mut state = seed | 1;
            let a = Matrix::from_fn(n, n, |i, j| {
                rng_f64(&mut state) + if i == j { 6.0 } else { 0.0 }
            });
            let b: Vec<f64> = (0..n).map(|_| rng_f64(&mut state)).collect();
            let blocked = LuDecomposition::new(a.clone()).unwrap();
            let (lu_ref, perm_ref, sign_ref) = factor_scalar_reference(a.clone()).unwrap();
            // Same pivot sequence on well-separated pivots.
            prop_assert_eq!(&blocked.perm, &perm_ref);
            prop_assert_eq!(blocked.sign, sign_ref);
            // Solutions agree to a tight relative tolerance.
            let x_blk = blocked.solve(&b).unwrap();
            let x_ref = solve_scalar_reference(&lu_ref, &perm_ref, &b);
            for i in 0..n {
                prop_assert!(approx_eq(x_blk[i], x_ref[i], 1e-9), "x[{}]", i);
            }
            // Determinants agree (product of near-identical pivots).
            let mut det_ref = sign_ref;
            for i in 0..n {
                det_ref *= lu_ref[(i, i)];
            }
            prop_assert!(approx_eq(blocked.det(), det_ref, 1e-8));
            // The blocked multi-RHS inverse actually inverts.
            let inv = blocked.inverse().unwrap();
            let id = a.matmul(&inv);
            for i in 0..n {
                for j in 0..n {
                    let expect = if i == j { 1.0 } else { 0.0 };
                    prop_assert!((id[(i, j)] - expect).abs() < 1e-8, "({},{})", i, j);
                }
            }
        }

        /// Same equivalence for complex systems through the split re/im
        /// microkernel.
        #[test]
        fn blocked_matches_scalar_reference_complex(n in 65usize..150, seed in any::<u64>()) {
            let mut state = seed | 1;
            let a = Matrix::from_fn(n, n, |i, j| {
                let d = if i == j { 6.0 } else { 0.0 };
                c64::new(rng_f64(&mut state) + d, rng_f64(&mut state))
            });
            let b: Vec<c64> = (0..n)
                .map(|_| c64::new(rng_f64(&mut state), rng_f64(&mut state)))
                .collect();
            let blocked = LuDecomposition::new(a.clone()).unwrap();
            let (lu_ref, perm_ref, _) = factor_scalar_reference(a.clone()).unwrap();
            prop_assert_eq!(&blocked.perm, &perm_ref);
            let x_blk = blocked.solve(&b).unwrap();
            let x_ref = solve_scalar_reference(&lu_ref, &perm_ref, &b);
            for i in 0..n {
                let scale = x_ref[i].norm().max(1.0);
                prop_assert!((x_blk[i] - x_ref[i]).norm() < 1e-9 * scale, "x[{}]", i);
            }
            // Multi-RHS path: A · (A⁻¹ B) == B.
            let nrhs = 9;
            let bm = Matrix::from_fn(n, nrhs, |_, _| {
                c64::new(rng_f64(&mut state), rng_f64(&mut state))
            });
            let xm = blocked.solve_matrix(&bm).unwrap();
            let back = a.matmul(&xm);
            for i in 0..n {
                for j in 0..nrhs {
                    prop_assert!((back[(i, j)] - bm[(i, j)]).norm() < 1e-8, "({},{})", i, j);
                }
            }
        }

        /// Pivoting adversaries: exact-zero and tiny diagonals force row
        /// swaps inside and across panels; the blocked elimination must
        /// still agree with the reference.
        #[test]
        fn blocked_pivoting_matches_reference(n in 66usize..130, seed in any::<u64>()) {
            let mut state = seed | 1;
            let a = Matrix::from_fn(n, n, |i, j| {
                if i == j {
                    // Zero, tiny, or normal diagonal by position.
                    match i % 3 {
                        0 => 0.0,
                        1 => 1e-13 * rng_f64(&mut state),
                        _ => rng_f64(&mut state),
                    }
                } else if (i + n - j) % n == 1 {
                    // Strong subdiagonal keeps the matrix nonsingular and
                    // guarantees swaps.
                    5.0 + rng_f64(&mut state)
                } else {
                    0.25 * rng_f64(&mut state)
                }
            });
            let b: Vec<f64> = (0..n).map(|_| rng_f64(&mut state)).collect();
            let blocked = LuDecomposition::new(a.clone()).unwrap();
            let (lu_ref, perm_ref, _) = factor_scalar_reference(a.clone()).unwrap();
            prop_assert_eq!(&blocked.perm, &perm_ref);
            let x_blk = blocked.solve(&b).unwrap();
            let x_ref = solve_scalar_reference(&lu_ref, &perm_ref, &b);
            for i in 0..n {
                let scale = x_ref[i].abs().max(1.0);
                prop_assert!((x_blk[i] - x_ref[i]).abs() < 1e-7 * scale, "x[{}]", i);
            }
            // Residual check closes the loop on the blocked path alone.
            let r = a.matvec(&x_blk);
            for i in 0..n {
                prop_assert!((r[i] - b[i]).abs() < 1e-7, "r[{}]", i);
            }
        }
    }
}
