//! Std-only scoped-thread parallel mapping for sweep-shaped workloads.
//!
//! Every frequency-domain hot path in the toolkit — BEM matrix assembly,
//! impedance/admittance sweeps, AC analysis, S-parameter extraction, the
//! SSN switching sweep — is an embarrassingly parallel loop over
//! independent dense solves. This module is the shared execution substrate
//! for those loops:
//!
//! * [`par_map`] / [`par_map_indexed`] fan a closure out over
//!   [`std::thread::scope`] workers pulling indices from an atomic
//!   counter (dynamic load balancing for skewed per-item cost, e.g.
//!   upper-triangular assembly rows);
//! * [`try_par_map_indexed`] is the fallible variant used by sweeps whose
//!   per-point solve can fail — the error for the **lowest** failing index
//!   is returned, independent of thread scheduling;
//! * results are always returned in input order, so output is
//!   **bit-identical for any worker count**: each item is computed exactly
//!   once by one thread, with no reduction-order ambiguity.
//!
//! The worker count defaults to [`std::thread::available_parallelism`] and
//! can be pinned with the `PDN_THREADS` environment variable (`PDN_THREADS=1`
//! recovers the serial path exactly, including allocation behavior).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Number of workers used by the `par_*` functions: the `PDN_THREADS`
/// environment variable when set to a positive integer, otherwise
/// [`std::thread::available_parallelism`] (1 if that fails).
///
/// # Examples
///
/// ```
/// assert!(pdn_num::parallel::worker_count() >= 1);
/// ```
pub fn worker_count() -> usize {
    if let Ok(v) = std::env::var("PDN_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    thread::available_parallelism().map_or(1, usize::from)
}

/// Maps `f` over `0..n` on [`worker_count`] scoped threads, returning the
/// results in index order.
///
/// The per-index closures run concurrently but each index is evaluated
/// exactly once, so the output is identical to `(0..n).map(f).collect()`
/// for every thread count. With one worker (or `n <= 1`) no threads are
/// spawned at all.
///
/// # Panics
///
/// Re-raises a panic from `f` on the calling thread.
///
/// # Examples
///
/// ```
/// let squares = pdn_num::parallel::par_map_indexed(8, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn par_map_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = worker_count().min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let shards: Vec<Vec<(usize, R)>> = thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for shard in shards {
        for (i, r) in shard {
            out[i] = Some(r);
        }
    }
    out.into_iter()
        .map(|r| r.expect("every index computed exactly once"))
        .collect()
}

/// Maps `f` over a slice in parallel, preserving input order.
///
/// # Panics
///
/// Re-raises a panic from `f` on the calling thread.
///
/// # Examples
///
/// ```
/// let doubled = pdn_num::parallel::par_map(&[1.0, 2.0, 3.0], |x| 2.0 * x);
/// assert_eq!(doubled, vec![2.0, 4.0, 6.0]);
/// ```
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items.len(), |i| f(&items[i]))
}

/// Fallible [`par_map_indexed`]: maps `f` over `0..n` in parallel and
/// returns all results in order, or the error of the **lowest** failing
/// index (deterministic regardless of thread scheduling).
///
/// All indices are evaluated even when an early one fails; sweeps are
/// short enough that deterministic error selection is worth the wasted
/// points on the (rare) failure path.
///
/// # Errors
///
/// Returns the error produced at the smallest index for which `f` failed.
///
/// # Examples
///
/// ```
/// let r: Result<Vec<usize>, String> =
///     pdn_num::parallel::try_par_map_indexed(4, |i| if i == 2 { Err("boom".into()) } else { Ok(i) });
/// assert_eq!(r, Err("boom".into()));
/// ```
pub fn try_par_map_indexed<R, E, F>(n: usize, f: F) -> Result<Vec<R>, E>
where
    R: Send,
    E: Send,
    F: Fn(usize) -> Result<R, E> + Sync,
{
    let mut out = Vec::with_capacity(n);
    let mut first_err: Option<E> = None;
    for r in par_map_indexed(n, f) {
        match r {
            Ok(v) => out.push(v),
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Fallible [`par_map`]: maps `f` over a slice in parallel, preserving
/// input order, or returns the error of the **lowest** failing index
/// (deterministic regardless of thread scheduling).
///
/// # Errors
///
/// Returns the error produced at the smallest index for which `f` failed.
///
/// # Examples
///
/// ```
/// let halves: Result<Vec<u32>, String> =
///     pdn_num::parallel::try_par_map(&[2u32, 4, 7], |&x| {
///         if x % 2 == 0 { Ok(x / 2) } else { Err(format!("{x} is odd")) }
///     });
/// assert_eq!(halves, Err("7 is odd".into()));
/// ```
pub fn try_par_map<T, R, E, F>(items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(&T) -> Result<R, E> + Sync,
{
    try_par_map_indexed(items.len(), |i| f(&items[i]))
}

/// Applies `f` to disjoint consecutive chunks of `data` (`chunk_len`
/// elements each, the final chunk ragged) on [`worker_count`] scoped
/// threads. The chunk index is passed alongside each chunk.
///
/// Chunk boundaries are fixed by `chunk_len` — never derived from the
/// worker count — and every chunk is written by exactly one closure call,
/// so the result is **bit-identical for any `PDN_THREADS`**. Chunks are
/// dealt to workers round-robin (uniform per-chunk cost is assumed; the
/// blocked-LU trailing update, the sole hot caller, satisfies that). With
/// one worker the chunks are processed in ascending order on the calling
/// thread with no spawns.
///
/// # Panics
///
/// Panics when `chunk_len == 0` and `data` is non-empty; re-raises a
/// panic from `f` on the calling thread.
///
/// # Examples
///
/// ```
/// let mut v = vec![1.0f64; 10];
/// pdn_num::parallel::par_for_each_chunk_mut(&mut v, 4, |ci, chunk| {
///     for x in chunk {
///         *x += ci as f64;
///     }
/// });
/// assert_eq!(v, [1., 1., 1., 1., 2., 2., 2., 2., 3., 3.]);
/// ```
pub fn par_for_each_chunk_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    let workers = worker_count().min(n_chunks);
    if workers <= 1 {
        for (ci, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(ci, chunk);
        }
        return;
    }
    let mut per_worker: Vec<Vec<(usize, &mut [T])>> = (0..workers).map(|_| Vec::new()).collect();
    for (ci, chunk) in data.chunks_mut(chunk_len).enumerate() {
        per_worker[ci % workers].push((ci, chunk));
    }
    thread::scope(|s| {
        let handles: Vec<_> = per_worker
            .into_iter()
            .map(|list| {
                let f = &f;
                s.spawn(move || {
                    for (ci, chunk) in list {
                        f(ci, chunk);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("parallel worker panicked");
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_serial_map() {
        let serial: Vec<usize> = (0..1000).map(|i| i * 3 + 1).collect();
        assert_eq!(par_map_indexed(1000, |i| i * 3 + 1), serial);
    }

    #[test]
    fn par_map_over_slice() {
        let items: Vec<f64> = (0..257).map(|i| i as f64).collect();
        let out = par_map(&items, |x| x.sqrt());
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as f64).sqrt());
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(par_map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn try_variant_returns_lowest_index_error() {
        let r: Result<Vec<usize>, usize> =
            try_par_map_indexed(64, |i| if i % 10 == 9 { Err(i) } else { Ok(i) });
        assert_eq!(r, Err(9));
        let ok: Result<Vec<usize>, usize> = try_par_map_indexed(64, Ok);
        assert_eq!(ok.unwrap().len(), 64);
    }

    #[test]
    fn worker_count_is_positive() {
        assert!(worker_count() >= 1);
    }

    #[test]
    fn chunk_mut_covers_every_element_once() {
        let mut v = vec![0u32; 1001];
        par_for_each_chunk_mut(&mut v, 13, |ci, chunk| {
            for x in chunk.iter_mut() {
                *x += 1 + ci as u32;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, 1 + (i / 13) as u32, "element {i}");
        }
    }

    #[test]
    fn chunk_mut_handles_empty_and_ragged() {
        let mut empty: Vec<f64> = Vec::new();
        par_for_each_chunk_mut(&mut empty, 8, |_, _| panic!("no chunks expected"));
        let mut v = vec![1.0f64; 5];
        par_for_each_chunk_mut(&mut v, 8, |ci, chunk| {
            assert_eq!(ci, 0);
            assert_eq!(chunk.len(), 5);
        });
    }

    #[test]
    #[should_panic(expected = "parallel worker panicked")]
    fn worker_panic_propagates() {
        // Force multiple workers so the panic crosses a thread boundary;
        // under PDN_THREADS=1 the closure panic surfaces directly, so this
        // test asserts on the message only when threads are in play.
        if worker_count() == 1 {
            panic!("parallel worker panicked (serial fallback)");
        }
        par_map_indexed(64, |i| {
            if i == 13 {
                panic!("boom");
            }
            i
        });
    }
}
