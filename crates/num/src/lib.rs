#![warn(missing_docs)]
//! Dense numerical kernels for the `pdn` toolkit.
//!
//! This crate is the self-contained linear-algebra substrate used by every
//! other `pdn` crate: a complex scalar type [`c64`], dense [`Matrix`] and
//! [`Vector`] containers generic over a [`Scalar`] trait, LU and Cholesky
//! factorizations, a Jacobi symmetric eigensolver (plus the generalized
//! symmetric-definite form used for transmission-line modal analysis), a
//! radix-2 FFT, and Gauss–Legendre quadrature rules.
//!
//! Nothing here depends on external linear-algebra libraries; the boundary
//! element method, circuit solver, and FDTD engine are all built on these
//! kernels.
//!
//! # Examples
//!
//! ```
//! use pdn_num::{Matrix, LuDecomposition};
//!
//! # fn main() -> Result<(), pdn_num::SolveMatrixError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[2.0, 3.0]]);
//! let lu = LuDecomposition::new(a)?;
//! let x = lu.solve(&[1.0, 2.0])?;
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

pub mod aca;
pub mod cg;
pub mod cholesky;
pub mod codec;
pub mod complex;
pub mod eigen;
pub mod fft;
pub mod gemm;
pub mod lu;
pub mod matrix;
pub mod parallel;
pub mod phys;
pub mod precond;
pub mod prom;
pub mod quadrature;
pub mod rational;
pub mod scalar;

pub use aca::LowRank;
pub use cholesky::CholeskyDecomposition;
pub use codec::{ByteReader, ByteWriter, CodecError};
pub use complex::c64;
pub use eigen::{
    generalized_symmetric_eigen, hermitian_smallest_eigenvector, smallest_singular_vector,
    symmetric_eigen, SymmetricEigen,
};
pub use fft::{fft, ifft, next_pow2, real_fft_magnitude};
pub use gemm::GemmScalar;
pub use lu::{LuDecomposition, SolveMatrixError};
pub use matrix::{Matrix, Vector};
pub use precond::{BlockJacobiPreconditioner, JacobiPreconditioner, Preconditioner};
pub use prom::{PoleResidueModel, PromError, PromOptions, RomTransientState};
pub use quadrature::GaussLegendre;
pub use rational::{RationalModel, SweepAccuracy, SweepError, SweepOutcome, SweepStats};
pub use scalar::Scalar;

/// Relative/absolute mixed tolerance comparison used throughout the tests.
///
/// Returns `true` when `a` and `b` agree within `tol` absolutely or
/// relatively (scaled by the larger magnitude).
///
/// # Examples
///
/// ```
/// assert!(pdn_num::approx_eq(1.0, 1.0 + 1e-13, 1e-9));
/// assert!(!pdn_num::approx_eq(1.0, 1.1, 1e-9));
/// ```
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}
