//! Bit-exact, std-only binary encoding primitives.
//!
//! The extraction cache (`pdn-service`) persists extracted macromodels
//! and hashes canonicalized board descriptions. Both jobs need the same
//! two properties from their byte encoding:
//!
//! * **Bit-exactness** — `f64` values round-trip through
//!   [`f64::to_bits`]/[`f64::from_bits`], so a decoded model is
//!   *bit-identical* to the encoded one (the cache's warm-vs-cold
//!   equivalence contract), and canonical hashes are stable across
//!   platforms with IEEE-754 doubles.
//! * **No dependencies** — the build environment is offline (see the
//!   in-tree `proptest`/`criterion` shims), so this is a hand-rolled
//!   little-endian length-prefixed format, not serde.
//!
//! [`ByteWriter`] appends primitives to a growable buffer;
//! [`ByteReader`] consumes them back, failing with a descriptive
//! [`CodecError`] on truncation, oversized length prefixes (a corrupted
//! length byte must not trigger a huge allocation), or trailing bytes.
//! Every `get_*` mirrors a `put_*` one-to-one; composite types
//! (matrices, string/f64 vectors) are length-prefixed with `u64` counts.

use crate::complex::c64;
use crate::matrix::Matrix;
use std::error::Error;
use std::fmt;

/// Error from decoding a byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The stream ended before a value could be read.
    UnexpectedEof {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes left in the stream.
        remaining: usize,
    },
    /// A decoded value is structurally impossible (a length prefix
    /// exceeding the remaining bytes, a non-UTF-8 string…).
    Invalid(String),
    /// Decoding finished with unread bytes left over.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { needed, remaining } => write!(
                f,
                "unexpected end of stream: needed {needed} bytes, {remaining} remaining"
            ),
            CodecError::Invalid(msg) => write!(f, "invalid encoding: {msg}"),
            CodecError::TrailingBytes(n) => {
                write!(f, "decoding finished with {n} trailing bytes")
            }
        }
    }
}

impl Error for CodecError {}

/// Append-only little-endian encoder.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// An empty writer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// The encoded bytes so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends raw bytes verbatim (no length prefix).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a little-endian `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` bit-exactly (IEEE-754 bits, little-endian).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a complex value as its `(re, im)` bit patterns.
    pub fn put_c64(&mut self, v: c64) {
        self.put_f64(v.re);
        self.put_f64(v.im);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed `f64` slice, bit-exactly.
    pub fn put_f64_slice(&mut self, vs: &[f64]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Appends a length-prefixed `usize` slice.
    pub fn put_usize_slice(&mut self, vs: &[usize]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_usize(v);
        }
    }

    /// Appends a real matrix: dimensions, then the row-major data
    /// bit-exactly.
    pub fn put_matrix_f64(&mut self, m: &Matrix<f64>) {
        self.put_usize(m.nrows());
        self.put_usize(m.ncols());
        for &v in m.as_slice() {
            self.put_f64(v);
        }
    }

    /// Appends a complex matrix: dimensions, then the row-major data
    /// bit-exactly.
    pub fn put_matrix_c64(&mut self, m: &Matrix<c64>) {
        self.put_usize(m.nrows());
        self.put_usize(m.ncols());
        for &v in m.as_slice() {
            self.put_c64(v);
        }
    }
}

/// Consuming little-endian decoder over a byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over the whole slice.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Succeeds only when every byte has been consumed.
    ///
    /// # Errors
    ///
    /// [`CodecError::TrailingBytes`] when unread bytes remain.
    pub fn finish(&self) -> Result<(), CodecError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(CodecError::TrailingBytes(n)),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] on truncation (likewise below).
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `usize` encoded as a `u64`.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation or a value exceeding `usize`.
    pub fn get_usize(&mut self) -> Result<usize, CodecError> {
        let v = self.get_u64()?;
        usize::try_from(v)
            .map_err(|_| CodecError::Invalid(format!("value {v} does not fit in usize")))
    }

    /// Reads a length prefix for elements of at least `elem_size` bytes,
    /// rejecting counts the remaining stream cannot possibly hold — a
    /// corrupted length byte must fail cleanly, not attempt a giant
    /// allocation.
    fn get_len(&mut self, elem_size: usize) -> Result<usize, CodecError> {
        let n = self.get_usize()?;
        let cap = self.remaining() / elem_size.max(1);
        if n > cap {
            return Err(CodecError::Invalid(format!(
                "length prefix {n} exceeds the {cap} elements the remaining stream can hold"
            )));
        }
        Ok(n)
    }

    /// Reads an `f64` bit-exactly.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a complex value from its `(re, im)` bit patterns.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation.
    pub fn get_c64(&mut self) -> Result<c64, CodecError> {
        Ok(c64::new(self.get_f64()?, self.get_f64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation, an impossible length, or invalid
    /// UTF-8.
    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let n = self.get_len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| CodecError::Invalid(format!("non-UTF-8 string: {e}")))
    }

    /// Reads a length-prefixed `f64` vector, bit-exactly.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation or an impossible length.
    pub fn get_f64_vec(&mut self) -> Result<Vec<f64>, CodecError> {
        let n = self.get_len(8)?;
        (0..n).map(|_| self.get_f64()).collect()
    }

    /// Reads a length-prefixed `usize` vector.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation or an impossible length.
    pub fn get_usize_vec(&mut self) -> Result<Vec<usize>, CodecError> {
        let n = self.get_len(8)?;
        (0..n).map(|_| self.get_usize()).collect()
    }

    fn get_dims(&mut self, elem_size: usize) -> Result<(usize, usize), CodecError> {
        let rows = self.get_usize()?;
        let cols = self.get_usize()?;
        let total = rows
            .checked_mul(cols)
            .ok_or_else(|| CodecError::Invalid(format!("matrix {rows}x{cols} overflows")))?;
        if total > self.remaining() / elem_size {
            return Err(CodecError::Invalid(format!(
                "matrix {rows}x{cols} exceeds the remaining stream"
            )));
        }
        Ok((rows, cols))
    }

    /// Reads a real matrix written by [`ByteWriter::put_matrix_f64`].
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation or impossible dimensions.
    pub fn get_matrix_f64(&mut self) -> Result<Matrix<f64>, CodecError> {
        let (rows, cols) = self.get_dims(8)?;
        let mut m = Matrix::zeros(rows, cols);
        for v in m.as_mut_slice() {
            *v = self.get_f64()?;
        }
        Ok(m)
    }

    /// Reads a complex matrix written by [`ByteWriter::put_matrix_c64`].
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation or impossible dimensions.
    pub fn get_matrix_c64(&mut self) -> Result<Matrix<c64>, CodecError> {
        let (rows, cols) = self.get_dims(16)?;
        let mut m = Matrix::zeros(rows, cols);
        for v in m.as_mut_slice() {
            *v = self.get_c64()?;
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_bit_exactly() {
        let mut w = ByteWriter::new();
        w.put_u8(0xAB);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_usize(42);
        // Values that separate bit-exact from approximate codecs.
        let specials = [0.0, -0.0, f64::MIN_POSITIVE / 2.0, 1.0 + f64::EPSILON];
        for &v in &specials {
            w.put_f64(v);
        }
        w.put_c64(c64::new(-3.25, 1e-300));
        w.put_str("decap0 µ");
        w.put_f64_slice(&[1.5, -2.5]);
        w.put_usize_slice(&[7, 0, 3]);

        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_usize().unwrap(), 42);
        for &v in &specials {
            assert_eq!(r.get_f64().unwrap().to_bits(), v.to_bits());
        }
        let z = r.get_c64().unwrap();
        assert_eq!((z.re, z.im), (-3.25, 1e-300));
        assert_eq!(r.get_str().unwrap(), "decap0 µ");
        assert_eq!(r.get_f64_vec().unwrap(), vec![1.5, -2.5]);
        assert_eq!(r.get_usize_vec().unwrap(), vec![7, 0, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn matrices_round_trip() {
        let m = Matrix::from_rows(&[&[1.0, -2.0, 3.5], &[0.0, 5.25, -6.125]]);
        let mut w = ByteWriter::new();
        w.put_matrix_f64(&m);
        let zc = Matrix::from_fn(2, 2, |i, j| c64::new(i as f64, -(j as f64) - 0.5));
        w.put_matrix_c64(&zc);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_matrix_f64().unwrap(), m);
        assert_eq!(r.get_matrix_c64().unwrap(), zc);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_and_trailing_bytes_fail_loudly() {
        let mut w = ByteWriter::new();
        w.put_f64(1.0);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..5]);
        assert!(matches!(r.get_f64(), Err(CodecError::UnexpectedEof { .. })));
        let mut r = ByteReader::new(&bytes);
        r.get_u32().unwrap();
        assert_eq!(r.finish(), Err(CodecError::TrailingBytes(4)));
    }

    #[test]
    fn corrupt_length_prefix_rejected_without_allocation() {
        let mut w = ByteWriter::new();
        w.put_usize(usize::MAX / 2); // absurd element count
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.get_f64_vec(), Err(CodecError::Invalid(_))));
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.get_str(), Err(CodecError::Invalid(_))));
    }
}
