//! Passive pole–residue reduced-order macromodels (PROM) for port
//! admittance matrices, built from certified barycentric rational fits.
//!
//! The adaptive sweep engine ([`crate::rational`]) already certifies a
//! rational interpolant of `Y(f)` against exact solves. This module
//! converts that interpolant into a *state-space* partial-fraction form
//!
//! ```text
//! Y(s) = D + s·E + Σₖ Rₖ/(s − pₖ) + Σₘ [Cₘ/(s − qₘ) + C̄ₘ/(s − q̄ₘ)]
//! ```
//!
//! with real poles `pₖ < 0`, conjugate pairs `qₘ` (Re qₘ < 0), and
//! symmetric residue matrices, then
//!
//! 1. **stabilizes** the pole set (unstable poles are flipped into the
//!    left half plane, out-of-band and duplicate poles are dropped),
//! 2. **refits** all residues by a weighted linear least-squares solve
//!    against the certified sweep samples (one shared normal-equation
//!    factorization for every symmetric matrix entry),
//! 3. **enforces passivity**: the Hermitian part of `Y(jω)` — for the
//!    symmetric fit this is the entrywise real part — is made positive
//!    semidefinite on the certification grid (and in the `ω → ∞` limit
//!    `D`) by a minimal uniform conductance shift of the diagonal,
//! 4. **re-certifies** the perturbed model against held-out exact
//!    solves that never entered the fit.
//!
//! The payoff is the time-domain cost model: simulated by *recursive
//! convolution* (one scalar state per pole and port), a transient step
//! costs `O(poles × ports²)` instead of the `O(mesh²)` back-substitution
//! of the full R–L‖C macromodel stamp. The per-step recursions are
//! exposed here ([`PoleResidueModel::history_current`] /
//! [`PoleResidueModel::advance_state`]) so the MNA transient engine can
//! stamp the model as a single multiport companion element.
//!
//! All per-step pole fan-out goes through [`crate::parallel`] with
//! results reduced in pole-index order, so transient waveforms are
//! **bit-identical for every `PDN_THREADS` setting**. Setting
//! `PDN_ROM_STATS=1` prints one stderr line per built model.

use crate::complex::c64;
use crate::eigen::symmetric_eigen;
use crate::lu::LuDecomposition;
use crate::matrix::Matrix;
use crate::parallel::par_map_indexed;
use crate::rational::RationalModel;
use std::f64::consts::PI;
use std::fmt;

/// Options for [`PoleResidueModel::from_rational`].
#[derive(Debug, Clone, Copy)]
pub struct PromOptions {
    /// Relative (Frobenius) tolerance the passivity-enforced model must
    /// meet at every held-out exact solve. Must be positive and finite.
    pub cert_tol: f64,
}

impl Default for PromOptions {
    fn default() -> Self {
        PromOptions { cert_tol: 0.02 }
    }
}

/// Errors from pole–residue model construction.
#[derive(Debug, Clone, PartialEq)]
pub enum PromError {
    /// Inconsistent grids/samples or invalid options.
    InvalidInput(String),
    /// A linear-algebra step failed (singular normal equations, eigen
    /// solve breakdown).
    NumericalBreakdown(String),
    /// The passivity-enforced model misses `cert_tol` at a held-out
    /// exact solve.
    CertificationFailed {
        /// Worst relative deviation measured at the held-out points.
        residual: f64,
        /// The requested tolerance.
        tol: f64,
    },
}

impl fmt::Display for PromError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PromError::InvalidInput(m) => write!(f, "invalid PROM input: {m}"),
            PromError::NumericalBreakdown(m) => write!(f, "PROM numerical breakdown: {m}"),
            PromError::CertificationFailed { residual, tol } => write!(
                f,
                "PROM certification failed: held-out residual {residual:.3e} exceeds tol {tol:.3e}"
            ),
        }
    }
}

impl std::error::Error for PromError {}

/// Transient state of one stamped pole–residue element: the scalar
/// convolution states (one per pole and port), plus the previous port
/// voltages and linear-term currents the companion recursions need.
#[derive(Debug, Clone)]
pub struct RomTransientState {
    /// One state vector (length `ports`) per real pole.
    x_real: Vec<Vec<f64>>,
    /// One complex state vector (length `ports`) per conjugate pair.
    x_pair: Vec<Vec<c64>>,
    /// Port voltages at the previous accepted step.
    v: Vec<f64>,
    /// `E`-branch (linear-term) currents at the previous step.
    i_e: Vec<f64>,
}

/// A passive pole–residue macromodel of a symmetric port admittance.
///
/// Poles are complex frequencies `s = σ + jω` in rad/s with `σ < 0`;
/// residues are symmetric `ports × ports` matrices. See the module docs
/// for the construction pipeline and the time-domain recursions.
#[derive(Debug, Clone, PartialEq)]
pub struct PoleResidueModel {
    ports: usize,
    d: Matrix<f64>,
    e: Matrix<f64>,
    real_poles: Vec<f64>,
    real_residues: Vec<Matrix<f64>>,
    pair_poles: Vec<c64>,
    pair_residues: Vec<Matrix<c64>>,
    passivity_shift: f64,
    fit_residual: f64,
    holdout_residual: f64,
}

/// Work (pole count × ports²) below which the per-step pole fan-out
/// stays on the calling thread: scoped-thread spawn costs dwarf the
/// arithmetic for small models, and both branches reduce in pole-index
/// order so the choice never changes a bit of the result.
const PAR_STEP_THRESHOLD: usize = 16384;

impl PoleResidueModel {
    /// Builds a passive pole–residue model from a certified rational
    /// interpolant and its sweep samples.
    ///
    /// * `model` — the certified barycentric interpolant (pole source).
    /// * `grid` / `grid_values` — the certification grid (Hz, ascending)
    ///   and one symmetric admittance sample per point; these drive the
    ///   residue refit and the passivity scan.
    /// * `holdout` / `holdout_values` — exact solves at frequencies that
    ///   never entered the fit; the enforced model must match them
    ///   within `options.cert_tol`.
    ///
    /// `label` names the model in `PDN_ROM_STATS=1` stderr lines.
    ///
    /// # Errors
    ///
    /// [`PromError::InvalidInput`] for inconsistent shapes/grids,
    /// [`PromError::NumericalBreakdown`] when the refit or eigen solves
    /// fail, and [`PromError::CertificationFailed`] when the enforced
    /// model misses `cert_tol` on the held-out solves.
    pub fn from_rational(
        label: &str,
        model: &RationalModel,
        grid: &[f64],
        grid_values: &[Matrix<c64>],
        holdout: &[f64],
        holdout_values: &[Matrix<c64>],
        options: &PromOptions,
    ) -> Result<Self, PromError> {
        let t0 = std::time::Instant::now();
        if !(options.cert_tol.is_finite() && options.cert_tol > 0.0) {
            return Err(PromError::InvalidInput(format!(
                "cert_tol must be positive and finite, got {}",
                options.cert_tol
            )));
        }
        if grid.len() < 4 {
            return Err(PromError::InvalidInput(format!(
                "need at least 4 certification grid points, got {}",
                grid.len()
            )));
        }
        if grid.len() != grid_values.len() || holdout.len() != holdout_values.len() {
            return Err(PromError::InvalidInput(
                "one sample matrix per grid/holdout frequency required".into(),
            ));
        }
        crate::rational::validate_grid(grid).map_err(PromError::InvalidInput)?;
        let ports = grid_values[0].nrows();
        for y in grid_values.iter().chain(holdout_values) {
            if y.shape() != (ports, ports) {
                return Err(PromError::InvalidInput(format!(
                    "sample shape {:?} differs from first sample ({ports} × {ports})",
                    y.shape()
                )));
            }
        }
        let omega_max = 2.0 * PI * grid[grid.len() - 1];

        let (mut real_poles, mut pair_poles) = select_poles(model, omega_max, 2 * grid.len() - 2);
        // ω_max doubles as the normalization scale so the stabilized
        // band in the relocation's normalized variable is [1e-9, 3].
        relocate_poles(
            grid,
            grid_values,
            &mut real_poles,
            &mut pair_poles,
            omega_max,
        );
        let (mut d, mut e, mut real_residues, mut pair_residues) =
            refit_residues(grid, grid_values, &real_poles, &pair_poles, ports, None)?;

        // Poles near or below the band edge have almost-constant in-band
        // basis columns, so the free fit can park a large negative offset
        // in D that the residues cancel everywhere on the grid. Lifting
        // that offset with the uniform diagonal shift below would wreck
        // the fit wherever |Y| is small, so instead project D onto the
        // PSD cone and re-solve everything else with D pinned — the pole
        // terms reabsorb the (in-band constant) difference and the grid
        // scan is left patching genuine ripple only.
        let d_eig = symmetric_eigen(&d)
            .map_err(|e| PromError::NumericalBreakdown(format!("D projection eigen solve: {e}")))?;
        if d_eig.values[0] < 0.0 {
            let mut d_psd = Matrix::<f64>::zeros(ports, ports);
            for (k, &lam) in d_eig.values.iter().enumerate() {
                if lam <= 0.0 {
                    continue;
                }
                for i in 0..ports {
                    for j in 0..ports {
                        d_psd[(i, j)] += lam * d_eig.vectors[(i, k)] * d_eig.vectors[(j, k)];
                    }
                }
            }
            (d, e, real_residues, pair_residues) = refit_residues(
                grid,
                grid_values,
                &real_poles,
                &pair_poles,
                ports,
                Some(&d_psd),
            )?;
        }

        let mut out = PoleResidueModel {
            ports,
            d,
            e,
            real_poles,
            real_residues,
            pair_poles,
            pair_residues,
            passivity_shift: 0.0,
            fit_residual: 0.0,
            holdout_residual: 0.0,
        };

        // Passivity: the fit is symmetric, so the Hermitian part of
        // Y(jω) is the entrywise real part — a real symmetric matrix.
        // Scan the certification grid plus the ω → ∞ limit (D) for the
        // most negative eigenvalue and lift D by a uniform conductance
        // shift just past it.
        let eig_min = |m: &Matrix<f64>| -> Result<f64, PromError> {
            symmetric_eigen(m)
                .map(|e| e.values[0])
                .map_err(|e| PromError::NumericalBreakdown(format!("passivity eigen solve: {e}")))
        };
        let mut lambda_min = eig_min(&out.d)?;
        for &f in grid {
            let re_y = out.evaluate(f).map(|z| z.re);
            lambda_min = lambda_min.min(eig_min(&re_y)?);
        }
        if lambda_min < 0.0 {
            let shift = -lambda_min * (1.0 + 1e-6);
            for i in 0..ports {
                out.d[(i, i)] += shift;
            }
            out.passivity_shift = shift;
        }

        out.fit_residual = worst_residual(&out, grid, grid_values);
        out.holdout_residual = worst_residual(&out, holdout, holdout_values);

        if std::env::var("PDN_ROM_STATS").as_deref() == Ok("1") {
            eprintln!(
                "pdn rom[{label}]: {} ports, {} real + {} pair poles ({} states), \
                 fit {:.3e}, holdout {:.3e}, passivity shift {:.3e} S, \
                 ~{} mul-adds/step, {:.3} ms",
                out.ports,
                out.real_poles.len(),
                out.pair_poles.len(),
                out.state_count(),
                out.fit_residual,
                out.holdout_residual,
                out.passivity_shift,
                out.per_step_cost(),
                t0.elapsed().as_secs_f64() * 1e3,
            );
        }

        // NaN-safe: a NaN residual must fail certification.
        let certified = out.holdout_residual <= options.cert_tol;
        if !holdout.is_empty() && !certified {
            return Err(PromError::CertificationFailed {
                residual: out.holdout_residual,
                tol: options.cert_tol,
            });
        }
        Ok(out)
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Number of poles (each conjugate pair counts once).
    pub fn pole_count(&self) -> usize {
        self.real_poles.len() + self.pair_poles.len()
    }

    /// Number of scalar convolution states carried through a transient
    /// (complex pair states count two scalars per port).
    pub fn state_count(&self) -> usize {
        (self.real_poles.len() + 2 * self.pair_poles.len()) * self.ports
    }

    /// Real poles (rad/s, all negative), ascending.
    pub fn real_poles(&self) -> &[f64] {
        &self.real_poles
    }

    /// Conjugate-pair poles (rad/s, `Re < 0 < Im` representative).
    pub fn pair_poles(&self) -> &[c64] {
        &self.pair_poles
    }

    /// The uniform conductance added to the diagonal of `D` to make the
    /// Hermitian part PSD on the certification grid (0 when the raw fit
    /// was already passive there).
    pub fn passivity_shift(&self) -> f64 {
        self.passivity_shift
    }

    /// Worst relative Frobenius deviation against the certification
    /// samples, measured *after* passivity enforcement.
    pub fn fit_residual(&self) -> f64 {
        self.fit_residual
    }

    /// Worst relative Frobenius deviation against the held-out exact
    /// solves, measured after passivity enforcement.
    pub fn holdout_residual(&self) -> f64 {
        self.holdout_residual
    }

    /// Approximate per-transient-step mul-add count:
    /// `(real + 2·pair + 2) × ports²` (history currents plus the
    /// `E`-branch and state recursions).
    pub fn per_step_cost(&self) -> usize {
        (self.real_poles.len() + 2 * self.pair_poles.len() + 2) * self.ports * self.ports
    }

    /// Serializes the model into `w`, bit-exactly: a decoded model is
    /// `==` (and its transient recursions bit-identical) to this one.
    /// Consumed by the `pdn-service` extraction cache.
    pub fn write_to(&self, w: &mut crate::codec::ByteWriter) {
        w.put_usize(self.ports);
        w.put_matrix_f64(&self.d);
        w.put_matrix_f64(&self.e);
        w.put_f64_slice(&self.real_poles);
        w.put_usize(self.real_residues.len());
        for m in &self.real_residues {
            w.put_matrix_f64(m);
        }
        w.put_usize(self.pair_poles.len());
        for &p in &self.pair_poles {
            w.put_c64(p);
        }
        w.put_usize(self.pair_residues.len());
        for m in &self.pair_residues {
            w.put_matrix_c64(m);
        }
        w.put_f64(self.passivity_shift);
        w.put_f64(self.fit_residual);
        w.put_f64(self.holdout_residual);
    }

    /// Deserializes a model written by [`write_to`](Self::write_to).
    ///
    /// # Errors
    ///
    /// [`crate::codec::CodecError`] on truncation, or when the decoded
    /// dimensions are inconsistent (every matrix must be
    /// `ports × ports`, residue counts must match their pole lists).
    pub fn read_from(
        r: &mut crate::codec::ByteReader<'_>,
    ) -> Result<Self, crate::codec::CodecError> {
        use crate::codec::CodecError;
        let ports = r.get_usize()?;
        let d = r.get_matrix_f64()?;
        let e = r.get_matrix_f64()?;
        let real_poles = r.get_f64_vec()?;
        let n_real = r.get_usize()?;
        let real_residues: Vec<Matrix<f64>> = (0..n_real)
            .map(|_| r.get_matrix_f64())
            .collect::<Result<_, _>>()?;
        let n_pair_poles = r.get_usize()?;
        let pair_poles: Vec<c64> = (0..n_pair_poles)
            .map(|_| r.get_c64())
            .collect::<Result<_, _>>()?;
        let n_pair = r.get_usize()?;
        let pair_residues: Vec<Matrix<c64>> = (0..n_pair)
            .map(|_| r.get_matrix_c64())
            .collect::<Result<_, _>>()?;
        let passivity_shift = r.get_f64()?;
        let fit_residual = r.get_f64()?;
        let holdout_residual = r.get_f64()?;
        let square = |name: &str, rows: usize, cols: usize| {
            if (rows, cols) == (ports, ports) {
                Ok(())
            } else {
                Err(CodecError::Invalid(format!(
                    "PROM {name} is {rows}x{cols}, expected {ports}x{ports}"
                )))
            }
        };
        square("D", d.nrows(), d.ncols())?;
        square("E", e.nrows(), e.ncols())?;
        for m in &real_residues {
            square("real residue", m.nrows(), m.ncols())?;
        }
        for m in &pair_residues {
            square("pair residue", m.nrows(), m.ncols())?;
        }
        if real_residues.len() != real_poles.len() || pair_residues.len() != pair_poles.len() {
            return Err(CodecError::Invalid(format!(
                "PROM residue counts ({}, {}) do not match pole counts ({}, {})",
                real_residues.len(),
                pair_residues.len(),
                real_poles.len(),
                pair_poles.len()
            )));
        }
        Ok(PoleResidueModel {
            ports,
            d,
            e,
            real_poles,
            real_residues,
            pair_poles,
            pair_residues,
            passivity_shift,
            fit_residual,
            holdout_residual,
        })
    }

    /// Evaluates the model admittance at a real frequency `f` (Hz).
    pub fn evaluate(&self, f: f64) -> Matrix<c64> {
        let s = c64::from_im(2.0 * PI * f);
        let mut y = Matrix::<c64>::zeros(self.ports, self.ports);
        for i in 0..self.ports {
            for j in 0..self.ports {
                y[(i, j)] = c64::from_re(self.d[(i, j)]) + s * self.e[(i, j)];
            }
        }
        for (&p, r) in self.real_poles.iter().zip(&self.real_residues) {
            let t = (s - c64::from_re(p)).recip();
            for i in 0..self.ports {
                for j in 0..self.ports {
                    y[(i, j)] += t * r[(i, j)];
                }
            }
        }
        for (&q, cm) in self.pair_poles.iter().zip(&self.pair_residues) {
            let t1 = (s - q).recip();
            let t2 = (s - q.conj()).recip();
            for i in 0..self.ports {
                for j in 0..self.ports {
                    let c = cm[(i, j)];
                    y[(i, j)] += c * t1 + c.conj() * t2;
                }
            }
        }
        y
    }

    /// Recursive-convolution coefficients for pole `p` under the
    /// companion discretization with factor `kk` (2 = trapezoidal,
    /// 1 = backward Euler) and step `dt`:
    /// `x⁺ = α·x + β·(v⁺ + (kk−1)·v)` with `h = dt/kk`,
    /// `α = (1 + (kk−1)·p·h)/(1 − p·h)`, `β = h/(1 − p·h)`.
    fn alpha_beta(p: c64, kk: f64, dt: f64) -> (c64, c64) {
        let h = dt / kk;
        let den = (c64::ONE - p * h).recip();
        let alpha = (c64::ONE + p * (h * (kk - 1.0))) * den;
        let beta = den * h;
        (alpha, beta)
    }

    /// The real companion admittance block stamped into the MNA matrix
    /// for integration factor `kk` (2 = trapezoidal, 1 = backward
    /// Euler) and step `dt`:
    /// `G = D + kk·E/dt + Σₖ βₖ·Rₖ + Σₘ 2·Re{βₘ·Cₘ}`.
    pub fn companion_admittance(&self, kk: f64, dt: f64) -> Matrix<f64> {
        let mut g = self.d.clone();
        let ge = kk / dt;
        for i in 0..self.ports {
            for j in 0..self.ports {
                g[(i, j)] += ge * self.e[(i, j)];
            }
        }
        for (&p, r) in self.real_poles.iter().zip(&self.real_residues) {
            let (_, beta) = Self::alpha_beta(c64::from_re(p), kk, dt);
            for i in 0..self.ports {
                for j in 0..self.ports {
                    g[(i, j)] += beta.re * r[(i, j)];
                }
            }
        }
        for (&q, cm) in self.pair_poles.iter().zip(&self.pair_residues) {
            let (_, beta) = Self::alpha_beta(q, kk, dt);
            for i in 0..self.ports {
                for j in 0..self.ports {
                    g[(i, j)] += 2.0 * (beta * cm[(i, j)]).re;
                }
            }
        }
        g
    }

    /// A fresh all-zero transient state for this model.
    pub fn new_state(&self) -> RomTransientState {
        RomTransientState {
            x_real: vec![vec![0.0; self.ports]; self.real_poles.len()],
            x_pair: vec![vec![c64::ZERO; self.ports]; self.pair_poles.len()],
            v: vec![0.0; self.ports],
            i_e: vec![0.0; self.ports],
        }
    }

    /// History current `h` of the companion element at the *upcoming*
    /// step: the port currents satisfy `i⁺ = G·v⁺ + h` with `G` from
    /// [`companion_admittance`](Self::companion_admittance), so the MNA
    /// right-hand side receives `−h` at each port node.
    ///
    /// The per-pole terms fan out over [`crate::parallel`] when the
    /// work is large enough to amortize thread spawns, and are always
    /// summed in pole-index order — bit-identical for every
    /// `PDN_THREADS` setting.
    pub fn history_current(&self, kk: f64, dt: f64, st: &RomTransientState) -> Vec<f64> {
        let p = self.ports;
        let kr = self.real_poles.len();
        let n_poles = kr + self.pair_poles.len();
        let km1 = kk - 1.0;
        let contrib = |k: usize| -> Vec<f64> {
            if k < kr {
                let (alpha, beta) = Self::alpha_beta(c64::from_re(self.real_poles[k]), kk, dt);
                let (a, b) = (alpha.re, beta.re);
                let u: Vec<f64> = (0..p)
                    .map(|i| a * st.x_real[k][i] + km1 * b * st.v[i])
                    .collect();
                self.real_residues[k].matvec(&u)
            } else {
                let m = k - kr;
                let (alpha, beta) = Self::alpha_beta(self.pair_poles[m], kk, dt);
                let u: Vec<c64> = (0..p)
                    .map(|i| alpha * st.x_pair[m][i] + beta * (km1 * st.v[i]))
                    .collect();
                let cu = self.pair_residues[m].matvec(&u);
                cu.iter().map(|z| 2.0 * z.re).collect()
            }
        };
        let parts: Vec<Vec<f64>> = if n_poles * p * p >= PAR_STEP_THRESHOLD {
            par_map_indexed(n_poles, contrib)
        } else {
            (0..n_poles).map(contrib).collect()
        };
        // hist_E = g_E·v + (kk−1)·i_e (the matrix-capacitor history).
        let ge = kk / dt;
        let mut h = vec![0.0; p];
        for part in &parts {
            for (hi, &pi) in h.iter_mut().zip(part) {
                *hi += pi;
            }
        }
        for (i, hi) in h.iter_mut().enumerate() {
            let mut he = km1 * st.i_e[i];
            for j in 0..p {
                he += ge * self.e[(i, j)] * st.v[j];
            }
            *hi -= he;
        }
        h
    }

    /// Advances the convolution states past a solved step with port
    /// voltages `v_new`, using the same `(kk, dt)` the step was stamped
    /// with.
    pub fn advance_state(&self, kk: f64, dt: f64, v_new: &[f64], st: &mut RomTransientState) {
        assert_eq!(v_new.len(), self.ports, "one voltage per port");
        let km1 = kk - 1.0;
        for (k, &pole) in self.real_poles.iter().enumerate() {
            let (alpha, beta) = Self::alpha_beta(c64::from_re(pole), kk, dt);
            let (a, b) = (alpha.re, beta.re);
            for (x, (&vn, &vo)) in st.x_real[k].iter_mut().zip(v_new.iter().zip(&st.v)) {
                *x = a * *x + b * (vn + km1 * vo);
            }
        }
        for (m, &q) in self.pair_poles.iter().enumerate() {
            let (alpha, beta) = Self::alpha_beta(q, kk, dt);
            for (x, (&vn, &vo)) in st.x_pair[m].iter_mut().zip(v_new.iter().zip(&st.v)) {
                *x = alpha * *x + beta * (vn + km1 * vo);
            }
        }
        let ge = kk / dt;
        for (i, ie) in st.i_e.iter_mut().enumerate() {
            let mut die = -km1 * *ie;
            for (j, &vn) in v_new.iter().enumerate() {
                die += ge * self.e[(i, j)] * (vn - st.v[j]);
            }
            *ie = die;
        }
        st.v.copy_from_slice(v_new);
    }
}

/// Converts the interpolant's frequency-domain poles (complex Hz) into a
/// stable, deduplicated s-domain pole set, split into real poles and
/// upper-half-plane conjugate-pair representatives. `max_poles` caps the
/// total unknown count so the residue refit stays overdetermined.
fn select_poles(
    model: &RationalModel,
    omega_max: f64,
    max_unknowns: usize,
) -> (Vec<f64>, Vec<c64>) {
    let f_poles = model.poles();
    let s_poles = f_poles
        .iter()
        // f-domain pole a + jb (Hz) sits at s = j·2π·(a + jb).
        .map(|fp| c64::new(-2.0 * PI * fp.im, 2.0 * PI * fp.re));
    let (mut real, mut pairs) = stabilize_split(s_poles, omega_max);
    cap_pole_budget(&mut real, &mut pairs, max_unknowns.saturating_sub(2));
    (real, pairs)
}

/// Flips, filters, folds, and deduplicates a raw s-domain pole set into
/// stable real poles and upper-half-plane conjugate-pair representatives.
fn stabilize_split(s_poles: impl Iterator<Item = c64>, omega_max: f64) -> (Vec<f64>, Vec<c64>) {
    let mut real: Vec<f64> = Vec::new();
    let mut pairs: Vec<c64> = Vec::new();
    for mut sp in s_poles {
        // Flip unstable poles into the left half plane; nudge marginal
        // ones off the axis so the convolution state decays.
        if sp.re >= 0.0 {
            sp.re = -sp.re.abs().max(1e-6 * sp.im.abs().max(1e-9 * omega_max));
        }
        // Near-zero poles are numerical artifacts of the root finder.
        // Far out-of-band poles are dropped outright: beyond a few ω_max
        // the column 1/(s−p) is nearly constant over the band, collinear
        // with the D column, and the least-squares split between the two
        // becomes a large cancelling pair that leaves D wildly
        // indefinite. D and E absorb their in-band effect instead.
        let m = sp.norm();
        if !(sp.is_finite() && m >= 1e-9 * omega_max && m <= 3.0 * omega_max) {
            continue;
        }
        if sp.im.abs() <= 1e-6 * m {
            real.push(sp.re);
        } else {
            // The one-sided (ω > 0) rational fit does not produce a
            // conjugate-symmetric pole set, so every complex pole is
            // folded onto its upper-half-plane representative; the
            // real-coefficient refit supplies the conjugate partner.
            pairs.push(c64::new(sp.re, sp.im.abs()));
        }
    }
    real.sort_by(f64::total_cmp);
    real.dedup_by(|a, b| (*a - *b).abs() <= 1e-6 * a.abs().max(b.abs()));
    pairs.sort_by(|a, b| a.im.total_cmp(&b.im).then(a.re.total_cmp(&b.re)));
    pairs.dedup_by(|a, b| (*a - *b).norm() <= 1e-6 * a.norm().max(b.norm()));
    (real, pairs)
}

/// Caps the unknown count (1 per real pole, 2 per pair), dropping the
/// farthest-out poles first — their in-band effect is closest to the
/// constant/linear terms already present.
fn cap_pole_budget(real: &mut Vec<f64>, pairs: &mut Vec<c64>, budget: usize) {
    while real.len() + 2 * pairs.len() > budget {
        let worst_real = real.iter().map(|p| p.abs()).fold(0.0, f64::max);
        let worst_pair = pairs.iter().map(|q| q.norm()).fold(0.0, f64::max);
        if worst_pair >= worst_real && !pairs.is_empty() {
            let idx = pairs
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.norm().total_cmp(&b.1.norm()))
                .map(|(i, _)| i)
                .unwrap();
            pairs.remove(idx);
        } else if !real.is_empty() {
            let idx = real
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
                .map(|(i, _)| i)
                .unwrap();
            real.remove(idx);
        } else {
            break;
        }
    }
}

/// Shared pole basis row at complex frequency `x`: one column per real
/// pole, two real-coefficient columns per conjugate pair.
fn pole_basis(x: c64, real_poles: &[f64], pair_poles: &[c64]) -> Vec<c64> {
    let mut row = Vec::with_capacity(real_poles.len() + 2 * pair_poles.len());
    for &p in real_poles {
        row.push((x - c64::from_re(p)).recip());
    }
    for &q in pair_poles {
        let t1 = (x - q).recip();
        let t2 = (x - q.conj()).recip();
        row.push(t1 + t2);
        row.push(c64::I * (t1 - t2));
    }
    row
}

/// Multiplies an ascending-coefficient real polynomial by `(x − a)`.
fn poly_mul_linear(poly: &[f64], a: f64) -> Vec<f64> {
    let mut out = vec![0.0; poly.len() + 1];
    for (d, &c) in poly.iter().enumerate() {
        out[d + 1] += c;
        out[d] -= a * c;
    }
    out
}

/// Multiplies an ascending-coefficient real polynomial by
/// `x² + b·x + c`.
fn poly_mul_quad(poly: &[f64], b: f64, c: f64) -> Vec<f64> {
    let mut out = vec![0.0; poly.len() + 2];
    for (d, &p) in poly.iter().enumerate() {
        out[d + 2] += p;
        out[d + 1] += b * p;
        out[d] += c * p;
    }
    out
}

/// Zeros of the vector-fitting weight function
/// `σ(x) = 1 + Σᵣ c̃ᵣ/(x−pᵣ) + Σₘ [c̃ₘ¹(t₁+t₂) + c̃ₘ²·j(t₁−t₂)]`,
/// computed as the roots of its real numerator polynomial over the
/// common pole denominator. These are the relocated poles of the next
/// vector-fitting iteration.
fn sigma_zeros(ctil: &[f64], real_poles: &[f64], pair_poles: &[c64]) -> Vec<c64> {
    let kr = real_poles.len();
    let quad = |q: c64| (-2.0 * q.re, q.norm_sqr());
    let mut num = vec![1.0];
    for &p in real_poles {
        num = poly_mul_linear(&num, p);
    }
    for &q in pair_poles {
        let (b, c) = quad(q);
        num = poly_mul_quad(&num, b, c);
    }
    for (r, _) in real_poles.iter().enumerate() {
        let mut cof = vec![ctil[r]];
        for (r2, &p2) in real_poles.iter().enumerate() {
            if r2 != r {
                cof = poly_mul_linear(&cof, p2);
            }
        }
        for &q in pair_poles {
            let (b, c) = quad(q);
            cof = poly_mul_quad(&cof, b, c);
        }
        for (d, &c) in cof.iter().enumerate() {
            num[d] += c;
        }
    }
    for (mp, &q) in pair_poles.iter().enumerate() {
        let mut cof = vec![1.0];
        for &p in real_poles {
            cof = poly_mul_linear(&cof, p);
        }
        for (m2, &q2) in pair_poles.iter().enumerate() {
            if m2 != mp {
                let (b, c) = quad(q2);
                cof = poly_mul_quad(&cof, b, c);
            }
        }
        // c̃¹(t₁+t₂) + c̃²·j(t₁−t₂) over the pair's quadratic is the
        // linear numerator 2c̃¹·x − 2(c̃¹·Re q + c̃²·Im q).
        let c1 = ctil[kr + 2 * mp];
        let c2 = ctil[kr + 2 * mp + 1];
        let alpha = 2.0 * c1;
        let beta = -2.0 * (c1 * q.re + c2 * q.im);
        for (d, &c) in cof.iter().enumerate() {
            num[d + 1] += alpha * c;
            num[d] += beta * c;
        }
    }
    let coeffs: Vec<c64> = num.iter().map(|&c| c64::from_re(c)).collect();
    crate::rational::polynomial_roots(&coeffs)
}

/// Sanathanan–Koerner (vector-fitting) pole relocation.
///
/// The one-sided rational interpolant matches `Y(jω)` with complex
/// coefficients, so its poles can sit deep in the right half plane;
/// after the stability flip the basis keeps each pole's on-axis
/// magnitude but conjugates its phase, and no residue refit can recover
/// the lost accuracy. The classical fix iterates: fit
/// `σ(s)·Y(s) ≈ P(s)` with a shared scalar weight `σ` over all port
/// entries, take the zeros of `σ` as the new pole set, flip them
/// stable, and repeat until `σ ≈ 1` — at the fixed point the stable
/// poles themselves explain the response. All arithmetic runs in the
/// normalized variable `x = s/ω_scale` so the polynomial root solve
/// stays conditioned. Best-effort: any numerical failure keeps the most
/// recent pole set.
fn relocate_poles(
    grid: &[f64],
    grid_values: &[Matrix<c64>],
    real_poles: &mut Vec<f64>,
    pair_poles: &mut Vec<c64>,
    omega_scale: f64,
) {
    const VF_ITERS: usize = 10;
    let ports = grid_values[0].nrows();
    let entries: Vec<(usize, usize)> = (0..ports)
        .flat_map(|i| (i..ports).map(move |j| (i, j)))
        .collect();
    let gpts = grid.len();
    let xs: Vec<c64> = grid
        .iter()
        .map(|&f| c64::from_im(2.0 * PI * f / omega_scale))
        .collect();
    let w: Vec<f64> = grid_values
        .iter()
        .map(|y| 1.0 / y.frobenius_norm().max(f64::MIN_POSITIVE))
        .collect();
    let ys: Vec<Vec<c64>> = grid_values
        .iter()
        .map(|y| {
            entries
                .iter()
                .map(|&(i, j)| (y[(i, j)] + y[(j, i)]) * 0.5)
                .collect()
        })
        .collect();

    let mut real_n: Vec<f64> = real_poles.iter().map(|&p| p / omega_scale).collect();
    let mut pairs_n: Vec<c64> = pair_poles.iter().map(|&q| q / omega_scale).collect();
    let budget = real_n.len() + 2 * pairs_n.len();

    for _ in 0..VF_ITERS {
        let n = real_n.len() + 2 * pairs_n.len();
        if n == 0 || n + 2 > 2 * gpts {
            break;
        }
        let m = n + 2;
        let mut theta: Vec<Vec<c64>> = Vec::with_capacity(gpts);
        let mut psi: Vec<Vec<c64>> = Vec::with_capacity(gpts);
        for &x in &xs {
            let pb = pole_basis(x, &real_n, &pairs_n);
            let mut th = Vec::with_capacity(m);
            th.push(c64::ONE);
            th.push(x);
            th.extend_from_slice(&pb);
            theta.push(th);
            psi.push(pb);
        }
        // Column equilibration for both the numerator (θ) and σ (ψ)
        // blocks; the σ columns see the samples as multipliers, so
        // their scale folds in the sample magnitudes too.
        let mut s_th = vec![0.0f64; m];
        let mut s_ps = vec![0.0f64; n];
        for g in 0..gpts {
            let w2 = w[g] * w[g];
            let ysum: f64 = ys[g].iter().map(|y| y.norm_sqr()).sum();
            for k in 0..m {
                s_th[k] += w2 * theta[g][k].norm_sqr();
            }
            for k in 0..n {
                s_ps[k] += w2 * ysum * psi[g][k].norm_sqr();
            }
        }
        for v in s_th.iter_mut().chain(&mut s_ps) {
            *v = v.sqrt().max(f64::MIN_POSITIVE);
        }
        for g in 0..gpts {
            for k in 0..m {
                theta[g][k] = theta[g][k] / s_th[k];
            }
            for k in 0..n {
                psi[g][k] = psi[g][k] / s_ps[k];
            }
        }
        // Block normal equations. Every entry t carries its own
        // numerator coefficients c_t but shares σ's c̃, so the c_t are
        // eliminated per entry through a Schur complement against the
        // common θᵀθ block and only the n×n σ system is solved.
        let mut bmat = Matrix::<f64>::zeros(m, m);
        for g in 0..gpts {
            let w2 = w[g] * w[g];
            for i in 0..m {
                for j in i..m {
                    let v =
                        w2 * (theta[g][i].re * theta[g][j].re + theta[g][i].im * theta[g][j].im);
                    bmat[(i, j)] += v;
                    if i != j {
                        bmat[(j, i)] += v;
                    }
                }
            }
        }
        let max_diag = (0..m).map(|i| bmat[(i, i)]).fold(0.0, f64::max);
        for i in 0..m {
            bmat[(i, i)] += 1e-12 * max_diag.max(f64::MIN_POSITIVE);
        }
        let Ok(lu_b) = LuDecomposition::new(bmat) else {
            break;
        };

        let mut smat = Matrix::<f64>::zeros(n, n);
        let mut rhs = vec![0.0f64; n];
        let mut feasible = true;
        'entries: for (t, _entry) in entries.iter().enumerate() {
            let mut cmat = Matrix::<f64>::zeros(m, n);
            let mut rt = vec![0.0f64; m];
            for g in 0..gpts {
                let w2 = w[g] * w[g];
                let y = ys[g][t];
                let bvec: Vec<c64> = psi[g].iter().map(|&ps| -(y * ps)).collect();
                for i in 0..m {
                    let th = theta[g][i];
                    rt[i] += w2 * (th.re * y.re + th.im * y.im);
                    for k in 0..n {
                        cmat[(i, k)] += w2 * (th.re * bvec[k].re + th.im * bvec[k].im);
                    }
                }
                for k in 0..n {
                    rhs[k] += w2 * (bvec[k].re * y.re + bvec[k].im * y.im);
                    for k2 in k..n {
                        let v = w2 * (bvec[k].re * bvec[k2].re + bvec[k].im * bvec[k2].im);
                        smat[(k, k2)] += v;
                        if k != k2 {
                            smat[(k2, k)] += v;
                        }
                    }
                }
            }
            let Ok(binv_rt) = lu_b.solve(&rt) else {
                feasible = false;
                break 'entries;
            };
            let mut binv_c: Vec<Vec<f64>> = Vec::with_capacity(n);
            for k in 0..n {
                let col: Vec<f64> = (0..m).map(|i| cmat[(i, k)]).collect();
                let Ok(x) = lu_b.solve(&col) else {
                    feasible = false;
                    break 'entries;
                };
                binv_c.push(x);
            }
            for k in 0..n {
                rhs[k] -= (0..m).map(|i| cmat[(i, k)] * binv_rt[i]).sum::<f64>();
                for k2 in 0..n {
                    smat[(k, k2)] -= (0..m).map(|i| cmat[(i, k)] * binv_c[k2][i]).sum::<f64>();
                }
            }
        }
        if !feasible {
            break;
        }
        let max_sdiag = (0..n).map(|i| smat[(i, i)]).fold(0.0, f64::max);
        for i in 0..n {
            smat[(i, i)] += 1e-12 * max_sdiag.max(f64::MIN_POSITIVE);
        }
        let Ok(ctil_scaled) = LuDecomposition::new(smat).and_then(|lu| lu.solve(&rhs)) else {
            break;
        };

        // σ ≈ 1 everywhere means the current stable poles already
        // explain the response — the fixed point.
        let mut sdev = 0.0f64;
        for pg in psi.iter().take(gpts) {
            let mut acc = c64::ZERO;
            for k in 0..n {
                acc += pg[k] * ctil_scaled[k];
            }
            sdev = sdev.max(acc.norm());
        }
        if sdev < 1e-8 {
            break;
        }

        let ctil: Vec<f64> = ctil_scaled.iter().zip(&s_ps).map(|(c, s)| c / s).collect();
        let roots = sigma_zeros(&ctil, &real_n, &pairs_n);
        if roots.is_empty() {
            break;
        }
        let (mut new_real, mut new_pairs) = stabilize_split(roots.into_iter(), 1.0);
        cap_pole_budget(&mut new_real, &mut new_pairs, budget);
        if new_real.is_empty() && new_pairs.is_empty() {
            break;
        }
        real_n = new_real;
        pairs_n = new_pairs;
    }

    *real_poles = real_n.iter().map(|&p| p * omega_scale).collect();
    *pair_poles = pairs_n.iter().map(|&q| q * omega_scale).collect();
}

/// Weighted least-squares refit of `D`, `E`, and every residue matrix
/// against the certified sweep samples. One real normal-equation
/// factorization is shared by all `ports·(ports+1)/2` symmetric entries.
///
/// With `fixed_d = Some(D)` the constant column leaves the basis, the
/// fixed term is subtracted from every sample, and only `E` and the
/// residues are re-solved — used to re-fit around a PSD-projected `D`.
#[allow(clippy::type_complexity)]
fn refit_residues(
    grid: &[f64],
    grid_values: &[Matrix<c64>],
    real_poles: &[f64],
    pair_poles: &[c64],
    ports: usize,
    fixed_d: Option<&Matrix<f64>>,
) -> Result<(Matrix<f64>, Matrix<f64>, Vec<Matrix<f64>>, Vec<Matrix<c64>>), PromError> {
    let kr = real_poles.len();
    let kp = pair_poles.len();
    let has_d = fixed_d.is_none();
    let base = 1 + has_d as usize;
    let m = base + kr + 2 * kp;
    let rows = 2 * grid.len();
    if m > rows {
        return Err(PromError::InvalidInput(format!(
            "{m} unknowns exceed {rows} fit equations — refine the sweep grid"
        )));
    }

    // Complex basis per grid point: [1, s, 1/(s−pₖ)…, (t₁+t₂)ₘ…,
    // j(t₁−t₂)ₘ…]. The Im-part equation rows are weighted by 1/‖Y‖_F so
    // the fit minimizes the same relative-Frobenius metric the sweep
    // certifies; the Re-part rows are weighted by the (much smaller)
    // Hermitian-part norm instead, because any *absolute* error in
    // Re{Y} at a strongly inductive point (‖Y‖ huge, ‖Re Y‖ tiny) turns
    // into a passivity violation that a later uniform shift would smear
    // over the whole band. The 1e-3·‖Y‖ floor keeps near-lossless
    // points from dominating the normal equations.
    let mut basis: Vec<Vec<c64>> = Vec::with_capacity(grid.len());
    let mut w_re: Vec<f64> = Vec::with_capacity(grid.len());
    let mut w_im: Vec<f64> = Vec::with_capacity(grid.len());
    for (gi, &f) in grid.iter().enumerate() {
        let s = c64::from_im(2.0 * PI * f);
        let mut row = Vec::with_capacity(m);
        if has_d {
            row.push(c64::ONE);
        }
        row.push(s);
        row.extend(pole_basis(s, real_poles, pair_poles));
        basis.push(row);
        let y = &grid_values[gi];
        let ynorm = y.frobenius_norm().max(f64::MIN_POSITIVE);
        let renorm = {
            let mut acc = 0.0;
            for i in 0..ports {
                for j in 0..ports {
                    acc += y[(i, j)].re * y[(i, j)].re;
                }
            }
            acc.sqrt()
        };
        w_im.push(1.0 / ynorm);
        w_re.push(1.0 / renorm.max(1e-3 * ynorm));
    }

    // Column equilibration: the raw columns span ~20 orders of
    // magnitude (1 vs. jω vs. 1/(s−p)), which would make the shared
    // normal equations numerically meaningless. Scale each column to
    // unit weighted norm and unscale the coefficients after the solve.
    let mut col_norm = vec![0.0f64; m];
    for (gi, row) in basis.iter().enumerate() {
        let (wr2, wi2) = (w_re[gi] * w_re[gi], w_im[gi] * w_im[gi]);
        for (k, b) in row.iter().enumerate() {
            col_norm[k] += wr2 * b.re * b.re + wi2 * b.im * b.im;
        }
    }
    for cn in &mut col_norm {
        *cn = cn.sqrt().max(f64::MIN_POSITIVE);
    }
    for row in &mut basis {
        for (b, &cn) in row.iter_mut().zip(&col_norm) {
            *b = *b / cn;
        }
    }

    // Normal equations over the Re/Im-stacked real system.
    let mut ata = Matrix::<f64>::zeros(m, m);
    for (gi, row) in basis.iter().enumerate() {
        let (wr2, wi2) = (w_re[gi] * w_re[gi], w_im[gi] * w_im[gi]);
        for i in 0..m {
            for j in i..m {
                let v = wr2 * row[i].re * row[j].re + wi2 * row[i].im * row[j].im;
                ata[(i, j)] += v;
                if i != j {
                    ata[(j, i)] += v;
                }
            }
        }
    }
    // A whisper of Tikhonov keeps near-duplicate basis columns solvable
    // without visibly biasing the fit.
    let max_diag = (0..m).map(|i| ata[(i, i)]).fold(0.0, f64::max);
    for i in 0..m {
        ata[(i, i)] += 1e-12 * max_diag.max(f64::MIN_POSITIVE);
    }
    let lu = LuDecomposition::new(ata)
        .map_err(|e| PromError::NumericalBreakdown(format!("residue normal equations: {e}")))?;

    let mut d = Matrix::<f64>::zeros(ports, ports);
    let mut e = Matrix::<f64>::zeros(ports, ports);
    let mut real_res = vec![Matrix::<f64>::zeros(ports, ports); kr];
    let mut pair_res = vec![Matrix::<c64>::zeros(ports, ports); kp];
    for pi in 0..ports {
        for pj in pi..ports {
            let mut atb = vec![0.0; m];
            for ((gi, row), y) in basis.iter().enumerate().zip(grid_values) {
                // Symmetrize the sample so the model is symmetric by
                // construction even under round-off asymmetry.
                let mut yij = (y[(pi, pj)] + y[(pj, pi)]) * 0.5;
                if let Some(dm) = fixed_d {
                    yij -= c64::from_re(dm[(pi, pj)]);
                }
                let (wr2, wi2) = (w_re[gi] * w_re[gi], w_im[gi] * w_im[gi]);
                for (k, b) in row.iter().enumerate() {
                    atb[k] += wr2 * b.re * yij.re + wi2 * b.im * yij.im;
                }
            }
            let mut coef = lu
                .solve(&atb)
                .map_err(|e| PromError::NumericalBreakdown(format!("residue solve: {e}")))?;
            for (c, &cn) in coef.iter_mut().zip(&col_norm) {
                *c /= cn;
            }
            let dval = match fixed_d {
                Some(dm) => dm[(pi, pj)],
                None => coef[0],
            };
            d[(pi, pj)] = dval;
            d[(pj, pi)] = dval;
            // The linear term's coefficient multiplies s = jω, so the
            // fitted real coefficient is E itself.
            e[(pi, pj)] = coef[base - 1];
            e[(pj, pi)] = coef[base - 1];
            for k in 0..kr {
                real_res[k][(pi, pj)] = coef[base + k];
                real_res[k][(pj, pi)] = coef[base + k];
            }
            for mp in 0..kp {
                let c = c64::new(coef[base + kr + 2 * mp], coef[base + kr + 2 * mp + 1]);
                pair_res[mp][(pi, pj)] = c;
                pair_res[mp][(pj, pi)] = c;
            }
        }
    }
    Ok((d, e, real_res, pair_res))
}

/// Worst relative Frobenius deviation of the model against samples.
fn worst_residual(model: &PoleResidueModel, freqs: &[f64], values: &[Matrix<c64>]) -> f64 {
    let mut worst = 0.0f64;
    for (&f, y) in freqs.iter().zip(values) {
        let diff = &model.evaluate(f) - y;
        worst = worst.max(diff.frobenius_norm() / y.frobenius_norm().max(f64::MIN_POSITIVE));
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::{sweep, SweepAccuracy};

    /// A known passive 2-port: Y(s) = D + sE + R/(s−p) + C/(s−q) + c.c.
    fn analytic_y(f: f64) -> Matrix<c64> {
        let s = c64::from_im(2.0 * PI * f);
        let d = [[2e-3, -1e-3], [-1e-3, 2e-3]];
        let e = [[1e-12, 2e-13], [2e-13, 1e-12]];
        let p = -2.0 * PI * 3e8;
        let r = [[5e6, 2e6], [2e6, 5e6]];
        let q = c64::new(-2.0 * PI * 5e7, 2.0 * PI * 8e8);
        let c = [
            [c64::new(3e6, -1e6), c64::new(1e6, -4e5)],
            [c64::new(1e6, -4e5), c64::new(3e6, -1e6)],
        ];
        Matrix::from_fn(2, 2, |i, j| {
            c64::from_re(d[i][j])
                + s * e[i][j]
                + c64::from_re(r[i][j]) / (s - c64::from_re(p))
                + c[i][j] / (s - q)
                + c[i][j].conj() / (s - q.conj())
        })
    }

    fn build_test_model(cert_tol: f64) -> Result<PoleResidueModel, PromError> {
        let grid: Vec<f64> = (0..60)
            .map(|k| 1e6 * (3e9f64 / 1e6).powf(k as f64 / 59.0))
            .collect();
        let outcome = sweep(
            "prom.test",
            &grid,
            SweepAccuracy::Rational { rel_tol: 1e-6 },
            |f| Ok::<_, std::convert::Infallible>(analytic_y(f)),
        )
        .unwrap();
        let model = outcome.model.expect("rational fit certified");
        let holdout: Vec<f64> = (0..8)
            .map(|k| (grid[4 * k] * grid[4 * k + 1]).sqrt())
            .collect();
        let holdout_values: Vec<Matrix<c64>> = holdout.iter().map(|&f| analytic_y(f)).collect();
        PoleResidueModel::from_rational(
            "test",
            &model,
            &grid,
            &outcome.values,
            &holdout,
            &holdout_values,
            &PromOptions { cert_tol },
        )
    }

    #[test]
    fn codec_round_trip_is_bit_exact() {
        let rom = build_test_model(1e-3).unwrap();
        let mut w = crate::codec::ByteWriter::new();
        rom.write_to(&mut w);
        let bytes = w.into_bytes();
        let mut r = crate::codec::ByteReader::new(&bytes);
        let back = PoleResidueModel::read_from(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, rom, "decoded model bit-identical");
        // Re-encoding reproduces the exact byte stream.
        let mut w2 = crate::codec::ByteWriter::new();
        back.write_to(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
        // Truncation fails loudly instead of yielding a partial model.
        let mut r = crate::codec::ByteReader::new(&bytes[..bytes.len() - 3]);
        assert!(PoleResidueModel::read_from(&mut r).is_err());
    }

    #[test]
    fn recovers_analytic_admittance() {
        let rom = build_test_model(1e-3).unwrap();
        assert_eq!(rom.ports(), 2);
        assert!(rom.pole_count() >= 2, "poles: {}", rom.pole_count());
        assert!(rom.fit_residual() < 1e-3, "fit {:.3e}", rom.fit_residual());
        assert!(
            rom.holdout_residual() < 1e-3,
            "holdout {:.3e}",
            rom.holdout_residual()
        );
        // Off-grid spot check.
        let f = 137e6;
        let y = rom.evaluate(f);
        let exact = analytic_y(f);
        let rel = (&y - &exact).frobenius_norm() / exact.frobenius_norm();
        assert!(rel < 1e-3, "off-grid deviation {rel:.3e}");
    }

    #[test]
    fn poles_are_stable_and_model_passive() {
        let rom = build_test_model(1e-3).unwrap();
        for &p in rom.real_poles() {
            assert!(p < 0.0, "real pole {p:e}");
        }
        for &q in rom.pair_poles() {
            assert!(q.re < 0.0 && q.im > 0.0, "pair pole {q:?}");
        }
        // Passivity on a grid the builder never saw.
        for k in 0..40 {
            let f = 1.3e6 * (2.7e9f64 / 1.3e6).powf(k as f64 / 39.0);
            let re_y = rom.evaluate(f).map(|z| z.re);
            let lam = symmetric_eigen(&re_y).unwrap().values[0];
            assert!(lam >= -1e-12, "λ_min = {lam:e} at f = {f:e}");
        }
    }

    #[test]
    fn recursion_matches_analytic_convolution() {
        // Single real pole, unit step drive: x(t) = (e^{pt} − 1)/p.
        let p = -2.0 * PI * 1e8;
        let dt = 1e-11;
        for kk in [1.0, 2.0] {
            let (alpha, beta) = PoleResidueModel::alpha_beta(c64::from_re(p), kk, dt);
            let mut x = 0.0;
            let mut v_prev = 0.0;
            for n in 0..2000 {
                // v jumps to 1 at the first step and stays.
                let v_new = 1.0;
                x = alpha.re * x + beta.re * (v_new + (kk - 1.0) * v_prev);
                v_prev = v_new;
                let t = (n + 1) as f64 * dt;
                let exact = ((p * t).exp() - 1.0) / p;
                // Skip the onset: trapezoidal sees the discontinuous
                // step as a half-sample ramp, an O(dt) discrepancy that
                // decays like e^{p·t}.
                if n >= 50 {
                    assert!(
                        (x - exact).abs() <= 2e-2 * exact.abs() + 1e-12,
                        "kk={kk} n={n}: {x:e} vs {exact:e}"
                    );
                }
            }
        }
    }

    #[test]
    fn companion_stamp_consistent_with_history() {
        // Driving the companion recursions with a sinusoidal port
        // voltage must reproduce the frequency-domain admittance.
        let rom = build_test_model(1e-3).unwrap();
        let f = 200e6;
        let dt = 1.0 / (400.0 * f); // 400 steps per period
        let kk = 2.0;
        let g = rom.companion_admittance(kk, dt);
        let mut st = rom.new_state();
        let omega = 2.0 * PI * f;
        // Drive port 0, leave port 1 at 0: i₀(t) settles to
        // |Y₀₀|·sin(ωt + arg Y₀₀). The abrupt sinusoid onset excites the
        // trapezoidal Nyquist mode of the E branch (an undamped (−1)ⁿ
        // homogeneous solution, the classic trapezoidal ringing);
        // averaging adjacent samples cancels it exactly while scaling
        // the sinusoid by only cos(ω·dt/2) ≈ 1 − 3·10⁻⁵.
        let n_steps = 4000;
        let mut last_peak = 0.0f64;
        let mut i0_prev = 0.0f64;
        for n in 0..n_steps {
            let t = (n + 1) as f64 * dt;
            let v = [(omega * t).sin(), 0.0];
            let h = rom.history_current(kk, dt, &st);
            let i0 = g[(0, 0)] * v[0] + g[(0, 1)] * v[1] + h[0];
            rom.advance_state(kk, dt, &v, &mut st);
            if n > n_steps / 2 {
                last_peak = last_peak.max(0.5 * (i0 + i0_prev).abs());
            }
            i0_prev = i0;
        }
        let y00 = rom.evaluate(f)[(0, 0)].norm();
        assert!(
            (last_peak - y00).abs() < 0.02 * y00,
            "peak {last_peak:e} vs |Y00| {y00:e}"
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        let grid = [1e6, 2e6, 3e6, 4e6];
        let vals: Vec<Matrix<c64>> = grid.iter().map(|&f| analytic_y(f)).collect();
        let outcome = sweep("prom.badinput", &grid, SweepAccuracy::Exact, |f| {
            Ok::<_, std::convert::Infallible>(analytic_y(f))
        })
        .unwrap();
        // No rational model on the exact path — build one from a tiny
        // rational sweep instead, then feed inconsistent samples.
        assert!(outcome.model.is_none());
        let rom = build_test_model(1e-3).unwrap();
        let _ = rom;
        let grid2: Vec<f64> = (0..60)
            .map(|k| 1e6 * (3e9f64 / 1e6).powf(k as f64 / 59.0))
            .collect();
        let outcome2 = sweep(
            "prom.badinput2",
            &grid2,
            SweepAccuracy::Rational { rel_tol: 1e-6 },
            |f| Ok::<_, std::convert::Infallible>(analytic_y(f)),
        )
        .unwrap();
        let model = outcome2.model.unwrap();
        // Mismatched sample count.
        let err = PoleResidueModel::from_rational(
            "bad",
            &model,
            &grid2,
            &vals,
            &[],
            &[],
            &PromOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, PromError::InvalidInput(_)));
        // Bad tolerance.
        let err = PoleResidueModel::from_rational(
            "bad",
            &model,
            &grid2,
            &outcome2.values,
            &[],
            &[],
            &PromOptions { cert_tol: -1.0 },
        )
        .unwrap_err();
        assert!(matches!(err, PromError::InvalidInput(_)));
    }

    #[test]
    fn certification_failure_is_reported() {
        // An absurdly tight holdout tolerance must trip the gate.
        let err = build_test_model(1e-16).unwrap_err();
        match err {
            PromError::CertificationFailed { residual, tol } => {
                assert!(residual > tol);
            }
            other => panic!("expected CertificationFailed, got {other:?}"),
        }
    }
}
