//! Adaptive rational-macromodel frequency sweeps.
//!
//! Every frequency-domain response in this toolkit — the BEM nodal
//! admittance `Y(ω) = jωC + Aᵀ(Zs + jωL)⁻¹A` (paper eq. 15), port
//! impedances, MNA transfer functions, S-parameters — is a smooth,
//! near-rational function of frequency: a finite set of plane/circuit
//! modes in band plus slowly varying tails. A dense sweep that pays one
//! full complex LU factorization *per grid point* therefore recomputes
//! information a handful of exact solves already determine.
//!
//! This module is the shared sweep driver exploiting that structure:
//!
//! 1. **Anchor selection.** A small set of grid points (endpoints plus
//!    quartiles) is solved exactly, fanned out over
//!    [`crate::parallel`] workers with the usual lowest-index error
//!    semantics.
//! 2. **Barycentric rational fit (greedy AAA).** Supports are promoted
//!    one at a time from the solved fit data — always the point the
//!    current model misses worst — and after each promotion the
//!    barycentric weights are recomputed as the least-squares null
//!    vector of the Loewner matrix over *every* remaining data point —
//!    the smallest right singular vector, computed by Householder QR
//!    plus inverse iteration ([`smallest_singular_vector`]) so the
//!    attainable residual is not floored by Gram-matrix squaring. Every
//!    exact solve already paid for therefore constrains the fit.
//! 3. **Held-out certification with bisection refinement.** The midpoint
//!    of every interval between adjacent fit points is solved exactly
//!    and compared against the interpolant — but *held out* of the fit,
//!    so certification is honest. Intervals within `rel_tol` are
//!    certified (their midpoints are re-checked against each later model
//!    for free, no re-solve); failing midpoints join the fit data and
//!    the model is rebuilt, so exact solves accumulate exactly where the
//!    response is hard (e.g. a high-Q resonance).
//! 4. **Fill or fall back.** Certified intervals are filled from the
//!    interpolant; any grid point that was solved exactly is returned
//!    bit-identically; intervals that never certify (refinement stalled)
//!    fall back to exact per-point solves — accuracy is never silently
//!    degraded.
//!
//! Every decision depends only on solved values, never on timing or
//! scheduling, so results are **bit-identical for every `PDN_THREADS`
//! setting**. Setting `PDN_SWEEP_STATS=1` prints one stats line per
//! sweep to stderr.
//!
//! # Examples
//!
//! ```
//! use pdn_num::rational::{sweep, SweepAccuracy};
//! use pdn_num::{c64, Matrix};
//!
//! // A one-pole scalar response sampled on a 64-point grid.
//! let freqs: Vec<f64> = (0..64).map(|k| 1.0 + k as f64 * 0.1).collect();
//! let eval = |f: f64| -> Result<Matrix<c64>, std::convert::Infallible> {
//!     let y = (c64::from_re(f) - c64::new(4.0, 0.3)).recip();
//!     Ok(Matrix::from_rows(&[&[y]]))
//! };
//! let out = sweep("demo", &freqs, SweepAccuracy::Rational { rel_tol: 1e-10 }, eval).unwrap();
//! assert_eq!(out.values.len(), 64);
//! assert!(out.stats.anchors < 32, "few exact solves: {}", out.stats.anchors);
//! ```

use crate::eigen::smallest_singular_vector;
use crate::{c64, parallel, Matrix};
use std::collections::BTreeMap;
use std::fmt;
use std::time::{Duration, Instant};

/// Below this grid size a rational fit cannot amortize its anchor solves;
/// the engine silently uses the exact path.
const MIN_RATIONAL_POINTS: usize = 16;
/// Bisection-refinement rounds before an interval is declared stalled.
const MAX_REFINE_ROUNDS: usize = 16;
/// Cap on Loewner-matrix columns sampled per matrix entry set.
const MAX_SAMPLED_ENTRIES: usize = 96;
/// Hard cap on barycentric supports per model: past this order a fit no
/// longer amortizes its own construction cost against exact solves.
const MAX_SUPPORTS: usize = 40;

/// Accuracy policy for a frequency sweep.
///
/// The default is [`SweepAccuracy::Exact`], which factors every grid
/// point — the historical behavior, and what all golden/determinism
/// tests pin. [`SweepAccuracy::Rational`] solves only adaptively chosen
/// anchors exactly and fills the rest from a certified barycentric
/// rational interpolant (see the module docs for the certification
/// contract).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SweepAccuracy {
    /// One exact factorization per grid point.
    #[default]
    Exact,
    /// Adaptive rational interpolation between exact anchor solves.
    Rational {
        /// Relative (Frobenius-norm) tolerance certified at held-out
        /// grid points. Must be positive and finite.
        rel_tol: f64,
    },
}

/// Error from the shared sweep engine.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError<E> {
    /// The frequency grid (or the accuracy spec) is invalid: grids must
    /// be finite, strictly positive, and strictly increasing.
    InvalidInput(String),
    /// A per-point evaluation failed (lowest failing index reported).
    Eval(E),
}

impl<E: fmt::Display> fmt::Display for SweepError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::InvalidInput(msg) => write!(f, "invalid sweep input: {msg}"),
            SweepError::Eval(e) => write!(f, "sweep evaluation failed: {e}"),
        }
    }
}

impl<E: fmt::Debug + fmt::Display> std::error::Error for SweepError<E> {}

/// Per-sweep engine statistics (also printed to stderr when
/// `PDN_SWEEP_STATS=1`).
#[derive(Debug, Clone, Default)]
pub struct SweepStats {
    /// Grid points in the sweep.
    pub points: usize,
    /// Exact factorizations spent on anchors and held-out checks.
    pub anchors: usize,
    /// Frequencies of those anchor/held-out solves, ascending.
    pub anchor_freqs: Vec<f64>,
    /// Grid points returned from an exact solve (anchors, held-out
    /// points, and fallback points that happen to lie on the grid).
    pub exact_points: usize,
    /// Grid points filled from the rational interpolant.
    pub interpolated_points: usize,
    /// Grid points exact-solved because their interval never certified.
    pub fallback_points: usize,
    /// Largest certified held-out relative residual (0 when nothing was
    /// interpolated).
    pub max_residual: f64,
    /// Wall-clock time of the whole sweep.
    pub wall: Duration,
}

/// A sweep's values plus the engine's accounting.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// One response matrix per grid point, in grid order.
    pub values: Vec<Matrix<c64>>,
    /// Engine statistics for this sweep.
    pub stats: SweepStats,
    /// The rational interpolant, when one was built and certified for at
    /// least part of the grid (always `None` on the exact path). Its
    /// poles seed resonance searches.
    pub model: Option<RationalModel>,
}

/// Matrix-valued barycentric rational interpolant
/// `R(f) = Σⱼ wⱼ·Yⱼ/(f−zⱼ) / Σⱼ wⱼ/(f−zⱼ)` over support frequencies
/// `zⱼ` with exact samples `Yⱼ`.
#[derive(Debug, Clone)]
pub struct RationalModel {
    supports: Vec<f64>,
    values: Vec<Matrix<c64>>,
    weights: Vec<c64>,
}

impl RationalModel {
    /// Number of support points (the rational order is one less).
    pub fn order(&self) -> usize {
        self.supports.len()
    }

    /// Support frequencies (ascending).
    pub fn supports(&self) -> &[f64] {
        &self.supports
    }

    /// Evaluates the interpolant at frequency `f`. At a support
    /// frequency the stored exact sample is returned bit-identically.
    pub fn evaluate(&self, f: f64) -> Matrix<c64> {
        if let Some(j) = self.supports.iter().position(|&z| z == f) {
            return self.values[j].clone();
        }
        let (rows, cols) = self.values[0].shape();
        let mut num = Matrix::<c64>::zeros(rows, cols);
        let mut den = c64::ZERO;
        for ((&z, &w), y) in self.supports.iter().zip(&self.weights).zip(&self.values) {
            let coef = w / c64::from_re(f - z);
            den += coef;
            for (o, s) in num.as_mut_slice().iter_mut().zip(y.as_slice()) {
                *o += coef * *s;
            }
        }
        let inv = den.recip();
        for o in num.as_mut_slice() {
            *o *= inv;
        }
        num
    }

    /// Relative residual against an exact sample at a non-support
    /// frequency, measured over the sampled entry set only — the cheap
    /// metric driving greedy support selection (full-matrix residuals
    /// are reserved for certification).
    fn entry_residual(&self, f: f64, exact: &Matrix<c64>, entries: &[(usize, usize)]) -> f64 {
        let coefs: Vec<c64> = self
            .supports
            .iter()
            .zip(&self.weights)
            .map(|(&z, &w)| w / c64::from_re(f - z))
            .collect();
        let den: c64 = coefs.iter().fold(c64::ZERO, |a, &cc| a + cc);
        let inv = den.recip();
        let mut num2 = 0.0;
        let mut den2 = 0.0;
        for &(i, j) in entries {
            let mut acc = c64::ZERO;
            for (cc, y) in coefs.iter().zip(&self.values) {
                acc += *cc * y[(i, j)];
            }
            num2 += (acc * inv - exact[(i, j)]).norm_sqr();
            den2 += exact[(i, j)].norm_sqr();
        }
        (num2 / den2.max(f64::MIN_POSITIVE)).sqrt()
    }

    /// Poles of the interpolant (complex frequencies in Hz): the roots of
    /// the barycentric denominator, found with a deterministic
    /// Durand–Kerner iteration in a normalized variable. Physical
    /// resonances show up as poles near the real axis; their real parts
    /// seed peak searches in `find_resonances`.
    pub fn poles(&self) -> Vec<c64> {
        let m = self.supports.len();
        if m < 2 {
            return Vec::new();
        }
        // Normalize to x ∈ [−1, 1] so monomial coefficients stay tame.
        let mid = 0.5 * (self.supports[0] + self.supports[m - 1]);
        let half = (0.5 * (self.supports[m - 1] - self.supports[0])).max(f64::MIN_POSITIVE);
        let zn: Vec<f64> = self.supports.iter().map(|&z| (z - mid) / half).collect();
        // Denominator N(x) = Σⱼ wⱼ·Πₗ≠ⱼ(x − zₗ), degree ≤ m−1.
        let mut coeffs = vec![c64::ZERO; m];
        for j in 0..m {
            let mut p = vec![c64::ZERO; m];
            p[0] = c64::ONE;
            let mut deg = 0usize;
            for (l, &z) in zn.iter().enumerate() {
                if l == j {
                    continue;
                }
                // p ← p·(x − z), in place, highest degree first.
                for d in (0..=deg).rev() {
                    let pd = p[d];
                    p[d + 1] += pd;
                    p[d] = pd * (-z);
                }
                deg += 1;
            }
            for (cd, &pd) in coeffs.iter_mut().zip(&p) {
                *cd += self.weights[j] * pd;
            }
        }
        polynomial_roots(&coeffs)
            .into_iter()
            .map(|x| c64::from_re(mid) + x * half)
            .collect()
    }
}

/// All roots of `Σ_d coeffs[d]·x^d` by the Durand–Kerner (Weierstrass)
/// iteration with deterministic initial guesses.
pub(crate) fn polynomial_roots(coeffs: &[c64]) -> Vec<c64> {
    let max_c = coeffs.iter().map(|cc| cc.norm()).fold(0.0, f64::max);
    if max_c == 0.0 {
        return Vec::new();
    }
    let mut deg = coeffs.len() - 1;
    while deg > 0 && coeffs[deg].norm() <= 1e-14 * max_c {
        deg -= 1;
    }
    if deg == 0 {
        return Vec::new();
    }
    let lead = coeffs[deg].recip();
    let monic: Vec<c64> = coeffs[..=deg].iter().map(|&cc| cc * lead).collect();
    let base = c64::new(0.4, 0.9);
    let mut seed = c64::ONE;
    let mut roots = Vec::with_capacity(deg);
    for _ in 0..deg {
        seed *= base;
        roots.push(seed);
    }
    for _ in 0..200 {
        let mut max_step = 0.0f64;
        for k in 0..deg {
            let rk = roots[k];
            let mut val = monic[deg];
            for d in (0..deg).rev() {
                val = val * rk + monic[d];
            }
            let mut den = c64::ONE;
            for (l, &rl) in roots.iter().enumerate() {
                if l != k {
                    den *= rk - rl;
                }
            }
            if den.norm() == 0.0 {
                continue;
            }
            let delta = val / den;
            roots[k] = rk - delta;
            max_step = max_step.max(delta.norm());
        }
        if max_step < 1e-13 {
            break;
        }
    }
    roots
}

/// Validates a sweep frequency grid: non-empty, every point finite and
/// strictly positive, and the grid strictly increasing (no duplicates).
///
/// The message names the first offending point, so callers can surface
/// it verbatim in their `InvalidInput`-style errors.
///
/// # Errors
///
/// Returns a descriptive message for the lowest-index violation.
///
/// # Examples
///
/// ```
/// assert!(pdn_num::rational::validate_grid(&[1.0, 2.0, 3.0]).is_ok());
/// assert!(pdn_num::rational::validate_grid(&[1.0, -1.0]).unwrap_err().contains("-1"));
/// assert!(pdn_num::rational::validate_grid(&[2.0, 2.0]).is_err());
/// assert!(pdn_num::rational::validate_grid(&[]).is_err());
/// ```
pub fn validate_grid(freqs: &[f64]) -> Result<(), String> {
    if freqs.is_empty() {
        return Err("sweep grid is empty (need at least one frequency)".into());
    }
    for (k, &f) in freqs.iter().enumerate() {
        if !(f.is_finite() && f > 0.0) {
            return Err(format!(
                "sweep grid point {k} must be a finite frequency > 0, got f = {f}"
            ));
        }
    }
    for (k, w) in freqs.windows(2).enumerate() {
        if w[1] <= w[0] {
            return Err(format!(
                "sweep grid must be strictly increasing: point {} ({}) does not exceed \
                 point {k} ({})",
                k + 1,
                w[1],
                w[0]
            ));
        }
    }
    Ok(())
}

/// Runs a frequency sweep of `eval` over `freqs` under the given
/// accuracy policy. This is the shared engine behind every public sweep
/// API (`BemSystem`, `Circuit`, `EquivalentCircuit`, the core verify
/// helpers).
///
/// `label` names the sweep in `PDN_SWEEP_STATS=1` stderr lines. `eval`
/// must be a pure function of `f` (it is called from
/// [`crate::parallel`] workers and may be called at any subset of the
/// grid).
///
/// # Errors
///
/// [`SweepError::InvalidInput`] for an invalid grid or `rel_tol`;
/// [`SweepError::Eval`] with the lowest-index failing point's error when
/// `eval` fails.
pub fn sweep<E, F>(
    label: &str,
    freqs: &[f64],
    accuracy: SweepAccuracy,
    eval: F,
) -> Result<SweepOutcome, SweepError<E>>
where
    E: Send,
    F: Fn(f64) -> Result<Matrix<c64>, E> + Sync,
{
    let t0 = Instant::now();
    validate_grid(freqs).map_err(SweepError::InvalidInput)?;
    let mut outcome = match accuracy {
        SweepAccuracy::Exact => exact_sweep(freqs, &eval)?,
        SweepAccuracy::Rational { rel_tol } => {
            if !(rel_tol.is_finite() && rel_tol > 0.0) {
                return Err(SweepError::InvalidInput(format!(
                    "Rational rel_tol must be finite and > 0, got {rel_tol}"
                )));
            }
            if freqs.len() < MIN_RATIONAL_POINTS {
                exact_sweep(freqs, &eval)?
            } else {
                rational_sweep(freqs, rel_tol, &eval)?
            }
        }
    };
    outcome.stats.wall = t0.elapsed();
    if std::env::var("PDN_SWEEP_STATS").as_deref() == Ok("1") {
        let s = &outcome.stats;
        eprintln!(
            "pdn sweep[{label}]: {} points, {} anchors factored, {} interpolated, \
             {} fallback, max residual {:.3e}, {:.3} ms",
            s.points,
            s.anchors,
            s.interpolated_points,
            s.fallback_points,
            s.max_residual,
            s.wall.as_secs_f64() * 1e3,
        );
    }
    Ok(outcome)
}

/// The historical path: one exact evaluation per grid point, in
/// parallel, bit-identical for every worker count.
fn exact_sweep<E, F>(freqs: &[f64], eval: &F) -> Result<SweepOutcome, SweepError<E>>
where
    E: Send,
    F: Fn(f64) -> Result<Matrix<c64>, E> + Sync,
{
    let values =
        parallel::try_par_map_indexed(freqs.len(), |k| eval(freqs[k])).map_err(SweepError::Eval)?;
    Ok(SweepOutcome {
        values,
        stats: SweepStats {
            points: freqs.len(),
            exact_points: freqs.len(),
            ..SweepStats::default()
        },
        model: None,
    })
}

/// Solves every listed grid index not already cached, in one parallel
/// batch (ascending index order, so the lowest failing frequency's error
/// is reported).
fn solve_into_cache<E, F>(
    freqs: &[f64],
    idxs: &[usize],
    cache: &mut BTreeMap<usize, Matrix<c64>>,
    eval: &F,
) -> Result<(), SweepError<E>>
where
    E: Send,
    F: Fn(f64) -> Result<Matrix<c64>, E> + Sync,
{
    let need: Vec<usize> = idxs
        .iter()
        .copied()
        .filter(|k| !cache.contains_key(k))
        .collect();
    let solved = parallel::try_par_map_indexed(need.len(), |j| eval(freqs[need[j]]))
        .map_err(SweepError::Eval)?;
    for (k, v) in need.into_iter().zip(solved) {
        cache.insert(k, v);
    }
    Ok(())
}

/// Frobenius-relative mismatch `‖A − B‖_F / ‖B‖_F` (B exact).
fn relative_residual(approx: &Matrix<c64>, exact: &Matrix<c64>) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for (a, b) in approx.as_slice().iter().zip(exact.as_slice()) {
        num += (*a - *b).norm_sqr();
        den += b.norm_sqr();
    }
    (num / den.max(f64::MIN_POSITIVE)).sqrt()
}

/// Deterministic subset of matrix entries used to build the Loewner
/// matrix: the full entry set when small, otherwise the diagonal plus a
/// strided sample (large port-count or full nodal-admittance sweeps).
fn sampled_entries(rows: usize, cols: usize) -> Vec<(usize, usize)> {
    let total = rows * cols;
    if total <= MAX_SAMPLED_ENTRIES {
        return (0..total).map(|e| (e / cols, e % cols)).collect();
    }
    let mut flat: Vec<usize> = (0..rows.min(cols)).map(|d| d * cols + d).collect();
    let stride = total.div_ceil(MAX_SAMPLED_ENTRIES);
    flat.extend((0..total).step_by(stride));
    flat.sort_unstable();
    flat.dedup();
    flat.into_iter().map(|e| (e / cols, e % cols)).collect()
}

/// Builds a barycentric interpolant from the solved fit data by greedy
/// AAA support selection: the seed support is the point a flat (mean)
/// fit misses worst, and each step promotes the data point with the
/// largest sampled-entry relative residual under the current model
/// (lowest grid index on ties — deterministic). After every promotion
/// the weights are refit against *all* remaining data points, so each
/// exact solve already in the cache constrains the model. Stops once
/// the fit meets `rel_tol` on every non-support point or the support
/// budget is spent (certification then decides what that model is good
/// for).
fn build_model(
    freqs: &[f64],
    data: &[usize],
    cache: &BTreeMap<usize, Matrix<c64>>,
    rel_tol: f64,
) -> RationalModel {
    let vals: Vec<&Matrix<c64>> = data.iter().map(|k| &cache[k]).collect();
    let (rows, cols) = vals[0].shape();
    let entries = sampled_entries(rows, cols);

    let mut mean = Matrix::<c64>::zeros(rows, cols);
    for v in &vals {
        for (o, s) in mean.as_mut_slice().iter_mut().zip(v.as_slice()) {
            *o += *s;
        }
    }
    let inv_n = 1.0 / data.len() as f64;
    for o in mean.as_mut_slice() {
        *o = *o * inv_n;
    }
    let mut is_support = vec![false; data.len()];
    let mut seed = (0usize, f64::NEG_INFINITY);
    for (t, v) in vals.iter().enumerate() {
        let r = relative_residual(&mean, v);
        if r > seed.1 {
            seed = (t, r);
        }
    }
    is_support[seed.0] = true;

    // The support cap keeps the Loewner least-squares problem
    // over-determined: every non-support data point contributes one row
    // *per sampled matrix entry*, so matrix-valued sweeps afford far
    // more supports per data point than scalar ones (solve for m in
    // (data − m)·entries ≥ m + entries). Fitting the data a decade
    // tighter than the certification target leaves margin for the
    // (always larger) error at held-out midpoints.
    let cap = MAX_SUPPORTS
        .min(entries.len() * (data.len() - 1) / (entries.len() + 1))
        .max(1);
    let fit_tol = 0.1 * rel_tol;
    loop {
        let model = fit_weights(freqs, data, &vals, &is_support, &entries);
        let mut worst = (usize::MAX, 0.0f64);
        for (t, v) in vals.iter().enumerate() {
            if is_support[t] {
                continue;
            }
            let r = model.entry_residual(freqs[data[t]], v, &entries);
            if r > worst.1 {
                worst = (t, r);
            }
        }
        let supports = is_support.iter().filter(|s| **s).count();
        if worst.0 == usize::MAX || worst.1 <= fit_tol || supports >= cap {
            return model;
        }
        is_support[worst.0] = true;
    }
}

/// Barycentric weights for a fixed support set: the least-squares null
/// vector of the Loewner matrix whose rows are the relative-residual
/// equations at every non-support data point.
fn fit_weights(
    freqs: &[f64],
    data: &[usize],
    vals: &[&Matrix<c64>],
    is_support: &[bool],
    entries: &[(usize, usize)],
) -> RationalModel {
    let sup: Vec<usize> = (0..data.len()).filter(|&t| is_support[t]).collect();
    let tests: Vec<usize> = (0..data.len()).filter(|&t| !is_support[t]).collect();
    let supports: Vec<f64> = sup.iter().map(|&t| freqs[data[t]]).collect();
    let values: Vec<Matrix<c64>> = sup.iter().map(|&t| vals[t].clone()).collect();
    let m = supports.len();
    let weights = if tests.is_empty() {
        vec![c64::ONE; m]
    } else {
        let mut l = Matrix::<c64>::zeros(tests.len() * entries.len(), m);
        let mut r = 0;
        for &t in &tests {
            let ft = freqs[data[t]];
            let yt = vals[t];
            // Row scaling makes each test equation a *relative* residual.
            let norm: f64 = entries
                .iter()
                .map(|&(i, j)| yt[(i, j)].norm_sqr())
                .sum::<f64>()
                .sqrt();
            let scale = 1.0 / norm.max(f64::MIN_POSITIVE);
            for &(i, j) in entries {
                for (jj, (&z, yz)) in supports.iter().zip(&values).enumerate() {
                    l[(r, jj)] = (yt[(i, j)] - yz[(i, j)]) * (scale / (ft - z));
                }
                r += 1;
            }
        }
        // The weight vector minimizing ‖L·w‖ over ‖w‖ = 1, computed on
        // L directly (QR + inverse iteration) — forming LᴴL would floor
        // the attainable residual near √ε and block tight tolerances.
        smallest_singular_vector(&l).unwrap_or_else(|_| vec![c64::ONE; m])
    };
    RationalModel {
        supports,
        values,
        weights,
    }
}

/// The adaptive anchor/certify/fill loop described in the module docs.
fn rational_sweep<E, F>(
    freqs: &[f64],
    rel_tol: f64,
    eval: &F,
) -> Result<SweepOutcome, SweepError<E>>
where
    E: Send,
    F: Fn(f64) -> Result<Matrix<c64>, E> + Sync,
{
    let n = freqs.len();
    let mut cache: BTreeMap<usize, Matrix<c64>> = BTreeMap::new();
    // Fit data: sorted grid indices whose exact solves constrain the
    // model. Certification midpoints stay *out* of this list (held out)
    // until they fail, at which point they join it.
    let mut data: Vec<usize> = (0..=4).map(|q| q * (n - 1) / 4).collect();
    data.dedup();
    // Past this many exact solves a rational fit cannot beat exact
    // solving; stop refining and let uncertified intervals fall back.
    let solve_budget = n / 2;

    let mut model: Option<RationalModel> = None;
    let mut certified: Vec<(usize, usize)> = Vec::new();
    let mut max_residual = 0.0f64;

    for round in 0..MAX_REFINE_ROUNDS {
        solve_into_cache(freqs, &data, &mut cache, eval)?;
        let m = build_model(freqs, &data, &cache, rel_tol);
        // Certify the midpoint of every interval between adjacent fit
        // points with interior grid points. Midpoints solved in an
        // earlier round are still cached, so re-checking them against
        // the current model costs no new factorization.
        let tests: Vec<(usize, usize, usize)> = data
            .windows(2)
            .filter(|w| w[1] > w[0] + 1)
            .map(|w| (w[0], w[1], (w[0] + w[1]) / 2))
            .collect();
        let mids: Vec<usize> = tests.iter().map(|t| t.2).collect();
        solve_into_cache(freqs, &mids, &mut cache, eval)?;
        let mut failing: Vec<usize> = Vec::new();
        let mut round_certified: Vec<(usize, usize)> = Vec::new();
        let mut round_max = 0.0f64;
        for &(lo, hi, mid) in &tests {
            let resid = relative_residual(&m.evaluate(freqs[mid]), &cache[&mid]);
            if resid <= rel_tol {
                round_certified.push((lo, hi));
                round_max = round_max.max(resid);
            } else {
                failing.push(mid);
            }
        }
        if std::env::var("PDN_SWEEP_DEBUG").as_deref() == Ok("1") {
            let worst = tests
                .iter()
                .map(|&(_, _, mid)| relative_residual(&m.evaluate(freqs[mid]), &cache[&mid]))
                .fold(0.0f64, f64::max);
            eprintln!(
                "round {round}: data {}, cache {}, order {}, certified {}/{}, worst mid {:.3e}",
                data.len(),
                cache.len(),
                m.order(),
                round_certified.len(),
                tests.len(),
                worst
            );
        }
        let stalled = cache.len() > solve_budget || round + 1 == MAX_REFINE_ROUNDS;
        if failing.is_empty() || stalled {
            // Keep only the intervals *this* model certifies; anything
            // else is exact-solved below.
            model = Some(m);
            certified = round_certified;
            max_residual = round_max;
            break;
        }
        data.extend(failing);
        data.sort_unstable();
    }

    let anchor_freqs: Vec<f64> = cache.keys().map(|&k| freqs[k]).collect();
    let anchors_factored = cache.len();

    let mut interp_ok = vec![false; n];
    for &(lo, hi) in &certified {
        for slot in interp_ok.iter_mut().take(hi).skip(lo + 1) {
            *slot = true;
        }
    }
    let fallback: Vec<usize> = (0..n)
        .filter(|k| !cache.contains_key(k) && !interp_ok[*k])
        .collect();
    solve_into_cache(freqs, &fallback, &mut cache, eval)?;

    let model_ref = model.as_ref();
    let values: Vec<Matrix<c64>> = parallel::par_map_indexed(n, |k| match cache.get(&k) {
        Some(v) => v.clone(),
        None => model_ref
            .expect("uncached points lie inside certified intervals")
            .evaluate(freqs[k]),
    });

    let exact_points = (0..n).filter(|k| cache.contains_key(k)).count();
    let stats = SweepStats {
        points: n,
        anchors: anchors_factored,
        anchor_freqs,
        exact_points,
        interpolated_points: n - exact_points,
        fallback_points: fallback.len(),
        max_residual,
        wall: Duration::default(),
    };
    Ok(SweepOutcome {
        values,
        stats,
        model,
    })
}

/// Grid-scan peak candidates with parabolic refinement: `(freq, mag)`
/// for every interior local maximum.
fn grid_peak_candidates(freqs: &[f64], mags: &[f64]) -> Vec<(f64, f64)> {
    assert_eq!(freqs.len(), mags.len(), "one magnitude per grid point");
    if freqs.len() < 3 {
        return Vec::new();
    }
    let df = freqs[1] - freqs[0];
    let mut peaks = Vec::new();
    for k in 1..freqs.len() - 1 {
        if mags[k] > mags[k - 1] && mags[k] > mags[k + 1] {
            let (y0, y1, y2) = (mags[k - 1], mags[k], mags[k + 1]);
            let denom = y0 - 2.0 * y1 + y2;
            let shift = if denom.abs() > 0.0 {
                (0.5 * (y0 - y2) / denom).clamp(-1.0, 1.0)
            } else {
                0.0
            };
            peaks.push((freqs[k] + shift * df, mags[k]));
        }
    }
    peaks
}

/// Sorts peak candidates ascending and merges any pair closer than
/// `min_sep` (one grid step), keeping the stronger peak.
fn finish_peaks(mut peaks: Vec<(f64, f64)>, min_sep: f64) -> Vec<f64> {
    peaks.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut out: Vec<(f64, f64)> = Vec::new();
    for (f, m) in peaks {
        match out.last_mut() {
            Some(last) if f - last.0 < min_sep => {
                if m > last.1 {
                    *last = (f, m);
                }
            }
            _ => out.push((f, m)),
        }
    }
    out.into_iter().map(|(f, _)| f).collect()
}

/// Local maxima of `|z|` samples on a uniform grid with parabolic
/// refinement, returned **ascending** with peaks closer than one grid
/// step deduplicated (the stronger one wins). Shared by the `pdn_bem`
/// and `pdn_extract` resonance scans.
///
/// Grids shorter than three samples have no interior point and return
/// an empty list.
///
/// # Panics
///
/// Panics if `freqs` and `mags` differ in length.
///
/// # Examples
///
/// ```
/// let freqs: Vec<f64> = (0..101).map(|k| 1.0 + 0.09 * k as f64).collect();
/// let mags: Vec<f64> = freqs.iter().map(|&f| 1.0 / ((f - 5.3f64).powi(2) + 0.01)).collect();
/// let peaks = pdn_num::rational::peaks_on_grid(&freqs, &mags);
/// assert_eq!(peaks.len(), 1);
/// assert!((peaks[0] - 5.3).abs() < 0.05);
/// ```
pub fn peaks_on_grid(freqs: &[f64], mags: &[f64]) -> Vec<f64> {
    if freqs.len() < 3 {
        return Vec::new();
    }
    let peaks = grid_peak_candidates(freqs, mags);
    finish_peaks(peaks, freqs[1] - freqs[0])
}

/// Deterministic golden-section search for the maximum of `g` on
/// `[a, b]`.
fn golden_max(a: f64, b: f64, g: &dyn Fn(f64) -> f64) -> (f64, f64) {
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let (mut lo, mut hi) = (a, b);
    let mut x1 = hi - INV_PHI * (hi - lo);
    let mut x2 = lo + INV_PHI * (hi - lo);
    let (mut g1, mut g2) = (g(x1), g(x2));
    for _ in 0..48 {
        if g1 < g2 {
            lo = x1;
            x1 = x2;
            g1 = g2;
            x2 = lo + INV_PHI * (hi - lo);
            g2 = g(x2);
        } else {
            hi = x2;
            x2 = x1;
            g2 = g1;
            x1 = hi - INV_PHI * (hi - lo);
            g1 = g(x1);
        }
    }
    let xm = 0.5 * (lo + hi);
    (xm, g(xm))
}

/// Resonance peaks seeded by the rational model's poles instead of a
/// grid rescan: each in-band, lightly damped pole is refined to the
/// local maximum of `mag_of(R(f))` within one grid step of its real
/// part. Grid-scan peaks with no pole candidate nearby are kept too, so
/// the result never misses what the plain scan would find. Ascending,
/// deduplicated within one grid step.
///
/// # Panics
///
/// Panics if `freqs` and `mags` differ in length (fewer than three
/// samples returns no peaks).
pub fn pole_seeded_peaks(
    freqs: &[f64],
    mags: &[f64],
    model: &RationalModel,
    mag_of: &dyn Fn(&Matrix<c64>) -> f64,
) -> Vec<f64> {
    assert_eq!(freqs.len(), mags.len(), "one magnitude per grid point");
    let n = freqs.len();
    if n < 3 {
        return Vec::new();
    }
    let df = freqs[1] - freqs[0];
    let (f_lo, f_hi) = (freqs[0], freqs[n - 1]);
    let band = f_hi - f_lo;
    let g = |f: f64| mag_of(&model.evaluate(f));
    let mut cands: Vec<(f64, f64)> = Vec::new();
    for p in model.poles() {
        let fr = p.re;
        // Interior, lightly damped poles only — mirrors the exact scan's
        // interior-maxima semantics and drops spurious far-field roots.
        if !(p.is_finite() && fr > f_lo && fr < f_hi) || p.im.abs() > band {
            continue;
        }
        let (fpk, mpk) = golden_max((fr - df).max(f_lo), (fr + df).min(f_hi), &g);
        let left = g((fpk - df).max(f_lo));
        let right = g((fpk + df).min(f_hi));
        if mpk > left && mpk > right && fpk > f_lo && fpk < f_hi {
            cands.push((fpk, mpk));
        }
    }
    // Safety net: any grid-scale peak the poles did not account for is
    // kept, so pole seeding can only sharpen the scan, never lose peaks.
    for (f, m) in grid_peak_candidates(freqs, mags) {
        if cands.iter().all(|&(fc, _)| (fc - f).abs() >= df) {
            cands.push((f, m));
        }
    }
    finish_peaks(cands, df)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::convert::Infallible;

    fn scalar(v: c64) -> Matrix<c64> {
        Matrix::from_rows(&[&[v]])
    }

    /// A two-pole scalar "impedance" with a narrow and a broad peak.
    fn two_pole(f: f64) -> c64 {
        let p1 = c64::new(3.0, 0.02);
        let p2 = c64::new(7.0, 0.5);
        (c64::from_re(f) - p1).recip() + (c64::from_re(f) - p2).recip() * 2.0 + c64::new(0.1, 0.05)
    }

    fn grid(n: usize) -> Vec<f64> {
        (0..n)
            .map(|k| 1.0 + 9.0 * k as f64 / (n - 1) as f64)
            .collect()
    }

    #[test]
    fn grid_validation_reports_lowest_offender() {
        assert!(validate_grid(&[]).unwrap_err().contains("empty"));
        assert!(validate_grid(&[5.0]).is_ok());
        let err = validate_grid(&[1e8, -1.0, 0.0]).unwrap_err();
        assert!(err.contains("-1"), "{err}");
        let err = validate_grid(&[1.0, f64::NAN]).unwrap_err();
        assert!(err.contains("NaN"), "{err}");
        let err = validate_grid(&[1.0, f64::INFINITY]).unwrap_err();
        assert!(err.contains("inf"), "{err}");
        let err = validate_grid(&[1.0, 2.0, 2.0]).unwrap_err();
        assert!(err.contains("strictly increasing"), "{err}");
        let err = validate_grid(&[2.0, 1.0]).unwrap_err();
        assert!(err.contains("strictly increasing"), "{err}");
    }

    #[test]
    fn exact_path_matches_direct_evaluation() {
        let freqs = grid(10);
        let out = sweep("test", &freqs, SweepAccuracy::Exact, |f| {
            Ok::<_, Infallible>(scalar(two_pole(f)))
        })
        .unwrap();
        for (k, &f) in freqs.iter().enumerate() {
            assert_eq!(out.values[k], scalar(two_pole(f)));
        }
        assert_eq!(out.stats.exact_points, 10);
        assert_eq!(out.stats.interpolated_points, 0);
        assert!(out.model.is_none());
    }

    #[test]
    fn rational_path_matches_exact_within_tolerance() {
        let freqs = grid(200);
        let rel_tol = 1e-9;
        let out = sweep("test", &freqs, SweepAccuracy::Rational { rel_tol }, |f| {
            Ok::<_, Infallible>(scalar(two_pole(f)))
        })
        .unwrap();
        assert!(
            out.stats.anchors < 60,
            "expected few anchors, got {}",
            out.stats.anchors
        );
        assert_eq!(out.stats.exact_points + out.stats.interpolated_points, 200);
        for (k, &f) in freqs.iter().enumerate() {
            let exact = two_pole(f);
            let got = out.values[k][(0, 0)];
            let rel = (got - exact).norm() / exact.norm();
            assert!(rel < 1e-6, "f = {f}: rel = {rel:.3e}");
        }
    }

    #[test]
    fn anchors_are_bit_exact_grid_values() {
        let freqs = grid(64);
        let out = sweep(
            "test",
            &freqs,
            SweepAccuracy::Rational { rel_tol: 1e-8 },
            |f| Ok::<_, Infallible>(scalar(two_pole(f))),
        )
        .unwrap();
        for &fa in &out.stats.anchor_freqs {
            let k = freqs.iter().position(|&f| f == fa).expect("anchor on grid");
            assert_eq!(out.values[k], scalar(two_pole(fa)), "anchor at {fa}");
        }
    }

    #[test]
    fn small_grids_use_the_exact_path() {
        let freqs = grid(MIN_RATIONAL_POINTS - 1);
        let out = sweep(
            "test",
            &freqs,
            SweepAccuracy::Rational { rel_tol: 1e-8 },
            |f| Ok::<_, Infallible>(scalar(two_pole(f))),
        )
        .unwrap();
        assert_eq!(out.stats.exact_points, freqs.len());
        assert!(out.model.is_none());
    }

    #[test]
    fn invalid_rel_tol_is_rejected() {
        for bad in [0.0, -1e-8, f64::NAN, f64::INFINITY] {
            let r = sweep(
                "test",
                &grid(32),
                SweepAccuracy::Rational { rel_tol: bad },
                |f| Ok::<_, Infallible>(scalar(two_pole(f))),
            );
            assert!(
                matches!(r, Err(SweepError::InvalidInput(_))),
                "rel_tol = {bad}"
            );
        }
    }

    #[test]
    fn eval_errors_surface_lowest_index() {
        let freqs = grid(32);
        let bad = freqs[3];
        let r = sweep("test", &freqs, SweepAccuracy::Exact, |f| {
            if f >= bad {
                Err(format!("boom at {f}"))
            } else {
                Ok(scalar(two_pole(f)))
            }
        });
        match r {
            Err(SweepError::Eval(msg)) => assert!(msg.contains(&format!("{bad}")), "{msg}"),
            other => panic!("expected Eval error, got {other:?}"),
        }
    }

    #[test]
    fn model_recovers_pole_locations() {
        let freqs = grid(200);
        let out = sweep(
            "test",
            &freqs,
            SweepAccuracy::Rational { rel_tol: 1e-9 },
            |f| Ok::<_, Infallible>(scalar(two_pole(f))),
        )
        .unwrap();
        let model = out.model.expect("smooth rational input certifies");
        let poles = model.poles();
        for expect in [c64::new(3.0, 0.02), c64::new(7.0, 0.5)] {
            let hit = poles
                .iter()
                .any(|p| (*p - expect).norm() < 1e-3 || (p.conj() - expect).norm() < 1e-3);
            assert!(hit, "pole near {expect} not found in {poles:?}");
        }
    }

    #[test]
    fn non_rational_input_falls_back_without_accuracy_loss() {
        // |sin| kinks are not rational; refinement must stall and the
        // engine must fall back to exact solves rather than return a bad
        // fit.
        let freqs = grid(48);
        let f_of = |f: f64| scalar(c64::from_re((40.0 * f).sin().abs() + 1.0));
        let out = sweep(
            "test",
            &freqs,
            SweepAccuracy::Rational { rel_tol: 1e-10 },
            |f| Ok::<_, Infallible>(f_of(f)),
        )
        .unwrap();
        for (k, &f) in freqs.iter().enumerate() {
            let rel = relative_residual(&out.values[k], &f_of(f));
            assert!(rel <= 1e-10, "f = {f}: rel = {rel:.3e}");
        }
        assert!(out.stats.fallback_points > 0, "expected a stalled fallback");
    }

    #[test]
    fn peaks_are_ascending_and_deduped() {
        let freqs: Vec<f64> = (0..101).map(|k| 1.0 + 0.1 * k as f64).collect();
        let mags: Vec<f64> = freqs
            .iter()
            .map(|&f| 5.0 / ((f - 4.0f64).powi(2) + 0.01) + 1.0 / ((f - 9.0f64).powi(2) + 0.01))
            .collect();
        let peaks = peaks_on_grid(&freqs, &mags);
        assert_eq!(peaks.len(), 2);
        assert!(peaks[0] < peaks[1]);
        assert!((peaks[0] - 4.0).abs() < 0.05);
        assert!((peaks[1] - 9.0).abs() < 0.05);
        // Two refined candidates within one grid step merge into one.
        let merged = finish_peaks(vec![(5.00, 1.0), (5.05, 2.0), (7.0, 1.5)], 0.1);
        assert_eq!(merged, vec![5.05, 7.0]);
    }

    #[test]
    fn pole_seeding_finds_the_same_peaks_as_the_scan() {
        let freqs = grid(200);
        let out = sweep(
            "test",
            &freqs,
            SweepAccuracy::Rational { rel_tol: 1e-9 },
            |f| Ok::<_, Infallible>(scalar(two_pole(f))),
        )
        .unwrap();
        let mags: Vec<f64> = out.values.iter().map(|m| m[(0, 0)].norm()).collect();
        let scan = peaks_on_grid(&freqs, &mags);
        let model = out.model.expect("certified");
        let mag_of = |m: &Matrix<c64>| m[(0, 0)].norm();
        let seeded = pole_seeded_peaks(&freqs, &mags, &model, &mag_of);
        assert_eq!(seeded.len(), scan.len(), "{seeded:?} vs {scan:?}");
        for (s, p) in seeded.iter().zip(&scan) {
            assert!((s - p).abs() < 2.0 * (freqs[1] - freqs[0]), "{s} vs {p}");
        }
    }

    #[test]
    fn entry_sampling_is_bounded_and_covers_the_diagonal() {
        let small = sampled_entries(3, 3);
        assert_eq!(small.len(), 9);
        let big = sampled_entries(40, 40);
        assert!(big.len() <= MAX_SAMPLED_ENTRIES + 40);
        for d in 0..40 {
            assert!(big.contains(&(d, d)), "diagonal entry {d} sampled");
        }
    }

    #[test]
    fn polynomial_roots_of_a_quadratic() {
        // (x − 1)(x + 2) = x² + x − 2.
        let roots = polynomial_roots(&[c64::from_re(-2.0), c64::ONE, c64::ONE]);
        assert_eq!(roots.len(), 2);
        let mut re: Vec<f64> = roots.iter().map(|r| r.re).collect();
        re.sort_by(f64::total_cmp);
        assert!((re[0] + 2.0).abs() < 1e-10 && (re[1] - 1.0).abs() < 1e-10);
        for r in roots {
            assert!(r.im.abs() < 1e-10);
        }
    }
}
