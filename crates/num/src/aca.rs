//! Adaptive cross approximation (ACA) of numerically low-rank matrices.
//!
//! Far-field blocks of smooth integral-operator kernels (the BEM `P` and
//! `L` matrices of `pdn-greens`/`pdn-bem`) have rapidly decaying singular
//! values, so a rank-`k` factorization `A ≈ U·Vᵀ` with `k ≪ min(m, n)`
//! captures them to any prescribed tolerance. [`aca`] builds that
//! factorization from `O(k)` sampled rows and columns with **partial
//! pivoting** — no dense assembly of the block ever happens — and
//! [`LowRank::recompress`] trims the slightly overshooting ACA rank down
//! to the numerical rank via a QR + Jacobi-SVD pass.
//!
//! Every pivot decision uses a fixed deterministic rule (largest residual
//! magnitude, lowest index on ties, rows scanned in ascending order), so
//! the factorization is bit-identical for any thread count — the same
//! contract every assembly path in this workspace keeps.

use crate::matrix::Matrix;

/// Interleaved-panel width with a dedicated constant-trip-count matvec
/// path ([`LowRank::matvec_panel_into`]): lanes are independent columns,
/// so the fixed-width inner loops vectorize without reassociating any
/// per-column sum. Callers chunking larger panels should chunk by this.
pub const PANEL_LANES: usize = 8;

/// `y[i·W + q] += s · Σ_l scatter[i,l] · (Σ_j gather[j,l] · x[j·W + q])`
/// — one `U·Vᵀ`-style panel application with the factor roles picked by
/// the caller (forward: gather = `V`, scatter = `U`; transpose swaps
/// them). Lane `q`'s arithmetic is exactly the serial matvec sequence.
fn panel_apply_fixed<const W: usize>(
    gather: &Matrix<f64>,
    scatter: &Matrix<f64>,
    rank: usize,
    x: &[f64],
    s: f64,
    y: &mut [f64],
) {
    let mut t = [0.0f64; W];
    for l in 0..rank {
        t.fill(0.0);
        for j in 0..gather.nrows() {
            let vv = gather[(j, l)];
            for (tq, xq) in t.iter_mut().zip(&x[j * W..(j + 1) * W]) {
                *tq += vv * xq;
            }
        }
        for tq in t.iter_mut() {
            *tq *= s;
        }
        for i in 0..scatter.nrows() {
            let uu = scatter[(i, l)];
            for (yq, tq) in y[i * W..(i + 1) * W].iter_mut().zip(&t) {
                *yq += tq * uu;
            }
        }
    }
}

/// Runtime-width twin of [`panel_apply_fixed`] for panels narrower than
/// [`PANEL_LANES`]; identical arithmetic order per lane.
fn panel_apply_dyn(
    gather: &Matrix<f64>,
    scatter: &Matrix<f64>,
    rank: usize,
    x: &[f64],
    w: usize,
    s: f64,
    y: &mut [f64],
) {
    let mut t = vec![0.0f64; w];
    for l in 0..rank {
        t.fill(0.0);
        for j in 0..gather.nrows() {
            let vv = gather[(j, l)];
            for (tq, xq) in t.iter_mut().zip(&x[j * w..(j + 1) * w]) {
                *tq += vv * xq;
            }
        }
        for tq in t.iter_mut() {
            *tq *= s;
        }
        for i in 0..scatter.nrows() {
            let uu = scatter[(i, l)];
            for (yq, tq) in y[i * w..(i + 1) * w].iter_mut().zip(&t) {
                *yq += tq * uu;
            }
        }
    }
}

/// A rank-`k` factorization `A ≈ U·Vᵀ` (`U` is `m×k`, `V` is `n×k`).
#[derive(Debug, Clone, PartialEq)]
pub struct LowRank {
    u: Matrix<f64>,
    v: Matrix<f64>,
}

impl LowRank {
    /// Builds the factorization from its factors.
    ///
    /// # Panics
    ///
    /// Panics when the factor column counts differ.
    pub fn new(u: Matrix<f64>, v: Matrix<f64>) -> Self {
        assert_eq!(u.ncols(), v.ncols(), "factor ranks must match");
        LowRank { u, v }
    }

    /// The exact rank-0 approximation of an `m×n` block.
    pub fn zero(m: usize, n: usize) -> Self {
        LowRank {
            u: Matrix::zeros(m, 0),
            v: Matrix::zeros(n, 0),
        }
    }

    /// Number of rows of the approximated block.
    pub fn nrows(&self) -> usize {
        self.u.nrows()
    }

    /// Number of columns of the approximated block.
    pub fn ncols(&self) -> usize {
        self.v.nrows()
    }

    /// The factorization rank `k`.
    pub fn rank(&self) -> usize {
        self.u.ncols()
    }

    /// The left factor `U` (`m×k`).
    pub fn u(&self) -> &Matrix<f64> {
        &self.u
    }

    /// The right factor `V` (`n×k`; the block is `U·Vᵀ`).
    pub fn v(&self) -> &Matrix<f64> {
        &self.v
    }

    /// Stored bytes of both factors.
    pub fn stored_bytes(&self) -> usize {
        8 * self.rank() * (self.nrows() + self.ncols())
    }

    /// Entry `(i, j)` of the approximation.
    pub fn entry(&self, i: usize, j: usize) -> f64 {
        (0..self.rank())
            .map(|k| self.u[(i, k)] * self.v[(j, k)])
            .sum()
    }

    /// Row `i` of the approximation.
    pub fn row(&self, i: usize) -> Vec<f64> {
        let (n, k) = (self.ncols(), self.rank());
        let mut out = vec![0.0; n];
        for l in 0..k {
            let ui = self.u[(i, l)];
            if ui != 0.0 {
                for (j, o) in out.iter_mut().enumerate() {
                    *o += ui * self.v[(j, l)];
                }
            }
        }
        out
    }

    /// `y += s · (U·Vᵀ)·x`.
    pub fn matvec_into(&self, x: &[f64], s: f64, y: &mut [f64]) {
        let k = self.rank();
        for l in 0..k {
            let t: f64 = (0..self.ncols()).map(|j| self.v[(j, l)] * x[j]).sum();
            let st = s * t;
            for (i, yi) in y.iter_mut().enumerate() {
                *yi += st * self.u[(i, l)];
            }
        }
    }

    /// Panel variant of [`LowRank::matvec_into`] over `w` interleaved
    /// columns (`x[j·w + q]` is column `q`'s entry `j`, likewise `y`):
    /// every factor entry is loaded once and applied across the whole
    /// panel, while each column's floating-point arithmetic is exactly
    /// the serial [`LowRank::matvec_into`] sequence — the panel result
    /// is bit-identical to `w` serial applications. Panels of exactly
    /// [`PANEL_LANES`] columns take a constant-width path whose inner
    /// loops vectorize across the independent lanes.
    ///
    /// # Panics
    ///
    /// Panics when the interleaved buffers do not match `w` columns of
    /// the factor dimensions.
    pub fn matvec_panel_into(&self, x: &[f64], w: usize, s: f64, y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols() * w, "panel x dimension mismatch");
        assert_eq!(y.len(), self.nrows() * w, "panel y dimension mismatch");
        if w == PANEL_LANES {
            panel_apply_fixed::<PANEL_LANES>(&self.v, &self.u, self.rank(), x, s, y);
        } else {
            panel_apply_dyn(&self.v, &self.u, self.rank(), x, w, s, y);
        }
    }

    /// Panel variant of [`LowRank::matvec_transpose_into`]; same
    /// interleaved layout and bit-identity contract as
    /// [`LowRank::matvec_panel_into`].
    ///
    /// # Panics
    ///
    /// Panics when the interleaved buffers do not match `w` columns of
    /// the factor dimensions.
    pub fn matvec_transpose_panel_into(&self, x: &[f64], w: usize, s: f64, y: &mut [f64]) {
        assert_eq!(x.len(), self.nrows() * w, "panel x dimension mismatch");
        assert_eq!(y.len(), self.ncols() * w, "panel y dimension mismatch");
        if w == PANEL_LANES {
            panel_apply_fixed::<PANEL_LANES>(&self.u, &self.v, self.rank(), x, s, y);
        } else {
            panel_apply_dyn(&self.u, &self.v, self.rank(), x, w, s, y);
        }
    }

    /// `y += s · (U·Vᵀ)ᵀ·x = s · V·Uᵀ·x`.
    pub fn matvec_transpose_into(&self, x: &[f64], s: f64, y: &mut [f64]) {
        let k = self.rank();
        for l in 0..k {
            let t: f64 = (0..self.nrows()).map(|i| self.u[(i, l)] * x[i]).sum();
            let st = s * t;
            for (j, yj) in y.iter_mut().enumerate() {
                *yj += st * self.v[(j, l)];
            }
        }
    }

    /// Densifies the approximation (diagnostics and small-block tests).
    pub fn to_dense(&self) -> Matrix<f64> {
        Matrix::from_fn(self.nrows(), self.ncols(), |i, j| self.entry(i, j))
    }

    /// Frobenius norm of the approximation, computed from the factors in
    /// `O(k²(m + n))` without densifying.
    pub fn frobenius_norm(&self) -> f64 {
        let k = self.rank();
        let mut total = 0.0;
        for a in 0..k {
            for b in 0..k {
                let uu: f64 = (0..self.nrows())
                    .map(|i| self.u[(i, a)] * self.u[(i, b)])
                    .sum();
                let vv: f64 = (0..self.ncols())
                    .map(|j| self.v[(j, a)] * self.v[(j, b)])
                    .sum();
                total += uu * vv;
            }
        }
        total.max(0.0).sqrt()
    }

    /// Re-orthogonalizes and truncates the factorization so that the
    /// dropped part has Frobenius norm at most `tol` relative to the
    /// block: QR both factors, SVD the small core, and keep the leading
    /// singular triplets. ACA typically overshoots the numerical rank by
    /// a few; this trims the overshoot before the factors are stored.
    pub fn recompress(&self, tol: f64) -> LowRank {
        let k = self.rank();
        if k == 0 {
            return self.clone();
        }
        let (qu, ru) = qr_mgs(&self.u);
        let (qv, rv) = qr_mgs(&self.v);
        // core = Ru·Rvᵀ is k×k; its SVD is the SVD of the block up to the
        // orthogonal factors Qu, Qv.
        let core = ru.matmul(&rv.transpose());
        let (w, s, z) = jacobi_svd(&core);
        // Keep the shortest prefix whose dropped tail is below tolerance.
        let total2: f64 = s.iter().map(|x| x * x).sum();
        if total2 == 0.0 {
            return LowRank::zero(self.nrows(), self.ncols());
        }
        let budget2 = (tol * tol) * total2;
        let mut tail2 = 0.0;
        let mut keep = k;
        while keep > 0 {
            let next = tail2 + s[keep - 1] * s[keep - 1];
            if next > budget2 {
                break;
            }
            tail2 = next;
            keep -= 1;
        }
        if keep == 0 {
            return LowRank::zero(self.nrows(), self.ncols());
        }
        // U' = Qu·W·diag(s) (m×keep), V' = Qv·Z (n×keep).
        let mut u = Matrix::zeros(self.nrows(), keep);
        for i in 0..self.nrows() {
            for c in 0..keep {
                let mut acc = 0.0;
                for l in 0..k {
                    acc += qu[(i, l)] * w[(l, c)];
                }
                u[(i, c)] = acc * s[c];
            }
        }
        let mut v = Matrix::zeros(self.ncols(), keep);
        for j in 0..self.ncols() {
            for c in 0..keep {
                let mut acc = 0.0;
                for l in 0..k {
                    acc += qv[(j, l)] * z[(l, c)];
                }
                v[(j, c)] = acc;
            }
        }
        LowRank { u, v }
    }
}

/// Partially pivoted ACA of an `nrows×ncols` block given row/column
/// generators (each returns one full row/column of the exact block).
///
/// Stops when the rank-1 update `u_k·v_kᵀ` falls below `tol` relative to
/// the running Frobenius estimate of the approximation, or at `max_rank`.
/// A block whose sampled rows are all exactly zero comes back as the
/// exact [`LowRank::zero`] factorization (rank 0).
///
/// Pivoting is fully deterministic: the first pivot row is row 0, column
/// pivots maximize the residual magnitude with lowest-index tie-breaks,
/// and the next pivot row maximizes `|u_k|` over unused rows (again
/// lowest index on ties). No scheduling decision enters the result.
pub fn aca(
    nrows: usize,
    ncols: usize,
    row: &dyn Fn(usize) -> Vec<f64>,
    col: &dyn Fn(usize) -> Vec<f64>,
    tol: f64,
    max_rank: usize,
) -> LowRank {
    assert!(
        tol > 0.0 && tol.is_finite(),
        "ACA tolerance must be positive"
    );
    if nrows == 0 || ncols == 0 || max_rank == 0 {
        return LowRank::zero(nrows, ncols);
    }
    let mut us: Vec<Vec<f64>> = Vec::new();
    let mut vs: Vec<Vec<f64>> = Vec::new();
    let mut row_used = vec![false; nrows];
    let mut frob2 = 0.0f64;
    let mut pivot_row = 0usize;
    loop {
        // Residual row at the pivot: a(i,·) − Σ_k u_k[i]·v_k.
        let mut r = row(pivot_row);
        debug_assert_eq!(r.len(), ncols);
        for (uk, vk) in us.iter().zip(&vs) {
            let ui = uk[pivot_row];
            if ui != 0.0 {
                for (rj, vj) in r.iter_mut().zip(vk) {
                    *rj -= ui * vj;
                }
            }
        }
        row_used[pivot_row] = true;
        // Column pivot: largest |residual|, lowest index on ties.
        let (mut pj, mut pmax) = (0usize, 0.0f64);
        for (j, &rj) in r.iter().enumerate() {
            if rj.abs() > pmax {
                pmax = rj.abs();
                pj = j;
            }
        }
        if pmax == 0.0 {
            // Row already exactly represented (or identically zero): move
            // to the lowest unused row, or stop when none remain.
            match row_used.iter().position(|&used| !used) {
                Some(next) => {
                    pivot_row = next;
                    continue;
                }
                None => break,
            }
        }
        let pivot = r[pj];
        let v_new: Vec<f64> = r.iter().map(|&x| x / pivot).collect();
        let mut u_new = col(pj);
        debug_assert_eq!(u_new.len(), nrows);
        for (uk, vk) in us.iter().zip(&vs) {
            let vj = vk[pj];
            if vj != 0.0 {
                for (ui, uki) in u_new.iter_mut().zip(uk) {
                    *ui -= vj * uki;
                }
            }
        }
        // Frobenius estimate of the running approximation:
        // ‖Ã_k‖² = ‖Ã_{k−1}‖² + 2·Σ_l (u_kᵀu_l)(v_lᵀv_k) + ‖u_k‖²‖v_k‖².
        let u2: f64 = u_new.iter().map(|x| x * x).sum();
        let v2: f64 = v_new.iter().map(|x| x * x).sum();
        let mut cross = 0.0;
        for (uk, vk) in us.iter().zip(&vs) {
            let uu: f64 = u_new.iter().zip(uk).map(|(a, b)| a * b).sum();
            let vv: f64 = v_new.iter().zip(vk).map(|(a, b)| a * b).sum();
            cross += uu * vv;
        }
        frob2 = (frob2 + 2.0 * cross + u2 * v2).max(0.0);
        us.push(u_new);
        vs.push(v_new);
        let update = (u2 * v2).sqrt();
        if update <= tol * frob2.sqrt() || us.len() >= max_rank {
            break;
        }
        // Next pivot row: largest |u_k| over unused rows, lowest index on
        // ties; fall back to the lowest unused row when u_k vanishes there.
        let last_u = us.last().expect("just pushed");
        let (mut best, mut best_mag) = (usize::MAX, 0.0f64);
        for (i, &ui) in last_u.iter().enumerate() {
            if !row_used[i] && ui.abs() > best_mag {
                best_mag = ui.abs();
                best = i;
            }
        }
        if best == usize::MAX {
            match row_used.iter().position(|&used| !used) {
                Some(next) => best = next,
                None => break,
            }
        }
        pivot_row = best;
    }
    let k = us.len();
    let mut u = Matrix::zeros(nrows, k);
    let mut v = Matrix::zeros(ncols, k);
    for (l, (uk, vk)) in us.iter().zip(&vs).enumerate() {
        for (i, &x) in uk.iter().enumerate() {
            u[(i, l)] = x;
        }
        for (j, &x) in vk.iter().enumerate() {
            v[(j, l)] = x;
        }
    }
    LowRank { u, v }
}

/// Thin QR by modified Gram–Schmidt: `a = Q·R` with `Q` having
/// orthonormal (or zero, for dependent input) columns. Adequate for the
/// small `k` of recompression cores; no pivoting so the output is a pure
/// function of the input.
fn qr_mgs(a: &Matrix<f64>) -> (Matrix<f64>, Matrix<f64>) {
    let (m, k) = a.shape();
    let mut q = a.clone();
    let mut r = Matrix::zeros(k, k);
    for j in 0..k {
        for i in 0..j {
            let dot: f64 = (0..m).map(|t| q[(t, i)] * q[(t, j)]).sum();
            r[(i, j)] = dot;
            for t in 0..m {
                q[(t, j)] -= dot * q[(t, i)];
            }
        }
        let norm: f64 = (0..m).map(|t| q[(t, j)] * q[(t, j)]).sum::<f64>().sqrt();
        r[(j, j)] = norm;
        if norm > 0.0 {
            for t in 0..m {
                q[(t, j)] /= norm;
            }
        }
    }
    (q, r)
}

/// One-sided Jacobi SVD of a small square matrix: `a = U·diag(s)·Vᵀ`
/// with `s` descending. Deterministic sweep order (ascending column
/// pairs), so the result is a pure function of the input.
fn jacobi_svd(a: &Matrix<f64>) -> (Matrix<f64>, Vec<f64>, Matrix<f64>) {
    let k = a.nrows();
    assert_eq!(a.ncols(), k, "jacobi_svd expects a square core");
    let mut w = a.clone();
    let mut v = Matrix::identity(k);
    let eps = 1e-15;
    for _sweep in 0..60 {
        let mut off = 0.0f64;
        for p in 0..k {
            for q in (p + 1)..k {
                let alpha: f64 = (0..k).map(|t| w[(t, p)] * w[(t, p)]).sum();
                let beta: f64 = (0..k).map(|t| w[(t, q)] * w[(t, q)]).sum();
                let gamma: f64 = (0..k).map(|t| w[(t, p)] * w[(t, q)]).sum();
                if gamma.abs() <= eps * (alpha * beta).sqrt() || gamma == 0.0 {
                    continue;
                }
                off = off.max(gamma.abs() / (alpha * beta).sqrt().max(f64::MIN_POSITIVE));
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for m in [&mut w, &mut v] {
                    for t_row in 0..k {
                        let (mp, mq) = (m[(t_row, p)], m[(t_row, q)]);
                        m[(t_row, p)] = c * mp - s * mq;
                        m[(t_row, q)] = s * mp + c * mq;
                    }
                }
            }
        }
        if off < 1e-14 {
            break;
        }
    }
    // Column norms are the singular values; normalize U columns.
    let mut order: Vec<usize> = (0..k).collect();
    let norms: Vec<f64> = (0..k)
        .map(|j| (0..k).map(|t| w[(t, j)] * w[(t, j)]).sum::<f64>().sqrt())
        .collect();
    // Descending by magnitude; ascending index on ties (deterministic).
    order.sort_by(|&a_j, &b_j| {
        norms[b_j]
            .partial_cmp(&norms[a_j])
            .expect("finite singular values")
            .then(a_j.cmp(&b_j))
    });
    let mut u = Matrix::zeros(k, k);
    let mut vt = Matrix::zeros(k, k);
    let mut s = vec![0.0; k];
    for (c, &j) in order.iter().enumerate() {
        s[c] = norms[j];
        for t in 0..k {
            u[(t, c)] = if norms[j] > 0.0 {
                w[(t, j)] / norms[j]
            } else {
                0.0
            };
            vt[(t, c)] = v[(t, j)];
        }
    }
    (u, s, vt)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A smooth 1/(1+|x−y|) kernel block: numerically low rank.
    fn smooth_block(m: usize, n: usize, gap: f64) -> Matrix<f64> {
        Matrix::from_fn(m, n, |i, j| {
            1.0 / (gap + (i as f64 - (j as f64 + gap)).abs())
        })
    }

    fn rel_err(a: &Matrix<f64>, lr: &LowRank) -> f64 {
        let d = lr.to_dense();
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..a.nrows() {
            for j in 0..a.ncols() {
                num += (a[(i, j)] - d[(i, j)]).powi(2);
                den += a[(i, j)].powi(2);
            }
        }
        (num / den.max(f64::MIN_POSITIVE)).sqrt()
    }

    fn aca_of(a: &Matrix<f64>, tol: f64) -> LowRank {
        aca(
            a.nrows(),
            a.ncols(),
            &|i| a.row(i).to_vec(),
            &|j| a.col(j),
            tol,
            a.nrows().min(a.ncols()),
        )
    }

    #[test]
    fn smooth_kernel_compresses_below_tolerance() {
        let a = smooth_block(40, 60, 30.0);
        let lr = aca_of(&a, 1e-8);
        assert!(lr.rank() < 20, "rank {} for a smooth block", lr.rank());
        assert!(rel_err(&a, &lr) < 1e-7, "err {:.3e}", rel_err(&a, &lr));
    }

    #[test]
    fn zero_block_has_rank_zero() {
        let a = Matrix::zeros(8, 5);
        let lr = aca_of(&a, 1e-6);
        assert_eq!(lr.rank(), 0);
        assert_eq!(lr.to_dense(), a);
        assert_eq!(lr.stored_bytes(), 0);
    }

    #[test]
    fn exact_low_rank_block_recovered_exactly() {
        // Rank-2 block: ACA terminates at rank 2 with zero residual.
        let u = Matrix::from_fn(10, 2, |i, k| (i + k + 1) as f64);
        let v = Matrix::from_fn(7, 2, |j, k| 1.0 / (j + k + 1) as f64);
        let a = u.matmul(&v.transpose());
        let lr = aca_of(&a, 1e-12);
        assert!(lr.rank() <= 3);
        assert!(rel_err(&a, &lr) < 1e-12);
    }

    #[test]
    fn recompression_trims_rank_and_keeps_accuracy() {
        let a = smooth_block(50, 50, 25.0);
        let lr = aca_of(&a, 1e-10);
        let rc = lr.recompress(1e-8);
        assert!(rc.rank() <= lr.rank());
        assert!(rel_err(&a, &rc) < 1e-7, "err {:.3e}", rel_err(&a, &rc));
    }

    #[test]
    fn recompression_of_redundant_factors_collapses_rank() {
        // Same rank-1 outer product stacked three times: numerical rank 1.
        let u = Matrix::from_fn(12, 3, |i, _| (1.0 + i as f64).recip());
        let v = Matrix::from_fn(9, 3, |j, _| (2.0 + j as f64).sqrt());
        let rc = LowRank::new(u, v).recompress(1e-12);
        assert_eq!(rc.rank(), 1);
    }

    #[test]
    fn matvec_matches_dense() {
        let a = smooth_block(30, 20, 12.0);
        let lr = aca_of(&a, 1e-10);
        let x: Vec<f64> = (0..20).map(|j| ((j * 7) % 5) as f64 - 2.0).collect();
        let mut y = vec![0.0; 30];
        lr.matvec_into(&x, 1.0, &mut y);
        let y_dense = a.matvec(&x);
        for i in 0..30 {
            assert!((y[i] - y_dense[i]).abs() < 1e-8 * y_dense[i].abs().max(1.0));
        }
        let xt: Vec<f64> = (0..30).map(|i| (i as f64 * 0.3).cos()).collect();
        let mut yt = vec![0.0; 20];
        lr.matvec_transpose_into(&xt, 2.0, &mut yt);
        let yt_dense = a.transpose().matvec(&xt);
        for j in 0..20 {
            assert!((yt[j] - 2.0 * yt_dense[j]).abs() < 1e-8 * yt_dense[j].abs().max(1.0));
        }
    }

    #[test]
    fn deterministic_for_identical_inputs() {
        let a = smooth_block(25, 25, 10.0);
        let l1 = aca_of(&a, 1e-7).recompress(1e-7);
        let l2 = aca_of(&a, 1e-7).recompress(1e-7);
        assert_eq!(l1, l2, "ACA must be a pure function of its inputs");
    }

    #[test]
    fn jacobi_svd_reproduces_singular_values() {
        let a = Matrix::from_rows(&[&[3.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 3.0]]);
        let (u, s, v) = jacobi_svd(&a);
        assert!(s[0] >= s[1] && s[1] >= s[2]);
        // Reconstruct.
        let recon = Matrix::from_fn(3, 3, |i, j| {
            (0..3).map(|k| u[(i, k)] * s[k] * v[(j, k)]).sum::<f64>()
        });
        for i in 0..3 {
            for j in 0..3 {
                assert!((recon[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
        // Orthonormal factors.
        for a_col in 0..3 {
            for b_col in 0..3 {
                let dot: f64 = (0..3).map(|t| u[(t, a_col)] * u[(t, b_col)]).sum();
                let want = if a_col == b_col { 1.0 } else { 0.0 };
                assert!((dot - want).abs() < 1e-10);
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_tolerance_panics() {
        let _ = aca(2, 2, &|_| vec![0.0; 2], &|_| vec![0.0; 2], 0.0, 2);
    }
}
