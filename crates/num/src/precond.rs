//! Preconditioners for the iterative SPD solvers in [`crate::cg`].
//!
//! The scalar and block CG drivers take the preconditioner as a
//! [`Preconditioner`] trait object instead of a hardcoded Jacobi
//! diagonal, so callers with structure to exploit — the compressed BEM
//! kernels carry a geometric cluster tree — can supply a hierarchical
//! block-Jacobi preconditioner ([`BlockJacobiPreconditioner`]: exact
//! Cholesky factors over disjoint index clusters) while plain callers
//! keep the diagonal ([`JacobiPreconditioner`]).
//!
//! Every implementation applies `z = M⁻¹·r` with serial, fixed-order
//! arithmetic, so preconditioned solves stay bit-identical for any
//! `PDN_THREADS` setting.

use crate::cg::IterativeSolveError;
use crate::{CholeskyDecomposition, Matrix};

/// An SPD preconditioner `M ≈ A` applied as `z = M⁻¹·r`.
///
/// Implementations must be deterministic: the same `r` always produces
/// the bit-identical `z`, independent of thread count.
pub trait Preconditioner: Sync {
    /// Operator dimension.
    fn len(&self) -> usize;

    /// Whether the operator is zero-dimensional.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Applies `z = M⁻¹·r`. Both slices have length [`Self::len`].
    fn apply_into(&self, r: &[f64], z: &mut [f64]);

    /// Applies `z = M⁻¹·r` to every column of a panel. Implementations
    /// may reorder the (column, sub-block) sweep for locality, but every
    /// column's result must be bit-identical to a standalone
    /// [`Preconditioner::apply_into`] call.
    fn apply_panel_into(&self, rs: &[Vec<f64>], zs: &mut [Vec<f64>]) {
        for (r, z) in rs.iter().zip(zs.iter_mut()) {
            self.apply_into(r, z);
        }
    }

    /// Whether this is a plain Jacobi (diagonal) preconditioner — used
    /// by the solvers to hint at a hierarchical preconditioner in
    /// `NotConverged` diagnostics.
    fn is_jacobi(&self) -> bool {
        false
    }
}

/// The classic Jacobi preconditioner `M = diag(A)`.
#[derive(Debug, Clone)]
pub struct JacobiPreconditioner {
    inv: Vec<f64>,
}

impl JacobiPreconditioner {
    /// Builds the preconditioner from the matrix diagonal.
    ///
    /// # Errors
    ///
    /// A zero or negative diagonal entry contradicts the claimed SPD
    /// operator and returns [`IterativeSolveError::Breakdown`] carrying
    /// the offending index — it is never silently substituted.
    pub fn new(diag: &[f64]) -> Result<Self, IterativeSolveError> {
        if let Some(index) = diag.iter().position(|&d| d.is_nan() || d <= 0.0) {
            return Err(IterativeSolveError::Breakdown { index: Some(index) });
        }
        Ok(JacobiPreconditioner {
            inv: diag.iter().map(|d| 1.0 / d).collect(),
        })
    }
}

impl Preconditioner for JacobiPreconditioner {
    fn len(&self) -> usize {
        self.inv.len()
    }

    fn apply_into(&self, r: &[f64], z: &mut [f64]) {
        for i in 0..self.inv.len() {
            z[i] = r[i] * self.inv[i];
        }
    }

    fn is_jacobi(&self) -> bool {
        true
    }
}

/// Hierarchical block-Jacobi preconditioner: exact Cholesky factors of
/// the operator's diagonal sub-blocks over a disjoint cluster partition
/// (in practice the leaves of a geometric cluster tree, optionally
/// coarsened to a size cap).
///
/// `M = blkdiag(A[c₁,c₁], A[c₂,c₂], …)` captures all near-field
/// coupling within each cluster — on the ill-conditioned fine-mesh BEM
/// kernels this cuts CG iteration counts well below the diagonal-only
/// Jacobi preconditioner (asserted by `tests/block_solver.rs`).
#[derive(Debug, Clone)]
pub struct BlockJacobiPreconditioner {
    n: usize,
    /// `(cluster indices, Cholesky factor of the cluster sub-block)`.
    blocks: Vec<(Vec<usize>, CholeskyDecomposition)>,
}

impl BlockJacobiPreconditioner {
    /// Builds the preconditioner from `(indices, sub_block)` pairs where
    /// `sub_block` is the dense restriction `A[indices, indices]`.
    ///
    /// The clusters must disjointly cover `0..n`.
    ///
    /// # Errors
    ///
    /// [`IterativeSolveError::BadShape`] when the clusters do not
    /// partition `0..n` or a sub-block dimension mismatches its index
    /// set; [`IterativeSolveError::Breakdown`] (with the offending
    /// global index) when a cluster sub-block is not positive definite.
    pub fn from_blocks(
        n: usize,
        clusters: Vec<(Vec<usize>, Matrix<f64>)>,
    ) -> Result<Self, IterativeSolveError> {
        let mut seen = vec![false; n];
        let mut blocks = Vec::with_capacity(clusters.len());
        for (indices, sub) in clusters {
            if sub.nrows() != indices.len() || sub.ncols() != indices.len() {
                return Err(IterativeSolveError::BadShape);
            }
            for &i in &indices {
                if i >= n || seen[i] {
                    return Err(IterativeSolveError::BadShape);
                }
                seen[i] = true;
            }
            if indices.is_empty() {
                continue;
            }
            let chol =
                CholeskyDecomposition::new(&sub).map_err(|_| IterativeSolveError::Breakdown {
                    index: Some(indices[0]),
                })?;
            blocks.push((indices, chol));
        }
        if seen.iter().any(|&s| !s) {
            return Err(IterativeSolveError::BadShape);
        }
        Ok(BlockJacobiPreconditioner { n, blocks })
    }

    /// Number of cluster blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Largest cluster size.
    pub fn max_block(&self) -> usize {
        self.blocks
            .iter()
            .map(|(ix, _)| ix.len())
            .max()
            .unwrap_or(0)
    }
}

impl Preconditioner for BlockJacobiPreconditioner {
    fn len(&self) -> usize {
        self.n
    }

    fn apply_into(&self, r: &[f64], z: &mut [f64]) {
        // Serial over blocks in fixed order — each gathered solve is
        // independent, so the result is deterministic by construction.
        for (indices, chol) in &self.blocks {
            let rb: Vec<f64> = indices.iter().map(|&i| r[i]).collect();
            let zb = chol
                .solve(&rb)
                .expect("factored cluster block stays solvable");
            for (k, &i) in indices.iter().enumerate() {
                z[i] = zb[k];
            }
        }
    }

    fn apply_panel_into(&self, rs: &[Vec<f64>], zs: &mut [Vec<f64>]) {
        // Blocks outer, columns inner: each cluster's Cholesky factor
        // stays cache-hot across the whole panel instead of the full
        // factor set streaming once per column. The per-column
        // gather/solve/scatter is exactly `apply_into`'s — the sweep
        // order only changes which factor is resident, never any
        // arithmetic.
        for (indices, chol) in &self.blocks {
            for (r, z) in rs.iter().zip(zs.iter_mut()) {
                let rb: Vec<f64> = indices.iter().map(|&i| r[i]).collect();
                let zb = chol
                    .solve(&rb)
                    .expect("factored cluster block stays solvable");
                for (k, &i) in indices.iter().enumerate() {
                    z[i] = zb[k];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize) -> Matrix<f64> {
        let m = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 3) % 11) as f64 / 11.0);
        let mut a = m.transpose().matmul(&m);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn jacobi_rejects_non_positive_diagonal_with_index() {
        assert_eq!(
            JacobiPreconditioner::new(&[1.0, 2.0, 0.0, 3.0]).unwrap_err(),
            IterativeSolveError::Breakdown { index: Some(2) }
        );
        assert_eq!(
            JacobiPreconditioner::new(&[-1.0, 2.0]).unwrap_err(),
            IterativeSolveError::Breakdown { index: Some(0) }
        );
        assert_eq!(
            JacobiPreconditioner::new(&[1.0, f64::NAN]).unwrap_err(),
            IterativeSolveError::Breakdown { index: Some(1) }
        );
    }

    #[test]
    fn jacobi_applies_inverse_diagonal() {
        let pc = JacobiPreconditioner::new(&[2.0, 4.0]).unwrap();
        assert!(pc.is_jacobi());
        let mut z = [0.0; 2];
        pc.apply_into(&[1.0, 1.0], &mut z);
        assert_eq!(z, [0.5, 0.25]);
    }

    #[test]
    fn block_jacobi_with_full_block_is_exact_inverse() {
        let a = spd(6);
        let pc =
            BlockJacobiPreconditioner::from_blocks(6, vec![((0..6).collect(), a.clone())]).unwrap();
        assert!(!pc.is_jacobi());
        let b: Vec<f64> = (0..6).map(|i| (i as f64 * 0.31).cos()).collect();
        let mut z = vec![0.0; 6];
        pc.apply_into(&b, &mut z);
        let back = a.matvec(&z);
        for i in 0..6 {
            assert!((back[i] - b[i]).abs() < 1e-10, "entry {i}");
        }
    }

    #[test]
    fn block_jacobi_respects_cluster_partition() {
        // Two decoupled 2x2 blocks: block-Jacobi over them is exact.
        let mut a = Matrix::zeros(4, 4);
        for (i, j, v) in [
            (0, 0, 4.0),
            (0, 2, 1.0),
            (2, 0, 1.0),
            (2, 2, 3.0),
            (1, 1, 5.0),
            (1, 3, 2.0),
            (3, 1, 2.0),
            (3, 3, 6.0),
        ] {
            a[(i, j)] = v;
        }
        let clusters = vec![
            (vec![0, 2], a.submatrix(&[0, 2], &[0, 2])),
            (vec![1, 3], a.submatrix(&[1, 3], &[1, 3])),
        ];
        let pc = BlockJacobiPreconditioner::from_blocks(4, clusters).unwrap();
        assert_eq!(pc.block_count(), 2);
        assert_eq!(pc.max_block(), 2);
        let b = [1.0, 2.0, 3.0, 4.0];
        let mut z = vec![0.0; 4];
        pc.apply_into(&b, &mut z);
        let back = a.matvec(&z);
        for i in 0..4 {
            assert!((back[i] - b[i]).abs() < 1e-10, "entry {i}");
        }
    }

    #[test]
    fn block_jacobi_panel_apply_is_bit_identical_to_columns() {
        let a = spd(8);
        let clusters = vec![
            (vec![0, 3, 5], a.submatrix(&[0, 3, 5], &[0, 3, 5])),
            (vec![1, 2], a.submatrix(&[1, 2], &[1, 2])),
            (vec![4, 6, 7], a.submatrix(&[4, 6, 7], &[4, 6, 7])),
        ];
        let pc = BlockJacobiPreconditioner::from_blocks(8, clusters).unwrap();
        let rs: Vec<Vec<f64>> = (0..5)
            .map(|c| (0..8).map(|i| ((c * 8 + i) as f64 * 0.17).sin()).collect())
            .collect();
        let mut panel = vec![vec![0.0; 8]; rs.len()];
        pc.apply_panel_into(&rs, &mut panel);
        for (r, zp) in rs.iter().zip(&panel) {
            let mut z = vec![0.0; 8];
            pc.apply_into(r, &mut z);
            assert_eq!(&z, zp, "panel apply must match per-column apply bitwise");
        }
    }

    #[test]
    fn block_jacobi_rejects_bad_partitions() {
        let a2 = spd(2);
        // Overlapping index.
        assert_eq!(
            BlockJacobiPreconditioner::from_blocks(
                3,
                vec![(vec![0, 1], a2.clone()), (vec![1], spd(1))],
            )
            .unwrap_err(),
            IterativeSolveError::BadShape
        );
        // Uncovered index.
        assert_eq!(
            BlockJacobiPreconditioner::from_blocks(3, vec![(vec![0, 1], a2.clone())]).unwrap_err(),
            IterativeSolveError::BadShape
        );
        // Sub-block dimension mismatch.
        assert_eq!(
            BlockJacobiPreconditioner::from_blocks(2, vec![(vec![0, 1], spd(3))]).unwrap_err(),
            IterativeSolveError::BadShape
        );
    }

    #[test]
    fn block_jacobi_reports_indefinite_cluster() {
        let mut bad = Matrix::zeros(2, 2);
        bad[(0, 0)] = 1.0;
        bad[(1, 1)] = -1.0;
        assert_eq!(
            BlockJacobiPreconditioner::from_blocks(2, vec![(vec![0, 1], bad)]).unwrap_err(),
            IterativeSolveError::Breakdown { index: Some(0) }
        );
    }
}
