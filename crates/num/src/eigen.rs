//! Symmetric eigensolvers.
//!
//! The cyclic Jacobi method is used because the matrices that need
//! eigendecomposition in this toolkit (modal analysis of per-unit-length
//! `L·C` products, small macromodel checks) are dense, symmetric, and small
//! (tens of rows). Jacobi is simple, unconditionally convergent, and
//! delivers fully orthogonal eigenvectors.

use crate::{c64, CholeskyDecomposition, Matrix, SolveMatrixError};

/// Result of a symmetric eigendecomposition `A·v = λ·v`.
///
/// Eigenvalues are sorted ascending; `vectors.col(k)` is the eigenvector for
/// `values[k]`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, ascending.
    pub values: Vec<f64>,
    /// Column-wise orthonormal eigenvectors.
    pub vectors: Matrix<f64>,
}

/// Computes all eigenvalues/eigenvectors of a symmetric matrix with the
/// cyclic Jacobi method.
///
/// Only the symmetric part of `a` is used (entries are averaged).
///
/// # Errors
///
/// Returns [`SolveMatrixError::NotSquare`] for a non-square input.
///
/// # Examples
///
/// ```
/// use pdn_num::{symmetric_eigen, Matrix};
/// # fn main() -> Result<(), pdn_num::SolveMatrixError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
/// let e = symmetric_eigen(&a)?;
/// assert!((e.values[0] - 1.0).abs() < 1e-12);
/// assert!((e.values[1] - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn symmetric_eigen(a: &Matrix<f64>) -> Result<SymmetricEigen, SolveMatrixError> {
    if !a.is_square() {
        return Err(SolveMatrixError::NotSquare {
            rows: a.nrows(),
            cols: a.ncols(),
        });
    }
    let n = a.nrows();
    // Symmetrize defensively.
    let mut m = Matrix::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));
    let mut v = Matrix::identity(n);
    // Tolerance must scale with the matrix magnitude — physical matrices
    // here range from ~1e-17 (L·C products) to ~1e12 (potential
    // coefficients).
    let scale = m.max_abs();
    if scale == 0.0 {
        return Ok(SymmetricEigen {
            values: vec![0.0; n],
            vectors: v,
        });
    }
    let tol = 1e-14 * scale;
    let max_sweeps = 100;
    for _ in 0..max_sweeps {
        let mut off = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                off = off.max(m[(i, j)].abs());
            }
        }
        if off <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= tol * 1e-2 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                // Stable rotation computation (Golub & Van Loan).
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply rotation J(p,q,θ) on both sides of m and accumulate in v.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    // Collect and sort ascending.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&i, &j| diag[i].partial_cmp(&diag[j]).expect("NaN eigenvalue"));
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let vectors = Matrix::from_fn(n, n, |i, j| v[(i, order[j])]);
    Ok(SymmetricEigen { values, vectors })
}

/// Solves the generalized symmetric-definite eigenproblem `A·v = λ·B·v`
/// with `B` symmetric positive definite.
///
/// This is the modal-analysis kernel: for multiconductor transmission lines
/// the propagation modes satisfy `L·C·v = (1/vₚ²)·v`, which is recast as a
/// generalized problem to stay in symmetric arithmetic. Internally the
/// problem is reduced with the Cholesky factor of `B`:
/// `L⁻¹ A L⁻ᵀ (Lᵀ v) = λ (Lᵀ v)`.
///
/// Returned eigenvectors are `B`-orthonormal: `vᵢᵀ B vⱼ = δᵢⱼ`.
///
/// # Errors
///
/// Returns an error when `B` is not positive definite or shapes mismatch.
///
/// # Examples
///
/// ```
/// use pdn_num::{generalized_symmetric_eigen, Matrix};
/// # fn main() -> Result<(), pdn_num::SolveMatrixError> {
/// let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 8.0]]);
/// let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 4.0]]);
/// let e = generalized_symmetric_eigen(&a, &b)?;
/// assert!((e.values[0] - 2.0).abs() < 1e-12);
/// assert!((e.values[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn generalized_symmetric_eigen(
    a: &Matrix<f64>,
    b: &Matrix<f64>,
) -> Result<SymmetricEigen, SolveMatrixError> {
    if a.shape() != b.shape() {
        return Err(SolveMatrixError::DimensionMismatch {
            expected: a.nrows(),
            got: b.nrows(),
        });
    }
    let n = a.nrows();
    let ch = CholeskyDecomposition::new(b)?;
    // Form C = L⁻¹ A L⁻ᵀ column by column.
    // First X = L⁻¹ A  (solve lower for each column of A),
    // then C = X L⁻ᵀ = (L⁻¹ Xᵀ)ᵀ.
    let mut x = Matrix::zeros(n, n);
    for j in 0..n {
        let col = ch.solve_lower(&a.col(j))?;
        for i in 0..n {
            x[(i, j)] = col[i];
        }
    }
    let xt = x.transpose();
    let mut c = Matrix::zeros(n, n);
    for j in 0..n {
        let col = ch.solve_lower(&xt.col(j))?;
        for i in 0..n {
            c[(j, i)] = col[i];
        }
    }
    let eig = symmetric_eigen(&c)?;
    // Back-transform eigenvectors: v = L⁻ᵀ w.
    let mut vectors = Matrix::zeros(n, n);
    for j in 0..n {
        let w = eig.vectors.col(j);
        let v = ch.solve_upper(&w)?;
        for i in 0..n {
            vectors[(i, j)] = v[i];
        }
    }
    Ok(SymmetricEigen {
        values: eig.values,
        vectors,
    })
}

/// Eigenvector of the smallest eigenvalue of a complex **Hermitian**
/// matrix `H`, via the real-symmetric embedding
/// `[[Re H, −Im H], [Im H, Re H]]` solved with [`symmetric_eigen`]: a
/// complex eigenpair `(λ, u + i·v)` of `H` maps to the real pairs
/// `(λ, (u; v))` and `(λ, (−v; u))`.
///
/// Only the Hermitian part of `h` is used (entries are averaged with
/// their conjugate transposes). The returned vector has unit Euclidean
/// norm but an arbitrary global phase — exactly what the barycentric
/// weight computation in [`crate::rational`] needs, since barycentric
/// interpolants are invariant under a global weight scaling.
///
/// # Errors
///
/// Returns [`SolveMatrixError::NotSquare`] for a non-square input.
///
/// # Examples
///
/// ```
/// use pdn_num::{c64, eigen::hermitian_smallest_eigenvector, Matrix};
/// # fn main() -> Result<(), pdn_num::SolveMatrixError> {
/// // H = [[2, i], [−i, 2]] has eigenvalues 1 and 3.
/// let h = Matrix::from_rows(&[
///     &[c64::from_re(2.0), c64::from_im(1.0)],
///     &[c64::from_im(-1.0), c64::from_re(2.0)],
/// ]);
/// let w = hermitian_smallest_eigenvector(&h)?;
/// // Residual ‖H·w − 1·w‖ vanishes for the smallest eigenvalue 1.
/// let hw0 = h[(0, 0)] * w[0] + h[(0, 1)] * w[1];
/// assert!((hw0 - w[0]).norm() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn hermitian_smallest_eigenvector(h: &Matrix<c64>) -> Result<Vec<c64>, SolveMatrixError> {
    if !h.is_square() {
        return Err(SolveMatrixError::NotSquare {
            rows: h.nrows(),
            cols: h.ncols(),
        });
    }
    let n = h.nrows();
    let mut s = Matrix::<f64>::zeros(2 * n, 2 * n);
    for i in 0..n {
        for j in 0..n {
            let x = 0.5 * (h[(i, j)].re + h[(j, i)].re);
            let y = 0.5 * (h[(i, j)].im - h[(j, i)].im);
            s[(i, j)] = x;
            s[(i, j + n)] = -y;
            s[(i + n, j)] = y;
            s[(i + n, j + n)] = x;
        }
    }
    let eig = symmetric_eigen(&s)?;
    let v = eig.vectors.col(0);
    Ok((0..n).map(|i| c64::new(v[i], v[i + n])).collect())
}

/// The right singular vector for the **smallest** singular value of a
/// complex matrix `l` (any shape, at least one column), computed
/// without ever forming the Gram matrix `LᴴL`: a Householder QR
/// reduction to the triangular factor `R` followed by deterministic
/// inverse iteration with `R⁻¹R⁻ᴴ` (two triangular solves per step).
///
/// Forming `LᴴL` squares the condition number, which floors the
/// attainable null-space residual near `√ε` — around `1e-7` relative in
/// double precision. Working on `R` directly reaches `ε` level, which
/// the rational sweep engine in [`crate::rational`] needs to certify
/// tolerances tighter than `1e-7`.
///
/// The returned vector has unit Euclidean norm and an arbitrary global
/// phase (barycentric weights are scaling-invariant, so that is fine).
///
/// # Errors
///
/// Returns [`SolveMatrixError::NotSquare`] when `l` has no columns.
///
/// # Examples
///
/// ```
/// use pdn_num::{c64, eigen::smallest_singular_vector, Matrix};
/// # fn main() -> Result<(), pdn_num::SolveMatrixError> {
/// // Columns are parallel: the null vector is (1, −1)/√2 up to phase.
/// let l = Matrix::from_rows(&[
///     &[c64::from_re(1.0), c64::from_re(1.0)],
///     &[c64::from_re(2.0), c64::from_re(2.0)],
/// ]);
/// let w = smallest_singular_vector(&l)?;
/// assert!((w[0] + w[1]).norm() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn smallest_singular_vector(l: &Matrix<c64>) -> Result<Vec<c64>, SolveMatrixError> {
    let m = l.ncols();
    if m == 0 {
        return Err(SolveMatrixError::NotSquare {
            rows: l.nrows(),
            cols: 0,
        });
    }
    // Pad short-and-wide inputs with zero rows so R is m×m.
    let rr = l.nrows().max(m);
    let mut a = Matrix::<c64>::zeros(rr, m);
    for i in 0..l.nrows() {
        for j in 0..m {
            a[(i, j)] = l[(i, j)];
        }
    }
    for k in 0..m {
        let xn2: f64 = (k..rr).map(|i| a[(i, k)].norm_sqr()).sum();
        let xn = xn2.sqrt();
        if xn == 0.0 {
            continue;
        }
        let akk = a[(k, k)];
        // β = −phase(aₖₖ)·‖x‖ keeps v₀ = aₖₖ − β free of cancellation.
        let phase = if akk.norm() > 0.0 {
            akk / c64::from_re(akk.norm())
        } else {
            c64::ONE
        };
        let beta = phase * (-xn);
        let mut v = vec![c64::ZERO; rr - k];
        v[0] = akk - beta;
        for i in k + 1..rr {
            v[i - k] = a[(i, k)];
        }
        let vn2 = 2.0 * xn * (xn + akk.norm());
        a[(k, k)] = beta;
        for i in k + 1..rr {
            a[(i, k)] = c64::ZERO;
        }
        for j in k + 1..m {
            let mut s = c64::ZERO;
            for i in k..rr {
                s += v[i - k].conj() * a[(i, j)];
            }
            let s = s * (2.0 / vn2);
            for i in k..rr {
                let upd = a[(i, j)] - v[i - k] * s;
                a[(i, j)] = upd;
            }
        }
    }
    // Inverse iteration with R⁻¹R⁻ᴴ converges to the smallest singular
    // direction; exact zeros on the diagonal are floored so a genuinely
    // rank-deficient R still yields its null vector.
    let dmax = (0..m).map(|j| a[(j, j)].norm()).fold(0.0, f64::max);
    let uniform = c64::from_re(1.0 / (m as f64).sqrt());
    if dmax == 0.0 {
        return Ok(vec![uniform; m]);
    }
    let floor = dmax * f64::EPSILON;
    let diag: Vec<c64> = (0..m)
        .map(|j| {
            let d = a[(j, j)];
            if d.norm() < floor {
                c64::from_re(floor)
            } else {
                d
            }
        })
        .collect();
    let mut x = vec![uniform; m];
    for _ in 0..32 {
        let mut y = vec![c64::ZERO; m];
        for i in 0..m {
            let mut s = x[i];
            for j in 0..i {
                s -= a[(j, i)].conj() * y[j];
            }
            y[i] = s / diag[i].conj();
        }
        let mut z = vec![c64::ZERO; m];
        for i in (0..m).rev() {
            let mut s = y[i];
            for j in i + 1..m {
                s -= a[(i, j)] * z[j];
            }
            z[i] = s / diag[i];
        }
        let nrm = z.iter().map(|zc| zc.norm_sqr()).sum::<f64>().sqrt();
        if !(nrm.is_finite() && nrm > 0.0) {
            break;
        }
        let inv = 1.0 / nrm;
        for (xi, zi) in x.iter_mut().zip(&z) {
            *xi = *zi * inv;
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn smallest_singular_vector_finds_a_near_null_direction() {
        // L = U·diag(3, 1e-9) in a rotated basis: the small singular
        // direction is (1, −2)/√5 and must be recovered to ~ε, which a
        // Gram-matrix (LᴴL) approach cannot do.
        let u = [
            [c64::from_re(0.6), c64::from_re(0.8)],
            [c64::from_re(-0.8), c64::from_re(0.6)],
        ];
        let vt = [
            [
                c64::from_re(2.0 / 5f64.sqrt()),
                c64::from_re(1.0 / 5f64.sqrt()),
            ],
            [
                c64::from_re(1.0 / 5f64.sqrt()),
                c64::from_re(-2.0 / 5f64.sqrt()),
            ],
        ];
        let s = [3.0, 1e-9];
        let l = Matrix::from_fn(2, 2, |i, j| {
            (0..2).fold(c64::ZERO, |acc, k| acc + u[i][k] * s[k] * vt[k][j])
        });
        let w = smallest_singular_vector(&l).unwrap();
        // Residual ‖L·w‖ must sit at the smallest singular value.
        let r0 = l[(0, 0)] * w[0] + l[(0, 1)] * w[1];
        let r1 = l[(1, 0)] * w[0] + l[(1, 1)] * w[1];
        let res = (r0.norm_sqr() + r1.norm_sqr()).sqrt();
        assert!(res < 2e-9, "residual {res:.3e}");
    }

    #[test]
    fn smallest_singular_vector_handles_tall_and_rank_deficient_input() {
        // Tall matrix with exactly dependent columns: exact null vector.
        let l = Matrix::from_rows(&[
            &[c64::from_re(1.0), c64::from_re(2.0)],
            &[c64::from_im(3.0), c64::from_im(6.0)],
            &[c64::new(1.0, -1.0), c64::new(2.0, -2.0)],
        ]);
        let w = smallest_singular_vector(&l).unwrap();
        let res: f64 = (0..3)
            .map(|i| (l[(i, 0)] * w[0] + l[(i, 1)] * w[1]).norm_sqr())
            .sum::<f64>()
            .sqrt();
        assert!(res < 1e-12, "residual {res:.3e}");
        let nrm: f64 = w.iter().map(|c| c.norm_sqr()).sum::<f64>().sqrt();
        assert!((nrm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn diagonal_matrix_eigen() {
        let a = Matrix::from_diag(&[3.0, -1.0, 2.0]);
        let e = symmetric_eigen(&a).unwrap();
        assert!(approx_eq(e.values[0], -1.0, 1e-12));
        assert!(approx_eq(e.values[1], 2.0, 1e-12));
        assert!(approx_eq(e.values[2], 3.0, 1e-12));
    }

    #[test]
    fn eigenpairs_satisfy_definition() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, -0.25], &[0.5, -0.25, 5.0]]);
        let e = symmetric_eigen(&a).unwrap();
        for k in 0..3 {
            let v = e.vectors.col(k);
            let av = a.matvec(&v);
            for i in 0..3 {
                assert!(approx_eq(av[i], e.values[k] * v[i], 1e-10), "pair {k}");
            }
        }
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let a = Matrix::from_fn(5, 5, |i, j| 1.0 / (1.0 + (i as f64 - j as f64).abs()));
        let e = symmetric_eigen(&a).unwrap();
        let vtv = e.vectors.transpose().matmul(&e.vectors);
        for i in 0..5 {
            for j in 0..5 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(approx_eq(vtv[(i, j)], expect, 1e-10));
            }
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = Matrix::from_fn(6, 6, |i, j| ((i + j) as f64).cos());
        let e = symmetric_eigen(&a).unwrap();
        let tr: f64 = (0..6).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        assert!(approx_eq(tr, sum, 1e-10));
    }

    #[test]
    fn generalized_reduces_to_standard_for_identity_b() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let b = Matrix::identity(2);
        let e = generalized_symmetric_eigen(&a, &b).unwrap();
        assert!(approx_eq(e.values[0], 1.0, 1e-12));
        assert!(approx_eq(e.values[1], 3.0, 1e-12));
    }

    #[test]
    fn generalized_eigen_satisfies_definition() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.0]]);
        let e = generalized_symmetric_eigen(&a, &b).unwrap();
        for k in 0..2 {
            let v = e.vectors.col(k);
            let av = a.matvec(&v);
            let bv = b.matvec(&v);
            for i in 0..2 {
                assert!(approx_eq(av[i], e.values[k] * bv[i], 1e-10));
            }
        }
        // B-orthonormality.
        for i in 0..2 {
            for j in 0..2 {
                let vi = e.vectors.col(i);
                let bvj = b.matvec(&e.vectors.col(j));
                let prod = crate::matrix::dot(&vi, &bvj);
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(approx_eq(prod, expect, 1e-10));
            }
        }
    }

    #[test]
    fn generalized_rejects_indefinite_b() {
        let a = Matrix::identity(2);
        let b = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!(generalized_symmetric_eigen(&a, &b).is_err());
    }
}
