//! Symmetric eigensolvers.
//!
//! The cyclic Jacobi method is used because the matrices that need
//! eigendecomposition in this toolkit (modal analysis of per-unit-length
//! `L·C` products, small macromodel checks) are dense, symmetric, and small
//! (tens of rows). Jacobi is simple, unconditionally convergent, and
//! delivers fully orthogonal eigenvectors.

use crate::{CholeskyDecomposition, Matrix, SolveMatrixError};

/// Result of a symmetric eigendecomposition `A·v = λ·v`.
///
/// Eigenvalues are sorted ascending; `vectors.col(k)` is the eigenvector for
/// `values[k]`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, ascending.
    pub values: Vec<f64>,
    /// Column-wise orthonormal eigenvectors.
    pub vectors: Matrix<f64>,
}

/// Computes all eigenvalues/eigenvectors of a symmetric matrix with the
/// cyclic Jacobi method.
///
/// Only the symmetric part of `a` is used (entries are averaged).
///
/// # Errors
///
/// Returns [`SolveMatrixError::NotSquare`] for a non-square input.
///
/// # Examples
///
/// ```
/// use pdn_num::{symmetric_eigen, Matrix};
/// # fn main() -> Result<(), pdn_num::SolveMatrixError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
/// let e = symmetric_eigen(&a)?;
/// assert!((e.values[0] - 1.0).abs() < 1e-12);
/// assert!((e.values[1] - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn symmetric_eigen(a: &Matrix<f64>) -> Result<SymmetricEigen, SolveMatrixError> {
    if !a.is_square() {
        return Err(SolveMatrixError::NotSquare {
            rows: a.nrows(),
            cols: a.ncols(),
        });
    }
    let n = a.nrows();
    // Symmetrize defensively.
    let mut m = Matrix::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));
    let mut v = Matrix::identity(n);
    // Tolerance must scale with the matrix magnitude — physical matrices
    // here range from ~1e-17 (L·C products) to ~1e12 (potential
    // coefficients).
    let scale = m.max_abs();
    if scale == 0.0 {
        return Ok(SymmetricEigen {
            values: vec![0.0; n],
            vectors: v,
        });
    }
    let tol = 1e-14 * scale;
    let max_sweeps = 100;
    for _ in 0..max_sweeps {
        let mut off = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                off = off.max(m[(i, j)].abs());
            }
        }
        if off <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= tol * 1e-2 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                // Stable rotation computation (Golub & Van Loan).
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply rotation J(p,q,θ) on both sides of m and accumulate in v.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    // Collect and sort ascending.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&i, &j| diag[i].partial_cmp(&diag[j]).expect("NaN eigenvalue"));
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let vectors = Matrix::from_fn(n, n, |i, j| v[(i, order[j])]);
    Ok(SymmetricEigen { values, vectors })
}

/// Solves the generalized symmetric-definite eigenproblem `A·v = λ·B·v`
/// with `B` symmetric positive definite.
///
/// This is the modal-analysis kernel: for multiconductor transmission lines
/// the propagation modes satisfy `L·C·v = (1/vₚ²)·v`, which is recast as a
/// generalized problem to stay in symmetric arithmetic. Internally the
/// problem is reduced with the Cholesky factor of `B`:
/// `L⁻¹ A L⁻ᵀ (Lᵀ v) = λ (Lᵀ v)`.
///
/// Returned eigenvectors are `B`-orthonormal: `vᵢᵀ B vⱼ = δᵢⱼ`.
///
/// # Errors
///
/// Returns an error when `B` is not positive definite or shapes mismatch.
///
/// # Examples
///
/// ```
/// use pdn_num::{generalized_symmetric_eigen, Matrix};
/// # fn main() -> Result<(), pdn_num::SolveMatrixError> {
/// let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 8.0]]);
/// let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 4.0]]);
/// let e = generalized_symmetric_eigen(&a, &b)?;
/// assert!((e.values[0] - 2.0).abs() < 1e-12);
/// assert!((e.values[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn generalized_symmetric_eigen(
    a: &Matrix<f64>,
    b: &Matrix<f64>,
) -> Result<SymmetricEigen, SolveMatrixError> {
    if a.shape() != b.shape() {
        return Err(SolveMatrixError::DimensionMismatch {
            expected: a.nrows(),
            got: b.nrows(),
        });
    }
    let n = a.nrows();
    let ch = CholeskyDecomposition::new(b)?;
    // Form C = L⁻¹ A L⁻ᵀ column by column.
    // First X = L⁻¹ A  (solve lower for each column of A),
    // then C = X L⁻ᵀ = (L⁻¹ Xᵀ)ᵀ.
    let mut x = Matrix::zeros(n, n);
    for j in 0..n {
        let col = ch.solve_lower(&a.col(j))?;
        for i in 0..n {
            x[(i, j)] = col[i];
        }
    }
    let xt = x.transpose();
    let mut c = Matrix::zeros(n, n);
    for j in 0..n {
        let col = ch.solve_lower(&xt.col(j))?;
        for i in 0..n {
            c[(j, i)] = col[i];
        }
    }
    let eig = symmetric_eigen(&c)?;
    // Back-transform eigenvectors: v = L⁻ᵀ w.
    let mut vectors = Matrix::zeros(n, n);
    for j in 0..n {
        let w = eig.vectors.col(j);
        let v = ch.solve_upper(&w)?;
        for i in 0..n {
            vectors[(i, j)] = v[i];
        }
    }
    Ok(SymmetricEigen {
        values: eig.values,
        vectors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn diagonal_matrix_eigen() {
        let a = Matrix::from_diag(&[3.0, -1.0, 2.0]);
        let e = symmetric_eigen(&a).unwrap();
        assert!(approx_eq(e.values[0], -1.0, 1e-12));
        assert!(approx_eq(e.values[1], 2.0, 1e-12));
        assert!(approx_eq(e.values[2], 3.0, 1e-12));
    }

    #[test]
    fn eigenpairs_satisfy_definition() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, -0.25], &[0.5, -0.25, 5.0]]);
        let e = symmetric_eigen(&a).unwrap();
        for k in 0..3 {
            let v = e.vectors.col(k);
            let av = a.matvec(&v);
            for i in 0..3 {
                assert!(approx_eq(av[i], e.values[k] * v[i], 1e-10), "pair {k}");
            }
        }
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let a = Matrix::from_fn(5, 5, |i, j| 1.0 / (1.0 + (i as f64 - j as f64).abs()));
        let e = symmetric_eigen(&a).unwrap();
        let vtv = e.vectors.transpose().matmul(&e.vectors);
        for i in 0..5 {
            for j in 0..5 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(approx_eq(vtv[(i, j)], expect, 1e-10));
            }
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = Matrix::from_fn(6, 6, |i, j| ((i + j) as f64).cos());
        let e = symmetric_eigen(&a).unwrap();
        let tr: f64 = (0..6).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        assert!(approx_eq(tr, sum, 1e-10));
    }

    #[test]
    fn generalized_reduces_to_standard_for_identity_b() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let b = Matrix::identity(2);
        let e = generalized_symmetric_eigen(&a, &b).unwrap();
        assert!(approx_eq(e.values[0], 1.0, 1e-12));
        assert!(approx_eq(e.values[1], 3.0, 1e-12));
    }

    #[test]
    fn generalized_eigen_satisfies_definition() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.0]]);
        let e = generalized_symmetric_eigen(&a, &b).unwrap();
        for k in 0..2 {
            let v = e.vectors.col(k);
            let av = a.matvec(&v);
            let bv = b.matvec(&v);
            for i in 0..2 {
                assert!(approx_eq(av[i], e.values[k] * bv[i], 1e-10));
            }
        }
        // B-orthonormality.
        for i in 0..2 {
            for j in 0..2 {
                let vi = e.vectors.col(i);
                let bvj = b.matvec(&e.vectors.col(j));
                let prod = crate::matrix::dot(&vi, &bvj);
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(approx_eq(prod, expect, 1e-10));
            }
        }
    }

    #[test]
    fn generalized_rejects_indefinite_b() {
        let a = Matrix::identity(2);
        let b = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!(generalized_symmetric_eigen(&a, &b).is_err());
    }
}
