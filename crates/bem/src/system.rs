//! The assembled BEM system and its direct frequency-domain solution.
//!
//! [`BemSystem`] owns the mesh and the `P`, `C = P⁻¹`, `L`, `R` matrices
//! and can solve the full (pre-simplification) system of eqs. (10)–(11) at
//! any frequency:
//!
//! ```text
//! (Zs + jωL)·I − A·V = 0
//!  Aᵀ·I + jω·C·V     = J
//! ```
//!
//! Eliminating the link currents gives the nodal admittance of eq. (15),
//! `Y(ω) = jωC + Aᵀ(Zs + jωL)⁻¹A`, from which port impedances follow by a
//! complex solve. This is the reference solution that the quasi-static
//! equivalent circuit of `pdn-extract` is checked against.

use crate::assembly::{assemble_matrices, AssembleBemError, BemOptions, RawMatrices};
use crate::compress::{assemble_compressed, CompressedKernels};
use pdn_geom::{PlaneMesh, PlanePair};
use pdn_greens::SurfaceImpedance;
use pdn_num::rational::{self, SweepAccuracy, SweepError, SweepOutcome};
use pdn_num::{c64, LuDecomposition, Matrix};
use std::f64::consts::PI;

/// Maps a shared-engine error onto this crate's error type: grid
/// problems become [`AssembleBemError::InvalidInput`], evaluation errors
/// pass through.
fn from_sweep_err(e: SweepError<AssembleBemError>) -> AssembleBemError {
    match e {
        SweepError::InvalidInput(msg) => AssembleBemError::InvalidInput(msg),
        SweepError::Eval(e) => e,
    }
}

/// Dense kernel storage: the assembled matrices plus the incidence
/// promoted to complex once at assembly (every per-frequency solve needs
/// it and it is ω-independent).
#[derive(Debug, Clone)]
struct DenseKernels {
    p_coef: Matrix<f64>,
    c: Matrix<f64>,
    l: Matrix<f64>,
    incidence: Matrix<f64>,
    incidence_c: Matrix<c64>,
}

/// The kernel storage backing a [`BemSystem`]: dense matrices (the
/// default), or certified low-rank compressed operators (see
/// [`crate::compress`]) that never materialize `P`, `C`, or `L`.
#[derive(Debug, Clone)]
enum KernelStore {
    Dense(Box<DenseKernels>),
    Compressed(Box<CompressedKernels>),
}

/// An assembled boundary-element system for one plane structure.
#[derive(Debug, Clone)]
pub struct BemSystem {
    mesh: PlaneMesh,
    pair: PlanePair,
    zs: SurfaceImpedance,
    kernels: KernelStore,
    r_link: Vec<f64>,
}

impl BemSystem {
    /// Assembles the MPIE matrices for `mesh` over the given plane pair.
    ///
    /// `zs` is the **loop** surface impedance seen by the link currents
    /// (for two identical planes, twice the per-plane sheet resistance).
    ///
    /// With [`BemOptions::compression`] set, the kernels are stored in
    /// certified low-rank form instead of dense matrices; such a system
    /// exposes [`compressed`](Self::compressed) operators, its dense
    /// accessors panic, and its direct frequency-domain solves return
    /// [`AssembleBemError::InvalidInput`] (downstream consumers solve it
    /// iteratively through the equivalent-circuit extraction path).
    ///
    /// # Errors
    ///
    /// Returns [`AssembleBemError`] when the options are invalid, the
    /// mesh is empty, the potential matrix cannot be inverted, or a
    /// compressed block fails certification.
    pub fn assemble(
        mesh: PlaneMesh,
        pair: &PlanePair,
        zs: &SurfaceImpedance,
        opts: &BemOptions,
    ) -> Result<Self, AssembleBemError> {
        opts.validate()?;
        if let Some(spec) = &opts.compression {
            let (kernels, r_link) = assemble_compressed(&mesh, pair, zs, opts, spec)?;
            if mesh.cell_count() == 0 {
                return Err(AssembleBemError::EmptyMesh);
            }
            return Ok(BemSystem {
                mesh,
                pair: *pair,
                zs: *zs,
                kernels: KernelStore::Compressed(Box::new(kernels)),
                r_link,
            });
        }
        let raw = assemble_matrices(&mesh, pair, zs, opts)?;
        Self::from_raw(mesh, pair, zs, raw)
    }

    /// Builds a system from externally assembled (or adjusted) matrices.
    ///
    /// This is the hook behind sharded extraction, where the regional
    /// `P`/`L` diagonals carry cross-region lumping corrections (see
    /// [`crate::assembly::cross_block_lumping`]) before the system is
    /// reduced. The matrices must be on the node/link spaces of `mesh`.
    ///
    /// # Errors
    ///
    /// [`AssembleBemError::EmptyMesh`] for an empty mesh,
    /// [`AssembleBemError::InvalidInput`] when a matrix dimension does not
    /// match the mesh, and [`AssembleBemError::NumericalBreakdown`] when
    /// `P` cannot be inverted.
    pub fn from_raw(
        mesh: PlaneMesh,
        pair: &PlanePair,
        zs: &SurfaceImpedance,
        raw: RawMatrices,
    ) -> Result<Self, AssembleBemError> {
        let n = mesh.cell_count();
        let m = mesh.link_count();
        if n == 0 {
            return Err(AssembleBemError::EmptyMesh);
        }
        let RawMatrices { p_coef, l, r_link } = raw;
        if p_coef.nrows() != n || p_coef.ncols() != n {
            return Err(AssembleBemError::InvalidInput(format!(
                "P is {}x{}, mesh has {n} cells",
                p_coef.nrows(),
                p_coef.ncols()
            )));
        }
        if l.nrows() != m || l.ncols() != m || r_link.len() != m {
            return Err(AssembleBemError::InvalidInput(format!(
                "L is {}x{} with {} resistances, mesh has {m} links",
                l.nrows(),
                l.ncols(),
                r_link.len()
            )));
        }
        let c = pdn_num::lu::invert(p_coef.clone())
            .map_err(|e| AssembleBemError::NumericalBreakdown(e.to_string()))?;
        let mut incidence = Matrix::zeros(m, n);
        for (link, cell, sign) in mesh.incidence() {
            incidence[(link, cell)] = sign;
        }
        let incidence_c = incidence.to_complex();
        Ok(BemSystem {
            mesh,
            pair: *pair,
            zs: *zs,
            kernels: KernelStore::Dense(Box::new(DenseKernels {
                p_coef,
                c,
                l,
                incidence,
                incidence_c,
            })),
            r_link,
        })
    }

    /// The dense kernel store, panicking with a pointer at the
    /// compressed API when the system was assembled with compression.
    fn dense(&self) -> &DenseKernels {
        match &self.kernels {
            KernelStore::Dense(d) => d,
            KernelStore::Compressed(_) => panic!(
                "dense kernel accessor called on a compressed BemSystem; use \
                 BemSystem::compressed() and the iterative extraction path"
            ),
        }
    }

    /// The discretization this system was assembled from.
    pub fn mesh(&self) -> &PlaneMesh {
        &self.mesh
    }

    /// The plane pair.
    pub fn pair(&self) -> &PlanePair {
        &self.pair
    }

    /// Potential-coefficient matrix `P` (N×N, 1/F).
    ///
    /// # Panics
    ///
    /// Panics for a compressed system — use
    /// [`compressed`](Self::compressed).
    pub fn potential_coefficients(&self) -> &Matrix<f64> {
        &self.dense().p_coef
    }

    /// Short-circuit capacitance matrix `C = P⁻¹` (N×N, F).
    ///
    /// # Panics
    ///
    /// Panics for a compressed system — use
    /// [`compressed`](Self::compressed).
    pub fn capacitance(&self) -> &Matrix<f64> {
        &self.dense().c
    }

    /// Partial-inductance matrix over links (M×M, H).
    ///
    /// # Panics
    ///
    /// Panics for a compressed system — use
    /// [`compressed`](Self::compressed).
    pub fn inductance(&self) -> &Matrix<f64> {
        &self.dense().l
    }

    /// The compressed kernel set, when the system was assembled with
    /// [`BemOptions::compression`]; `None` for dense systems.
    pub fn compressed(&self) -> Option<&CompressedKernels> {
        match &self.kernels {
            KernelStore::Dense(_) => None,
            KernelStore::Compressed(ck) => Some(ck),
        }
    }

    /// Whether the kernels are stored in compressed form.
    pub fn is_compressed(&self) -> bool {
        matches!(self.kernels, KernelStore::Compressed(_))
    }

    /// Link loop resistances at DC (M, Ω).
    pub fn link_resistances(&self) -> &[f64] {
        &self.r_link
    }

    /// The surface-impedance model the system was assembled with.
    pub fn surface_impedance(&self) -> &SurfaceImpedance {
        &self.zs
    }

    /// Frequency scaling of the link resistances: `Zs(f)/Zs(0)` from the
    /// surface-impedance model (1 for sheet-resistance-only models, √f
    /// growth above the skin-effect transition for conductor models).
    fn resistance_scale(&self, f: f64) -> f64 {
        let r_dc = self.zs.dc_resistance();
        if r_dc > 0.0 {
            self.zs.resistance(f) / r_dc
        } else {
            1.0
        }
    }

    /// Signed link↔cell incidence `A` (M×N): the discrete gradient.
    ///
    /// # Panics
    ///
    /// Panics for a compressed system, which never densifies `A` —
    /// iterate [`PlaneMesh::incidence`] triples instead.
    pub fn incidence(&self) -> &Matrix<f64> {
        &self.dense().incidence
    }

    /// Full nodal admittance `Y(ω) = jωC + Aᵀ(Zs + jωL)⁻¹A` at frequency
    /// `f` in Hz (paper eq. 15).
    ///
    /// # Errors
    ///
    /// Returns [`AssembleBemError::InvalidInput`] for `f <= 0` — at DC a
    /// lossless system's branch impedance `Zs + jωL` is singular, so the
    /// formula only applies above DC (same contract as
    /// [`port_impedance`](Self::port_impedance)). For `f > 0` with
    /// positive-definite `L` the solve cannot break down. A compressed
    /// system also returns [`AssembleBemError::InvalidInput`]: the dense
    /// per-frequency factorization would densify the kernels, so
    /// compressed systems are solved through the extracted
    /// equivalent-circuit/macromodel path instead.
    pub fn nodal_admittance(&self, f: f64) -> Result<Matrix<c64>, AssembleBemError> {
        if self.is_compressed() {
            return Err(AssembleBemError::InvalidInput(
                "direct frequency-domain solves are not available on a compressed \
                 BemSystem (they would densify the kernels); extract an equivalent \
                 circuit or macromodel and sweep that instead"
                    .into(),
            ));
        }
        if f <= 0.0 {
            return Err(AssembleBemError::InvalidInput(format!(
                "nodal admittance requires f > 0 (Zs + jωL is singular at DC \
                 for a lossless system), got f = {f}"
            )));
        }
        let dk = self.dense();
        let omega = 2.0 * PI * f;
        let m = dk.l.nrows();
        let n = dk.c.nrows();
        // Branch impedance Zb = Zs(f) + jωL (complex, M×M). The surface
        // impedance follows the assembled model: flat for a sheet
        // resistance, √f above the skin transition for a conductor model
        // (paper eq. 3's impedance boundary condition).
        let r_scale = self.resistance_scale(f);
        let mut zb = Matrix::<c64>::zeros(m, m);
        for i in 0..m {
            for j in 0..m {
                let re = if i == j {
                    self.r_link[i] * r_scale
                } else {
                    0.0
                };
                zb[(i, j)] = c64::new(re, omega * dk.l[(i, j)]);
            }
        }
        let lu = LuDecomposition::new(zb)
            .map_err(|e| AssembleBemError::NumericalBreakdown(e.to_string()))?;
        // X = Zb⁻¹ A  (M×N), then Y = jωC + Aᵀ X. `A` is ω-independent and
        // cached in complex form at assembly time.
        let a_c = &dk.incidence_c;
        let x = lu
            .solve_matrix(a_c)
            .map_err(|e| AssembleBemError::NumericalBreakdown(e.to_string()))?;
        let ata = a_c.hermitian_transpose().matmul(&x);
        let mut y = ata;
        for i in 0..n {
            for j in 0..n {
                let c_term = c64::new(0.0, omega * dk.c[(i, j)]);
                y[(i, j)] += c_term;
            }
        }
        Ok(y)
    }

    /// Port impedance matrix at frequency `f` (Hz) for the mesh's bound
    /// ports: unit current into each port in turn, returning the port
    /// voltages.
    ///
    /// The reference (return) conductor is the ground plane, reached
    /// through the distributed plane capacitance, so `f` must be positive.
    ///
    /// # Errors
    ///
    /// Returns an error when `f <= 0` or the solve breaks down.
    ///
    /// # Panics
    ///
    /// Panics if no ports are bound to the mesh.
    pub fn port_impedance(&self, f: f64) -> Result<Matrix<c64>, AssembleBemError> {
        if f <= 0.0 {
            return Err(AssembleBemError::InvalidInput(format!(
                "port impedance requires f > 0 (capacitive ground return), got f = {f}"
            )));
        }
        let y = self.nodal_admittance(f)?;
        self.port_impedance_from_admittance(y)
    }

    /// Solves the bound ports against an already-built nodal admittance:
    /// one factorization of `Y`, reused across every port's RHS column.
    fn port_impedance_from_admittance(
        &self,
        y: Matrix<c64>,
    ) -> Result<Matrix<c64>, AssembleBemError> {
        let ports = self.mesh.port_cells();
        assert!(!ports.is_empty(), "no ports bound to the mesh");
        let lu = LuDecomposition::new(y)
            .map_err(|e| AssembleBemError::NumericalBreakdown(e.to_string()))?;
        let n = self.mesh.cell_count();
        let np = ports.len();
        let mut z = Matrix::<c64>::zeros(np, np);
        for (pj, &cell_j) in ports.iter().enumerate() {
            let mut rhs = vec![c64::ZERO; n];
            rhs[cell_j] = c64::ONE;
            let v = lu
                .solve(&rhs)
                .map_err(|e| AssembleBemError::NumericalBreakdown(e.to_string()))?;
            for (pi, &cell_i) in ports.iter().enumerate() {
                z[(pi, pj)] = v[cell_i];
            }
        }
        Ok(z)
    }

    /// Batched [`nodal_admittance`](Self::nodal_admittance): one `Y(ω)`
    /// matrix per frequency, computed on [`pdn_num::parallel`] workers.
    ///
    /// Output order matches `freqs` and is identical for every worker
    /// count (each sweep point is solved independently by one thread).
    /// Equivalent to
    /// [`admittance_sweep_with`](Self::admittance_sweep_with) at
    /// [`SweepAccuracy::Exact`].
    ///
    /// # Errors
    ///
    /// Returns the error of the lowest-index failing point; the grid must
    /// be finite, strictly positive, and strictly increasing.
    pub fn admittance_sweep(&self, freqs: &[f64]) -> Result<Vec<Matrix<c64>>, AssembleBemError> {
        self.admittance_sweep_with(freqs, SweepAccuracy::Exact)
    }

    /// [`admittance_sweep`](Self::admittance_sweep) with an explicit
    /// [`SweepAccuracy`] policy — `Rational` solves only adaptively
    /// chosen anchor frequencies exactly and fills the rest from a
    /// certified barycentric interpolant (see `pdn_num::rational`).
    ///
    /// # Errors
    ///
    /// [`AssembleBemError::InvalidInput`] for an invalid grid or
    /// tolerance; otherwise the lowest-index failing point's error.
    pub fn admittance_sweep_with(
        &self,
        freqs: &[f64],
        accuracy: SweepAccuracy,
    ) -> Result<Vec<Matrix<c64>>, AssembleBemError> {
        Ok(self.admittance_sweep_detailed(freqs, accuracy)?.values)
    }

    /// [`admittance_sweep_with`](Self::admittance_sweep_with) returning
    /// the full [`SweepOutcome`] (values, engine stats, rational model).
    ///
    /// # Errors
    ///
    /// Same contract as
    /// [`admittance_sweep_with`](Self::admittance_sweep_with).
    pub fn admittance_sweep_detailed(
        &self,
        freqs: &[f64],
        accuracy: SweepAccuracy,
    ) -> Result<SweepOutcome, AssembleBemError> {
        rational::sweep("bem.admittance", freqs, accuracy, |f| {
            self.nodal_admittance(f)
        })
        .map_err(from_sweep_err)
    }

    /// Batched [`port_impedance`](Self::port_impedance): one port
    /// impedance matrix per frequency, computed on [`pdn_num::parallel`]
    /// workers with one cached LU factorization per sweep point (shared
    /// across all port excitations at that point). Equivalent to
    /// [`impedance_sweep_with`](Self::impedance_sweep_with) at
    /// [`SweepAccuracy::Exact`].
    ///
    /// # Errors
    ///
    /// Returns the error of the lowest-index failing point; the grid must
    /// be finite, strictly positive, and strictly increasing.
    ///
    /// # Panics
    ///
    /// Panics if no ports are bound to the mesh.
    pub fn impedance_sweep(&self, freqs: &[f64]) -> Result<Vec<Matrix<c64>>, AssembleBemError> {
        self.impedance_sweep_with(freqs, SweepAccuracy::Exact)
    }

    /// [`impedance_sweep`](Self::impedance_sweep) with an explicit
    /// [`SweepAccuracy`] policy.
    ///
    /// # Errors
    ///
    /// [`AssembleBemError::InvalidInput`] for an invalid grid or
    /// tolerance; otherwise the lowest-index failing point's error.
    ///
    /// # Panics
    ///
    /// Panics if no ports are bound to the mesh.
    pub fn impedance_sweep_with(
        &self,
        freqs: &[f64],
        accuracy: SweepAccuracy,
    ) -> Result<Vec<Matrix<c64>>, AssembleBemError> {
        Ok(self.impedance_sweep_detailed(freqs, accuracy)?.values)
    }

    /// [`impedance_sweep_with`](Self::impedance_sweep_with) returning the
    /// full [`SweepOutcome`] (values, engine stats, rational model).
    ///
    /// # Errors
    ///
    /// Same contract as
    /// [`impedance_sweep_with`](Self::impedance_sweep_with).
    ///
    /// # Panics
    ///
    /// Panics if no ports are bound to the mesh.
    pub fn impedance_sweep_detailed(
        &self,
        freqs: &[f64],
        accuracy: SweepAccuracy,
    ) -> Result<SweepOutcome, AssembleBemError> {
        rational::sweep("bem.impedance", freqs, accuracy, |f| {
            let y = self.nodal_admittance(f)?;
            self.port_impedance_from_admittance(y)
        })
        .map_err(from_sweep_err)
    }

    /// Scans `|Z(port, port)|` over a frequency grid and returns the
    /// frequencies of local maxima (plane resonances) in ascending order —
    /// the order the paper reports its `f₀`, `f₁` resonant modes. The grid
    /// is solved by [`impedance_sweep`](Self::impedance_sweep), so points
    /// are evaluated in parallel.
    ///
    /// # Errors
    ///
    /// Returns [`AssembleBemError::InvalidInput`] unless `points >= 2`,
    /// `f_start > 0`, and `f_stop > f_start` (the same contract as the
    /// `AcSweep` constructors); otherwise propagates solve errors from
    /// [`port_impedance`](Self::port_impedance).
    pub fn find_resonances(
        &self,
        port: usize,
        f_start: f64,
        f_stop: f64,
        points: usize,
    ) -> Result<Vec<f64>, AssembleBemError> {
        self.find_resonances_with(port, f_start, f_stop, points, SweepAccuracy::Exact)
    }

    /// [`find_resonances`](Self::find_resonances) with an explicit
    /// [`SweepAccuracy`] policy. Under `Rational` accuracy the rational
    /// model's poles seed the peak search (each in-band pole is refined
    /// against `|Z|` near its real part) instead of rescanning the filled
    /// grid; peaks are always returned ascending with maxima closer than
    /// one grid step deduplicated.
    ///
    /// # Errors
    ///
    /// Same contract as [`find_resonances`](Self::find_resonances).
    pub fn find_resonances_with(
        &self,
        port: usize,
        f_start: f64,
        f_stop: f64,
        points: usize,
        accuracy: SweepAccuracy,
    ) -> Result<Vec<f64>, AssembleBemError> {
        if points < 2 {
            return Err(AssembleBemError::InvalidInput(format!(
                "resonance scan needs at least two sweep points, got {points}"
            )));
        }
        if !(f_start > 0.0 && f_stop > f_start) {
            return Err(AssembleBemError::InvalidInput(format!(
                "invalid resonance scan range [{f_start}, {f_stop}]: \
                 need 0 < f_start < f_stop"
            )));
        }
        let freqs: Vec<f64> = (0..points)
            .map(|k| f_start + (f_stop - f_start) * k as f64 / (points - 1) as f64)
            .collect();
        let outcome = self.impedance_sweep_detailed(&freqs, accuracy)?;
        let mags: Vec<f64> = outcome
            .values
            .iter()
            .map(|zk| zk[(port, port)].norm())
            .collect();
        Ok(match &outcome.model {
            Some(model) => {
                rational::pole_seeded_peaks(&freqs, &mags, model, &|z| z[(port, port)].norm())
            }
            None => rational::peaks_on_grid(&freqs, &mags),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdn_geom::units::mm;
    use pdn_geom::{Point, Polygon};
    use pdn_num::approx_eq;
    use pdn_num::phys::EPS0;

    fn square_plane(ports: &[(f64, f64)]) -> BemSystem {
        let mut mesh = PlaneMesh::build(&Polygon::rectangle(mm(20.0), mm(20.0)), mm(2.5)).unwrap();
        for (i, &(x, y)) in ports.iter().enumerate() {
            mesh.bind_port(format!("P{i}"), Point::new(x, y)).unwrap();
        }
        let pair = PlanePair::new(0.5e-3, 4.5).unwrap();
        BemSystem::assemble(
            mesh,
            &pair,
            &SurfaceImpedance::from_sheet_resistance(2e-3),
            &BemOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn low_frequency_impedance_is_capacitive() {
        let sys = square_plane(&[(mm(2.0), mm(2.0))]);
        let f = 1e6;
        let z = sys.port_impedance(f).unwrap()[(0, 0)];
        // Should be ≈ 1/(jωC_total) with C_total ≈ fringing-corrected
        // parallel-plate capacitance.
        assert!(z.im < 0.0, "capacitive phase, got {z}");
        let c_eff = -1.0 / (2.0 * PI * f * z.im);
        let c_pp = EPS0 * 4.5 * mm(20.0) * mm(20.0) / 0.5e-3;
        let ratio = c_eff / c_pp;
        assert!(ratio > 0.95 && ratio < 1.4, "C_eff/C_pp = {ratio}");
        // 1/f scaling.
        let z10 = sys.port_impedance(10.0 * f).unwrap()[(0, 0)];
        assert!(approx_eq(z.norm() / z10.norm(), 10.0, 0.05));
    }

    #[test]
    fn impedance_matrix_reciprocal() {
        let sys = square_plane(&[(mm(2.0), mm(2.0)), (mm(17.0), mm(12.0))]);
        let z = sys.port_impedance(1e9).unwrap();
        let err = (z[(0, 1)] - z[(1, 0)]).norm() / z[(0, 1)].norm();
        assert!(err < 1e-8, "reciprocity violated: {err}");
    }

    #[test]
    fn first_resonance_matches_cavity_model() {
        // 20×20 mm plane, εr = 4.5, d = 0.5 mm: f₁₀ = v/(2a).
        let sys = square_plane(&[(mm(1.5), mm(1.5))]); // corner port excites (1,0)
        let f10 = sys.pair().cavity_resonance(mm(20.0), mm(20.0), 1, 0);
        let peaks = sys.find_resonances(0, 0.5 * f10, 1.5 * f10, 41).unwrap();
        assert!(!peaks.is_empty(), "no resonance found near {f10:.3e}");
        let rel = (peaks[0] - f10).abs() / f10;
        assert!(rel < 0.10, "resonance {:.3e} vs cavity {f10:.3e}", peaks[0]);
    }

    #[test]
    fn loss_damps_the_resonance_peak() {
        let mesh = || {
            let mut m = PlaneMesh::build(&Polygon::rectangle(mm(20.0), mm(20.0)), mm(2.5)).unwrap();
            m.bind_port("P", Point::new(mm(1.5), mm(1.5))).unwrap();
            m
        };
        let pair = PlanePair::new(0.5e-3, 4.5).unwrap();
        let f10 = pair.cavity_resonance(mm(20.0), mm(20.0), 1, 0);
        let lo = BemSystem::assemble(
            mesh(),
            &pair,
            &SurfaceImpedance::from_sheet_resistance(1e-3),
            &BemOptions::default(),
        )
        .unwrap();
        let hi = BemSystem::assemble(
            mesh(),
            &pair,
            &SurfaceImpedance::from_sheet_resistance(50e-3),
            &BemOptions::default(),
        )
        .unwrap();
        let z_lo = lo.port_impedance(f10).unwrap()[(0, 0)].norm();
        let z_hi = hi.port_impedance(f10).unwrap()[(0, 0)].norm();
        assert!(
            z_hi < z_lo,
            "more loss must damp the peak: lossy {z_hi} vs {z_lo}"
        );
    }

    #[test]
    fn transfer_impedance_below_self_impedance_at_dc_limit() {
        let sys = square_plane(&[(mm(2.0), mm(2.0)), (mm(17.0), mm(17.0))]);
        let z = sys.port_impedance(10e6).unwrap();
        // At low frequency both approach 1/(jωC_total); the self term has
        // extra local (spreading) inductance/resistance, so |Z11| ≥ |Z12|.
        assert!(z[(0, 0)].norm() >= z[(0, 1)].norm() * 0.99);
    }

    #[test]
    fn port_impedance_requires_positive_frequency() {
        let sys = square_plane(&[(mm(2.0), mm(2.0))]);
        assert!(sys.port_impedance(0.0).is_err());
    }

    #[test]
    fn nodal_admittance_requires_positive_frequency() {
        // At f = 0 a lossless system's Zs + jωL is exactly singular; the
        // guard must reject DC (and negative frequencies) up front instead
        // of surfacing a factorization breakdown.
        let sys = square_plane(&[(mm(2.0), mm(2.0))]);
        for f in [0.0, -1e9] {
            match sys.nodal_admittance(f) {
                Err(AssembleBemError::InvalidInput(msg)) => {
                    assert!(msg.contains("f > 0"), "descriptive error, got: {msg}")
                }
                other => panic!("expected InvalidInput for f = {f}, got {other:?}"),
            }
        }
        assert!(sys.nodal_admittance(1e6).is_ok());
    }

    #[test]
    fn find_resonances_rejects_degenerate_grids() {
        let sys = square_plane(&[(mm(2.0), mm(2.0))]);
        for points in [0, 1] {
            match sys.find_resonances(0, 1e8, 1e9, points) {
                Err(AssembleBemError::InvalidInput(_)) => {}
                other => panic!("points = {points}: expected InvalidInput, got {other:?}"),
            }
        }
        // AcSweep-style range validation.
        assert!(sys.find_resonances(0, 0.0, 1e9, 11).is_err());
        assert!(sys.find_resonances(0, 1e9, 1e8, 11).is_err());
        // Two points cannot hold an interior maximum but are a valid grid.
        assert_eq!(
            sys.find_resonances(0, 1e8, 1e9, 2).unwrap(),
            Vec::<f64>::new()
        );
    }

    #[test]
    fn sweeps_match_per_point_solves() {
        let sys = square_plane(&[(mm(2.0), mm(2.0)), (mm(17.0), mm(12.0))]);
        let freqs = [1e7, 1e8, 5e8, 1e9, 2e9];
        let z_batch = sys.impedance_sweep(&freqs).unwrap();
        let y_batch = sys.admittance_sweep(&freqs).unwrap();
        assert_eq!(z_batch.len(), freqs.len());
        for (k, &f) in freqs.iter().enumerate() {
            let z_single = sys.port_impedance(f).unwrap();
            let y_single = sys.nodal_admittance(f).unwrap();
            // Same code path per point — results must be bit-identical.
            assert_eq!(z_batch[k], z_single, "Z mismatch at f = {f}");
            assert_eq!(y_batch[k], y_single, "Y mismatch at f = {f}");
        }
    }

    #[test]
    fn sweep_propagates_lowest_index_error() {
        let sys = square_plane(&[(mm(2.0), mm(2.0))]);
        let err = sys.impedance_sweep(&[1e8, -1.0, 0.0]).unwrap_err();
        match err {
            AssembleBemError::InvalidInput(msg) => {
                assert!(msg.contains("-1"), "lowest failing point reported: {msg}")
            }
            other => panic!("expected InvalidInput, got {other:?}"),
        }
    }

    #[test]
    fn admittance_row_sums_vanish_inductively() {
        // The inductive part Aᵀ(Zs+jωL)⁻¹A has zero row sums (a pure
        // branch circuit): total Y row sum equals the capacitive part.
        let sys = square_plane(&[(mm(2.0), mm(2.0))]);
        let f = 1e8;
        let y = sys.nodal_admittance(f).unwrap();
        let n = y.nrows();
        for i in 0..n.min(5) {
            let row_sum: c64 = (0..n).map(|j| y[(i, j)]).sum();
            let c_row: f64 = (0..n).map(|j| sys.capacitance()[(i, j)]).sum();
            let expect = c64::new(0.0, 2.0 * PI * f * c_row);
            assert!(
                (row_sum - expect).norm() < 1e-6 * row_sum.norm().max(expect.norm()),
                "row {i}: {row_sum} vs {expect}"
            );
        }
    }
}

#[cfg(test)]
mod skin_effect_tests {
    use super::*;
    use pdn_geom::units::mm;
    use pdn_geom::{Point, Polygon};
    use pdn_num::phys::SIGMA_COPPER;

    fn system(zs: SurfaceImpedance) -> BemSystem {
        let mut mesh = PlaneMesh::build(&Polygon::rectangle(mm(20.0), mm(20.0)), mm(2.5)).unwrap();
        mesh.bind_port("P", Point::new(mm(1.5), mm(1.5))).unwrap();
        let pair = PlanePair::new(0.5e-3, 4.5).unwrap();
        BemSystem::assemble(mesh, &pair, &zs, &BemOptions::default()).unwrap()
    }

    #[test]
    fn skin_effect_damps_resonance_more_than_dc_model() {
        // Two models with identical DC resistance: one frequency-flat,
        // one with a copper skin-effect transition. At the ~3.5 GHz plane
        // resonance the skin model is more resistive → lower peak.
        let t_foil = 35e-6;
        let flat = system(SurfaceImpedance::from_sheet_resistance(
            2.0 / (SIGMA_COPPER * t_foil),
        ));
        let skin = {
            // Conductor model with double conductivity deficit to match
            // the loop (two foils in series).
            let mut zs = SurfaceImpedance::from_conductor(SIGMA_COPPER / 2.0, t_foil);
            // from_conductor already sets r_dc = 2/(σ t).
            let _ = &mut zs;
            zs
        };
        let skin_sys = system(skin);
        assert!(
            (flat.link_resistances()[0] - skin_sys.link_resistances()[0]).abs()
                < 1e-9 * flat.link_resistances()[0],
            "identical DC resistance by construction"
        );
        let f10 = flat.pair().cavity_resonance(mm(20.0), mm(20.0), 1, 0);
        let z_flat = flat.port_impedance(f10).unwrap()[(0, 0)].norm();
        let z_skin = skin_sys.port_impedance(f10).unwrap()[(0, 0)].norm();
        assert!(
            z_skin < z_flat,
            "skin effect damps the peak: {z_skin:.2} vs {z_flat:.2}"
        );
    }

    #[test]
    fn lossless_scale_is_identity() {
        let sys = system(SurfaceImpedance::lossless());
        assert_eq!(sys.resistance_scale(10e9), 1.0);
        assert_eq!(sys.surface_impedance().dc_resistance(), 0.0);
    }
}
