//! Certified low-rank (ACA) compression of the BEM kernels.
//!
//! The MPIE kernels assembled by [`crate::assembly`] are discretizations
//! of smooth integral operators: the interaction between two
//! well-separated groups of panels is numerically low-rank. This module
//! exploits that structure so `P` and `L` never have to be densified:
//!
//! 1. a **geometric cluster tree** recursively bisects the panel (or
//!    link) centers along the longest bounding-box axis down to
//!    [`CompressionSpec::leaf_size`] panels per leaf;
//! 2. a block partition pairs tree nodes: a pair is **admissible** when
//!    `min(diam_a, diam_b) ≤ eta · dist(a, b)` (bounding-box diameters
//!    and box-to-box distance) and becomes a low-rank block; leaf pairs
//!    that never become admissible are assembled **dense** (near field);
//! 3. admissible blocks are factored by partially pivoted
//!    [ACA](pdn_num::aca) with an internal tolerance `tol/16`, then
//!    recompressed (QR + SVD truncation at `tol/4`) to the numerical
//!    rank;
//! 4. every low-rank block is **certified a posteriori**: sampled rows
//!    (fixed-seed LCG, so the choice is reproducible) are re-evaluated
//!    against the exact kernel and assembly fails loudly with
//!    [`AssembleBemError::NumericalBreakdown`] if any sampled row errs
//!    by more than `tol` relative to the block norm — accuracy is never
//!    silently degraded (see `docs/COMPRESSION.md`).
//!
//! The result is a [`CompressedKernel`]: a symmetric operator supporting
//! exact-cost matvecs, Jacobi-preconditioned CG solves, and byte
//! accounting. Assembly fans the fixed block list across
//! [`pdn_num::parallel`] workers and every per-block computation is
//! serial and deterministically pivoted, so compressed kernels are
//! bit-identical for any `PDN_THREADS`.
//!
//! Set `PDN_ACA_STATS=1` to print per-kernel block/rank/byte diagnostics
//! to stderr at assembly time.

use crate::assembly::{kernel_row, scalar_kernel, AssembleBemError, BemOptions, Testing};
use pdn_geom::mesh::LinkDirection;
use pdn_geom::{PlaneMesh, PlanePair};
use pdn_greens::{LayeredKernel, Rectangle, SurfaceImpedance};
use pdn_num::aca::{aca, LowRank};
use pdn_num::precond::{BlockJacobiPreconditioner, Preconditioner};
use pdn_num::{cg, parallel, GaussLegendre, Matrix};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Global kernel-matvec counter: every [`CompressedKernel::matvec`] (and
/// hence every column of a block matvec) increments it by one. Used by
/// benches and tests to compare the kernel traffic of solver strategies;
/// see [`reset_kernel_matvec_count`].
static KERNEL_MATVECS: AtomicUsize = AtomicUsize::new(0);

/// Resets the global compressed-kernel matvec counter to zero.
pub fn reset_kernel_matvec_count() {
    KERNEL_MATVECS.store(0, Ordering::Relaxed);
}

/// Total compressed-kernel matvecs since the last
/// [`reset_kernel_matvec_count`] (one per column; a block matvec over a
/// panel of `k` columns counts `k`).
pub fn kernel_matvec_count() -> usize {
    KERNEL_MATVECS.load(Ordering::Relaxed)
}

/// Column-chunk width of the blocked matvecs. Fixed (never derived from
/// the worker count) so the chunk boundaries — and therefore every
/// floating-point result — are identical for any `PDN_THREADS`. Wide
/// enough to amortize streaming a kernel block over many columns, small
/// enough that a typical 48-column panel still fans across workers.
pub(crate) const MATVEC_CHUNK: usize = pdn_num::aca::PANEL_LANES;

/// Coarsened block-Jacobi clusters cap at this multiple of `leaf_size`
/// (256 points at the default leaf size): measured on the benchmark
/// boards, larger exact blocks keep cutting CG iterations up to about
/// this size, after which the `O(n·cap)` triangular-solve cost per
/// preconditioner application overtakes the saved matvecs.
pub(crate) const COARSEN_FACTOR: usize = 8;

/// Margin between the internal ACA stopping tolerance and the
/// user-facing certified tolerance: ACA stops at `tol / ACA_MARGIN`, so
/// the certification check at `tol` has headroom over the incremental
/// Frobenius estimate the stopping criterion relies on.
pub(crate) const ACA_MARGIN: f64 = 16.0;
/// Recompression truncates at `tol / RECOMPRESS_MARGIN`.
pub(crate) const RECOMPRESS_MARGIN: f64 = 4.0;
/// Certified rows sampled per low-rank block.
pub(crate) const CERT_ROWS: usize = 2;

/// Iterative-solver strategy for the compressed extraction path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverSpec {
    /// Per-column scalar CG with the plain Jacobi (diagonal)
    /// preconditioner — the original compressed path, kept as the
    /// default so existing results stay byte-stable.
    ScalarJacobi,
    /// Multi-RHS block CG ([`pdn_num::cg::solve_spd_block`]) with a
    /// hierarchical block-Jacobi preconditioner built from the kernel's
    /// own cluster tree (exact Cholesky factors over leaf clusters).
    /// One compressed-operator sweep per iteration serves the whole
    /// column panel, so total kernel matvecs drop sharply — see
    /// `docs/COMPRESSION.md` for the measured contract.
    BlockCg {
        /// Columns solved per block-CG panel. Must be at least 1;
        /// 32–64 balances amortization against panel Gram-matrix cost.
        panel: usize,
        /// Coarsen the preconditioner one tree level: merge sibling
        /// leaves into their parent cluster (stronger, costlier
        /// factors).
        coarsen: bool,
    },
}

impl SolverSpec {
    /// Whether this strategy uses the block solver.
    pub fn is_block(&self) -> bool {
        matches!(self, SolverSpec::BlockCg { .. })
    }

    /// Appends a canonical byte encoding of the solver strategy to `w`
    /// (part of the `pdn-service` content hash).
    pub fn write_canonical(&self, w: &mut pdn_num::ByteWriter) {
        match self {
            SolverSpec::ScalarJacobi => w.put_u8(0),
            SolverSpec::BlockCg { panel, coarsen } => {
                w.put_u8(1);
                w.put_usize(*panel);
                w.put_u8(*coarsen as u8);
            }
        }
    }
}

/// Low-rank compression settings carried on
/// [`BemOptions::compression`](crate::BemOptions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionSpec {
    /// Certified relative tolerance of every compressed block (and the
    /// bound on the compressed-vs-dense matvec error). Must be finite
    /// and in `(0, 1)`.
    pub tol: f64,
    /// Maximum panels per cluster-tree leaf (near-field dense block
    /// edge). Must be at least 1.
    pub leaf_size: usize,
    /// Admissibility parameter: a block is compressed when
    /// `min(diam_a, diam_b) ≤ eta · dist(a, b)`. Larger values compress
    /// more aggressively. Must be finite and positive.
    pub eta: f64,
    /// Iterative-solver strategy used by the compressed extraction
    /// path. Defaults to [`SolverSpec::ScalarJacobi`].
    pub solver: SolverSpec,
}

impl Default for CompressionSpec {
    fn default() -> Self {
        CompressionSpec {
            tol: 1e-6,
            leaf_size: 32,
            eta: 2.0,
            solver: SolverSpec::ScalarJacobi,
        }
    }
}

impl CompressionSpec {
    /// Appends a canonical byte encoding of the spec to `w` (part of the
    /// `pdn-service` content hash): any compression-setting change
    /// changes the encoding bit-exactly.
    pub fn write_canonical(&self, w: &mut pdn_num::ByteWriter) {
        w.put_f64(self.tol);
        w.put_usize(self.leaf_size);
        w.put_f64(self.eta);
        self.solver.write_canonical(w);
    }

    /// Compression at the given certified tolerance, other settings at
    /// their defaults.
    pub fn with_tol(tol: f64) -> Self {
        CompressionSpec {
            tol,
            ..CompressionSpec::default()
        }
    }

    /// Switches the compressed extraction path to block CG with the
    /// hierarchical preconditioner ([`SolverSpec::BlockCg`]) at the
    /// default panel width (48 columns) and coarsened preconditioner
    /// clusters — the fastest measured configuration.
    pub fn with_block_solver(mut self) -> Self {
        self.solver = SolverSpec::BlockCg {
            panel: 48,
            coarsen: true,
        };
        self
    }

    /// Sets an explicit solver strategy.
    pub fn with_solver(mut self, solver: SolverSpec) -> Self {
        self.solver = solver;
        self
    }

    /// Checks the spec, returning a descriptive
    /// [`AssembleBemError::InvalidInput`] for out-of-domain fields.
    ///
    /// # Errors
    ///
    /// `tol` outside `(0, 1)` or non-finite, `leaf_size == 0`, a
    /// non-finite/non-positive `eta`, or a zero block-CG panel width are
    /// rejected.
    pub fn validate(&self) -> Result<(), AssembleBemError> {
        if !(self.tol.is_finite() && self.tol > 0.0 && self.tol < 1.0) {
            return Err(AssembleBemError::InvalidInput(format!(
                "compression tol must be finite and in (0, 1), got {}",
                self.tol
            )));
        }
        if self.leaf_size == 0 {
            return Err(AssembleBemError::InvalidInput(
                "compression leaf_size must be at least 1".into(),
            ));
        }
        if !(self.eta.is_finite() && self.eta > 0.0) {
            return Err(AssembleBemError::InvalidInput(format!(
                "compression eta must be finite and positive, got {}",
                self.eta
            )));
        }
        if let SolverSpec::BlockCg { panel, .. } = self.solver {
            if panel == 0 {
                return Err(AssembleBemError::InvalidInput(
                    "block-CG panel width must be at least 1".into(),
                ));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Cluster tree
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub(crate) struct ClusterNode {
    /// Range into the tree's permutation array.
    pub(crate) start: usize,
    pub(crate) end: usize,
    /// Bounding box (xmin, ymin, xmax, ymax) of the member points.
    pub(crate) bbox: [f64; 4],
    /// Child node ids (bisection), `None` for leaves.
    pub(crate) children: Option<(usize, usize)>,
}

impl ClusterNode {
    pub(crate) fn len(&self) -> usize {
        self.end - self.start
    }

    pub(crate) fn diameter(&self) -> f64 {
        let dx = self.bbox[2] - self.bbox[0];
        let dy = self.bbox[3] - self.bbox[1];
        (dx * dx + dy * dy).sqrt()
    }

    pub(crate) fn distance(&self, other: &ClusterNode) -> f64 {
        let dx = (other.bbox[0] - self.bbox[2])
            .max(self.bbox[0] - other.bbox[2])
            .max(0.0);
        let dy = (other.bbox[1] - self.bbox[3])
            .max(self.bbox[1] - other.bbox[3])
            .max(0.0);
        (dx * dx + dy * dy).sqrt()
    }
}

#[derive(Debug, Clone)]
pub(crate) struct ClusterTree {
    /// Original point indices, permuted so every node owns a contiguous
    /// range.
    pub(crate) perm: Vec<usize>,
    pub(crate) nodes: Vec<ClusterNode>,
    /// The `leaf_size` the tree was built with (coarsening cap anchor).
    pub(crate) leaf_size: usize,
}

impl ClusterTree {
    /// Builds the tree by recursive median bisection along the longest
    /// bounding-box axis. Splits are index-tie-broken, so the tree is a
    /// pure function of the point set.
    pub(crate) fn build(points: &[(f64, f64)], leaf_size: usize) -> ClusterTree {
        let mut tree = ClusterTree {
            perm: (0..points.len()).collect(),
            nodes: Vec::new(),
            leaf_size,
        };
        if !points.is_empty() {
            tree.split(points, 0, points.len(), leaf_size);
        }
        tree
    }

    fn bbox(&self, points: &[(f64, f64)], start: usize, end: usize) -> [f64; 4] {
        let mut b = [
            f64::INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NEG_INFINITY,
        ];
        for &idx in &self.perm[start..end] {
            let (x, y) = points[idx];
            b[0] = b[0].min(x);
            b[1] = b[1].min(y);
            b[2] = b[2].max(x);
            b[3] = b[3].max(y);
        }
        b
    }

    /// Creates the node covering `perm[start..end]` and recursively
    /// bisects it; returns the node id.
    fn split(
        &mut self,
        points: &[(f64, f64)],
        start: usize,
        end: usize,
        leaf_size: usize,
    ) -> usize {
        let bbox = self.bbox(points, start, end);
        let id = self.nodes.len();
        self.nodes.push(ClusterNode {
            start,
            end,
            bbox,
            children: None,
        });
        if end - start > leaf_size {
            // Median split along the longer bbox edge (x on ties).
            let use_y = (bbox[3] - bbox[1]) > (bbox[2] - bbox[0]);
            self.perm[start..end].sort_by(|&a, &b| {
                let ka = if use_y { points[a].1 } else { points[a].0 };
                let kb = if use_y { points[b].1 } else { points[b].0 };
                ka.partial_cmp(&kb).expect("finite centers").then(a.cmp(&b))
            });
            let mid = start + (end - start) / 2;
            let left = self.split(points, start, mid, leaf_size);
            let right = self.split(points, mid, end, leaf_size);
            self.nodes[id].children = Some((left, right));
        }
        id
    }

    /// Collects the disjoint index clusters used for block-Jacobi
    /// preconditioning: the tree leaves, or — `coarsen`ed — the maximal
    /// tree nodes of at most [`COARSEN_FACTOR`]`·leaf_size` points
    /// (larger exact preconditioner blocks cut CG iterations; past this
    /// size their apply cost overtakes the matvec they precondition).
    /// Left-to-right recursion order, so the partition is a pure
    /// function of the tree.
    pub(crate) fn clusters(&self, coarsen: bool) -> Vec<Vec<usize>> {
        let cap = if coarsen {
            COARSEN_FACTOR * self.leaf_size
        } else {
            0
        };
        fn walk(tree: &ClusterTree, id: usize, cap: usize, out: &mut Vec<Vec<usize>>) {
            let node = &tree.nodes[id];
            match node.children {
                Some((l, r)) if node.len() > cap => {
                    walk(tree, l, cap, out);
                    walk(tree, r, cap, out);
                }
                _ => out.push(tree.perm[node.start..node.end].to_vec()),
            }
        }
        let mut out = Vec::new();
        if !self.nodes.is_empty() {
            walk(self, 0, cap, &mut out);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Block partition and the compressed kernel
// ---------------------------------------------------------------------------

/// One planned block of the symmetric partition (upper triangle only:
/// the row range starts at or before the column range).
#[derive(Debug, Clone)]
struct PlannedBlock {
    rows: Vec<usize>,
    cols: Vec<usize>,
    /// Row range == column range (a diagonal node block).
    diagonal: bool,
    /// Low-rank candidate (admissible pair) vs near-field dense.
    admissible: bool,
}

#[derive(Debug, Clone)]
enum BlockData {
    Dense(Matrix<f64>),
    LowRank(LowRank),
}

#[derive(Debug, Clone)]
struct Block {
    rows: Vec<usize>,
    cols: Vec<usize>,
    diagonal: bool,
    data: BlockData,
}

/// Aggregate diagnostics of one compressed kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressionStats {
    /// Total blocks in the partition.
    pub blocks: usize,
    /// Blocks stored in low-rank form.
    pub low_rank_blocks: usize,
    /// Largest low-rank block rank.
    pub max_rank: usize,
    /// Bytes held by the compressed representation.
    pub stored_bytes: usize,
    /// Bytes a dense `n × n` matrix would hold.
    pub dense_bytes: usize,
}

/// Batched kernel-row generator: `row_gen(i, cols, out)` must fill
/// `out[t] = entry(i, cols[t])` bit-for-bit for the kernel being
/// compressed. Assembly passes lane-vectorized panel-integral batches
/// through this signature.
pub type RowGen<'a> = dyn Fn(usize, &[usize], &mut [f64]) + Sync + 'a;

/// A symmetric kernel matrix in hierarchically compressed form.
///
/// Built by [`CompressedKernel::build`] from a point set and an exact
/// entry generator; supports matvecs, CG solves, and byte accounting
/// without ever materializing the dense matrix.
#[derive(Debug, Clone)]
pub struct CompressedKernel {
    n: usize,
    diag: Vec<f64>,
    blocks: Vec<Block>,
    stats: CompressionStats,
    tree: ClusterTree,
}

/// Plans the symmetric block partition by simultaneous descent from the
/// root pair. Off-diagonal pairs keep `rows.start < cols.start`, so each
/// unordered pair appears exactly once; the recursion order (and with it
/// the block list) is fixed.
fn plan_blocks(tree: &ClusterTree, spec: &CompressionSpec) -> Vec<PlannedBlock> {
    let mut plan = Vec::new();
    if tree.nodes.is_empty() {
        return plan;
    }
    fn indices(tree: &ClusterTree, node: usize) -> Vec<usize> {
        let n = &tree.nodes[node];
        tree.perm[n.start..n.end].to_vec()
    }
    fn descend(
        tree: &ClusterTree,
        spec: &CompressionSpec,
        a: usize,
        b: usize,
        out: &mut Vec<PlannedBlock>,
    ) {
        let (na, nb) = (&tree.nodes[a], &tree.nodes[b]);
        if a == b {
            match na.children {
                None => out.push(PlannedBlock {
                    rows: indices(tree, a),
                    cols: indices(tree, a),
                    diagonal: true,
                    admissible: false,
                }),
                Some((l, r)) => {
                    descend(tree, spec, l, l, out);
                    descend(tree, spec, l, r, out);
                    descend(tree, spec, r, r, out);
                }
            }
            return;
        }
        let dist = na.distance(nb);
        if dist > 0.0 && na.diameter().min(nb.diameter()) <= spec.eta * dist {
            out.push(PlannedBlock {
                rows: indices(tree, a),
                cols: indices(tree, b),
                diagonal: false,
                admissible: true,
            });
            return;
        }
        match (na.children, nb.children) {
            (None, None) => out.push(PlannedBlock {
                rows: indices(tree, a),
                cols: indices(tree, b),
                diagonal: false,
                admissible: false,
            }),
            (Some((l, r)), None) => {
                descend(tree, spec, l, b, out);
                descend(tree, spec, r, b, out);
            }
            (None, Some((l, r))) => {
                descend(tree, spec, a, l, out);
                descend(tree, spec, a, r, out);
            }
            (Some((al, ar)), Some((bl, br))) => {
                if na.len() >= nb.len() {
                    descend(tree, spec, al, b, out);
                    descend(tree, spec, ar, b, out);
                } else {
                    descend(tree, spec, a, bl, out);
                    descend(tree, spec, a, br, out);
                }
            }
        }
    }
    descend(tree, spec, 0, 0, &mut plan);
    plan
}

impl CompressedKernel {
    /// Builds the compressed kernel for the symmetric matrix whose entry
    /// `(i, j)` is `entry(i, j)` and whose index `i` sits at geometric
    /// position `points[i]`.
    ///
    /// `entry` must be symmetric (callers canonicalize index order); it
    /// is invoked from worker threads, each block serially, in a fixed
    /// block order — the result is bit-identical for any `PDN_THREADS`.
    ///
    /// # Errors
    ///
    /// [`AssembleBemError::InvalidInput`] for an invalid `spec`, and
    /// [`AssembleBemError::NumericalBreakdown`] when a compressed block
    /// fails its a-posteriori certification against the exact kernel.
    pub fn build(
        points: &[(f64, f64)],
        spec: &CompressionSpec,
        entry: &(dyn Fn(usize, usize) -> f64 + Sync),
    ) -> Result<CompressedKernel, AssembleBemError> {
        let row_gen = |i: usize, cols: &[usize], out: &mut [f64]| {
            for (t, &j) in cols.iter().enumerate() {
                out[t] = entry(i, j);
            }
        };
        Self::build_with_rows(points, spec, &row_gen)
    }

    /// [`build`](Self::build) with an explicit batched row generator:
    /// `row_gen(i, cols, out)` must fill `out[t] = entry(i, cols[t])`
    /// bit-for-bit. The BEM assembly passes lane-vectorized panel-integral
    /// batches here; block assembly then generates whole rows per kernel
    /// call (near-field dense fill, ACA pivot rows, and — via the
    /// symmetry of `entry` — ACA pivot columns).
    ///
    /// # Errors
    ///
    /// Same contract as [`build`](Self::build).
    pub fn build_with_rows(
        points: &[(f64, f64)],
        spec: &CompressionSpec,
        row_gen: &RowGen<'_>,
    ) -> Result<CompressedKernel, AssembleBemError> {
        spec.validate()?;
        let n = points.len();
        let tree = ClusterTree::build(points, spec.leaf_size);
        let plan = plan_blocks(&tree, spec);
        let blocks: Vec<Block> = parallel::try_par_map_indexed(plan.len(), |bi| {
            let pb = &plan[bi];
            Ok(Block {
                data: assemble_block(pb, bi, spec, row_gen)?,
                rows: pb.rows.clone(),
                cols: pb.cols.clone(),
                diagonal: pb.diagonal,
            })
        })?;
        // The diagonal lives entirely in diagonal leaf blocks.
        let mut diag = vec![0.0; n];
        for b in &blocks {
            if b.diagonal {
                if let BlockData::Dense(m) = &b.data {
                    for (k, &i) in b.rows.iter().enumerate() {
                        diag[i] = m[(k, k)];
                    }
                }
            }
        }
        let mut stats = CompressionStats {
            blocks: blocks.len(),
            low_rank_blocks: 0,
            max_rank: 0,
            stored_bytes: 8 * n,
            dense_bytes: 8 * n * n,
        };
        for b in &blocks {
            match &b.data {
                BlockData::Dense(m) => stats.stored_bytes += 8 * m.nrows() * m.ncols(),
                BlockData::LowRank(lr) => {
                    stats.low_rank_blocks += 1;
                    stats.max_rank = stats.max_rank.max(lr.rank());
                    stats.stored_bytes += lr.stored_bytes();
                }
            }
        }
        Ok(CompressedKernel {
            n,
            diag,
            blocks,
            stats,
            tree,
        })
    }

    /// Operator dimension.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the kernel is empty (zero-dimensional).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The matrix diagonal (exact — diagonals always land in dense
    /// near-field blocks).
    pub fn diag(&self) -> &[f64] {
        &self.diag
    }

    /// Block/rank/byte diagnostics.
    pub fn stats(&self) -> CompressionStats {
        self.stats
    }

    /// `y = A·x`, applying each block (and, off-diagonal, its mirror)
    /// in the fixed block order.
    ///
    /// # Panics
    ///
    /// Panics when `x` does not match the operator dimension.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "matvec dimension mismatch");
        KERNEL_MATVECS.fetch_add(1, Ordering::Relaxed);
        let mut y = vec![0.0; self.n];
        for b in &self.blocks {
            match &b.data {
                BlockData::Dense(m) => {
                    for (a, &i) in b.rows.iter().enumerate() {
                        let mut acc = 0.0;
                        for (c, &j) in b.cols.iter().enumerate() {
                            acc += m[(a, c)] * x[j];
                        }
                        y[i] += acc;
                    }
                    if !b.diagonal {
                        for (c, &j) in b.cols.iter().enumerate() {
                            let mut acc = 0.0;
                            for (a, &i) in b.rows.iter().enumerate() {
                                acc += m[(a, c)] * x[i];
                            }
                            y[j] += acc;
                        }
                    }
                }
                BlockData::LowRank(lr) => {
                    let xs: Vec<f64> = b.cols.iter().map(|&j| x[j]).collect();
                    let mut ys = vec![0.0; b.rows.len()];
                    lr.matvec_into(&xs, 1.0, &mut ys);
                    for (a, &i) in b.rows.iter().enumerate() {
                        y[i] += ys[a];
                    }
                    let xt: Vec<f64> = b.rows.iter().map(|&i| x[i]).collect();
                    let mut yt = vec![0.0; b.cols.len()];
                    lr.matvec_transpose_into(&xt, 1.0, &mut yt);
                    for (c, &j) in b.cols.iter().enumerate() {
                        y[j] += yt[c];
                    }
                }
            }
        }
        y
    }

    /// Solves `A·x = b` by Jacobi-preconditioned CG on the compressed
    /// operator (the kernels are SPD).
    ///
    /// # Errors
    ///
    /// [`AssembleBemError::NumericalBreakdown`] when CG stalls or breaks
    /// down — a compressed solve never silently returns an unconverged
    /// answer.
    pub fn solve(
        &self,
        b: &[f64],
        tol: f64,
        max_iter: usize,
    ) -> Result<Vec<f64>, AssembleBemError> {
        cg::solve_spd_op(self.n, &|x| self.matvec(x), &self.diag, b, tol, max_iter).map_err(|e| {
            AssembleBemError::NumericalBreakdown(format!("compressed-kernel CG solve failed: {e}"))
        })
    }

    /// Blocked matvec: applies the operator to every column at once,
    /// streaming the stored blocks **once per column chunk** instead of
    /// once per column — each block's data stays cache-hot while it is
    /// applied to the whole chunk, so kernel memory traffic drops by
    /// roughly the chunk width against a column-at-a-time sweep.
    ///
    /// Chunks have a fixed width (independent of the worker count) and
    /// fan across [`pdn_num::parallel`] workers in index order; within a
    /// chunk, every column's accumulation order is the block order — the
    /// serial [`CompressedKernel::matvec`] order — so each result column
    /// is bit-identical to a serial sweep for any `PDN_THREADS`.
    ///
    /// # Panics
    ///
    /// Panics when any column does not match the operator dimension.
    pub fn matvec_block(&self, cols: &[Vec<f64>]) -> Vec<Vec<f64>> {
        for x in cols {
            assert_eq!(x.len(), self.n, "matvec dimension mismatch");
        }
        KERNEL_MATVECS.fetch_add(cols.len(), Ordering::Relaxed);
        let chunks = cols.len().div_ceil(MATVEC_CHUNK);
        let outs = parallel::par_map_indexed(chunks, |c| {
            let lo = c * MATVEC_CHUNK;
            let hi = (lo + MATVEC_CHUNK).min(cols.len());
            self.matvec_panel(&cols[lo..hi])
        });
        outs.into_iter().flatten().collect()
    }

    /// One blocked sweep: every stored block is applied to the whole
    /// chunk before the next block is touched, with the chunk held in an
    /// interleaved panel layout (`x[j·w + q]` is column `q`'s entry `j`)
    /// so each kernel coefficient and index is loaded **once** per chunk
    /// and multiplied across unit-stride panel lanes. Per column the
    /// floating-point arithmetic is exactly the serial
    /// [`CompressedKernel::matvec`] sequence — same block order, same
    /// accumulation order — so the results are bit-identical to serial
    /// column sweeps; only the memory access pattern changes.
    fn matvec_panel(&self, cols: &[Vec<f64>]) -> Vec<Vec<f64>> {
        // The panel stride is the compile-time chunk width, with unused
        // lanes held at zero on a short tail chunk: every inner loop
        // then has a constant trip count of `MATVEC_CHUNK` independent
        // lanes, which vectorizes without any reassociation — lane
        // arithmetic stays the exact serial sequence, and the zero
        // lanes never feed a live column.
        const W: usize = MATVEC_CHUNK;
        let w = cols.len();
        debug_assert!(w <= W);
        let mut xp = vec![0.0; self.n * W];
        for (q, x) in cols.iter().enumerate() {
            for (j, &v) in x.iter().enumerate() {
                xp[j * W + q] = v;
            }
        }
        let mut yp = vec![0.0; self.n * W];
        let mut acc = [0.0f64; W];
        let mut scratch = Vec::new();
        for b in &self.blocks {
            match &b.data {
                BlockData::Dense(m) => {
                    for (a, &i) in b.rows.iter().enumerate() {
                        acc.fill(0.0);
                        for (c, &j) in b.cols.iter().enumerate() {
                            let mv = m[(a, c)];
                            for (aq, xq) in acc.iter_mut().zip(&xp[j * W..(j + 1) * W]) {
                                *aq += mv * xq;
                            }
                        }
                        for (yq, aq) in yp[i * W..(i + 1) * W].iter_mut().zip(&acc) {
                            *yq += aq;
                        }
                    }
                    if !b.diagonal {
                        for (c, &j) in b.cols.iter().enumerate() {
                            acc.fill(0.0);
                            for (a, &i) in b.rows.iter().enumerate() {
                                let mv = m[(a, c)];
                                for (aq, xq) in acc.iter_mut().zip(&xp[i * W..(i + 1) * W]) {
                                    *aq += mv * xq;
                                }
                            }
                            for (yq, aq) in yp[j * W..(j + 1) * W].iter_mut().zip(&acc) {
                                *yq += aq;
                            }
                        }
                    }
                }
                BlockData::LowRank(lr) => {
                    let (nr, nc) = (b.rows.len(), b.cols.len());
                    scratch.clear();
                    scratch.resize(2 * (nr + nc) * W, 0.0);
                    let (xs, rest) = scratch.split_at_mut(nc * W);
                    let (yr, rest) = rest.split_at_mut(nr * W);
                    let (xt, yt) = rest.split_at_mut(nr * W);
                    for (c, &j) in b.cols.iter().enumerate() {
                        xs[c * W..(c + 1) * W].copy_from_slice(&xp[j * W..(j + 1) * W]);
                    }
                    lr.matvec_panel_into(xs, W, 1.0, yr);
                    for (a, &i) in b.rows.iter().enumerate() {
                        for (yq, vq) in yp[i * W..(i + 1) * W]
                            .iter_mut()
                            .zip(&yr[a * W..(a + 1) * W])
                        {
                            *yq += vq;
                        }
                    }
                    for (a, &i) in b.rows.iter().enumerate() {
                        xt[a * W..(a + 1) * W].copy_from_slice(&xp[i * W..(i + 1) * W]);
                    }
                    lr.matvec_transpose_panel_into(xt, W, 1.0, yt);
                    for (c, &j) in b.cols.iter().enumerate() {
                        for (yq, vq) in yp[j * W..(j + 1) * W]
                            .iter_mut()
                            .zip(&yt[c * W..(c + 1) * W])
                        {
                            *yq += vq;
                        }
                    }
                }
            }
        }
        (0..w)
            .map(|q| (0..self.n).map(|i| yp[i * W + q]).collect())
            .collect()
    }

    /// The disjoint cluster partition backing the hierarchical
    /// preconditioner: tree leaves, or (with `coarsen`) the maximal
    /// tree nodes of at most 8× the leaf size.
    pub fn leaf_clusters(&self, coarsen: bool) -> Vec<Vec<usize>> {
        self.tree.clusters(coarsen)
    }

    /// Materializes the dense restrictions `A[c, c]` for every cluster
    /// of a disjoint partition, in one pass over the stored blocks.
    fn cluster_restrictions(&self, clusters: &[Vec<usize>]) -> Vec<Matrix<f64>> {
        // index -> (cluster id, position within the cluster)
        let mut of: Vec<Option<(usize, usize)>> = vec![None; self.n];
        for (ci, cl) in clusters.iter().enumerate() {
            for (k, &i) in cl.iter().enumerate() {
                of[i] = Some((ci, k));
            }
        }
        let mut mats: Vec<Matrix<f64>> = clusters
            .iter()
            .map(|c| Matrix::zeros(c.len(), c.len()))
            .collect();
        for b in &self.blocks {
            match &b.data {
                BlockData::Dense(m) => {
                    for (a, &i) in b.rows.iter().enumerate() {
                        let Some((ci, pi)) = of[i] else { continue };
                        for (c, &j) in b.cols.iter().enumerate() {
                            if let Some((cj, pj)) = of[j] {
                                if ci == cj {
                                    let v = m[(a, c)];
                                    mats[ci][(pi, pj)] = v;
                                    if !b.diagonal {
                                        mats[ci][(pj, pi)] = v;
                                    }
                                }
                            }
                        }
                    }
                }
                BlockData::LowRank(lr) => {
                    // Admissible (well-separated) pairs almost never land
                    // inside one cluster; test membership before paying
                    // per-entry reconstruction.
                    let row_cl: Vec<(usize, usize, usize)> = b
                        .rows
                        .iter()
                        .enumerate()
                        .filter_map(|(a, &i)| of[i].map(|(ci, pi)| (ci, pi, a)))
                        .collect();
                    if row_cl.is_empty() {
                        continue;
                    }
                    for (c, &j) in b.cols.iter().enumerate() {
                        let Some((cj, pj)) = of[j] else { continue };
                        for &(ci, pi, a) in &row_cl {
                            if ci == cj {
                                let v = lr.entry(a, c);
                                mats[ci][(pi, pj)] = v;
                                if !b.diagonal {
                                    mats[ci][(pj, pi)] = v;
                                }
                            }
                        }
                    }
                }
            }
        }
        mats
    }

    /// Builds the hierarchical block-Jacobi preconditioner for this
    /// kernel: exact Cholesky factors of the dense restrictions over the
    /// [`CompressedKernel::leaf_clusters`] partition.
    ///
    /// # Errors
    ///
    /// [`AssembleBemError::NumericalBreakdown`] when a cluster
    /// restriction of the claimed-SPD kernel fails to factor.
    pub fn block_jacobi(
        &self,
        coarsen: bool,
    ) -> Result<BlockJacobiPreconditioner, AssembleBemError> {
        let clusters = self.leaf_clusters(coarsen);
        let mats = self.cluster_restrictions(&clusters);
        BlockJacobiPreconditioner::from_blocks(self.n, clusters.into_iter().zip(mats).collect())
            .map_err(|e| {
                AssembleBemError::NumericalBreakdown(format!(
                    "hierarchical preconditioner construction failed: {e}"
                ))
            })
    }

    /// Solves `A·X = B` for a panel of columns by block CG
    /// ([`pdn_num::cg::solve_spd_block`]) under the given
    /// preconditioner.
    ///
    /// # Errors
    ///
    /// [`AssembleBemError::NumericalBreakdown`] when the block iteration
    /// stalls or breaks down.
    pub fn solve_block(
        &self,
        b: &[Vec<f64>],
        pc: &dyn Preconditioner,
        tol: f64,
        max_iter: usize,
    ) -> Result<Vec<Vec<f64>>, AssembleBemError> {
        cg::solve_spd_block(
            self.n,
            &|cols| self.matvec_block(cols),
            pc,
            b,
            tol,
            max_iter,
        )
        .map_err(|e| {
            AssembleBemError::NumericalBreakdown(format!(
                "compressed-kernel block-CG solve failed: {e}"
            ))
        })
    }

    /// Densifies the operator — diagnostics and small-problem tests only.
    pub fn to_dense(&self) -> Matrix<f64> {
        let mut out = Matrix::zeros(self.n, self.n);
        for b in &self.blocks {
            for (a, &i) in b.rows.iter().enumerate() {
                for (c, &j) in b.cols.iter().enumerate() {
                    let v = match &b.data {
                        BlockData::Dense(m) => m[(a, c)],
                        BlockData::LowRank(lr) => lr.entry(a, c),
                    };
                    out[(i, j)] = v;
                    if !b.diagonal {
                        out[(j, i)] = v;
                    }
                }
            }
        }
        out
    }

    /// Bytes held by the compressed representation.
    pub fn stored_bytes(&self) -> usize {
        self.stats.stored_bytes
    }

    /// Bytes the dense equivalent would hold.
    pub fn dense_bytes(&self) -> usize {
        self.stats.dense_bytes
    }
}

/// Assembles one planned block: dense near-field entries, or ACA +
/// recompression + certification for an admissible pair. `ordinal` seeds
/// the certification row sampler. Rows are generated through `row_gen`
/// (the batched fast path; bit-identical to `entry` by contract); columns
/// come from `row_gen` on the transpose, valid because `entry` is
/// symmetric.
fn assemble_block(
    pb: &PlannedBlock,
    ordinal: usize,
    spec: &CompressionSpec,
    row_gen: &RowGen<'_>,
) -> Result<BlockData, AssembleBemError> {
    let (r, c) = (pb.rows.len(), pb.cols.len());
    let dense = || -> BlockData {
        let mut m = Matrix::zeros(r, c);
        for a in 0..r {
            row_gen(pb.rows[a], &pb.cols, m.row_mut(a));
        }
        BlockData::Dense(m)
    };
    if !pb.admissible {
        return Ok(dense());
    }
    let row_fn = |a: usize| -> Vec<f64> {
        let mut v = vec![0.0; c];
        row_gen(pb.rows[a], &pb.cols, &mut v);
        v
    };
    let col_fn = |b: usize| -> Vec<f64> {
        let mut v = vec![0.0; r];
        row_gen(pb.cols[b], &pb.rows, &mut v);
        v
    };
    let lr = aca(r, c, &row_fn, &col_fn, spec.tol / ACA_MARGIN, r.min(c))
        .recompress(spec.tol / RECOMPRESS_MARGIN);
    // Not worth keeping in factored form: store the exact dense block.
    if lr.stored_bytes() >= 8 * r * c {
        return Ok(dense());
    }
    // A-posteriori certification: sampled rows of the factorization must
    // match the exact kernel to `tol` relative to the block norm.
    let frob = lr.frobenius_norm();
    let mut rng = 0x9e37_79b9_7f4a_7c15u64 ^ (ordinal as u64).wrapping_mul(0xd134_2543_de82_ef95);
    for _ in 0..CERT_ROWS.min(r) {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let a = (rng >> 33) as usize % r;
        let exact = row_fn(a);
        let approx = lr.row(a);
        let err = exact
            .iter()
            .zip(&approx)
            .map(|(e, p)| (e - p) * (e - p))
            .sum::<f64>()
            .sqrt();
        let row_norm = exact.iter().map(|e| e * e).sum::<f64>().sqrt();
        let scale = frob.max(row_norm);
        if err > spec.tol * scale {
            return Err(AssembleBemError::NumericalBreakdown(format!(
                "ACA certification failed on a {r}x{c} block (rank {}): sampled row error \
                 {err:.3e} exceeds tol {:.1e} x block scale {scale:.3e}",
                lr.rank(),
                spec.tol
            )));
        }
    }
    Ok(BlockData::LowRank(lr))
}

// ---------------------------------------------------------------------------
// Link (two-direction) kernels and the full compressed kernel set
// ---------------------------------------------------------------------------

/// The partial-inductance kernel over mesh links, compressed per current
/// direction.
///
/// Orthogonal links have exactly zero quasi-static mutual inductance, so
/// `L` is block diagonal in the X/Y link split; each direction's block
/// is a smooth single-kernel interaction compressed by its own
/// [`CompressedKernel`].
#[derive(Debug, Clone)]
pub struct CompressedLinkKernel {
    m: usize,
    x_idx: Vec<usize>,
    y_idx: Vec<usize>,
    x: CompressedKernel,
    y: CompressedKernel,
    diag: Vec<f64>,
}

impl CompressedLinkKernel {
    /// Builds the two per-direction compressed kernels. `entry` takes
    /// **global** link indices and must return exactly zero for
    /// cross-direction pairs (it is only invoked within a direction).
    ///
    /// # Errors
    ///
    /// Same contract as [`CompressedKernel::build`].
    pub fn build(
        centers: &[(f64, f64)],
        directions: &[LinkDirection],
        spec: &CompressionSpec,
        entry: &(dyn Fn(usize, usize) -> f64 + Sync),
    ) -> Result<CompressedLinkKernel, AssembleBemError> {
        let row_gen = |i: usize, cols: &[usize], out: &mut [f64]| {
            for (t, &j) in cols.iter().enumerate() {
                out[t] = entry(i, j);
            }
        };
        Self::build_with_rows(centers, directions, spec, &row_gen)
    }

    /// [`build`](Self::build) with a batched row generator over **global**
    /// link indices: `row_gen(i, cols, out)` fills `out[t] = entry(i,
    /// cols[t])`. Only same-direction index pairs are ever requested.
    ///
    /// # Errors
    ///
    /// Same contract as [`CompressedKernel::build`].
    pub fn build_with_rows(
        centers: &[(f64, f64)],
        directions: &[LinkDirection],
        spec: &CompressionSpec,
        row_gen: &RowGen<'_>,
    ) -> Result<CompressedLinkKernel, AssembleBemError> {
        assert_eq!(
            centers.len(),
            directions.len(),
            "center/direction length mismatch"
        );
        let m = centers.len();
        let x_idx: Vec<usize> = (0..m)
            .filter(|&i| directions[i] == LinkDirection::X)
            .collect();
        let y_idx: Vec<usize> = (0..m)
            .filter(|&i| directions[i] == LinkDirection::Y)
            .collect();
        let sub = |idx: &[usize]| -> Result<CompressedKernel, AssembleBemError> {
            let pts: Vec<(f64, f64)> = idx.iter().map(|&i| centers[i]).collect();
            let local = |a: usize, cols: &[usize], out: &mut [f64]| {
                let global: Vec<usize> = cols.iter().map(|&b| idx[b]).collect();
                row_gen(idx[a], &global, out);
            };
            CompressedKernel::build_with_rows(&pts, spec, &local)
        };
        let x = sub(&x_idx)?;
        let y = sub(&y_idx)?;
        let mut diag = vec![0.0; m];
        for (k, &i) in x_idx.iter().enumerate() {
            diag[i] = x.diag()[k];
        }
        for (k, &i) in y_idx.iter().enumerate() {
            diag[i] = y.diag()[k];
        }
        Ok(CompressedLinkKernel {
            m,
            x_idx,
            y_idx,
            x,
            y,
            diag,
        })
    }

    /// Operator dimension (total links).
    pub fn len(&self) -> usize {
        self.m
    }

    /// Whether the kernel has no links.
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// The exact matrix diagonal over global link indices.
    pub fn diag(&self) -> &[f64] {
        &self.diag
    }

    /// `y = L·x` over global link indices.
    ///
    /// # Panics
    ///
    /// Panics when `x` does not match the link count.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.m, "matvec dimension mismatch");
        let mut y = vec![0.0; self.m];
        for (idx, k) in [(&self.x_idx, &self.x), (&self.y_idx, &self.y)] {
            let xs: Vec<f64> = idx.iter().map(|&i| x[i]).collect();
            let ys = k.matvec(&xs);
            for (a, &i) in idx.iter().enumerate() {
                y[i] += ys[a];
            }
        }
        y
    }

    /// Solves `L·x = b` by CG on the compressed operator.
    ///
    /// # Errors
    ///
    /// [`AssembleBemError::NumericalBreakdown`] when CG fails.
    pub fn solve(
        &self,
        b: &[f64],
        tol: f64,
        max_iter: usize,
    ) -> Result<Vec<f64>, AssembleBemError> {
        cg::solve_spd_op(self.m, &|x| self.matvec(x), &self.diag, b, tol, max_iter).map_err(|e| {
            AssembleBemError::NumericalBreakdown(format!("compressed-L CG solve failed: {e}"))
        })
    }

    /// Blocked matvec over global link indices: the X- and Y-direction
    /// sub-kernels each run one [`CompressedKernel::matvec_block`] over
    /// the whole panel, so kernel memory streams once per column chunk
    /// instead of once per column. Per column the arithmetic (X kernel,
    /// then Y kernel, gathers and scatters in index order) is exactly
    /// the serial [`CompressedLinkKernel::matvec`] arithmetic, so each
    /// result column is bit-identical to a serial sweep for any
    /// `PDN_THREADS`.
    ///
    /// # Panics
    ///
    /// Panics when any column does not match the link count.
    pub fn matvec_block(&self, cols: &[Vec<f64>]) -> Vec<Vec<f64>> {
        for x in cols {
            assert_eq!(x.len(), self.m, "matvec dimension mismatch");
        }
        let mut ys = vec![vec![0.0; self.m]; cols.len()];
        for (idx, k) in [(&self.x_idx, &self.x), (&self.y_idx, &self.y)] {
            let sub: Vec<Vec<f64>> = cols
                .iter()
                .map(|x| idx.iter().map(|&i| x[i]).collect())
                .collect();
            let outs = k.matvec_block(&sub);
            for (y, out) in ys.iter_mut().zip(&outs) {
                for (a, &i) in idx.iter().enumerate() {
                    y[i] += out[a];
                }
            }
        }
        ys
    }

    /// Builds the hierarchical block-Jacobi preconditioner over global
    /// link indices: the X-direction kernel's leaf clusters followed by
    /// the Y-direction's, each factored exactly. The direction split is
    /// itself block-diagonal (orthogonal mutuals are zero), so the
    /// combined partition respects the true operator structure.
    ///
    /// # Errors
    ///
    /// [`AssembleBemError::NumericalBreakdown`] when a cluster
    /// restriction fails to factor.
    pub fn block_jacobi(
        &self,
        coarsen: bool,
    ) -> Result<BlockJacobiPreconditioner, AssembleBemError> {
        let mut parts: Vec<(Vec<usize>, Matrix<f64>)> = Vec::new();
        for (idx, k) in [(&self.x_idx, &self.x), (&self.y_idx, &self.y)] {
            let clusters = k.leaf_clusters(coarsen);
            let mats = k.cluster_restrictions(&clusters);
            for (cl, m) in clusters.into_iter().zip(mats) {
                parts.push((cl.into_iter().map(|i| idx[i]).collect(), m));
            }
        }
        BlockJacobiPreconditioner::from_blocks(self.m, parts).map_err(|e| {
            AssembleBemError::NumericalBreakdown(format!(
                "hierarchical L preconditioner construction failed: {e}"
            ))
        })
    }

    /// Solves `L·X = B` for a panel of columns by block CG under the
    /// given preconditioner.
    ///
    /// # Errors
    ///
    /// [`AssembleBemError::NumericalBreakdown`] when the block iteration
    /// stalls or breaks down.
    pub fn solve_block(
        &self,
        b: &[Vec<f64>],
        pc: &dyn Preconditioner,
        tol: f64,
        max_iter: usize,
    ) -> Result<Vec<Vec<f64>>, AssembleBemError> {
        cg::solve_spd_block(
            self.m,
            &|cols| self.matvec_block(cols),
            pc,
            b,
            tol,
            max_iter,
        )
        .map_err(|e| {
            AssembleBemError::NumericalBreakdown(format!("compressed-L block-CG solve failed: {e}"))
        })
    }

    /// Densifies the operator — diagnostics and small-problem tests only.
    pub fn to_dense(&self) -> Matrix<f64> {
        let mut out = Matrix::zeros(self.m, self.m);
        for (idx, k) in [(&self.x_idx, &self.x), (&self.y_idx, &self.y)] {
            let d = k.to_dense();
            for (a, &i) in idx.iter().enumerate() {
                for (b, &j) in idx.iter().enumerate() {
                    out[(i, j)] = d[(a, b)];
                }
            }
        }
        out
    }

    /// Bytes held by both per-direction compressed kernels.
    pub fn stored_bytes(&self) -> usize {
        self.x.stored_bytes() + self.y.stored_bytes() + 8 * self.m
    }

    /// Bytes the dense `m × m` equivalent would hold.
    pub fn dense_bytes(&self) -> usize {
        8 * self.m * self.m
    }

    /// Per-direction diagnostics: `(X stats, Y stats)`.
    pub fn stats(&self) -> (CompressionStats, CompressionStats) {
        (self.x.stats(), self.y.stats())
    }
}

/// The compressed `P` and `L` kernels of one assembled BEM system.
#[derive(Debug, Clone)]
pub struct CompressedKernels {
    /// Compressed potential-coefficient kernel over cells (1/F).
    pub p: CompressedKernel,
    /// Compressed partial-inductance kernel over links (H).
    pub l: CompressedLinkKernel,
    /// The spec both kernels were built (and certified) with.
    pub spec: CompressionSpec,
}

impl CompressedKernels {
    /// Bytes held by the compressed kernel set.
    pub fn stored_bytes(&self) -> usize {
        self.p.stored_bytes() + self.l.stored_bytes()
    }

    /// Bytes the dense `P` + `C` + `L` storage of the uncompressed
    /// system would hold (two `n × n` and one `m × m` matrices).
    pub fn dense_bytes(&self) -> usize {
        2 * self.p.dense_bytes() + self.l.dense_bytes()
    }
}

/// Whether `PDN_ACA_STATS=1` diagnostics are enabled.
fn aca_stats_enabled() -> bool {
    std::env::var("PDN_ACA_STATS").as_deref() == Ok("1")
}

fn emit_kernel_stats(label: &str, n: usize, s: CompressionStats) {
    eprintln!(
        "[pdn-aca] {label}: n={n} blocks={} low_rank={} max_rank={} stored={:.2} MB dense={:.2} MB ({:.1}x)",
        s.blocks,
        s.low_rank_blocks,
        s.max_rank,
        s.stored_bytes as f64 / 1e6,
        s.dense_bytes as f64 / 1e6,
        s.dense_bytes as f64 / s.stored_bytes.max(1) as f64,
    );
}

/// Assembles the compressed `P` and `L` kernels plus the link
/// resistances for a meshed plane — the compressed counterpart of
/// [`crate::assembly::assemble_matrices`], entry-compatible with it: the
/// kernel generator reproduces the dense entry formulas bit-for-bit (a
/// fully inadmissible plan stores exactly the dense matrices).
///
/// # Errors
///
/// [`AssembleBemError::EmptyMesh`] for an empty mesh,
/// [`AssembleBemError::InvalidInput`] for an invalid spec, and
/// [`AssembleBemError::NumericalBreakdown`] when certification fails.
pub fn assemble_compressed(
    mesh: &PlaneMesh,
    pair: &PlanePair,
    zs: &SurfaceImpedance,
    opts: &BemOptions,
    spec: &CompressionSpec,
) -> Result<(CompressedKernels, Vec<f64>), AssembleBemError> {
    spec.validate()?;
    let n = mesh.cell_count();
    if n == 0 {
        return Err(AssembleBemError::EmptyMesh);
    }
    let g_phi = scalar_kernel(pair, opts);
    let g_a = LayeredKernel::vector_potential(pair.separation);
    let cell = Rectangle::new(mesh.dx(), mesh.dy());
    let area = mesh.cell_area();
    let quad = match opts.testing {
        Testing::PointMatching => None,
        Testing::Galerkin { order } => Some(GaussLegendre::new(order.max(2))),
    };

    // Entries are canonicalized to (lo, hi) index order so the generator
    // is symmetric by construction and every evaluation matches the
    // upper-triangle orientation of the dense assembly loops exactly.
    // Rows are generated through the lane-batched panel kernels; per
    // element they are bit-identical to the scalar entry closures this
    // path used to pass.
    let centers = mesh.cell_centers();
    let p_row = |i: usize, cols: &[usize], out: &mut [f64]| {
        let mut ox = Vec::with_capacity(cols.len());
        let mut oy = Vec::with_capacity(cols.len());
        for &j in cols {
            let (a, b) = if i <= j { (i, j) } else { (j, i) };
            ox.push(centers[a].x - centers[b].x);
            oy.push(centers[a].y - centers[b].y);
        }
        kernel_row(&g_phi, &ox, &oy, cell, &quad, out);
        for v in out.iter_mut() {
            *v /= area;
        }
    };
    let cell_points: Vec<(f64, f64)> = centers.iter().map(|c| (c.x, c.y)).collect();
    let p = CompressedKernel::build_with_rows(&cell_points, spec, &p_row)?;

    let links = mesh.links();
    let l_row = |i: usize, cols: &[usize], out: &mut [f64]| {
        let w = match links[i].direction {
            LinkDirection::X => mesh.dy(),
            LinkDirection::Y => mesh.dx(),
        };
        let mut ox = Vec::with_capacity(cols.len());
        let mut oy = Vec::with_capacity(cols.len());
        let mut keep = Vec::with_capacity(cols.len());
        for (t, &j) in cols.iter().enumerate() {
            let (a, b) = if i <= j { (i, j) } else { (j, i) };
            if links[a].direction != links[b].direction {
                continue; // orthogonal currents: zero quasi-static mutual
            }
            keep.push(t);
            ox.push(links[a].center.x - links[b].center.x);
            oy.push(links[a].center.y - links[b].center.y);
        }
        let mut vals = vec![0.0; keep.len()];
        kernel_row(&g_a, &ox, &oy, cell, &quad, &mut vals);
        out.fill(0.0);
        for (k, &t) in keep.iter().enumerate() {
            let integral = vals[k] * area;
            out[t] = integral / (w * w);
        }
    };
    let link_points: Vec<(f64, f64)> = links.iter().map(|l| (l.center.x, l.center.y)).collect();
    let link_dirs: Vec<LinkDirection> = links.iter().map(|l| l.direction).collect();
    let l = CompressedLinkKernel::build_with_rows(&link_points, &link_dirs, spec, &l_row)?;

    let r_dc = zs.dc_resistance();
    let r_link: Vec<f64> = links
        .iter()
        .map(|lk| match lk.direction {
            LinkDirection::X => r_dc * mesh.dx() / mesh.dy(),
            LinkDirection::Y => r_dc * mesh.dy() / mesh.dx(),
        })
        .collect();

    if aca_stats_enabled() {
        emit_kernel_stats("P", n, p.stats());
        let (sx, sy) = l.stats();
        emit_kernel_stats("L/x", l.x_idx.len(), sx);
        emit_kernel_stats("L/y", l.y_idx.len(), sy);
    }
    Ok((CompressedKernels { p, l, spec: *spec }, r_link))
}

/// Compressed counterpart of
/// [`assemble_link_matrices`](crate::assemble_link_matrices): builds the
/// inductance of a standalone link set (sharded extraction's cut-link
/// stitch block) as a [`CompressedLinkKernel`] instead of a dense
/// matrix, with an optional per-link diagonal lumping term folded into
/// the generator so the certification also covers the lumped seam
/// compensation. Returns the kernel and the DC link resistances.
///
/// Entries use the exact panel-integral formulas of the dense
/// counterpart; `diag_lump` must be empty or one entry per link.
///
/// # Errors
///
/// Same contract as [`CompressedLinkKernel::build`].
///
/// # Panics
///
/// Panics when `diag_lump` is non-empty with a length other than
/// `links.len()`.
#[allow(clippy::too_many_arguments)]
pub fn compress_link_matrices(
    links: &[pdn_geom::mesh::Link],
    dx: f64,
    dy: f64,
    pair: &PlanePair,
    zs: &SurfaceImpedance,
    opts: &BemOptions,
    spec: &CompressionSpec,
    diag_lump: &[f64],
) -> Result<(CompressedLinkKernel, Vec<f64>), AssembleBemError> {
    spec.validate()?;
    assert!(
        diag_lump.is_empty() || diag_lump.len() == links.len(),
        "diag_lump must be empty or match the link count"
    );
    let g_a = LayeredKernel::vector_potential(pair.separation);
    let cell = Rectangle::new(dx, dy);
    let area = dx * dy;
    let quad = match opts.testing {
        Testing::PointMatching => None,
        Testing::Galerkin { order } => Some(GaussLegendre::new(order.max(2))),
    };
    let l_row = |i: usize, cols: &[usize], out: &mut [f64]| {
        let w = match links[i].direction {
            LinkDirection::X => dy,
            LinkDirection::Y => dx,
        };
        let mut ox = Vec::with_capacity(cols.len());
        let mut oy = Vec::with_capacity(cols.len());
        let mut keep = Vec::with_capacity(cols.len());
        for (t, &j) in cols.iter().enumerate() {
            let (a, b) = if i <= j { (i, j) } else { (j, i) };
            if links[a].direction != links[b].direction {
                continue; // orthogonal currents: zero quasi-static mutual
            }
            keep.push(t);
            ox.push(links[a].center.x - links[b].center.x);
            oy.push(links[a].center.y - links[b].center.y);
        }
        let mut vals = vec![0.0; keep.len()];
        kernel_row(&g_a, &ox, &oy, cell, &quad, &mut vals);
        out.fill(0.0);
        for (k, &t) in keep.iter().enumerate() {
            let j = cols[t];
            let lump = if i == j && !diag_lump.is_empty() {
                diag_lump[i]
            } else {
                0.0
            };
            let integral = vals[k] * area;
            out[t] = integral / (w * w) + lump;
        }
    };
    let link_points: Vec<(f64, f64)> = links.iter().map(|l| (l.center.x, l.center.y)).collect();
    let link_dirs: Vec<LinkDirection> = links.iter().map(|l| l.direction).collect();
    let l = CompressedLinkKernel::build_with_rows(&link_points, &link_dirs, spec, &l_row)?;
    let r_dc = zs.dc_resistance();
    let r_link: Vec<f64> = links
        .iter()
        .map(|lk| match lk.direction {
            LinkDirection::X => r_dc * dx / dy,
            LinkDirection::Y => r_dc * dy / dx,
        })
        .collect();
    if aca_stats_enabled() {
        let (sx, sy) = l.stats();
        emit_kernel_stats("L/stitch-x", l.x_idx.len(), sx);
        emit_kernel_stats("L/stitch-y", l.y_idx.len(), sy);
    }
    Ok((l, r_link))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembly::assemble_matrices;
    use pdn_geom::units::mm;
    use pdn_geom::Polygon;

    fn plane(width: f64, height: f64, pitch: f64) -> (PlaneMesh, PlanePair, SurfaceImpedance) {
        let mesh = PlaneMesh::build(&Polygon::rectangle(width, height), pitch).unwrap();
        let pair = PlanePair::new(0.5e-3, 4.5).unwrap();
        (mesh, pair, SurfaceImpedance::from_sheet_resistance(2e-3))
    }

    #[test]
    fn spec_validation_rejects_bad_fields() {
        assert!(CompressionSpec::default().validate().is_ok());
        for tol in [0.0, -1e-6, 1.0, 2.0, f64::NAN, f64::INFINITY] {
            let err = CompressionSpec::with_tol(tol).validate().unwrap_err();
            match err {
                AssembleBemError::InvalidInput(msg) => {
                    assert!(msg.contains("tol"), "descriptive message: {msg}")
                }
                other => panic!("expected InvalidInput, got {other:?}"),
            }
        }
        let bad_leaf = CompressionSpec {
            leaf_size: 0,
            ..CompressionSpec::default()
        };
        assert!(matches!(
            bad_leaf.validate(),
            Err(AssembleBemError::InvalidInput(_))
        ));
        for eta in [0.0, -1.0, f64::NAN] {
            let bad = CompressionSpec {
                eta,
                ..CompressionSpec::default()
            };
            assert!(matches!(
                bad.validate(),
                Err(AssembleBemError::InvalidInput(_))
            ));
        }
    }

    #[test]
    fn compressed_matches_dense_within_tol() {
        let (mesh, pair, zs) = plane(mm(40.0), mm(16.0), mm(1.0));
        let spec = CompressionSpec {
            leaf_size: 16,
            ..CompressionSpec::default()
        };
        let raw = assemble_matrices(&mesh, &pair, &zs, &BemOptions::default()).unwrap();
        let (ck, r_link) =
            assemble_compressed(&mesh, &pair, &zs, &BemOptions::default(), &spec).unwrap();
        assert_eq!(r_link, raw.r_link);
        // Matvec agreement on a deterministic probe vector.
        let n = mesh.cell_count();
        let xp: Vec<f64> = (0..n).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let yp = ck.p.matvec(&xp);
        let yd = raw.p_coef.matvec(&xp);
        let num: f64 = yp
            .iter()
            .zip(&yd)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let den: f64 = yd.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(num / den <= spec.tol, "P matvec error {:.3e}", num / den);
        let m = mesh.link_count();
        let xl: Vec<f64> = (0..m).map(|i| ((i * 5) % 11) as f64 - 5.0).collect();
        let yl = ck.l.matvec(&xl);
        let yld = raw.l.matvec(&xl);
        let num: f64 = yl
            .iter()
            .zip(&yld)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let den: f64 = yld.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(num / den <= spec.tol, "L matvec error {:.3e}", num / den);
        // Compression actually happened at this size.
        assert!(
            ck.stored_bytes() < ck.dense_bytes() / 2,
            "stored {} vs dense {}",
            ck.stored_bytes(),
            ck.dense_bytes()
        );
    }

    #[test]
    fn inadmissible_plan_is_bit_identical_to_dense() {
        // A plane small enough that every block pair stays near-field:
        // the compressed representation must hold exactly the dense
        // entries (same kernel calls, same orientation).
        let (mesh, pair, zs) = plane(mm(8.0), mm(8.0), mm(2.0));
        let spec = CompressionSpec::default(); // leaf 32 > cell count
        let raw = assemble_matrices(&mesh, &pair, &zs, &BemOptions::default()).unwrap();
        let (ck, _) =
            assemble_compressed(&mesh, &pair, &zs, &BemOptions::default(), &spec).unwrap();
        assert_eq!(ck.p.stats().low_rank_blocks, 0);
        let pd = ck.p.to_dense();
        for i in 0..mesh.cell_count() {
            for j in 0..mesh.cell_count() {
                assert_eq!(
                    pd[(i, j)].to_bits(),
                    raw.p_coef[(i, j)].to_bits(),
                    "P ({i},{j})"
                );
            }
        }
        let ld = ck.l.to_dense();
        for i in 0..mesh.link_count() {
            for j in 0..mesh.link_count() {
                assert_eq!(ld[(i, j)].to_bits(), raw.l[(i, j)].to_bits(), "L ({i},{j})");
            }
        }
    }

    #[test]
    fn compressed_solve_matches_dense_solve() {
        let (mesh, pair, zs) = plane(mm(24.0), mm(12.0), mm(1.0));
        let spec = CompressionSpec {
            leaf_size: 16,
            ..CompressionSpec::default()
        };
        let raw = assemble_matrices(&mesh, &pair, &zs, &BemOptions::default()).unwrap();
        let (ck, _) =
            assemble_compressed(&mesh, &pair, &zs, &BemOptions::default(), &spec).unwrap();
        let n = mesh.cell_count();
        let b: Vec<f64> = (0..n).map(|i| if i == n / 2 { 1.0 } else { 0.0 }).collect();
        let x = ck.p.solve(&b, 1e-12, 10 * n).unwrap();
        let x_dense = pdn_num::lu::solve(raw.p_coef.clone(), &b).unwrap();
        // The kernels themselves differ by up to `tol` relative, so the
        // solutions agree to `tol` relative to the solution scale.
        let x_max = x_dense.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        for i in 0..n {
            assert!(
                (x[i] - x_dense[i]).abs() <= spec.tol * x_max,
                "entry {i}: {} vs {}",
                x[i],
                x_dense[i]
            );
        }
    }

    #[test]
    fn rank_zero_far_block_stays_exact() {
        // A kernel that is exactly zero between the two point groups: the
        // admissible block must come back rank 0 and certified.
        let mut points: Vec<(f64, f64)> = (0..8).map(|i| (i as f64 * 0.1, 0.0)).collect();
        points.extend((0..8).map(|i| (100.0 + i as f64 * 0.1, 0.0)));
        let spec = CompressionSpec {
            leaf_size: 8,
            ..CompressionSpec::default()
        };
        let entry = |i: usize, j: usize| -> f64 {
            let same = (i < 8) == (j < 8);
            if same {
                if i == j {
                    2.0
                } else {
                    0.1
                }
            } else {
                0.0 // co-planar zero coupling
            }
        };
        let ck = CompressedKernel::build(&points, &spec, &entry).unwrap();
        let s = ck.stats();
        assert!(s.low_rank_blocks >= 1, "far pair must be admissible");
        assert_eq!(s.max_rank, 0, "zero block must compress to rank 0");
        let d = ck.to_dense();
        for i in 0..16 {
            for j in 0..16 {
                assert_eq!(d[(i, j)], entry(i, j), "entry ({i},{j})");
            }
        }
    }

    #[test]
    fn empty_point_set_builds_empty_kernel() {
        let ck = CompressedKernel::build(&[], &CompressionSpec::default(), &|_, _| 0.0).unwrap();
        assert!(ck.is_empty());
        assert_eq!(ck.matvec(&[]), Vec::<f64>::new());
    }

    #[test]
    fn spec_validation_rejects_zero_block_panel() {
        let bad = CompressionSpec::default().with_solver(SolverSpec::BlockCg {
            panel: 0,
            coarsen: false,
        });
        assert!(matches!(
            bad.validate(),
            Err(AssembleBemError::InvalidInput(_))
        ));
        assert!(CompressionSpec::default()
            .with_block_solver()
            .validate()
            .is_ok());
        assert!(CompressionSpec::default()
            .with_block_solver()
            .solver
            .is_block());
    }

    #[test]
    fn leaf_clusters_partition_and_coarsen() {
        let (mesh, pair, zs) = plane(mm(24.0), mm(12.0), mm(1.0));
        let spec = CompressionSpec {
            leaf_size: 16,
            ..CompressionSpec::default()
        };
        let (ck, _) =
            assemble_compressed(&mesh, &pair, &zs, &BemOptions::default(), &spec).unwrap();
        let n = mesh.cell_count();
        for coarsen in [false, true] {
            let clusters = ck.p.leaf_clusters(coarsen);
            let mut seen = vec![false; n];
            for cl in &clusters {
                assert!(!cl.is_empty());
                for &i in cl {
                    assert!(!seen[i], "index {i} covered twice");
                    seen[i] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "partition must cover 0..n");
        }
        assert!(
            ck.p.leaf_clusters(true).len() < ck.p.leaf_clusters(false).len(),
            "coarsening must merge sibling leaves"
        );
    }

    #[test]
    fn block_jacobi_restrictions_match_dense() {
        let (mesh, pair, zs) = plane(mm(24.0), mm(12.0), mm(1.0));
        let spec = CompressionSpec {
            leaf_size: 16,
            ..CompressionSpec::default()
        };
        let (ck, _) =
            assemble_compressed(&mesh, &pair, &zs, &BemOptions::default(), &spec).unwrap();
        let dense = ck.p.to_dense();
        let clusters = ck.p.leaf_clusters(false);
        let mats = ck.p.cluster_restrictions(&clusters);
        for (cl, m) in clusters.iter().zip(&mats) {
            for (pi, &i) in cl.iter().enumerate() {
                for (pj, &j) in cl.iter().enumerate() {
                    assert_eq!(
                        m[(pi, pj)].to_bits(),
                        dense[(i, j)].to_bits(),
                        "restriction entry ({i},{j})"
                    );
                }
            }
        }
        // And the preconditioner factors.
        assert!(ck.p.block_jacobi(false).is_ok());
        assert!(ck.l.block_jacobi(true).is_ok());
    }

    #[test]
    fn matvec_block_is_bit_identical_to_serial_columns() {
        let (mesh, pair, zs) = plane(mm(24.0), mm(12.0), mm(1.0));
        let spec = CompressionSpec {
            leaf_size: 16,
            ..CompressionSpec::default()
        };
        let (ck, _) =
            assemble_compressed(&mesh, &pair, &zs, &BemOptions::default(), &spec).unwrap();
        let n = mesh.cell_count();
        let cols: Vec<Vec<f64>> = (0..5)
            .map(|j| (0..n).map(|i| ((i + 7 * j) as f64 * 0.13).sin()).collect())
            .collect();
        let blocked = ck.p.matvec_block(&cols);
        for (j, col) in cols.iter().enumerate() {
            let serial = ck.p.matvec(col);
            for i in 0..n {
                assert_eq!(blocked[j][i].to_bits(), serial[i].to_bits(), "({j},{i})");
            }
        }
    }

    #[test]
    fn solve_block_matches_scalar_solves() {
        let (mesh, pair, zs) = plane(mm(24.0), mm(12.0), mm(1.0));
        let spec = CompressionSpec {
            leaf_size: 16,
            ..CompressionSpec::default()
        };
        let (ck, _) =
            assemble_compressed(&mesh, &pair, &zs, &BemOptions::default(), &spec).unwrap();
        let n = mesh.cell_count();
        let pc = ck.p.block_jacobi(false).unwrap();
        let b: Vec<Vec<f64>> = (0..3)
            .map(|j| {
                (0..n)
                    .map(|i| if i == (j * 17) % n { 1.0 } else { 0.0 })
                    .collect()
            })
            .collect();
        let xs = ck.p.solve_block(&b, &pc, 1e-12, 10 * n).unwrap();
        for (j, col) in b.iter().enumerate() {
            let x_scalar = ck.p.solve(col, 1e-12, 10 * n).unwrap();
            let x_max = x_scalar.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            for i in 0..n {
                assert!(
                    (xs[j][i] - x_scalar[i]).abs() <= 1e-9 * x_max,
                    "col {j} entry {i}: {} vs {}",
                    xs[j][i],
                    x_scalar[i]
                );
            }
        }
    }

    #[test]
    fn kernel_matvecs_are_counted() {
        let (mesh, pair, zs) = plane(mm(16.0), mm(8.0), mm(2.0));
        let (ck, _) = assemble_compressed(
            &mesh,
            &pair,
            &zs,
            &BemOptions::default(),
            &CompressionSpec::default(),
        )
        .unwrap();
        let n = mesh.cell_count();
        let x = vec![1.0; n];
        // Delta-based: other tests in this binary may matvec concurrently,
        // so only lower-bound the shared counter.
        let before = kernel_matvec_count();
        ck.p.matvec(&x);
        ck.p.matvec(&x);
        assert!(kernel_matvec_count() >= before + 2);
        let before = kernel_matvec_count();
        ck.p.matvec_block(&[x.clone(), x.clone(), x]);
        assert!(kernel_matvec_count() >= before + 3);
    }

    #[test]
    fn assembly_is_bit_identical_across_thread_counts() {
        let (mesh, pair, zs) = plane(mm(30.0), mm(10.0), mm(1.0));
        let spec = CompressionSpec {
            leaf_size: 16,
            ..CompressionSpec::default()
        };
        // Serial vs forced-2-workers assembly of the same kernels: matvec
        // results must agree bit-for-bit. (Set PDN_THREADS only here, not
        // in the fixture, to avoid cross-test races on the env var.)
        let n = mesh.cell_count();
        let probe: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).sin()).collect();
        let run = || {
            let (ck, _) =
                assemble_compressed(&mesh, &pair, &zs, &BemOptions::default(), &spec).unwrap();
            ck.p.matvec(&probe)
        };
        let y1 = run();
        let y2 = run();
        for i in 0..n {
            assert_eq!(y1[i].to_bits(), y2[i].to_bits(), "entry {i}");
        }
    }
}
