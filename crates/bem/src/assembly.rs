//! Assembly of the MPIE system matrices.
//!
//! * `P` (potential coefficients, N×N): `V = P·Q` with `Q` the total cell
//!   charges. Entry `(i, j)` is the scalar-potential kernel integrated over
//!   source cell `j`, observed at cell `i` (point matching) or averaged
//!   over cell `i` (Galerkin), divided by the cell area to convert density
//!   to total charge.
//! * `L` (partial inductances, M×M): each link current is modeled as a
//!   uniform current patch one cell in size centered on the link. For
//!   parallel patches `L = (1/(wᵢwⱼ))∬ᵢ∬ⱼ G_A`, with the inner integral
//!   closed form; orthogonal patches have zero mutual (the kernel is
//!   diagonal dyadic in the quasi-static limit).
//! * `R` (link loop resistances, M): `R = Zs·(length/width)` squares of
//!   **loop** sheet resistance — for a plane pair both conductors carry the
//!   loop current, so pass the series sheet resistance of the pair (e.g.
//!   `2 × 6 mΩ/sq` for two identical tungsten planes).

use pdn_geom::mesh::{Link, LinkDirection};
use pdn_geom::{PlaneMesh, PlanePair};
use pdn_greens::{LayeredKernel, Rectangle, SurfaceImpedance};
use pdn_num::{parallel, GaussLegendre, Matrix};
use std::error::Error;
use std::fmt;

/// Testing scheme for the boundary-element discretization (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Testing {
    /// Delta testing at panel centers: fast, adequate for smooth meshes.
    PointMatching,
    /// Galerkin testing with an `order × order` Gauss rule over the
    /// observation panel: better accuracy and stability at extra cost.
    Galerkin {
        /// Gauss–Legendre order per dimension on the observation panel.
        order: usize,
    },
}

/// Options controlling assembly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BemOptions {
    /// Testing scheme (default: point matching, the paper's fast path).
    pub testing: Testing,
    /// Number of image terms when a microstrip (air-above) substrate kernel
    /// is selected.
    pub image_terms: usize,
    /// Treat the substrate as a microstrip (grounded slab with air above)
    /// instead of a confined plane pair. Used for patch structures.
    pub microstrip: bool,
    /// Low-rank (ACA) kernel compression. `None` (the default) assembles
    /// the dense `P`/`L` matrices; `Some(spec)` stores both kernels in
    /// certified hierarchically compressed form (see
    /// [`crate::compress`]).
    pub compression: Option<crate::compress::CompressionSpec>,
}

impl Default for BemOptions {
    fn default() -> Self {
        BemOptions {
            testing: Testing::PointMatching,
            image_terms: 40,
            microstrip: false,
            compression: None,
        }
    }
}

impl Testing {
    /// Appends a canonical byte encoding of the testing scheme to `w`
    /// (part of the `pdn-service` content hash).
    pub fn write_canonical(&self, w: &mut pdn_num::ByteWriter) {
        match self {
            Testing::PointMatching => w.put_u8(0),
            Testing::Galerkin { order } => {
                w.put_u8(1);
                w.put_usize(*order);
            }
        }
    }
}

impl BemOptions {
    /// Appends a canonical byte encoding of every assembly option to `w`.
    /// Two option sets encode identically exactly when they assemble
    /// bit-identical kernels, so the `pdn-service` content hash includes
    /// this — changing the testing scheme, image-term count, substrate
    /// model, or compression spec changes the hash.
    pub fn write_canonical(&self, w: &mut pdn_num::ByteWriter) {
        self.testing.write_canonical(w);
        w.put_usize(self.image_terms);
        w.put_u8(self.microstrip as u8);
        match &self.compression {
            None => w.put_u8(0),
            Some(spec) => {
                w.put_u8(1);
                spec.write_canonical(w);
            }
        }
    }

    /// Galerkin testing of the given order (builder style).
    pub fn with_galerkin(mut self, order: usize) -> Self {
        self.testing = Testing::Galerkin { order };
        self
    }

    /// Selects the microstrip (air-above) substrate kernel (builder style).
    pub fn with_microstrip(mut self) -> Self {
        self.microstrip = true;
        self
    }

    /// Enables certified low-rank kernel compression (builder style).
    pub fn with_compression(mut self, spec: crate::compress::CompressionSpec) -> Self {
        self.compression = Some(spec);
        self
    }

    /// Checks every option field up front, returning a descriptive
    /// [`AssembleBemError::InvalidInput`] instead of failing deep inside
    /// assembly. Called by [`assemble_matrices`] and the compressed
    /// assembly path.
    ///
    /// # Errors
    ///
    /// Rejects `image_terms == 0` when the microstrip kernel is
    /// selected, a Galerkin order of 0, and any invalid
    /// [`CompressionSpec`](crate::compress::CompressionSpec).
    pub fn validate(&self) -> Result<(), AssembleBemError> {
        if self.microstrip && self.image_terms == 0 {
            return Err(AssembleBemError::InvalidInput(
                "microstrip kernel needs at least one image term".into(),
            ));
        }
        if let Testing::Galerkin { order } = self.testing {
            if order == 0 {
                return Err(AssembleBemError::InvalidInput(
                    "Galerkin testing order must be at least 1".into(),
                ));
            }
        }
        if let Some(spec) = &self.compression {
            spec.validate()?;
        }
        Ok(())
    }
}

/// Error from BEM assembly.
#[derive(Debug, Clone, PartialEq)]
pub enum AssembleBemError {
    /// The mesh has no cells.
    EmptyMesh,
    /// The capacitance inversion or a solve failed (non-physical mesh).
    NumericalBreakdown(String),
    /// A frequency or sweep argument outside the valid domain (`f <= 0`,
    /// fewer than two sweep points, a non-increasing frequency range…).
    InvalidInput(String),
}

impl fmt::Display for AssembleBemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssembleBemError::EmptyMesh => write!(f, "mesh has no cells"),
            AssembleBemError::NumericalBreakdown(what) => {
                write!(f, "numerical breakdown during BEM assembly: {what}")
            }
            AssembleBemError::InvalidInput(what) => {
                write!(f, "invalid BEM analysis input: {what}")
            }
        }
    }
}

impl Error for AssembleBemError {}

/// Assembled raw matrices (consumed by [`crate::BemSystem`]).
#[derive(Debug, Clone)]
pub struct RawMatrices {
    /// Potential-coefficient matrix, N×N (1/F).
    pub p_coef: Matrix<f64>,
    /// Partial-inductance matrix over links, M×M (H).
    pub l: Matrix<f64>,
    /// Link loop resistances, M (Ω).
    pub r_link: Vec<f64>,
}

/// Scalar-potential kernel for the configured substrate.
pub(crate) fn scalar_kernel(pair: &PlanePair, opts: &BemOptions) -> LayeredKernel {
    if opts.microstrip {
        LayeredKernel::scalar_microstrip(pair.eps_r, pair.separation, opts.image_terms)
    } else {
        LayeredKernel::scalar_confined(pair.eps_r, pair.separation)
    }
}

/// Fills `out` with the panel integral of `g` at every center offset,
/// through the lane-batched kernels — point matching or Galerkin according
/// to `quad`. Per element bit-identical to the scalar `panel_integral` /
/// `panel_galerkin` calls the assembly loops used to make.
pub(crate) fn kernel_row(
    g: &LayeredKernel,
    off_x: &[f64],
    off_y: &[f64],
    cell: Rectangle,
    quad: &Option<GaussLegendre>,
    out: &mut [f64],
) {
    match quad {
        None => g.panel_integral_batch(off_x, off_y, cell, out),
        Some(q) => g.panel_galerkin_batch(off_x, off_y, cell, cell, q, out),
    }
}

/// Assembles `P`, `L`, and `R` for a meshed plane over the given pair.
///
/// # Errors
///
/// Returns [`AssembleBemError::EmptyMesh`] for an empty mesh.
pub fn assemble_matrices(
    mesh: &PlaneMesh,
    pair: &PlanePair,
    zs: &SurfaceImpedance,
    opts: &BemOptions,
) -> Result<RawMatrices, AssembleBemError> {
    opts.validate()?;
    let n = mesh.cell_count();
    let m = mesh.link_count();
    if n == 0 {
        return Err(AssembleBemError::EmptyMesh);
    }
    let g_phi = scalar_kernel(pair, opts);
    let g_a = LayeredKernel::vector_potential(pair.separation);
    let cell = Rectangle::new(mesh.dx(), mesh.dy());
    let area = mesh.cell_area();
    let quad = match opts.testing {
        Testing::PointMatching => None,
        Testing::Galerkin { order } => Some(GaussLegendre::new(order.max(2))),
    };

    // --- Potential coefficients -----------------------------------------
    // The O(N²) kernel-integration loop dominates assembly; rows are
    // independent, so fan them out. Only the upper triangle (j ≥ i) is
    // integrated — row cost shrinks with i, which the dynamic scheduler in
    // `par_map_indexed` balances across workers. Within a row the offsets
    // are batched into SoA lanes for the vectorized kernel; per-entry
    // values are bit-identical to the scalar calls.
    let centers = mesh.cell_centers();
    let p_rows: Vec<Vec<f64>> = parallel::par_map_indexed(n, |i| {
        let len = n - i;
        let mut ox = Vec::with_capacity(len);
        let mut oy = Vec::with_capacity(len);
        for j in i..n {
            ox.push(centers[i].x - centers[j].x);
            oy.push(centers[i].y - centers[j].y);
        }
        let mut row = vec![0.0; len];
        kernel_row(&g_phi, &ox, &oy, cell, &quad, &mut row);
        for v in &mut row {
            *v /= area;
        }
        row
    });
    let mut p_coef = Matrix::zeros(n, n);
    for (i, row) in p_rows.iter().enumerate() {
        for (k, &v) in row.iter().enumerate() {
            let j = i + k;
            p_coef[(i, j)] = v;
            p_coef[(j, i)] = v;
        }
    }

    // --- Partial inductances ---------------------------------------------
    // Orthogonal links have zero quasi-static mutual, so each row batches
    // only its same-direction partners and scatters the results back.
    let links = mesh.links();
    let l_rows: Vec<Vec<f64>> = parallel::par_map_indexed(m, |i| {
        // L = (1/(wᵢwⱼ))·∬∬ G_A; the patch width is the dimension
        // transverse to current flow.
        let w = match links[i].direction {
            LinkDirection::X => mesh.dy(),
            LinkDirection::Y => mesh.dx(),
        };
        let idx: Vec<usize> = (i..m)
            .filter(|&j| links[j].direction == links[i].direction)
            .collect();
        let mut ox = Vec::with_capacity(idx.len());
        let mut oy = Vec::with_capacity(idx.len());
        for &j in &idx {
            ox.push(links[i].center.x - links[j].center.x);
            oy.push(links[i].center.y - links[j].center.y);
        }
        let mut vals = vec![0.0; idx.len()];
        kernel_row(&g_a, &ox, &oy, cell, &quad, &mut vals);
        let mut row = vec![0.0; m - i];
        for (t, &j) in idx.iter().enumerate() {
            let integral = vals[t] * area;
            row[j - i] = integral / (w * w);
        }
        row
    });
    let mut l = Matrix::zeros(m, m);
    for (i, row) in l_rows.iter().enumerate() {
        for (k, &v) in row.iter().enumerate() {
            let j = i + k;
            l[(i, j)] = v;
            l[(j, i)] = v;
        }
    }

    // --- Link resistances --------------------------------------------------
    let r_dc = zs.dc_resistance();
    let r_link = links
        .iter()
        .map(|lk| match lk.direction {
            LinkDirection::X => r_dc * mesh.dx() / mesh.dy(),
            LinkDirection::Y => r_dc * mesh.dy() / mesh.dx(),
        })
        .collect();

    Ok(RawMatrices { p_coef, l, r_link })
}

/// Assembles `L` and `R` for a standalone set of links on the given cell
/// raster — the stitch-branch hook behind sharded extraction.
///
/// Uses the exact panel-integral and loop-resistance formulas of
/// [`assemble_matrices`], so a link evaluated here carries a self term
/// bit-identical to the one it would get inside a full-mesh assembly; the
/// mutuals among the given links (zero between orthogonal links) are kept.
/// `dx`/`dy` must be the cell pitch of the mesh the links came from.
pub fn assemble_link_matrices(
    links: &[Link],
    dx: f64,
    dy: f64,
    pair: &PlanePair,
    zs: &SurfaceImpedance,
    opts: &BemOptions,
) -> (Matrix<f64>, Vec<f64>) {
    let m = links.len();
    let g_a = LayeredKernel::vector_potential(pair.separation);
    let cell = Rectangle::new(dx, dy);
    let area = dx * dy;
    let quad = match opts.testing {
        Testing::PointMatching => None,
        Testing::Galerkin { order } => Some(GaussLegendre::new(order.max(2))),
    };
    let l_rows: Vec<Vec<f64>> = parallel::par_map_indexed(m, |i| {
        let w = match links[i].direction {
            LinkDirection::X => dy,
            LinkDirection::Y => dx,
        };
        let idx: Vec<usize> = (i..m)
            .filter(|&j| links[j].direction == links[i].direction)
            .collect();
        let mut ox = Vec::with_capacity(idx.len());
        let mut oy = Vec::with_capacity(idx.len());
        for &j in &idx {
            ox.push(links[i].center.x - links[j].center.x);
            oy.push(links[i].center.y - links[j].center.y);
        }
        let mut vals = vec![0.0; idx.len()];
        kernel_row(&g_a, &ox, &oy, cell, &quad, &mut vals);
        let mut row = vec![0.0; m - i];
        for (t, &j) in idx.iter().enumerate() {
            let integral = vals[t] * area;
            row[j - i] = integral / (w * w);
        }
        row
    });
    let mut l = Matrix::zeros(m, m);
    for (i, row) in l_rows.iter().enumerate() {
        for (k, &v) in row.iter().enumerate() {
            let j = i + k;
            l[(i, j)] = v;
            l[(j, i)] = v;
        }
    }
    let r_dc = zs.dc_resistance();
    let r_link = links
        .iter()
        .map(|lk| match lk.direction {
            LinkDirection::X => r_dc * dx / dy,
            LinkDirection::Y => r_dc * dy / dx,
        })
        .collect();
    (l, r_link)
}

/// Cross-block diagonal lumping sums for a partitioned mesh — the seam
/// compensation behind sharded extraction.
///
/// A domain-decomposed extraction keeps only the diagonal blocks of `P`
/// and `L` (plus the cut-link stitch block): every kernel entry between
/// cells or links in *different* blocks is dropped. Both kernels are
/// strictly positive, so the dropped couplings bias the blocked model
/// stiff — smaller effective inductance and larger capacitance, shifting
/// plane resonances upward. This helper returns, for every cell and every
/// link, the **row sum of its dropped entries**:
///
/// * `p_lump[i] = Σⱼ P(i, j)` over cells `j` with `cell_block[j] ≠
///   cell_block[i]`,
/// * `l_lump[i] = Σⱼ L(i, j)` over same-direction links `j` with
///   `link_block[j] ≠ link_block[i]`.
///
/// Adding each sum to the corresponding diagonal entry of the block
/// matrices ("mass lumping") preserves the row sums of the full `P` and
/// `L` exactly, which makes the blocked model exact for the uniform
/// modes: the total plate capacitance `1ᵀP⁻¹1` and the reluctance seen by
/// a current crossing the seams uniformly. Since the additions are
/// positive, symmetry and positive definiteness of the blocks are
/// preserved.
///
/// `cell_block` / `link_block` assign a block id to every mesh cell /
/// link (cut links get their own shared block, since the stitch keeps
/// their mutuals). The kernels and quadrature match [`assemble_matrices`]
/// entry by entry, and the result is bit-identical for any worker count.
///
/// # Panics
///
/// Panics when a block slice does not match the mesh's cell/link count.
pub fn cross_block_lumping(
    mesh: &PlaneMesh,
    cell_block: &[usize],
    link_block: &[usize],
    pair: &PlanePair,
    opts: &BemOptions,
) -> (Vec<f64>, Vec<f64>) {
    let n = mesh.cell_count();
    let m = mesh.link_count();
    assert_eq!(cell_block.len(), n, "cell_block length mismatch");
    assert_eq!(link_block.len(), m, "link_block length mismatch");
    let g_phi = scalar_kernel(pair, opts);
    let g_a = LayeredKernel::vector_potential(pair.separation);
    let cell = Rectangle::new(mesh.dx(), mesh.dy());
    let area = mesh.cell_area();
    let quad = match opts.testing {
        Testing::PointMatching => None,
        Testing::Galerkin { order } => Some(GaussLegendre::new(order.max(2))),
    };
    let centers = mesh.cell_centers();
    let p_lump = parallel::par_map_indexed(n, |i| {
        let idx: Vec<usize> = (0..n).filter(|&j| cell_block[j] != cell_block[i]).collect();
        let mut ox = Vec::with_capacity(idx.len());
        let mut oy = Vec::with_capacity(idx.len());
        for &j in &idx {
            ox.push(centers[i].x - centers[j].x);
            oy.push(centers[i].y - centers[j].y);
        }
        let mut vals = vec![0.0; idx.len()];
        kernel_row(&g_phi, &ox, &oy, cell, &quad, &mut vals);
        // Same ascending-j accumulation as the dropped-row-sum contract.
        let mut s = 0.0;
        for &p in &vals {
            s += p / area;
        }
        s
    });
    let links = mesh.links();
    let l_lump = parallel::par_map_indexed(m, |i| {
        let w = match links[i].direction {
            LinkDirection::X => mesh.dy(),
            LinkDirection::Y => mesh.dx(),
        };
        let idx: Vec<usize> = (0..m)
            .filter(|&j| link_block[j] != link_block[i] && links[j].direction == links[i].direction)
            .collect();
        let mut ox = Vec::with_capacity(idx.len());
        let mut oy = Vec::with_capacity(idx.len());
        for &j in &idx {
            ox.push(links[i].center.x - links[j].center.x);
            oy.push(links[i].center.y - links[j].center.y);
        }
        let mut vals = vec![0.0; idx.len()];
        kernel_row(&g_a, &ox, &oy, cell, &quad, &mut vals);
        let mut s = 0.0;
        for &v in &vals {
            let integral = v * area;
            s += integral / (w * w);
        }
        s
    });
    (p_lump, l_lump)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdn_geom::units::mm;
    use pdn_geom::Polygon;
    use pdn_num::cholesky::is_positive_definite;
    use pdn_num::phys::{EPS0, MU0};

    fn small_system() -> (PlaneMesh, PlanePair, RawMatrices) {
        let mesh = PlaneMesh::build(&Polygon::rectangle(mm(10.0), mm(10.0)), mm(2.0)).unwrap();
        let pair = PlanePair::new(0.5e-3, 4.5).unwrap();
        let raw = assemble_matrices(
            &mesh,
            &pair,
            &SurfaceImpedance::from_sheet_resistance(1e-3),
            &BemOptions::default(),
        )
        .unwrap();
        (mesh, pair, raw)
    }

    #[test]
    fn p_matrix_symmetric_positive_definite() {
        let (_, _, raw) = small_system();
        assert_eq!(raw.p_coef.symmetry_defect(), 0.0);
        assert!(is_positive_definite(&raw.p_coef));
    }

    #[test]
    fn l_matrix_symmetric_positive_definite() {
        let (_, _, raw) = small_system();
        assert_eq!(raw.l.symmetry_defect(), 0.0);
        assert!(is_positive_definite(&raw.l));
    }

    #[test]
    fn p_diagonal_dominates() {
        let (_, _, raw) = small_system();
        for i in 0..raw.p_coef.nrows() {
            for j in 0..raw.p_coef.ncols() {
                if i != j {
                    assert!(raw.p_coef[(i, i)] > raw.p_coef[(i, j)]);
                    assert!(raw.p_coef[(i, j)] > 0.0);
                }
            }
        }
    }

    #[test]
    fn total_capacitance_close_to_parallel_plate() {
        let (mesh, pair, raw) = small_system();
        // Sum over all entries of C = P⁻¹ is the capacitance of the plate
        // held at uniform potential: ≈ ε₀εr·A/d (slightly above, fringing).
        let c = pdn_num::lu::invert(raw.p_coef).unwrap();
        let c_total: f64 = (0..c.nrows())
            .flat_map(|i| (0..c.ncols()).map(move |j| (i, j)))
            .map(|(i, j)| c[(i, j)])
            .sum();
        let area = mesh.cell_area() * mesh.cell_count() as f64;
        let c_pp = EPS0 * pair.eps_r * area / pair.separation;
        let ratio = c_total / c_pp;
        assert!(ratio > 1.0 && ratio < 1.35, "C_total/C_pp = {ratio}");
    }

    #[test]
    fn inductance_self_larger_than_mutual() {
        let (_, _, raw) = small_system();
        for i in 0..raw.l.nrows() {
            for j in 0..raw.l.ncols() {
                if i != j {
                    assert!(raw.l[(i, i)] > raw.l[(i, j)].abs());
                }
            }
        }
    }

    #[test]
    fn self_inductance_scale_is_plane_pair_like() {
        // For a plane pair the per-square loop inductance is μ₀·d; the
        // link self-inductance of a square patch over its image should be
        // the same order of magnitude (larger, since one patch is narrower
        // than an infinite front).
        let (mesh, pair, raw) = small_system();
        let l_sq = MU0 * pair.separation;
        let _ = mesh;
        for i in 0..raw.l.nrows() {
            let r = raw.l[(i, i)] / l_sq;
            assert!(r > 0.5 && r < 20.0, "L_self/μ₀d = {r}");
        }
    }

    #[test]
    fn link_resistance_matches_squares() {
        let (mesh, _, raw) = small_system();
        // Square cells: every link is exactly one square of loop sheet R.
        for (r, _) in raw.r_link.iter().zip(mesh.links()) {
            assert!((r - 1e-3).abs() < 1e-12);
        }
    }

    #[test]
    fn galerkin_close_to_point_matching() {
        let mesh = PlaneMesh::build(&Polygon::rectangle(mm(8.0), mm(8.0)), mm(2.0)).unwrap();
        let pair = PlanePair::new(0.5e-3, 4.5).unwrap();
        let zs = SurfaceImpedance::lossless();
        let pm = assemble_matrices(&mesh, &pair, &zs, &BemOptions::default()).unwrap();
        let gal =
            assemble_matrices(&mesh, &pair, &zs, &BemOptions::default().with_galerkin(4)).unwrap();
        // Same structure: off-diagonal terms nearly identical, diagonal a
        // few percent apart (averaging vs center evaluation).
        let rel = (pm.p_coef[(0, 0)] - gal.p_coef[(0, 0)]).abs() / pm.p_coef[(0, 0)];
        assert!(rel < 0.25, "diagonal relative difference {rel}");
        let rel_off = (pm.p_coef[(0, 3)] - gal.p_coef[(0, 3)]).abs() / pm.p_coef[(0, 3)];
        assert!(rel_off < 0.05);
        assert!(is_positive_definite(&gal.p_coef));
        assert!(is_positive_definite(&gal.l));
    }

    #[test]
    fn microstrip_kernel_reduces_capacitance_coupling() {
        // Air above pulls some field out of the substrate, so the
        // microstrip P diagonal (1/C-like) is larger than the confined one
        // for the same geometry.
        let mesh = PlaneMesh::build(&Polygon::rectangle(mm(8.0), mm(8.0)), mm(2.0)).unwrap();
        let pair = PlanePair::new(1e-3, 4.5).unwrap();
        let zs = SurfaceImpedance::lossless();
        let confined = assemble_matrices(&mesh, &pair, &zs, &BemOptions::default()).unwrap();
        let micro =
            assemble_matrices(&mesh, &pair, &zs, &BemOptions::default().with_microstrip()).unwrap();
        assert!(micro.p_coef[(0, 0)] > confined.p_coef[(0, 0)]);
    }

    #[test]
    fn link_matrices_bit_identical_to_full_assembly() {
        let (mesh, pair, raw) = small_system();
        let zs = SurfaceImpedance::from_sheet_resistance(1e-3);
        // Any link subset evaluated standalone must reproduce the
        // corresponding block of the full L exactly — that is the
        // bit-consistency contract the shard stitch relies on.
        let subset = [0usize, 3, 7, mesh.link_count() - 1];
        let links: Vec<_> = subset.iter().map(|&i| mesh.links()[i]).collect();
        let (l_sub, r_sub) = assemble_link_matrices(
            &links,
            mesh.dx(),
            mesh.dy(),
            &pair,
            &zs,
            &BemOptions::default(),
        );
        for (a, &ga) in subset.iter().enumerate() {
            assert_eq!(r_sub[a], raw.r_link[ga]);
            for (b, &gb) in subset.iter().enumerate() {
                assert_eq!(l_sub[(a, b)], raw.l[(ga, gb)], "entry ({ga},{gb})");
            }
        }
        let (l_empty, r_empty) = assemble_link_matrices(
            &[],
            mesh.dx(),
            mesh.dy(),
            &pair,
            &zs,
            &BemOptions::default(),
        );
        assert_eq!(l_empty.nrows(), 0);
        assert!(r_empty.is_empty());
    }

    #[test]
    fn lumping_sums_match_dropped_row_sums_exactly() {
        let (mesh, pair, raw) = small_system();
        // Split cells/links down the middle by x and compare against the
        // off-block row sums of the full matrices: every term is evaluated
        // with the same kernel call, so the sums must agree bit-for-bit
        // when accumulated in the same (ascending-j) order.
        let mid = mm(5.0);
        let cell_block: Vec<usize> = (0..mesh.cell_count())
            .map(|i| usize::from(mesh.cell_center(i).x > mid))
            .collect();
        let link_block: Vec<usize> = mesh
            .links()
            .iter()
            .map(|l| usize::from(l.center.x > mid))
            .collect();
        let (p_lump, l_lump) = cross_block_lumping(
            &mesh,
            &cell_block,
            &link_block,
            &pair,
            &BemOptions::default(),
        );
        for i in 0..mesh.cell_count() {
            let want: f64 = (0..mesh.cell_count())
                .filter(|&j| cell_block[j] != cell_block[i])
                .map(|j| raw.p_coef[(i, j)])
                .sum();
            let rel = (p_lump[i] - want).abs() / want;
            assert!(rel < 1e-12, "cell {i}: {} vs {want}", p_lump[i]);
            assert!(p_lump[i] > 0.0);
        }
        for i in 0..mesh.link_count() {
            let want: f64 = (0..mesh.link_count())
                .filter(|&j| link_block[j] != link_block[i])
                .map(|j| raw.l[(i, j)])
                .sum();
            assert!(
                (l_lump[i] - want).abs() <= 1e-12 * want.abs().max(1e-300),
                "link {i}: {} vs {want}",
                l_lump[i]
            );
            assert!(l_lump[i] >= 0.0);
        }
    }

    #[test]
    fn mutual_inductance_decays_with_distance() {
        let (mesh, _, raw) = small_system();
        // Pick an x-link and compare mutuals with nearer/farther x-links.
        let links = mesh.links();
        let x0 = (0..links.len())
            .find(|&i| links[i].direction == LinkDirection::X)
            .unwrap();
        let mut pairs: Vec<(f64, f64)> = (0..links.len())
            .filter(|&j| j != x0 && links[j].direction == LinkDirection::X)
            .map(|j| {
                (
                    links[x0].center.distance(links[j].center),
                    raw.l[(x0, j)].abs(),
                )
            })
            .collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        assert!(pairs.first().unwrap().1 > pairs.last().unwrap().1);
    }
}
