#![warn(missing_docs)]
//! Mixed-potential integral-equation (MPIE) boundary-element engine.
//!
//! This crate implements Section 3 of the paper: the conductor surface is
//! discretized into quadrilateral cells (by [`pdn_geom::PlaneMesh`]); pulse
//! basis functions carry charge and potential on the cells and
//! rooftop-style basis functions carry surface current on the links between
//! adjacent cells. Testing the integral equations produces the matrix
//! system of eqs. (10)–(11):
//!
//! ```text
//! (Zs + jωL)·I − A·V = 0        (impedance boundary condition)
//!  Aᵀ·I + jω·C·V     = J        (charge continuity)
//! ```
//!
//! where `A` is the signed link↔cell incidence (the discrete gradient),
//! `L` the partial-inductance matrix over links, `C = P⁻¹` the capacitance
//! matrix from the potential-coefficient matrix `P`, and `Zs` the surface
//! (loop) resistance of each link.
//!
//! Both **point-matching** (collocation) and **Galerkin** testing are
//! implemented, mirroring the paper's Section 3.2; all panel integrals use
//! the closed-form rectangle potentials from [`pdn_greens`].
//!
//! # Examples
//!
//! ```
//! use pdn_bem::{BemOptions, BemSystem};
//! use pdn_geom::{mesh::PlaneMesh, polygon::Polygon, units::mm, PlanePair, Point};
//! use pdn_greens::SurfaceImpedance;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut mesh = PlaneMesh::build(&Polygon::rectangle(mm(20.0), mm(20.0)), mm(4.0))?;
//! mesh.bind_port("P1", Point::new(mm(2.0), mm(2.0)))?;
//! let pair = PlanePair::new(0.5e-3, 4.5)?;
//! let sys = BemSystem::assemble(
//!     mesh,
//!     &pair,
//!     &SurfaceImpedance::from_sheet_resistance(1e-3),
//!     &BemOptions::default(),
//! )?;
//! // The low-frequency input impedance is capacitive: |Z| ∝ 1/f.
//! let z1 = sys.port_impedance(1e6)?[(0, 0)].norm();
//! let z10 = sys.port_impedance(10e6)?[(0, 0)].norm();
//! assert!((z1 / z10 - 10.0).abs() < 0.5);
//! # Ok(())
//! # }
//! ```

pub mod assembly;
pub mod columns;
pub mod compress;
pub mod system;

pub use assembly::{
    assemble_link_matrices, assemble_matrices, cross_block_lumping, AssembleBemError, BemOptions,
    RawMatrices, Testing,
};
pub use columns::CompressedColumns;
pub use compress::{
    assemble_compressed, compress_link_matrices, kernel_matvec_count, reset_kernel_matvec_count,
    CompressedKernel, CompressedKernels, CompressedLinkKernel, CompressionSpec, CompressionStats,
    SolverSpec,
};
pub use system::BemSystem;
