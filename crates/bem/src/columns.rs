//! Streamed column-panel compression of implicitly defined symmetric
//! matrices — the extraction B-blocks.
//!
//! The compressed extraction path forms `B = Aᵀ·L⁻¹·A` whose entries
//! have no cheap generator: one entry costs a full iterative solve on
//! the compressed `L`. ACA-by-entries is therefore infeasible, but the
//! matrix is still the discretization of a smooth (Laplacian-like)
//! operator over node positions, so its well-separated blocks are
//! numerically low-rank. [`CompressedColumns`] exploits that without a
//! per-entry generator:
//!
//! 1. a geometric cluster tree over the node positions fixes both the
//!    column panels (finest tree nodes at most `panel` wide) and the row
//!    partition;
//! 2. each column panel is **materialized once** by the caller's
//!    generator (one block-CG solve on `L` per panel) and immediately
//!    compressed: the row tree descends against the panel's column
//!    node — admissible row blocks are re-factored by ACA **on the
//!    materialized data**, near-field leaves stay dense;
//! 3. every low-rank block is certified a posteriori against the
//!    materialized rows with the same fixed-seed sampler used for the
//!    kernels, failing loudly above `tol`.
//!
//! The working set is one `n × panel` slab at a time instead of the
//! dense `8N²` matrix, and the stored operator supports symmetric
//! matvecs (`0.5·(Mx + Mᵀx)` — storage covers every entry exactly once,
//! un-mirrored) for the Schur-complement block-CG solves. Panels are
//! processed serially in tree order and every factorization is
//! deterministically pivoted, so the result is bit-identical for any
//! `PDN_THREADS` (the parallelism lives inside the caller's generator,
//! which must itself be deterministic — the block kernel solves are).

use crate::assembly::AssembleBemError;
use crate::compress::{
    ClusterTree, CompressionSpec, CompressionStats, ACA_MARGIN, CERT_ROWS, MATVEC_CHUNK,
    RECOMPRESS_MARGIN,
};
use pdn_num::aca::{aca, LowRank};
use pdn_num::{parallel, Matrix};

#[derive(Debug, Clone)]
enum ColBlockData {
    Dense(Matrix<f64>),
    LowRank(LowRank),
}

#[derive(Debug, Clone)]
struct ColBlock {
    rows: Vec<usize>,
    cols: Vec<usize>,
    data: ColBlockData,
}

/// Streaming column-panel generator: returns the dense columns for the
/// requested indices, or the assembly error to propagate verbatim.
pub type ColumnGen<'a> = dyn FnMut(&[usize]) -> Result<Vec<Vec<f64>>, AssembleBemError> + 'a;

/// A symmetric matrix compressed from streamed column panels; see the
/// module docs for the construction.
#[derive(Debug, Clone)]
pub struct CompressedColumns {
    n: usize,
    blocks: Vec<ColBlock>,
    stats: CompressionStats,
    tree: ClusterTree,
}

/// Finest tree nodes with at most `panel` members (leaves are accepted
/// regardless of size), in left-to-right tree order.
fn column_nodes(tree: &ClusterTree, panel: usize) -> Vec<usize> {
    fn walk(tree: &ClusterTree, id: usize, panel: usize, out: &mut Vec<usize>) {
        let node = &tree.nodes[id];
        match node.children {
            Some((l, r)) if node.len() > panel => {
                walk(tree, l, panel, out);
                walk(tree, r, panel, out);
            }
            _ => out.push(id),
        }
    }
    let mut out = Vec::new();
    if !tree.nodes.is_empty() {
        walk(tree, 0, panel, &mut out);
    }
    out
}

impl CompressedColumns {
    /// Builds the compressed matrix for the symmetric operator whose
    /// index `i` sits at `points[i]`, materializing it one column panel
    /// at a time through `gen`.
    ///
    /// `gen(cols)` must return one vector of length `points.len()` per
    /// requested column index (the exact matrix columns, e.g. computed
    /// by block-CG solves); panels are requested serially in a fixed
    /// tree order.
    ///
    /// # Errors
    ///
    /// [`AssembleBemError::InvalidInput`] for an invalid `spec`,
    /// generator errors verbatim, and
    /// [`AssembleBemError::NumericalBreakdown`] for a mis-shaped panel
    /// or a low-rank block that fails certification against the
    /// materialized data.
    pub fn build(
        points: &[(f64, f64)],
        spec: &CompressionSpec,
        panel: usize,
        gen: &mut ColumnGen<'_>,
    ) -> Result<CompressedColumns, AssembleBemError> {
        spec.validate()?;
        let n = points.len();
        let tree = ClusterTree::build(points, spec.leaf_size);
        let col_nodes = column_nodes(&tree, panel.max(1));
        let mut blocks: Vec<ColBlock> = Vec::new();
        for &cn in &col_nodes {
            let node = &tree.nodes[cn];
            let cols: Vec<usize> = tree.perm[node.start..node.end].to_vec();
            let panel_cols = gen(&cols)?;
            if panel_cols.len() != cols.len() || panel_cols.iter().any(|c| c.len() != n) {
                return Err(AssembleBemError::NumericalBreakdown(
                    "column generator returned a mis-shaped panel".into(),
                ));
            }
            descend_rows(&tree, spec, 0, cn, &cols, &panel_cols, &mut blocks)?;
        }
        let mut stats = CompressionStats {
            blocks: blocks.len(),
            low_rank_blocks: 0,
            max_rank: 0,
            stored_bytes: 0,
            dense_bytes: 8 * n * n,
        };
        for b in &blocks {
            match &b.data {
                ColBlockData::Dense(m) => stats.stored_bytes += 8 * m.nrows() * m.ncols(),
                ColBlockData::LowRank(lr) => {
                    stats.low_rank_blocks += 1;
                    stats.max_rank = stats.max_rank.max(lr.rank());
                    stats.stored_bytes += lr.stored_bytes();
                }
            }
        }
        Ok(CompressedColumns {
            n,
            blocks,
            stats,
            tree,
        })
    }

    /// Operator dimension.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the operator is zero-dimensional.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Block/rank/byte diagnostics.
    pub fn stats(&self) -> CompressionStats {
        self.stats
    }

    /// Bytes held by the compressed representation.
    pub fn stored_bytes(&self) -> usize {
        self.stats.stored_bytes
    }

    /// The symmetric matvec `y = 0.5·(M + Mᵀ)·x` over the stored blocks
    /// in fixed order — the deterministic symmetrization of the
    /// materialized columns.
    ///
    /// # Panics
    ///
    /// Panics when `x` does not match the operator dimension.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "matvec dimension mismatch");
        let mut y = vec![0.0; self.n];
        for b in &self.blocks {
            match &b.data {
                ColBlockData::Dense(m) => {
                    for (a, &i) in b.rows.iter().enumerate() {
                        let mut acc = 0.0;
                        for (c, &j) in b.cols.iter().enumerate() {
                            acc += m[(a, c)] * x[j];
                        }
                        y[i] += 0.5 * acc;
                    }
                    for (c, &j) in b.cols.iter().enumerate() {
                        let mut acc = 0.0;
                        for (a, &i) in b.rows.iter().enumerate() {
                            acc += m[(a, c)] * x[i];
                        }
                        y[j] += 0.5 * acc;
                    }
                }
                ColBlockData::LowRank(lr) => {
                    let xs: Vec<f64> = b.cols.iter().map(|&j| x[j]).collect();
                    let mut ys = vec![0.0; b.rows.len()];
                    lr.matvec_into(&xs, 0.5, &mut ys);
                    for (a, &i) in b.rows.iter().enumerate() {
                        y[i] += ys[a];
                    }
                    let xt: Vec<f64> = b.rows.iter().map(|&i| x[i]).collect();
                    let mut yt = vec![0.0; b.cols.len()];
                    lr.matvec_transpose_into(&xt, 0.5, &mut yt);
                    for (c, &j) in b.cols.iter().enumerate() {
                        y[j] += yt[c];
                    }
                }
            }
        }
        y
    }

    /// Blocked symmetric matvec: fixed-width column chunks fan across
    /// [`pdn_num::parallel`] workers in index order; within a chunk the
    /// stored blocks stream **once**, each applied to every column from
    /// an interleaved panel layout while its data is cache-hot. Per
    /// column the floating-point arithmetic is exactly the serial
    /// [`CompressedColumns::matvec`] sequence, so every result column is
    /// bit-identical to a serial sweep for any `PDN_THREADS` (the chunk
    /// width never depends on the worker count).
    ///
    /// # Panics
    ///
    /// Panics when any column does not match the operator dimension.
    pub fn matvec_block(&self, cols: &[Vec<f64>]) -> Vec<Vec<f64>> {
        for x in cols {
            assert_eq!(x.len(), self.n, "matvec dimension mismatch");
        }
        let chunks = cols.len().div_ceil(MATVEC_CHUNK);
        let outs = parallel::par_map_indexed(chunks, |c| {
            let lo = c * MATVEC_CHUNK;
            let hi = (lo + MATVEC_CHUNK).min(cols.len());
            self.matvec_panel(&cols[lo..hi])
        });
        outs.into_iter().flatten().collect()
    }

    /// One blocked symmetric sweep over a chunk in interleaved panel
    /// layout (`x[j·w + q]` is column `q`'s entry `j`); see
    /// [`CompressedColumns::matvec_block`] for the contract.
    fn matvec_panel(&self, cols: &[Vec<f64>]) -> Vec<Vec<f64>> {
        // Constant panel stride with zero-held tail lanes, as in
        // `CompressedKernel::matvec_panel`: every inner loop runs
        // `MATVEC_CHUNK` independent lanes at a compile-time trip
        // count, which vectorizes without touching any per-column
        // accumulation order.
        const W: usize = MATVEC_CHUNK;
        let w = cols.len();
        debug_assert!(w <= W);
        let mut xp = vec![0.0; self.n * W];
        for (q, x) in cols.iter().enumerate() {
            for (j, &v) in x.iter().enumerate() {
                xp[j * W + q] = v;
            }
        }
        let mut yp = vec![0.0; self.n * W];
        let mut acc = [0.0f64; W];
        let mut scratch = Vec::new();
        for b in &self.blocks {
            match &b.data {
                ColBlockData::Dense(m) => {
                    for (a, &i) in b.rows.iter().enumerate() {
                        acc.fill(0.0);
                        for (c, &j) in b.cols.iter().enumerate() {
                            let mv = m[(a, c)];
                            for (aq, xq) in acc.iter_mut().zip(&xp[j * W..(j + 1) * W]) {
                                *aq += mv * xq;
                            }
                        }
                        for (yq, aq) in yp[i * W..(i + 1) * W].iter_mut().zip(&acc) {
                            *yq += 0.5 * aq;
                        }
                    }
                    for (c, &j) in b.cols.iter().enumerate() {
                        acc.fill(0.0);
                        for (a, &i) in b.rows.iter().enumerate() {
                            let mv = m[(a, c)];
                            for (aq, xq) in acc.iter_mut().zip(&xp[i * W..(i + 1) * W]) {
                                *aq += mv * xq;
                            }
                        }
                        for (yq, aq) in yp[j * W..(j + 1) * W].iter_mut().zip(&acc) {
                            *yq += 0.5 * aq;
                        }
                    }
                }
                ColBlockData::LowRank(lr) => {
                    let (nr, nc) = (b.rows.len(), b.cols.len());
                    scratch.clear();
                    scratch.resize(2 * (nr + nc) * W, 0.0);
                    let (xs, rest) = scratch.split_at_mut(nc * W);
                    let (yr, rest) = rest.split_at_mut(nr * W);
                    let (xt, yt) = rest.split_at_mut(nr * W);
                    for (c, &j) in b.cols.iter().enumerate() {
                        xs[c * W..(c + 1) * W].copy_from_slice(&xp[j * W..(j + 1) * W]);
                    }
                    lr.matvec_panel_into(xs, W, 0.5, yr);
                    for (a, &i) in b.rows.iter().enumerate() {
                        for (yq, vq) in yp[i * W..(i + 1) * W]
                            .iter_mut()
                            .zip(&yr[a * W..(a + 1) * W])
                        {
                            *yq += vq;
                        }
                    }
                    for (a, &i) in b.rows.iter().enumerate() {
                        xt[a * W..(a + 1) * W].copy_from_slice(&xp[i * W..(i + 1) * W]);
                    }
                    lr.matvec_transpose_panel_into(xt, W, 0.5, yt);
                    for (c, &j) in b.cols.iter().enumerate() {
                        for (yq, vq) in yp[j * W..(j + 1) * W]
                            .iter_mut()
                            .zip(&yt[c * W..(c + 1) * W])
                        {
                            *yq += vq;
                        }
                    }
                }
            }
        }
        (0..w)
            .map(|q| (0..self.n).map(|i| yp[i * W + q]).collect())
            .collect()
    }

    /// The disjoint cluster partition for block-Jacobi preconditioning
    /// (tree leaves, or — `coarsen`ed — the maximal tree nodes of at
    /// most 8× the leaf size).
    pub fn leaf_clusters(&self, coarsen: bool) -> Vec<Vec<usize>> {
        self.tree.clusters(coarsen)
    }

    /// Materializes the symmetrized dense restrictions
    /// `0.5·(M + Mᵀ)[c, c]` for every cluster of a disjoint partition in
    /// one pass over the stored blocks — the preconditioner sub-blocks
    /// for Schur-complement solves (callers stamp any sparse additions,
    /// e.g. conductance, before factoring).
    pub fn cluster_restrictions(&self, clusters: &[Vec<usize>]) -> Vec<Matrix<f64>> {
        let mut of: Vec<Option<(usize, usize)>> = vec![None; self.n];
        for (ci, cl) in clusters.iter().enumerate() {
            for (k, &i) in cl.iter().enumerate() {
                of[i] = Some((ci, k));
            }
        }
        let mut mats: Vec<Matrix<f64>> = clusters
            .iter()
            .map(|c| Matrix::zeros(c.len(), c.len()))
            .collect();
        // Accumulate the un-mirrored storage (each entry covered once),
        // symmetrizing per entry: both (i,j) and (j,i) positions receive
        // half of every stored coefficient.
        for b in &self.blocks {
            let row_cl: Vec<(usize, usize, usize)> = b
                .rows
                .iter()
                .enumerate()
                .filter_map(|(a, &i)| of[i].map(|(ci, pi)| (ci, pi, a)))
                .collect();
            if row_cl.is_empty() {
                continue;
            }
            for (c, &j) in b.cols.iter().enumerate() {
                let Some((cj, pj)) = of[j] else { continue };
                for &(ci, pi, a) in &row_cl {
                    if ci == cj {
                        let v = match &b.data {
                            ColBlockData::Dense(m) => m[(a, c)],
                            ColBlockData::LowRank(lr) => lr.entry(a, c),
                        };
                        mats[ci][(pi, pj)] += 0.5 * v;
                        mats[ci][(pj, pi)] += 0.5 * v;
                    }
                }
            }
        }
        mats
    }

    /// Densifies the symmetrized operator — diagnostics and
    /// small-problem tests only.
    pub fn to_dense(&self) -> Matrix<f64> {
        let mut out = Matrix::zeros(self.n, self.n);
        for b in &self.blocks {
            for (a, &i) in b.rows.iter().enumerate() {
                for (c, &j) in b.cols.iter().enumerate() {
                    let v = match &b.data {
                        ColBlockData::Dense(m) => m[(a, c)],
                        ColBlockData::LowRank(lr) => lr.entry(a, c),
                    };
                    out[(i, j)] += 0.5 * v;
                    out[(j, i)] += 0.5 * v;
                }
            }
        }
        out
    }
}

/// Recursive row-side descent against a fixed column node: admissible
/// row blocks become ACA factorizations of the materialized sub-panel,
/// inadmissible leaves stay dense slices of the panel.
fn descend_rows(
    tree: &ClusterTree,
    spec: &CompressionSpec,
    row_node: usize,
    col_node: usize,
    cols: &[usize],
    panel: &[Vec<f64>],
    out: &mut Vec<ColBlock>,
) -> Result<(), AssembleBemError> {
    let (rn, cn) = (&tree.nodes[row_node], &tree.nodes[col_node]);
    let dist = rn.distance(cn);
    let admissible =
        row_node != col_node && dist > 0.0 && rn.diameter().min(cn.diameter()) <= spec.eta * dist;
    if !admissible {
        if let Some((l, r)) = rn.children {
            descend_rows(tree, spec, l, col_node, cols, panel, out)?;
            descend_rows(tree, spec, r, col_node, cols, panel, out)?;
            return Ok(());
        }
    }
    let rows: Vec<usize> = tree.perm[rn.start..rn.end].to_vec();
    let (r, c) = (rows.len(), cols.len());
    if !admissible {
        out.push(ColBlock {
            data: ColBlockData::Dense(dense_slice(panel, &rows)),
            rows,
            cols: cols.to_vec(),
        });
        return Ok(());
    }
    let row_fn = |a: usize| -> Vec<f64> { (0..c).map(|b| panel[b][rows[a]]).collect() };
    let col_fn = |b: usize| -> Vec<f64> { rows.iter().map(|&i| panel[b][i]).collect() };
    let lr = aca(r, c, &row_fn, &col_fn, spec.tol / ACA_MARGIN, r.min(c))
        .recompress(spec.tol / RECOMPRESS_MARGIN);
    if lr.stored_bytes() >= 8 * r * c {
        out.push(ColBlock {
            data: ColBlockData::Dense(dense_slice(panel, &rows)),
            rows,
            cols: cols.to_vec(),
        });
        return Ok(());
    }
    // A-posteriori certification against the materialized data, same
    // fixed-seed sampler as the kernel blocks (ordinal = block index).
    let ordinal = out.len();
    let frob = lr.frobenius_norm();
    let mut rng = 0x9e37_79b9_7f4a_7c15u64 ^ (ordinal as u64).wrapping_mul(0xd134_2543_de82_ef95);
    for _ in 0..CERT_ROWS.min(r) {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let a = (rng >> 33) as usize % r;
        let exact = row_fn(a);
        let approx = lr.row(a);
        let err = exact
            .iter()
            .zip(&approx)
            .map(|(e, p)| (e - p) * (e - p))
            .sum::<f64>()
            .sqrt();
        let row_norm = exact.iter().map(|e| e * e).sum::<f64>().sqrt();
        let scale = frob.max(row_norm);
        if err > spec.tol * scale {
            return Err(AssembleBemError::NumericalBreakdown(format!(
                "column-panel certification failed on a {r}x{c} block (rank {}): sampled row \
                 error {err:.3e} exceeds tol {:.1e} x block scale {scale:.3e}",
                lr.rank(),
                spec.tol
            )));
        }
    }
    out.push(ColBlock {
        rows,
        cols: cols.to_vec(),
        data: ColBlockData::LowRank(lr),
    });
    Ok(())
}

/// Dense `rows × panel` slice of materialized columns.
fn dense_slice(panel: &[Vec<f64>], rows: &[usize]) -> Matrix<f64> {
    Matrix::from_fn(rows.len(), panel.len(), |a, b| panel[b][rows[a]])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A smooth symmetric "Laplacian-like" test matrix over a line of
    /// points: strong diagonal, 1/(1+d²) off-diagonal decay.
    fn smooth_matrix(points: &[(f64, f64)]) -> Matrix<f64> {
        let n = points.len();
        Matrix::from_fn(n, n, |i, j| {
            if i == j {
                50.0
            } else {
                let dx = points[i].0 - points[j].0;
                let dy = points[i].1 - points[j].1;
                1.0 / (1.0 + dx * dx + dy * dy)
            }
        })
    }

    fn grid(nx: usize, ny: usize) -> Vec<(f64, f64)> {
        (0..nx * ny)
            .map(|k| ((k % nx) as f64, (k / nx) as f64))
            .collect()
    }

    #[test]
    fn compressed_columns_match_dense_within_tol() {
        let points = grid(24, 12);
        let a = smooth_matrix(&points);
        let spec = CompressionSpec {
            leaf_size: 8,
            ..CompressionSpec::with_tol(1e-4)
        };
        let mut calls = 0usize;
        let cc = CompressedColumns::build(&points, &spec, 24, &mut |cols| {
            calls += 1;
            Ok(cols.iter().map(|&j| a.col(j)).collect())
        })
        .unwrap();
        assert!(calls > 1, "panels must stream");
        let d = cc.to_dense();
        let n = points.len();
        let frob: f64 = (0..n)
            .map(|i| (0..n).map(|j| a[(i, j)] * a[(i, j)]).sum::<f64>())
            .sum::<f64>()
            .sqrt();
        let err: f64 = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| (d[(i, j)] - a[(i, j)]) * (d[(i, j)] - a[(i, j)]))
                    .sum::<f64>()
            })
            .sum::<f64>()
            .sqrt();
        assert!(err <= spec.tol * frob, "error {err:.3e} vs frob {frob:.3e}");
        assert!(
            cc.stats().low_rank_blocks > 0,
            "far blocks must compress: {:?}",
            cc.stats()
        );
        assert!(cc.stored_bytes() < 8 * n * n, "{:?}", cc.stats());
    }

    #[test]
    fn matvec_is_exactly_symmetric() {
        let points = grid(12, 6);
        let a = smooth_matrix(&points);
        let spec = CompressionSpec {
            leaf_size: 8,
            ..CompressionSpec::default()
        };
        let cc = CompressedColumns::build(&points, &spec, 12, &mut |cols| {
            Ok(cols.iter().map(|&j| a.col(j)).collect())
        })
        .unwrap();
        let n = points.len();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.29).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.53).cos()).collect();
        let ax = cc.matvec(&x);
        let ay = cc.matvec(&y);
        let yax: f64 = y.iter().zip(&ax).map(|(p, q)| p * q).sum();
        let xay: f64 = x.iter().zip(&ay).map(|(p, q)| p * q).sum();
        assert!(
            (yax - xay).abs() <= 1e-12 * yax.abs().max(xay.abs()),
            "{yax} vs {xay}"
        );
    }

    #[test]
    fn cluster_restrictions_match_dense_diagonal_blocks() {
        let points = grid(10, 5);
        let a = smooth_matrix(&points);
        let spec = CompressionSpec {
            leaf_size: 8,
            ..CompressionSpec::default()
        };
        let cc = CompressedColumns::build(&points, &spec, 16, &mut |cols| {
            Ok(cols.iter().map(|&j| a.col(j)).collect())
        })
        .unwrap();
        let clusters = cc.leaf_clusters(false);
        let total: usize = clusters.iter().map(Vec::len).sum();
        assert_eq!(total, points.len(), "clusters must partition");
        let mats = cc.cluster_restrictions(&clusters);
        let d = cc.to_dense();
        for (cl, m) in clusters.iter().zip(&mats) {
            for (pi, &i) in cl.iter().enumerate() {
                for (pj, &j) in cl.iter().enumerate() {
                    assert!(
                        (m[(pi, pj)] - d[(i, j)]).abs() <= 1e-12 * d[(i, j)].abs().max(1.0),
                        "cluster entry ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn generator_errors_surface() {
        let points = grid(8, 4);
        let spec = CompressionSpec {
            leaf_size: 4,
            ..CompressionSpec::default()
        };
        let err = CompressedColumns::build(&points, &spec, 8, &mut |_| {
            Err(AssembleBemError::NumericalBreakdown("boom".into()))
        })
        .unwrap_err();
        assert!(matches!(err, AssembleBemError::NumericalBreakdown(m) if m == "boom"));
        // Mis-shaped panels are rejected loudly.
        let err = CompressedColumns::build(&points, &spec, 8, &mut |cols| {
            Ok(vec![vec![0.0; 3]; cols.len()])
        })
        .unwrap_err();
        assert!(matches!(err, AssembleBemError::NumericalBreakdown(_)));
    }

    #[test]
    fn empty_operator_builds() {
        let cc =
            CompressedColumns::build(&[], &CompressionSpec::default(), 8, &mut |_| Ok(Vec::new()))
                .unwrap();
        assert!(cc.is_empty());
        assert_eq!(cc.matvec(&[]), Vec::<f64>::new());
    }
}
