#![warn(missing_docs)]
//! PDN analysis as a service: a content-addressable extraction cache and
//! an asynchronous job server over `pdn-core`.
//!
//! The expensive half of every analysis — mesh → BEM → reduction — is
//! determined entirely by the board's scenario-invariant inputs. This
//! crate exploits that end to end:
//!
//! * [`hash`]: [`BoardKey`] — an order-normalized SHA-256 content hash
//!   of [`pdn_core::BoardSpec::canonical_bytes`] plus a declaration-order
//!   layout signature.
//! * [`store`]: [`ExtractionCache`] — versioned, checksummed model files
//!   on disk (`PDN_CACHE_DIR`), an in-memory LRU, and single-flight
//!   deduplication so concurrent requests for one board cost one
//!   extraction. Cached models wire systems *bit-identical* to a fresh
//!   extraction.
//! * [`queue`]: [`JobQueue`] — worker threads draining per-client
//!   deficit-round-robin queues of [`AnalysisRequest`]s, streaming
//!   [`JobEvent`]s.
//! * [`server`]: [`PdnServer`] — a line-delimited TCP frontend over the
//!   named seed boards.
//!
//! See `docs/SERVICE.md` for the protocol, the canonical-hash rule, and
//! the operational knobs (`PDN_CACHE_VERIFY`, `PDN_SERVICE_STATS`,
//! `PDN_SERVICE_WORKERS`).
//!
//! # Example
//!
//! ```
//! use pdn_service::{AnalysisRequest, ExtractionCache, JobEvent, JobQueue};
//! use pdn_core::prelude::*;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dir = std::env::temp_dir().join("pdn-cache-doc-example");
//! let queue = JobQueue::with_workers(Arc::new(ExtractionCache::at(&dir, 4)), 1);
//! let plane = PlaneSpec::rectangle(mm(40.0), mm(30.0), 0.5e-3, 4.5)?
//!     .with_sheet_resistance(1e-3)
//!     .with_cell_size(mm(5.0));
//! let board = BoardSpec::new(plane, 3.3, Point::new(mm(2.0), mm(2.0)))
//!     .with_chip(ChipSpec::cmos("U1", Point::new(mm(30.0), mm(20.0)), 4));
//! let (_id, events) = queue.submit(
//!     "doc",
//!     AnalysisRequest::SwitchingSweep {
//!         board,
//!         selection: NodeSelection::PortsOnly,
//!         counts: vec![2, 4],
//!         t_stop: 5e-9,
//!         dt: 0.1e-9,
//!     },
//! )?;
//! let done = events.iter().find_map(|e| match e {
//!     JobEvent::Done { result, .. } => Some(result),
//!     _ => None,
//! });
//! assert!(done.is_some());
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

pub mod hash;
pub mod queue;
pub mod server;
pub mod sha256;
pub mod store;

pub use hash::BoardKey;
pub use queue::{AnalysisRequest, AnalysisResult, JobEvent, JobId, JobQueue, SubmitError};
pub use server::PdnServer;
pub use store::{
    deserialize_model, serialize_model, CacheOutcome, CacheStats, ExtractionCache, ModelFileError,
};
