//! Content addressing of extractions.
//!
//! An extraction is determined by the board's scenario-invariant inputs
//! plus the retained-node policy; [`BoardKey`] hashes both. Two hashes
//! make up the key:
//!
//! * **content** — SHA-256 of [`BoardSpec::canonical_bytes`] followed by
//!   a canonical encoding of the [`NodeSelection`]. Order-normalized:
//!   permuting port/chip/site declarations does not change it.
//! * **layout** — SHA-256 of the *declaration-order* port layout (plane
//!   ports, chips, decap sites, each with names where they have them).
//!   The extracted matrices are invariant under declaration order, but
//!   the port *table* (names, positions in the node list) is not; two
//!   permuted boards therefore share all the physics yet need distinct
//!   cached models. Keying on (content, layout) keeps every cached model
//!   bit-exact for its board with no permutation-on-load logic.
//!
//! The disk store maps a key to `<root>/<content-hex>/<layout-hex>.model`
//! so permuted variants of one board cluster in a directory.

use crate::sha256::{hex, Sha256};
use pdn_core::BoardSpec;
use pdn_extract::NodeSelection;
use pdn_num::ByteWriter;

/// The two-level content address of an extraction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BoardKey {
    /// Order-normalized content hash (physics + retained-node policy).
    pub content: [u8; 32],
    /// Declaration-order layout signature (port-table labeling).
    pub layout: [u8; 32],
}

impl BoardKey {
    /// Computes the key for extracting `board` with `selection`.
    pub fn of(board: &BoardSpec, selection: &NodeSelection) -> Self {
        let mut content = Sha256::new();
        content.update(&board.canonical_bytes());
        let mut sel = ByteWriter::new();
        write_selection(&mut sel, selection);
        content.update(sel.as_bytes());

        let mut w = ByteWriter::new();
        for (name, p) in board.plane.ports() {
            w.put_str(name);
            w.put_f64(p.x);
            w.put_f64(p.y);
        }
        w.put_u8(0xfe); // section separator
        for chip in &board.chips {
            w.put_str(&chip.name);
            w.put_f64(chip.location.x);
            w.put_f64(chip.location.y);
        }
        w.put_u8(0xfe);
        for p in board.site_plan() {
            w.put_f64(p.x);
            w.put_f64(p.y);
        }
        let mut layout = Sha256::new();
        layout.update(w.as_bytes());

        BoardKey {
            content: content.finalize(),
            layout: layout.finalize(),
        }
    }

    /// Lowercase-hex content hash (the cache directory name).
    pub fn content_hex(&self) -> String {
        hex(&self.content)
    }

    /// Lowercase-hex layout signature (the model file stem).
    pub fn layout_hex(&self) -> String {
        hex(&self.layout)
    }
}

/// Canonical encoding of the retained-node policy.
fn write_selection(w: &mut ByteWriter, selection: &NodeSelection) {
    match selection {
        NodeSelection::All => w.put_u8(0),
        NodeSelection::PortsOnly => w.put_u8(1),
        NodeSelection::PortsAndGrid { stride } => {
            w.put_u8(2);
            w.put_usize(*stride);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdn_core::{ChipSpec, PlaneSpec};
    use pdn_geom::units::mm;
    use pdn_geom::Point;

    fn board(chips_swapped: bool) -> BoardSpec {
        let plane = PlaneSpec::rectangle(mm(40.0), mm(30.0), 0.5e-3, 4.5)
            .unwrap()
            .with_sheet_resistance(1e-3)
            .with_cell_size(mm(5.0));
        let u1 = ChipSpec::cmos("U1", Point::new(mm(30.0), mm(20.0)), 4);
        let u2 = ChipSpec::cmos("U2", Point::new(mm(12.0), mm(8.0)), 2);
        let b = BoardSpec::new(plane, 3.3, Point::new(mm(2.0), mm(2.0)));
        if chips_swapped {
            b.with_chip(u2).with_chip(u1)
        } else {
            b.with_chip(u1).with_chip(u2)
        }
    }

    #[test]
    fn permuted_declarations_share_content_but_not_layout() {
        let sel = NodeSelection::PortsOnly;
        let a = BoardKey::of(&board(false), &sel);
        let b = BoardKey::of(&board(true), &sel);
        assert_eq!(a.content, b.content);
        assert_ne!(a.layout, b.layout);
    }

    #[test]
    fn selection_changes_content() {
        let a = BoardKey::of(&board(false), &NodeSelection::PortsOnly);
        let b = BoardKey::of(&board(false), &NodeSelection::PortsAndGrid { stride: 2 });
        let c = BoardKey::of(&board(false), &NodeSelection::PortsAndGrid { stride: 3 });
        assert_ne!(a.content, b.content);
        assert_ne!(b.content, c.content);
        assert_eq!(a.layout, b.layout, "selection is not part of the layout");
    }

    #[test]
    fn hex_is_stable_and_64_chars() {
        let k = BoardKey::of(&board(false), &NodeSelection::PortsOnly);
        assert_eq!(k.content_hex().len(), 64);
        assert_eq!(k.layout_hex().len(), 64);
        assert_eq!(k, BoardKey::of(&board(false), &NodeSelection::PortsOnly));
    }
}
