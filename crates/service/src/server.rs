//! Line-delimited TCP frontend to a [`JobQueue`].
//!
//! The wire format is deliberately primitive — one ASCII line per
//! request, one per event — so `nc` is a sufficient client and no
//! serialization of [`pdn_core::BoardSpec`] ever crosses the network.
//! Boards are referenced by the *named seed geometries* in
//! [`pdn_core::boards`] plus a mesh pitch; anything fancier should use
//! the in-process [`JobQueue`] API directly.
//!
//! ```text
//! → SWEEP <board> <cell_inch> <selection> <count,count,...> <t_stop> <dt>
//! → TRANSIENT <board> <cell_inch> <selection> <switching> <t_stop> <dt>
//! → STATS
//! → QUIT
//! ← JOB <id>                          (submission accepted)
//! ← EVENT <id> QUEUED <client>
//! ← EVENT <id> CACHE_HIT <tier>  |  EVENT <id> CACHE_MISS
//! ← EVENT <id> PROGRESS <stage>
//! ← EVENT <id> DONE <payload>
//! ← EVENT <id> FAILED <message>
//! ← STATS <counters>
//! ← ERR <message>                     (request never became a job)
//! ```
//!
//! `<board>` ∈ `ssn_study_a` | `post_layout_study_b`; `<selection>` ∈
//! `ports` | `grid:<stride>` | `all`. A `SWEEP` `DONE` payload is
//! `count:peak_noise` pairs. Each connection is one fair-queueing client
//! (keyed by peer address), so a busy neighbor cannot starve you.

use crate::queue::{AnalysisRequest, JobEvent, JobQueue};
use crate::store::CacheOutcome;
use pdn_core::{boards, BoardSpec};
use pdn_extract::NodeSelection;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

/// A listening analysis server. Dropping it stops accepting connections
/// (jobs already queued still drain through the [`JobQueue`]).
pub struct PdnServer {
    queue: Arc<JobQueue>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl PdnServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts accepting
    /// connections, each served by its own thread against `queue`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: impl ToSocketAddrs, queue: Arc<JobQueue>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let queue = Arc::clone(&queue);
            let stop = Arc::clone(&stop);
            thread::Builder::new()
                .name("pdn-service-accept".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        let queue = Arc::clone(&queue);
                        let _ = thread::Builder::new()
                            .name("pdn-service-conn".into())
                            .spawn(move || serve_connection(stream, &queue));
                    }
                })?
        };
        Ok(PdnServer {
            queue,
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The queue this server feeds.
    pub fn queue(&self) -> &Arc<JobQueue> {
        &self.queue
    }
}

impl Drop for PdnServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

/// Errors rendered to the client as `ERR <message>`.
fn parse_board(name: &str, cell_inch: f64) -> Result<BoardSpec, String> {
    match name {
        "ssn_study_a" => boards::ssn_study_a_board(cell_inch)
            .map_err(|e| format!("ssn_study_a at cell {cell_inch}in: {e}")),
        "post_layout_study_b" => boards::post_layout_study_b_board(cell_inch)
            .map_err(|e| format!("post_layout_study_b at cell {cell_inch}in: {e}")),
        other => Err(format!(
            "unknown board '{other}' (expected ssn_study_a or post_layout_study_b)"
        )),
    }
}

fn parse_selection(s: &str) -> Result<NodeSelection, String> {
    match s {
        "ports" => Ok(NodeSelection::PortsOnly),
        "all" => Ok(NodeSelection::All),
        _ => match s.strip_prefix("grid:") {
            Some(stride) => stride
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .map(|stride| NodeSelection::PortsAndGrid { stride })
                .ok_or_else(|| format!("bad grid stride in '{s}'")),
            None => Err(format!(
                "unknown selection '{s}' (expected ports, grid:<stride>, or all)"
            )),
        },
    }
}

fn parse_f64(what: &str, s: &str) -> Result<f64, String> {
    s.parse::<f64>()
        .ok()
        .filter(|v| v.is_finite())
        .ok_or_else(|| format!("bad {what} '{s}'"))
}

/// Parses one request line into an [`AnalysisRequest`].
fn parse_request(line: &str) -> Result<AnalysisRequest, String> {
    let fields: Vec<&str> = line.split_whitespace().collect();
    match fields.as_slice() {
        ["SWEEP", board, cell, selection, counts, t_stop, dt] => {
            let cell_inch = parse_f64("cell size", cell)?;
            let counts = counts
                .split(',')
                .filter(|c| !c.is_empty())
                .map(|c| c.parse::<usize>().map_err(|_| format!("bad count '{c}'")))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(AnalysisRequest::SwitchingSweep {
                board: parse_board(board, cell_inch)?,
                selection: parse_selection(selection)?,
                counts,
                t_stop: parse_f64("t_stop", t_stop)?,
                dt: parse_f64("dt", dt)?,
            })
        }
        ["TRANSIENT", board, cell, selection, switching, t_stop, dt] => {
            let cell_inch = parse_f64("cell size", cell)?;
            Ok(AnalysisRequest::Transient {
                board: parse_board(board, cell_inch)?,
                selection: parse_selection(selection)?,
                switching: switching
                    .parse()
                    .map_err(|_| format!("bad switching count '{switching}'"))?,
                t_stop: parse_f64("t_stop", t_stop)?,
                dt: parse_f64("dt", dt)?,
            })
        }
        [] => Err("empty request".into()),
        [verb, ..] => Err(format!(
            "unknown request '{verb}' (expected SWEEP, TRANSIENT, STATS, or QUIT)"
        )),
    }
}

fn render_event(event: &JobEvent) -> String {
    match event {
        JobEvent::Queued { job, client } => format!("EVENT {} QUEUED {client}", job.0),
        JobEvent::ExtractionCacheHit { job, tier } => {
            let tier = match tier {
                CacheOutcome::MemoryHit => "memory",
                CacheOutcome::DiskHit => "disk",
                CacheOutcome::Coalesced => "coalesced",
                CacheOutcome::Extracted => "extracted",
            };
            format!("EVENT {} CACHE_HIT {tier}", job.0)
        }
        JobEvent::ExtractionCacheMiss { job } => format!("EVENT {} CACHE_MISS", job.0),
        JobEvent::Progress { job, stage } => format!("EVENT {} PROGRESS {stage}", job.0),
        JobEvent::Done { job, result } => {
            let payload = match result {
                crate::queue::AnalysisResult::Sweep(rows) => rows
                    .iter()
                    .map(|(n, v)| format!("{n}:{v:.6e}"))
                    .collect::<Vec<_>>()
                    .join(" "),
                crate::queue::AnalysisResult::Transient(out) => {
                    format!("peak_noise {:.6e}", out.peak_noise)
                }
                crate::queue::AnalysisResult::Scenarios(outs) => outs
                    .iter()
                    .map(|o| format!("{:.6e}", o.peak_noise))
                    .collect::<Vec<_>>()
                    .join(" "),
                crate::queue::AnalysisResult::Decaps(plan) => format!(
                    "placed {} final_noise {:.6e}",
                    plan.chosen.len(),
                    plan.final_noise()
                ),
            };
            format!("EVENT {} DONE {payload}", job.0)
        }
        JobEvent::Failed { job, error } => {
            format!("EVENT {} FAILED {}", job.0, error.replace('\n', " "))
        }
    }
}

fn serve_connection(stream: TcpStream, queue: &Arc<JobQueue>) {
    let client = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "unknown".into());
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    // Event-forwarding threads interleave with command responses, one
    // line at a time.
    let writer = Arc::new(Mutex::new(stream));
    let write_line = |w: &Arc<Mutex<TcpStream>>, line: &str| {
        let mut w = w.lock().unwrap();
        let _ = writeln!(w, "{line}");
    };
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed == "QUIT" {
            break;
        }
        if trimmed == "STATS" {
            let s = queue.cache().stats();
            write_line(
                &writer,
                &format!(
                    "STATS memory_hits {} disk_hits {} extractions {} coalesced {} \
                     load_failures {}",
                    s.memory_hits, s.disk_hits, s.extractions, s.coalesced, s.load_failures
                ),
            );
            continue;
        }
        match parse_request(trimmed).map_err(|e| e.to_string()) {
            Err(msg) => write_line(&writer, &format!("ERR {msg}")),
            Ok(request) => match queue.submit(&client, request) {
                Err(e) => write_line(&writer, &format!("ERR {e}")),
                Ok((id, events)) => {
                    write_line(&writer, &format!("JOB {}", id.0));
                    let writer = Arc::clone(&writer);
                    let _ = thread::Builder::new()
                        .name("pdn-service-events".into())
                        .spawn(move || {
                            for event in events {
                                let line = render_event(&event);
                                let mut w = writer.lock().unwrap();
                                if writeln!(w, "{line}").is_err() {
                                    break;
                                }
                            }
                        });
                }
            },
        }
    }
}
