//! The extraction cache: versioned model files on disk, an in-memory LRU
//! tier, and single-flight deduplication of concurrent extractions.
//!
//! # Model file format
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"PDNMODL\0"
//! 8       4     format version (little-endian u32, currently 1)
//! 12      n     payload: ModelParts via the pdn_num codec
//! 12+n    32    SHA-256 of bytes [0, 12+n)
//! ```
//!
//! The trailing digest makes truncation and bit-rot loud: a file that
//! does not verify is reported on stderr, counted in
//! [`CacheStats::load_failures`], and treated as a miss (the model is
//! re-extracted and the entry rewritten). A version bump invalidates old
//! files the same way — there is no migration, extraction being the
//! source of truth.
//!
//! # Tiers and keys
//!
//! Models are addressed by [`BoardKey`] — `<root>/<content>/<layout>.model`
//! on disk (root from `PDN_CACHE_DIR` when set). A small LRU of
//! deserialized models sits in front of the disk tier. Concurrent
//! [`get_or_extract`](ExtractionCache::get_or_extract) calls for one key
//! are single-flighted: the first becomes the leader and extracts, the
//! rest block and adopt its result ([`CacheOutcome::Coalesced`]), so K
//! simultaneous jobs on an uncached board cost exactly one extraction.
//!
//! Set `PDN_CACHE_VERIFY=1` to re-read and re-encode every file just
//! after writing it, failing loudly if the round trip is not bit-exact.

use crate::hash::BoardKey;
use crate::sha256::{hex, sha256};
use pdn_core::{BoardSpec, BuildBoardError, ExtractedModel, ModelParts};
use pdn_extract::NodeSelection;
use pdn_num::{ByteReader, ByteWriter, CodecError, PoleResidueModel};
use pdn_shard::ShardReport;
use std::collections::HashSet;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Magic prefix of every model file.
pub const MODEL_MAGIC: [u8; 8] = *b"PDNMODL\0";
/// Current model file format version.
pub const MODEL_VERSION: u32 = 1;

/// Why a model file failed to load.
#[derive(Debug)]
pub enum ModelFileError {
    /// The file does not start with [`MODEL_MAGIC`].
    BadMagic,
    /// The file's format version is not [`MODEL_VERSION`].
    UnsupportedVersion(u32),
    /// Too short to even hold the header and digest.
    Truncated,
    /// The trailing SHA-256 does not match the content.
    ChecksumMismatch,
    /// The checksummed payload failed to decode (should not happen for a
    /// file we wrote; indicates a version-skew bug rather than bit-rot).
    Codec(CodecError),
}

impl fmt::Display for ModelFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelFileError::BadMagic => write!(f, "not a PDN model file (bad magic)"),
            ModelFileError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "model file version {v} (this build reads {MODEL_VERSION})"
                )
            }
            ModelFileError::Truncated => write!(f, "model file truncated"),
            ModelFileError::ChecksumMismatch => {
                write!(f, "model file checksum mismatch (corrupt or truncated)")
            }
            ModelFileError::Codec(e) => write!(f, "model payload decode failed: {e}"),
        }
    }
}

impl std::error::Error for ModelFileError {}

/// Serializes a model's [`ModelParts`] into the full file byte image
/// (header + payload + trailing digest).
pub fn serialize_model(parts: &ModelParts) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_raw(&MODEL_MAGIC);
    w.put_u32(MODEL_VERSION);
    parts.equivalent.write_to(&mut w);
    match &parts.shard_report {
        None => w.put_u8(0),
        Some(report) => {
            w.put_u8(1);
            report.write_to(&mut w);
        }
    }
    match &parts.reduced {
        None => w.put_u8(0),
        Some(rom) => {
            w.put_u8(1);
            rom.write_to(&mut w);
        }
    }
    w.put_f64(parts.supply_location.x);
    w.put_f64(parts.supply_location.y);
    for points in [&parts.chip_locations, &parts.sites] {
        w.put_usize(points.len());
        for p in points {
            w.put_f64(p.x);
            w.put_f64(p.y);
        }
    }
    let digest = sha256(w.as_bytes());
    w.put_raw(&digest);
    w.into_bytes()
}

/// Parses a full model file image back into [`ModelParts`].
///
/// # Errors
///
/// Any deviation from the documented format fails loudly — see
/// [`ModelFileError`].
pub fn deserialize_model(bytes: &[u8]) -> Result<ModelParts, ModelFileError> {
    if bytes.len() < MODEL_MAGIC.len() + 4 + 32 {
        return Err(ModelFileError::Truncated);
    }
    if bytes[..MODEL_MAGIC.len()] != MODEL_MAGIC {
        return Err(ModelFileError::BadMagic);
    }
    let (content, digest) = bytes.split_at(bytes.len() - 32);
    if sha256(content) != *digest {
        return Err(ModelFileError::ChecksumMismatch);
    }
    let mut r = ByteReader::new(&content[MODEL_MAGIC.len()..]);
    let version = r.get_u32().map_err(ModelFileError::Codec)?;
    if version != MODEL_VERSION {
        return Err(ModelFileError::UnsupportedVersion(version));
    }
    let parse = |r: &mut ByteReader| -> Result<ModelParts, CodecError> {
        let equivalent = pdn_extract::EquivalentCircuit::read_from(r)?;
        let shard_report = match r.get_u8()? {
            0 => None,
            1 => Some(ShardReport::read_from(r)?),
            other => {
                return Err(CodecError::Invalid(format!(
                    "shard-report flag must be 0 or 1, got {other}"
                )))
            }
        };
        let reduced = match r.get_u8()? {
            0 => None,
            1 => Some(Arc::new(PoleResidueModel::read_from(r)?)),
            other => {
                return Err(CodecError::Invalid(format!(
                    "reduction flag must be 0 or 1, got {other}"
                )))
            }
        };
        let point = |r: &mut ByteReader| -> Result<pdn_geom::Point, CodecError> {
            Ok(pdn_geom::Point::new(r.get_f64()?, r.get_f64()?))
        };
        let supply_location = point(r)?;
        let point_list = |r: &mut ByteReader| -> Result<Vec<pdn_geom::Point>, CodecError> {
            let n = r.get_usize()?;
            (0..n).map(|_| point(r)).collect()
        };
        let chip_locations = point_list(r)?;
        let sites = point_list(r)?;
        r.finish()?;
        Ok(ModelParts {
            equivalent,
            shard_report,
            reduced,
            supply_location,
            chip_locations,
            sites,
        })
    };
    parse(&mut r).map_err(ModelFileError::Codec)
}

/// Where a served model came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Found in the in-memory LRU tier.
    MemoryHit,
    /// Loaded and verified from the disk tier.
    DiskHit,
    /// Extracted fresh (and written back to both tiers).
    Extracted,
    /// Adopted from a concurrent extraction of the same key.
    Coalesced,
}

/// Monotone counters over a cache's lifetime (a snapshot; see
/// [`ExtractionCache::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests served from the LRU tier.
    pub memory_hits: usize,
    /// Requests served from disk.
    pub disk_hits: usize,
    /// Actual extractions performed.
    pub extractions: usize,
    /// Requests that adopted a concurrent extraction.
    pub coalesced: usize,
    /// Disk entries that failed to load (corrupt, truncated, version
    /// skew) and were re-extracted.
    pub load_failures: usize,
}

#[derive(Default)]
struct AtomicStats {
    memory_hits: AtomicUsize,
    disk_hits: AtomicUsize,
    extractions: AtomicUsize,
    coalesced: AtomicUsize,
    load_failures: AtomicUsize,
}

struct CacheState {
    /// LRU list, most recently used last.
    lru: Vec<(BoardKey, Arc<ExtractedModel>)>,
    /// Keys with an extraction (or disk load) in progress.
    in_flight: HashSet<BoardKey>,
}

/// The content-addressable extraction cache.
///
/// Cheap to share: wrap it in an [`Arc`] and call
/// [`get_or_extract`](ExtractionCache::get_or_extract) from any number of
/// threads.
pub struct ExtractionCache {
    root: PathBuf,
    capacity: usize,
    state: Mutex<CacheState>,
    flight_done: Condvar,
    stats: AtomicStats,
}

impl ExtractionCache {
    /// A cache rooted at `root` holding up to `capacity` models in
    /// memory.
    pub fn at(root: impl Into<PathBuf>, capacity: usize) -> Self {
        ExtractionCache {
            root: root.into(),
            capacity: capacity.max(1),
            state: Mutex::new(CacheState {
                lru: Vec::new(),
                in_flight: HashSet::new(),
            }),
            flight_done: Condvar::new(),
            stats: AtomicStats::default(),
        }
    }

    /// A cache rooted at `PDN_CACHE_DIR` (falling back to
    /// `<tmp>/pdn-cache`) with the default memory capacity of 8 models.
    pub fn from_env() -> Self {
        let root = std::env::var_os("PDN_CACHE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| std::env::temp_dir().join("pdn-cache"));
        Self::at(root, 8)
    }

    /// The on-disk location of `key`'s model file.
    pub fn model_path(&self, key: &BoardKey) -> PathBuf {
        self.root
            .join(key.content_hex())
            .join(format!("{}.model", key.layout_hex()))
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            memory_hits: self.stats.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.stats.disk_hits.load(Ordering::Relaxed),
            extractions: self.stats.extractions.load(Ordering::Relaxed),
            coalesced: self.stats.coalesced.load(Ordering::Relaxed),
            load_failures: self.stats.load_failures.load(Ordering::Relaxed),
        }
    }

    /// Returns `board`'s extraction for `selection`, from the cheapest
    /// tier that has it: memory, then disk, then a fresh extraction
    /// (memoized to both tiers). Concurrent calls for one key coalesce
    /// onto a single extraction.
    ///
    /// Cached models restore only the wiring closure
    /// ([`ModelParts`]); they wire systems bit-identical to the freshly
    /// extracted model but return `None` from [`ExtractedModel::plane`].
    ///
    /// # Errors
    ///
    /// Propagates the extraction's [`BuildBoardError`]. Disk *write*
    /// failures only warn on stderr — a read-only cache directory
    /// degrades to extract-always, it does not fail analyses.
    pub fn get_or_extract(
        &self,
        board: &BoardSpec,
        selection: &NodeSelection,
    ) -> Result<(Arc<ExtractedModel>, CacheOutcome), BuildBoardError> {
        // Pin the site plan exactly as ScenarioBatch::new does, so the
        // extraction (and its port layout) matches what any batch built
        // around this board expects. The canonical hash is already
        // site-plan based, so the key is unaffected.
        let board = {
            let mut b = board.clone();
            b.decap_sites = b.site_plan();
            b
        };
        let board = &board;
        let key = BoardKey::of(board, selection);
        let mut waited = false;
        // Tier 1 + single-flight admission.
        {
            let mut st = self.state.lock().unwrap();
            loop {
                if let Some(model) = Self::lru_get(&mut st, &key) {
                    let counter = if waited {
                        &self.stats.coalesced
                    } else {
                        &self.stats.memory_hits
                    };
                    counter.fetch_add(1, Ordering::Relaxed);
                    let outcome = if waited {
                        CacheOutcome::Coalesced
                    } else {
                        CacheOutcome::MemoryHit
                    };
                    return Ok((model, outcome));
                }
                if !st.in_flight.contains(&key) {
                    st.in_flight.insert(key.clone());
                    break; // we are the leader
                }
                waited = true;
                st = self.flight_done.wait(st).unwrap();
            }
        }
        let result = self.lead(board, selection, &key);
        {
            let mut st = self.state.lock().unwrap();
            if let Ok((model, _)) = &result {
                Self::lru_put(&mut st, self.capacity, &key, Arc::clone(model));
            }
            st.in_flight.remove(&key);
        }
        self.flight_done.notify_all();
        result
    }

    /// The leader's path: disk, then extraction with write-back.
    fn lead(
        &self,
        board: &BoardSpec,
        selection: &NodeSelection,
        key: &BoardKey,
    ) -> Result<(Arc<ExtractedModel>, CacheOutcome), BuildBoardError> {
        let path = self.model_path(key);
        if let Some(model) = self.load_disk(&path) {
            self.stats.disk_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::new(model), CacheOutcome::DiskHit));
        }
        let model = Arc::new(board.extract_model(selection)?);
        self.stats.extractions.fetch_add(1, Ordering::Relaxed);
        self.store_disk(&path, &model.to_parts());
        Ok((model, CacheOutcome::Extracted))
    }

    fn lru_get(st: &mut CacheState, key: &BoardKey) -> Option<Arc<ExtractedModel>> {
        let pos = st.lru.iter().position(|(k, _)| k == key)?;
        let entry = st.lru.remove(pos);
        let model = Arc::clone(&entry.1);
        st.lru.push(entry);
        Some(model)
    }

    fn lru_put(st: &mut CacheState, capacity: usize, key: &BoardKey, model: Arc<ExtractedModel>) {
        st.lru.retain(|(k, _)| k != key);
        st.lru.push((key.clone(), model));
        while st.lru.len() > capacity {
            st.lru.remove(0);
        }
    }

    /// Loads and verifies a model file; any failure (other than the file
    /// simply not existing) warns on stderr, bumps `load_failures`, and
    /// reads as a miss.
    fn load_disk(&self, path: &Path) -> Option<ExtractedModel> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
            Err(e) => {
                self.warn_load(path, &e.to_string());
                return None;
            }
        };
        match deserialize_model(&bytes) {
            Ok(parts) => Some(ExtractedModel::from_parts(parts)),
            Err(e) => {
                self.warn_load(path, &e.to_string());
                None
            }
        }
    }

    fn warn_load(&self, path: &Path, why: &str) {
        self.stats.load_failures.fetch_add(1, Ordering::Relaxed);
        eprintln!(
            "pdn-service: discarding cache entry {} ({why}); re-extracting",
            path.display()
        );
    }

    /// Writes a model file atomically (temp file + rename). With
    /// `PDN_CACHE_VERIFY=1`, reads the file back and panics unless the
    /// stored bytes and a re-encode of the re-decoded parts are both
    /// bit-identical to what was written.
    fn store_disk(&self, path: &Path, parts: &ModelParts) {
        let bytes = serialize_model(parts);
        let write = || -> std::io::Result<()> {
            let dir = path.parent().expect("model path has a parent");
            std::fs::create_dir_all(dir)?;
            let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
            std::fs::write(&tmp, &bytes)?;
            std::fs::rename(&tmp, path)?;
            Ok(())
        };
        if let Err(e) = write() {
            eprintln!(
                "pdn-service: failed to write cache entry {} ({e}); continuing uncached",
                path.display()
            );
            return;
        }
        if std::env::var("PDN_CACHE_VERIFY").as_deref() == Ok("1") {
            let readback = std::fs::read(path).expect("PDN_CACHE_VERIFY: re-read model file");
            assert_eq!(
                readback,
                bytes,
                "PDN_CACHE_VERIFY: {} differs from the written bytes",
                path.display()
            );
            let parts = deserialize_model(&readback).expect("PDN_CACHE_VERIFY: re-decode");
            assert_eq!(
                serialize_model(&parts),
                bytes,
                "PDN_CACHE_VERIFY: {} does not round-trip bit-exactly",
                path.display()
            );
        }
    }
}

impl fmt::Debug for ExtractionCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExtractionCache")
            .field("root", &self.root)
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

/// A hex digest of a full model file image — what
/// `PDN_CACHE_VERIFY` compares; exposed for tests asserting byte-level
/// round trips.
pub fn file_digest_hex(bytes: &[u8]) -> String {
    hex(&sha256(bytes))
}
