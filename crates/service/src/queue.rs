//! The asynchronous analysis job queue.
//!
//! [`JobQueue`] owns a pool of worker threads (default 2, overridable
//! with `PDN_SERVICE_WORKERS`) draining per-client job queues through a
//! deficit-round-robin scheduler, so one client's scenario flood cannot
//! starve another's single job. Every job routes its extraction through
//! the shared [`ExtractionCache`]: a warm board skips the mesh → BEM →
//! reduction flow entirely, and K concurrent jobs on one cold board
//! block on a single extraction.
//!
//! Submitting returns a [`JobId`] and a channel of [`JobEvent`]s —
//! `Queued`, then exactly one of `ExtractionCacheHit` / ­`Miss`, then
//! `Progress` lines, then `Done` or `Failed`. Malformed requests (empty
//! scenario/count/candidate lists) are rejected *at submission*, before
//! any queueing or extraction.
//!
//! Set `PDN_SERVICE_STATS=1` for one stderr line per completed job
//! (client, cache outcome, queue wait, run time).
//!
//! # Fairness
//!
//! Clients are visited round-robin; each visit credits the client's
//! deficit counter with a fixed quantum (4), and its head job is
//! dispatched once the deficit covers the job's cost — the number of
//! scenarios it will simulate. Cheap jobs from a new client therefore
//! overtake the backlog of a client that queued many expensive ones,
//! while the long-run share of simulation work stays proportional across
//! busy clients.

use crate::store::{CacheOutcome, ExtractionCache};
use pdn_core::{
    optimize_decaps_with_batch, BoardSpec, DecapPlan, DecapSpec, OptimizeSettings, Scenario,
    ScenarioBatch, SsnOutcome,
};
use pdn_extract::NodeSelection;
use std::collections::VecDeque;
use std::fmt;
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Instant;

/// Deficit credited per round-robin visit, in scenario-count units.
const QUANTUM: usize = 4;

/// Opaque job handle, unique within one [`JobQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// An analysis to run against a board.
#[derive(Debug, Clone)]
pub enum AnalysisRequest {
    /// [`pdn_core::cosim::ssn_switching_sweep`]: peak noise vs. number of
    /// switching drivers.
    SwitchingSweep {
        /// The board to analyze.
        board: BoardSpec,
        /// Retained-node policy for the extraction.
        selection: NodeSelection,
        /// Switching-driver counts to sweep (non-empty).
        counts: Vec<usize>,
        /// Transient duration (s).
        t_stop: f64,
        /// Transient time step (s).
        dt: f64,
    },
    /// One transient run with `switching` drivers active.
    Transient {
        /// The board to analyze.
        board: BoardSpec,
        /// Retained-node policy for the extraction.
        selection: NodeSelection,
        /// Number of switching drivers per chip.
        switching: usize,
        /// Transient duration (s).
        t_stop: f64,
        /// Transient time step (s).
        dt: f64,
    },
    /// A [`ScenarioBatch`] run over an explicit scenario list.
    Scenarios {
        /// The board to analyze.
        board: BoardSpec,
        /// Retained-node policy for the extraction.
        selection: NodeSelection,
        /// The scenarios to wire and simulate (non-empty).
        scenarios: Vec<Scenario>,
        /// Transient duration (s).
        t_stop: f64,
        /// Transient time step (s).
        dt: f64,
    },
    /// Greedy decap placement ([`pdn_core::optimize_decaps`]).
    OptimizeDecaps {
        /// The board to optimize.
        board: BoardSpec,
        /// Candidate capacitors (non-empty, distinct sites).
        candidates: Vec<DecapSpec>,
        /// Trial settings (includes the node selection).
        settings: OptimizeSettings,
    },
}

impl AnalysisRequest {
    /// Scheduling cost in scenario-count units (what one deficit unit
    /// pays for).
    fn cost(&self) -> usize {
        match self {
            AnalysisRequest::SwitchingSweep { counts, .. } => counts.len().max(1),
            AnalysisRequest::Transient { .. } => 1,
            AnalysisRequest::Scenarios { scenarios, .. } => scenarios.len().max(1),
            AnalysisRequest::OptimizeDecaps { candidates, .. } => candidates.len().max(1),
        }
    }

    /// Submission-time validation: reject malformed requests before they
    /// queue (and long before any extraction could start).
    fn validate(&self) -> Result<(), String> {
        match self {
            AnalysisRequest::SwitchingSweep { counts, .. } if counts.is_empty() => {
                Err("switching sweep needs at least one driver count; got an empty list".into())
            }
            AnalysisRequest::Scenarios { scenarios, .. } if scenarios.is_empty() => {
                Err("scenario list is empty; a batch needs at least one scenario".into())
            }
            AnalysisRequest::OptimizeDecaps { candidates, .. } if candidates.is_empty() => {
                Err("no candidate decap sites provided".into())
            }
            _ => Ok(()),
        }
    }
}

/// A finished job's payload, matching the request variant.
#[derive(Debug, Clone)]
pub enum AnalysisResult {
    /// `(driver count, peak noise V)` rows.
    Sweep(Vec<(usize, f64)>),
    /// The single transient outcome.
    Transient(Box<SsnOutcome>),
    /// One outcome per scenario, in request order.
    Scenarios(Vec<SsnOutcome>),
    /// The greedy placement plan.
    Decaps(DecapPlan),
}

/// Streamed lifecycle of a job.
#[derive(Debug, Clone)]
pub enum JobEvent {
    /// Accepted and queued under `client`.
    Queued {
        /// The job.
        job: JobId,
        /// Fair-queueing client identity it was filed under.
        client: String,
    },
    /// The board's extraction was served from a cache tier — no BEM
    /// assembly or factorization ran for this job.
    ExtractionCacheHit {
        /// The job.
        job: JobId,
        /// Which tier: memory, disk, or coalesced onto a concurrent
        /// extraction.
        tier: CacheOutcome,
    },
    /// The board was cold; this job performed the extraction (and warmed
    /// the cache).
    ExtractionCacheMiss {
        /// The job.
        job: JobId,
    },
    /// A coarse stage boundary.
    Progress {
        /// The job.
        job: JobId,
        /// Human-readable stage, e.g. `"simulating 5 scenarios"`.
        stage: String,
    },
    /// Finished successfully.
    Done {
        /// The job.
        job: JobId,
        /// The analysis payload.
        result: AnalysisResult,
    },
    /// Finished with an error.
    Failed {
        /// The job.
        job: JobId,
        /// Rendered error chain.
        error: String,
    },
}

impl JobEvent {
    /// The job this event belongs to.
    pub fn job(&self) -> JobId {
        match self {
            JobEvent::Queued { job, .. }
            | JobEvent::ExtractionCacheHit { job, .. }
            | JobEvent::ExtractionCacheMiss { job }
            | JobEvent::Progress { job, .. }
            | JobEvent::Done { job, .. }
            | JobEvent::Failed { job, .. } => *job,
        }
    }
}

/// Rejection at [`JobQueue::submit`] time.
#[derive(Debug)]
pub enum SubmitError {
    /// The request is malformed (see the message); nothing was queued.
    InvalidInput(String),
    /// The queue is shutting down.
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::InvalidInput(msg) => write!(f, "invalid job: {msg}"),
            SubmitError::ShuttingDown => write!(f, "job queue is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

struct Job {
    id: JobId,
    client: String,
    request: AnalysisRequest,
    events: Sender<JobEvent>,
    queued_at: Instant,
}

struct ClientQueue {
    name: String,
    deficit: usize,
    jobs: VecDeque<Job>,
}

struct QueueState {
    clients: Vec<ClientQueue>,
    /// Round-robin scan start.
    cursor: usize,
    next_id: u64,
    shutdown: bool,
}

struct Inner {
    cache: Arc<ExtractionCache>,
    state: Mutex<QueueState>,
    wake: Condvar,
}

/// The job server: worker threads + per-client fair queues + the shared
/// extraction cache.
pub struct JobQueue {
    inner: Arc<Inner>,
    handles: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl JobQueue {
    /// A queue with the default worker count: `PDN_SERVICE_WORKERS` when
    /// set, otherwise 2.
    pub fn new(cache: Arc<ExtractionCache>) -> Self {
        let workers = std::env::var("PDN_SERVICE_WORKERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2);
        Self::with_workers(cache, workers)
    }

    /// A queue with an explicit worker count (at least 1).
    pub fn with_workers(cache: Arc<ExtractionCache>, workers: usize) -> Self {
        let inner = Arc::new(Inner {
            cache,
            state: Mutex::new(QueueState {
                clients: Vec::new(),
                cursor: 0,
                next_id: 0,
                shutdown: false,
            }),
            wake: Condvar::new(),
        });
        let handles = (0..workers.max(1))
            .map(|k| {
                let inner = Arc::clone(&inner);
                thread::Builder::new()
                    .name(format!("pdn-service-worker-{k}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn service worker")
            })
            .collect();
        JobQueue {
            inner,
            handles: Mutex::new(handles),
        }
    }

    /// The shared extraction cache.
    pub fn cache(&self) -> &Arc<ExtractionCache> {
        &self.inner.cache
    }

    /// Validates and enqueues a job under `client`'s fair queue,
    /// returning its id and event stream. The stream starts with
    /// [`JobEvent::Queued`] and always terminates with `Done` or
    /// `Failed`.
    ///
    /// # Errors
    ///
    /// [`SubmitError::InvalidInput`] for malformed requests (rejected
    /// before anything queues or extracts) and
    /// [`SubmitError::ShuttingDown`] after [`shutdown`](Self::shutdown).
    pub fn submit(
        &self,
        client: &str,
        request: AnalysisRequest,
    ) -> Result<(JobId, Receiver<JobEvent>), SubmitError> {
        request.validate().map_err(SubmitError::InvalidInput)?;
        let (tx, rx) = mpsc::channel();
        let id = {
            let mut st = self.inner.state.lock().unwrap();
            if st.shutdown {
                return Err(SubmitError::ShuttingDown);
            }
            let id = JobId(st.next_id);
            st.next_id += 1;
            let _ = tx.send(JobEvent::Queued {
                job: id,
                client: client.to_string(),
            });
            let job = Job {
                id,
                client: client.to_string(),
                request,
                events: tx,
                queued_at: Instant::now(),
            };
            match st.clients.iter_mut().find(|c| c.name == client) {
                Some(q) => q.jobs.push_back(job),
                None => st.clients.push(ClientQueue {
                    name: client.to_string(),
                    deficit: 0,
                    jobs: VecDeque::from([job]),
                }),
            }
            id
        };
        self.inner.wake.notify_one();
        Ok((id, rx))
    }

    /// Stops accepting jobs, drains what is queued, and joins the
    /// workers. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        {
            let mut st = self.inner.state.lock().unwrap();
            st.shutdown = true;
        }
        self.inner.wake.notify_all();
        for h in self.handles.lock().unwrap().drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for JobQueue {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One DRR dispatch: scan clients round-robin from the cursor, crediting
/// each non-empty queue a quantum per visit and popping the first head
/// job whose cost is covered. Loops as long as any queue is non-empty, so
/// it returns `None` only when there is genuinely nothing to do.
fn drr_pop(st: &mut QueueState) -> Option<Job> {
    while st.clients.iter().any(|c| !c.jobs.is_empty()) {
        let n = st.clients.len();
        for step in 0..n {
            let i = (st.cursor + step) % n;
            let q = &mut st.clients[i];
            let Some(head_cost) = q.jobs.front().map(|j| j.request.cost()) else {
                continue;
            };
            q.deficit += QUANTUM;
            if q.deficit >= head_cost {
                q.deficit -= head_cost;
                let job = q.jobs.pop_front().expect("non-empty queue has a head");
                if q.jobs.is_empty() {
                    q.deficit = 0;
                }
                st.cursor = (i + 1) % n;
                return Some(job);
            }
        }
    }
    None
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut st = inner.state.lock().unwrap();
            loop {
                if let Some(job) = drr_pop(&mut st) {
                    break job;
                }
                if st.shutdown {
                    return;
                }
                st = inner.wake.wait(st).unwrap();
            }
        };
        run_job(inner, job);
    }
}

/// Renders an error chain as `outer: cause: cause`.
fn error_chain(e: &dyn std::error::Error) -> String {
    let mut msg = e.to_string();
    let mut src = e.source();
    while let Some(s) = src {
        let rendered = s.to_string();
        // Many layers already embed their source in Display; skip dups.
        if !msg.contains(&rendered) {
            msg.push_str(": ");
            msg.push_str(&rendered);
        }
        src = s.source();
    }
    msg
}

fn run_job(inner: &Inner, job: Job) {
    let waited = job.queued_at.elapsed();
    let started = Instant::now();
    let send = |event: JobEvent| {
        let _ = job.events.send(event);
    };
    let outcome = execute(inner, &job, &send);
    let stats_on = std::env::var("PDN_SERVICE_STATS").as_deref() == Ok("1");
    match outcome {
        Ok((result, cache)) => {
            if stats_on {
                eprintln!(
                    "pdn-service: {} client={} cache={:?} wait={:.1}ms run={:.1}ms",
                    job.id,
                    job.client,
                    cache,
                    waited.as_secs_f64() * 1e3,
                    started.elapsed().as_secs_f64() * 1e3,
                );
            }
            send(JobEvent::Done {
                job: job.id,
                result,
            });
        }
        Err(error) => {
            if stats_on {
                eprintln!(
                    "pdn-service: {} client={} FAILED after {:.1}ms: {error}",
                    job.id,
                    job.client,
                    started.elapsed().as_secs_f64() * 1e3,
                );
            }
            send(JobEvent::Failed { job: job.id, error });
        }
    }
}

/// Runs the job's analysis through the cache, emitting cache and
/// progress events. Returns the result plus the cache outcome (for the
/// stats line).
fn execute(
    inner: &Inner,
    job: &Job,
    send: &dyn Fn(JobEvent),
) -> Result<(AnalysisResult, CacheOutcome), String> {
    // Resolve the board whose extraction the job needs. For decap
    // optimization that is the search board with every candidate ported.
    let (mut board, selection) = match &job.request {
        AnalysisRequest::SwitchingSweep {
            board, selection, ..
        }
        | AnalysisRequest::Transient {
            board, selection, ..
        }
        | AnalysisRequest::Scenarios {
            board, selection, ..
        } => (board.clone(), *selection),
        AnalysisRequest::OptimizeDecaps {
            board,
            candidates,
            settings,
        } => {
            let base =
                pdn_core::decap_search_board(board, candidates).map_err(|e| error_chain(&e))?;
            (base, settings.selection)
        }
    };
    // Pin the site plan so the batch board below matches the port
    // layout the cache extracted (the cache pins identically).
    board.decap_sites = board.site_plan();
    let (model, cache_outcome) = inner
        .cache
        .get_or_extract(&board, &selection)
        .map_err(|e| error_chain(&e))?;
    match cache_outcome {
        CacheOutcome::Extracted => send(JobEvent::ExtractionCacheMiss { job: job.id }),
        tier => send(JobEvent::ExtractionCacheHit { job: job.id, tier }),
    }
    let batch = ScenarioBatch::with_model(&board, (*model).clone()).map_err(|e| error_chain(&e))?;

    let result = match &job.request {
        AnalysisRequest::SwitchingSweep {
            counts, t_stop, dt, ..
        } => {
            send(JobEvent::Progress {
                job: job.id,
                stage: format!("simulating {} driver counts", counts.len()),
            });
            let scenarios: Vec<Scenario> = counts.iter().map(|&n| Scenario::switching(n)).collect();
            let outs = batch
                .run(&scenarios, *t_stop, *dt)
                .map_err(|e| error_chain(&e))?;
            AnalysisResult::Sweep(
                counts
                    .iter()
                    .zip(outs)
                    .map(|(&n, o)| (n, o.peak_noise))
                    .collect(),
            )
        }
        AnalysisRequest::Transient {
            switching,
            t_stop,
            dt,
            ..
        } => {
            send(JobEvent::Progress {
                job: job.id,
                stage: format!("simulating transient with {switching} drivers"),
            });
            let outs = batch
                .run(&[Scenario::switching(*switching)], *t_stop, *dt)
                .map_err(|e| error_chain(&e))?;
            let out = outs.into_iter().next().expect("one scenario, one outcome");
            AnalysisResult::Transient(Box::new(out))
        }
        AnalysisRequest::Scenarios {
            scenarios,
            t_stop,
            dt,
            ..
        } => {
            send(JobEvent::Progress {
                job: job.id,
                stage: format!("simulating {} scenarios", scenarios.len()),
            });
            let outs = batch
                .run(scenarios, *t_stop, *dt)
                .map_err(|e| error_chain(&e))?;
            AnalysisResult::Scenarios(outs)
        }
        AnalysisRequest::OptimizeDecaps {
            candidates,
            settings,
            ..
        } => {
            send(JobEvent::Progress {
                job: job.id,
                stage: format!("greedy search over {} candidates", candidates.len()),
            });
            let plan = optimize_decaps_with_batch(&batch, candidates, settings)
                .map_err(|e| error_chain(&e))?;
            AnalysisResult::Decaps(plan)
        }
    };
    Ok((result, cache_outcome))
}
