//! Closed-form potential of a uniformly charged rectangle.
//!
//! The paper notes that "special techniques such as closed form formulas
//! have been applied in the evaluation of those integrals" — this module is
//! that technique. For an observation point at `(px, py, z)` relative to
//! the center of a `w × h` rectangle carrying unit surface density, the
//! integral
//!
//! ```text
//! I = ∬ dx' dy' / √((px−x')² + (py−y')² + z²)
//! ```
//!
//! has the exact antiderivative
//!
//! ```text
//! F(x, y) = x·asinh(y/√(x²+z²)) + y·asinh(x/√(y²+z²)) − z·atan2(x·y, z·r)
//! ```
//!
//! evaluated at the four corners. The `asinh` form is numerically stable
//! for all corner signs, including the singular in-plane self term.

/// A rectangle given by its full width and height (centered at the origin
/// of its own local frame).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rectangle {
    /// Full extent in x, meters.
    pub width: f64,
    /// Full extent in y, meters.
    pub height: f64,
}

impl Rectangle {
    /// Creates a rectangle.
    ///
    /// # Panics
    ///
    /// Panics unless both dimensions are positive.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(
            width > 0.0 && height > 0.0,
            "rectangle dimensions must be positive"
        );
        Rectangle { width, height }
    }

    /// Area in m².
    pub fn area(&self) -> f64 {
        self.width * self.height
    }
}

/// Corner antiderivative of the inverse-distance integral.
///
/// The potential depends only on `z²`, so the sign of `z` is dropped up
/// front to keep the `atan2` branch consistent.
fn corner_term(x: f64, y: f64, z: f64) -> f64 {
    let z = z.abs();
    let r = (x * x + y * y + z * z).sqrt();
    let mut f = 0.0;
    if x != 0.0 {
        let rho_x = (x * x + z * z).sqrt();
        f += x * (y / rho_x).asinh();
    }
    if y != 0.0 {
        let rho_y = (y * y + z * z).sqrt();
        f += y * (x / rho_y).asinh();
    }
    if z != 0.0 {
        f -= z * (x * y).atan2(z * r);
    }
    f
}

/// Exact `∬ 1/r dA'` over a rectangle, observation at `(px, py, z)`
/// relative to the rectangle center.
///
/// # Examples
///
/// ```
/// use pdn_greens::{rect_potential, Rectangle};
///
/// // Self term of a unit square: 4·ln(1+√2) ≈ 3.5255.
/// let v = rect_potential(0.0, 0.0, 0.0, Rectangle::new(1.0, 1.0));
/// assert!((v - 4.0 * (1.0 + 2.0f64.sqrt()).ln()).abs() < 1e-12);
/// ```
pub fn rect_potential(px: f64, py: f64, z: f64, rect: Rectangle) -> f64 {
    let x1 = -0.5 * rect.width - px;
    let x2 = 0.5 * rect.width - px;
    let y1 = -0.5 * rect.height - py;
    let y2 = 0.5 * rect.height - py;
    corner_term(x2, y2, z) - corner_term(x1, y2, z) - corner_term(x2, y1, z)
        + corner_term(x1, y1, z)
}

/// Fixed lane width of the batched corner kernel, shared with the dense
/// GEMM microkernel so the whole hot path uses one SIMD shape.
pub const LANES: usize = pdn_num::gemm::LANES;

/// Batched corner antiderivative: one lane group of observation points
/// against a shared out-of-plane depth `z`.
///
/// Per lane the arithmetic is **bit-identical** to [`corner_term`]: the
/// square roots and divisions are evaluated lane-wise in a vectorizable
/// pass (IEEE `sqrt`/`div` are exactly rounded, so SIMD and scalar agree
/// bit for bit), while `asinh`/`atan2` stay scalar per lane in the same
/// order as the scalar kernel. Lanes with a zero in-plane coordinate fall
/// back to the scalar kernel to reproduce its guard branches exactly.
fn corner_term_lanes(x: &[f64; LANES], y: &[f64; LANES], z: f64, out: &mut [f64; LANES]) {
    let z = z.abs();
    let mut rho_x = [0.0f64; LANES];
    let mut rho_y = [0.0f64; LANES];
    let mut ax = [0.0f64; LANES];
    let mut ay = [0.0f64; LANES];
    for q in 0..LANES {
        rho_x[q] = (x[q] * x[q] + z * z).sqrt();
        rho_y[q] = (y[q] * y[q] + z * z).sqrt();
        ax[q] = y[q] / rho_x[q];
        ay[q] = x[q] / rho_y[q];
    }
    if z != 0.0 {
        let mut r = [0.0f64; LANES];
        for q in 0..LANES {
            r[q] = (x[q] * x[q] + y[q] * y[q] + z * z).sqrt();
        }
        for q in 0..LANES {
            if x[q] != 0.0 && y[q] != 0.0 {
                let mut f = 0.0;
                f += x[q] * ax[q].asinh();
                f += y[q] * ay[q].asinh();
                f -= z * (x[q] * y[q]).atan2(z * r[q]);
                out[q] = f;
            } else {
                out[q] = corner_term(x[q], y[q], z);
            }
        }
    } else {
        for q in 0..LANES {
            if x[q] != 0.0 && y[q] != 0.0 {
                let mut f = 0.0;
                f += x[q] * ax[q].asinh();
                f += y[q] * ay[q].asinh();
                out[q] = f;
            } else {
                out[q] = corner_term(x[q], y[q], z);
            }
        }
    }
}

/// One lane group of [`rect_potential`] evaluations: [`LANES`] observation
/// points against a shared rectangle and depth. Bit-identical per lane to
/// the scalar function (same corner combination order).
pub(crate) fn rect_potential_lanes(
    px: &[f64; LANES],
    py: &[f64; LANES],
    z: f64,
    rect: Rectangle,
    out: &mut [f64; LANES],
) {
    let mut x1 = [0.0f64; LANES];
    let mut x2 = [0.0f64; LANES];
    let mut y1 = [0.0f64; LANES];
    let mut y2 = [0.0f64; LANES];
    for q in 0..LANES {
        x1[q] = -0.5 * rect.width - px[q];
        x2[q] = 0.5 * rect.width - px[q];
        y1[q] = -0.5 * rect.height - py[q];
        y2[q] = 0.5 * rect.height - py[q];
    }
    let mut c22 = [0.0f64; LANES];
    let mut c12 = [0.0f64; LANES];
    let mut c21 = [0.0f64; LANES];
    let mut c11 = [0.0f64; LANES];
    corner_term_lanes(&x2, &y2, z, &mut c22);
    corner_term_lanes(&x1, &y2, z, &mut c12);
    corner_term_lanes(&x2, &y1, z, &mut c21);
    corner_term_lanes(&x1, &y1, z, &mut c11);
    for q in 0..LANES {
        out[q] = c22[q] - c12[q] - c21[q] + c11[q];
    }
}

/// Batched [`rect_potential`]: evaluates the panel potential at every
/// `(px, py)` observation point (in [`LANES`]-wide groups, the final group
/// padded with benign values) against one shared rectangle and depth.
///
/// Each output element is **bit-identical** to the corresponding scalar
/// `rect_potential(px[i], py[i], z, rect)` call — the batch exists purely
/// to expose lane-level parallelism to the compiler.
///
/// # Panics
///
/// Panics when the slice lengths disagree.
///
/// # Examples
///
/// ```
/// use pdn_greens::{rect_potential, rect_potential_batch, Rectangle};
///
/// let rect = Rectangle::new(1.0, 2.0);
/// let px = [0.0, 0.3, -1.7];
/// let py = [0.0, 0.9, 0.4];
/// let mut out = [0.0; 3];
/// rect_potential_batch(&px, &py, 0.25, rect, &mut out);
/// for i in 0..3 {
///     assert_eq!(out[i], rect_potential(px[i], py[i], 0.25, rect));
/// }
/// ```
pub fn rect_potential_batch(px: &[f64], py: &[f64], z: f64, rect: Rectangle, out: &mut [f64]) {
    assert_eq!(px.len(), out.len(), "px/out length mismatch");
    assert_eq!(py.len(), out.len(), "py/out length mismatch");
    let mut i = 0;
    while i < out.len() {
        let m = (out.len() - i).min(LANES);
        let mut gx = [1.0f64; LANES];
        let mut gy = [1.0f64; LANES];
        gx[..m].copy_from_slice(&px[i..i + m]);
        gy[..m].copy_from_slice(&py[i..i + m]);
        let mut g = [0.0f64; LANES];
        rect_potential_lanes(&gx, &gy, z, rect, &mut g);
        out[i..i + m].copy_from_slice(&g[..m]);
        i += m;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdn_num::{approx_eq, GaussLegendre};

    #[test]
    fn unit_square_self_term() {
        let v = rect_potential(0.0, 0.0, 0.0, Rectangle::new(1.0, 1.0));
        let expect = 4.0 * (1.0 + 2.0f64.sqrt()).ln(); // 4·asinh(1)
        assert!(approx_eq(v, expect, 1e-13));
    }

    #[test]
    fn scales_linearly_with_size() {
        // 1/r kernel integrated over a 2D area has dimension length.
        let v1 = rect_potential(0.0, 0.0, 0.0, Rectangle::new(1.0, 1.0));
        let v2 = rect_potential(0.0, 0.0, 0.0, Rectangle::new(3.0, 3.0));
        assert!(approx_eq(v2, 3.0 * v1, 1e-12));
    }

    #[test]
    fn matches_quadrature_off_plane() {
        let rect = Rectangle::new(2.0, 1.0);
        let quad = GaussLegendre::new(24);
        for &(px, py, z) in &[(0.0, 0.0, 0.5), (1.5, 0.7, 0.3), (3.0, -2.0, 1.0)] {
            let exact = rect_potential(px, py, z, rect);
            let numeric = quad.integrate_2d(-1.0, 1.0, -0.5, 0.5, |x, y| {
                1.0 / ((px - x).powi(2) + (py - y).powi(2) + z * z).sqrt()
            });
            assert!(approx_eq(exact, numeric, 1e-6), "({px},{py},{z})");
        }
    }

    #[test]
    fn matches_quadrature_in_plane_outside() {
        let rect = Rectangle::new(1.0, 1.0);
        let quad = GaussLegendre::new(32);
        // Observation safely outside the rectangle, z = 0.
        for &(px, py) in &[(2.0, 0.0), (1.0, 1.5), (-3.0, 2.0)] {
            let exact = rect_potential(px, py, 0.0, rect);
            let numeric = quad.integrate_2d(-0.5, 0.5, -0.5, 0.5, |x, y| {
                1.0 / ((px - x).powi(2) + (py - y).powi(2)).sqrt()
            });
            assert!(approx_eq(exact, numeric, 1e-6), "({px},{py})");
        }
    }

    #[test]
    fn self_term_matches_polar_integration() {
        // Integrate 1/r over the unit square in polar coordinates:
        // ∫ dθ R(θ), with R(θ) the boundary distance — no singularity.
        let n = 200_000;
        let mut polar = 0.0;
        for i in 0..n {
            let th = (i as f64 + 0.5) / n as f64 * std::f64::consts::FRAC_PI_4;
            polar += 0.5 / th.cos() * (std::f64::consts::FRAC_PI_4 / n as f64);
        }
        polar *= 8.0; // eight symmetric octants
        let exact = rect_potential(0.0, 0.0, 0.0, Rectangle::new(1.0, 1.0));
        assert!(approx_eq(exact, polar, 1e-6));
    }

    #[test]
    fn far_field_reduces_to_point_charge() {
        let rect = Rectangle::new(1e-3, 2e-3);
        let d = 1.0;
        let v = rect_potential(d, 0.0, 0.0, rect);
        assert!(approx_eq(v, rect.area() / d, 1e-5));
    }

    #[test]
    fn observation_on_corner_is_finite() {
        let rect = Rectangle::new(1.0, 1.0);
        let v = rect_potential(0.5, 0.5, 0.0, rect);
        assert!(v.is_finite() && v > 0.0);
        // Corner value is exactly half the edge-midpoint value by symmetry
        // arguments? Not exactly — just check ordering: center > edge > corner.
        let center = rect_potential(0.0, 0.0, 0.0, rect);
        let edge = rect_potential(0.5, 0.0, 0.0, rect);
        assert!(center > edge && edge > v);
    }

    #[test]
    fn symmetry_under_reflection() {
        let rect = Rectangle::new(2.0, 1.0);
        let a = rect_potential(0.7, 0.3, 0.2, rect);
        assert!(approx_eq(a, rect_potential(-0.7, 0.3, 0.2, rect), 1e-13));
        assert!(approx_eq(a, rect_potential(0.7, -0.3, 0.2, rect), 1e-13));
        assert!(approx_eq(a, rect_potential(0.7, 0.3, -0.2, rect), 1e-13));
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_rectangle_panics() {
        let _ = Rectangle::new(0.0, 1.0);
    }

    #[test]
    fn batch_bit_identical_to_scalar() {
        let rect = Rectangle::new(1.3e-3, 0.7e-3);
        // Odd length (forces a padded tail group) with zero-coordinate
        // adversaries: on-axis, on-corner, in-plane, and generic points.
        let px = [
            0.0, 0.65e-3, -0.65e-3, 1e-3, -2.3e-3, 0.0, 3.1e-3, 0.65e-3, -4e-3, 0.2e-3, 0.0,
        ];
        let py = [
            0.0, 0.35e-3, 0.0, 2e-3, 0.35e-3, -0.35e-3, 0.9e-3, -0.35e-3, 0.0, -1.1e-3, 5e-3,
        ];
        for &z in &[0.0, 0.4e-3, -0.4e-3, 2.7e-3] {
            let mut out = vec![0.0; px.len()];
            rect_potential_batch(&px, &py, z, rect, &mut out);
            for i in 0..px.len() {
                let scalar = rect_potential(px[i], py[i], z, rect);
                assert_eq!(
                    out[i].to_bits(),
                    scalar.to_bits(),
                    "lane {i} z={z}: {} vs {}",
                    out[i],
                    scalar
                );
            }
        }
    }

    #[test]
    fn batch_grouping_does_not_change_values() {
        // The same point must produce the same bits whether it lands in a
        // full lane group or the padded tail.
        let rect = Rectangle::new(1.0, 1.0);
        let px: Vec<f64> = (0..19).map(|i| 0.3 * i as f64 - 2.0).collect();
        let py: Vec<f64> = (0..19).map(|i| 0.1 * i as f64).collect();
        let mut full = vec![0.0; 19];
        rect_potential_batch(&px, &py, 0.2, rect, &mut full);
        let mut tail = vec![0.0; 3];
        rect_potential_batch(&px[16..], &py[16..], 0.2, rect, &mut tail);
        for i in 0..3 {
            assert_eq!(full[16 + i].to_bits(), tail[i].to_bits());
        }
    }
}
