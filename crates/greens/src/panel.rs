//! Closed-form potential of a uniformly charged rectangle.
//!
//! The paper notes that "special techniques such as closed form formulas
//! have been applied in the evaluation of those integrals" — this module is
//! that technique. For an observation point at `(px, py, z)` relative to
//! the center of a `w × h` rectangle carrying unit surface density, the
//! integral
//!
//! ```text
//! I = ∬ dx' dy' / √((px−x')² + (py−y')² + z²)
//! ```
//!
//! has the exact antiderivative
//!
//! ```text
//! F(x, y) = x·asinh(y/√(x²+z²)) + y·asinh(x/√(y²+z²)) − z·atan2(x·y, z·r)
//! ```
//!
//! evaluated at the four corners. The `asinh` form is numerically stable
//! for all corner signs, including the singular in-plane self term.

/// A rectangle given by its full width and height (centered at the origin
/// of its own local frame).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rectangle {
    /// Full extent in x, meters.
    pub width: f64,
    /// Full extent in y, meters.
    pub height: f64,
}

impl Rectangle {
    /// Creates a rectangle.
    ///
    /// # Panics
    ///
    /// Panics unless both dimensions are positive.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(
            width > 0.0 && height > 0.0,
            "rectangle dimensions must be positive"
        );
        Rectangle { width, height }
    }

    /// Area in m².
    pub fn area(&self) -> f64 {
        self.width * self.height
    }
}

/// Corner antiderivative of the inverse-distance integral.
///
/// The potential depends only on `z²`, so the sign of `z` is dropped up
/// front to keep the `atan2` branch consistent.
fn corner_term(x: f64, y: f64, z: f64) -> f64 {
    let z = z.abs();
    let r = (x * x + y * y + z * z).sqrt();
    let mut f = 0.0;
    if x != 0.0 {
        let rho_x = (x * x + z * z).sqrt();
        f += x * (y / rho_x).asinh();
    }
    if y != 0.0 {
        let rho_y = (y * y + z * z).sqrt();
        f += y * (x / rho_y).asinh();
    }
    if z != 0.0 {
        f -= z * (x * y).atan2(z * r);
    }
    f
}

/// Exact `∬ 1/r dA'` over a rectangle, observation at `(px, py, z)`
/// relative to the rectangle center.
///
/// # Examples
///
/// ```
/// use pdn_greens::{rect_potential, Rectangle};
///
/// // Self term of a unit square: 4·ln(1+√2) ≈ 3.5255.
/// let v = rect_potential(0.0, 0.0, 0.0, Rectangle::new(1.0, 1.0));
/// assert!((v - 4.0 * (1.0 + 2.0f64.sqrt()).ln()).abs() < 1e-12);
/// ```
pub fn rect_potential(px: f64, py: f64, z: f64, rect: Rectangle) -> f64 {
    let x1 = -0.5 * rect.width - px;
    let x2 = 0.5 * rect.width - px;
    let y1 = -0.5 * rect.height - py;
    let y2 = 0.5 * rect.height - py;
    corner_term(x2, y2, z) - corner_term(x1, y2, z) - corner_term(x2, y1, z)
        + corner_term(x1, y1, z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdn_num::{approx_eq, GaussLegendre};

    #[test]
    fn unit_square_self_term() {
        let v = rect_potential(0.0, 0.0, 0.0, Rectangle::new(1.0, 1.0));
        let expect = 4.0 * (1.0 + 2.0f64.sqrt()).ln(); // 4·asinh(1)
        assert!(approx_eq(v, expect, 1e-13));
    }

    #[test]
    fn scales_linearly_with_size() {
        // 1/r kernel integrated over a 2D area has dimension length.
        let v1 = rect_potential(0.0, 0.0, 0.0, Rectangle::new(1.0, 1.0));
        let v2 = rect_potential(0.0, 0.0, 0.0, Rectangle::new(3.0, 3.0));
        assert!(approx_eq(v2, 3.0 * v1, 1e-12));
    }

    #[test]
    fn matches_quadrature_off_plane() {
        let rect = Rectangle::new(2.0, 1.0);
        let quad = GaussLegendre::new(24);
        for &(px, py, z) in &[(0.0, 0.0, 0.5), (1.5, 0.7, 0.3), (3.0, -2.0, 1.0)] {
            let exact = rect_potential(px, py, z, rect);
            let numeric = quad.integrate_2d(-1.0, 1.0, -0.5, 0.5, |x, y| {
                1.0 / ((px - x).powi(2) + (py - y).powi(2) + z * z).sqrt()
            });
            assert!(approx_eq(exact, numeric, 1e-6), "({px},{py},{z})");
        }
    }

    #[test]
    fn matches_quadrature_in_plane_outside() {
        let rect = Rectangle::new(1.0, 1.0);
        let quad = GaussLegendre::new(32);
        // Observation safely outside the rectangle, z = 0.
        for &(px, py) in &[(2.0, 0.0), (1.0, 1.5), (-3.0, 2.0)] {
            let exact = rect_potential(px, py, 0.0, rect);
            let numeric = quad.integrate_2d(-0.5, 0.5, -0.5, 0.5, |x, y| {
                1.0 / ((px - x).powi(2) + (py - y).powi(2)).sqrt()
            });
            assert!(approx_eq(exact, numeric, 1e-6), "({px},{py})");
        }
    }

    #[test]
    fn self_term_matches_polar_integration() {
        // Integrate 1/r over the unit square in polar coordinates:
        // ∫ dθ R(θ), with R(θ) the boundary distance — no singularity.
        let n = 200_000;
        let mut polar = 0.0;
        for i in 0..n {
            let th = (i as f64 + 0.5) / n as f64 * std::f64::consts::FRAC_PI_4;
            polar += 0.5 / th.cos() * (std::f64::consts::FRAC_PI_4 / n as f64);
        }
        polar *= 8.0; // eight symmetric octants
        let exact = rect_potential(0.0, 0.0, 0.0, Rectangle::new(1.0, 1.0));
        assert!(approx_eq(exact, polar, 1e-6));
    }

    #[test]
    fn far_field_reduces_to_point_charge() {
        let rect = Rectangle::new(1e-3, 2e-3);
        let d = 1.0;
        let v = rect_potential(d, 0.0, 0.0, rect);
        assert!(approx_eq(v, rect.area() / d, 1e-5));
    }

    #[test]
    fn observation_on_corner_is_finite() {
        let rect = Rectangle::new(1.0, 1.0);
        let v = rect_potential(0.5, 0.5, 0.0, rect);
        assert!(v.is_finite() && v > 0.0);
        // Corner value is exactly half the edge-midpoint value by symmetry
        // arguments? Not exactly — just check ordering: center > edge > corner.
        let center = rect_potential(0.0, 0.0, 0.0, rect);
        let edge = rect_potential(0.5, 0.0, 0.0, rect);
        assert!(center > edge && edge > v);
    }

    #[test]
    fn symmetry_under_reflection() {
        let rect = Rectangle::new(2.0, 1.0);
        let a = rect_potential(0.7, 0.3, 0.2, rect);
        assert!(approx_eq(a, rect_potential(-0.7, 0.3, 0.2, rect), 1e-13));
        assert!(approx_eq(a, rect_potential(0.7, -0.3, 0.2, rect), 1e-13));
        assert!(approx_eq(a, rect_potential(0.7, 0.3, -0.2, rect), 1e-13));
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_rectangle_panics() {
        let _ = Rectangle::new(0.0, 1.0);
    }
}
