//! Image-series representations of the layered-substrate Green's functions.
//!
//! Every quasi-static kernel used by the BEM is a finite sum of
//! inverse-distance terms
//!
//! ```text
//! G(ρ) = Σₙ cₙ / √(ρ² + aₙ²)
//! ```
//!
//! where `aₙ` is the out-of-plane depth of image `n` and `cₙ` its weight.
//! Three constructions cover the paper's structures:
//!
//! * [`LayeredKernel::free_space`] — homogeneous dielectric, no ground.
//! * [`LayeredKernel::scalar_confined`] — conductor over a ground plane with
//!   the dielectric treated as filling all space (exact image theory). This
//!   is the plane-pair workhorse: the field of a power/ground pair is
//!   confined between the plates, so a single negative image at depth `2d`
//!   captures the return path.
//! * [`LayeredKernel::scalar_microstrip`] — conductor on top of a grounded
//!   dielectric slab with air above (the patch/trace case). The classical
//!   successive-image expansion in the reflection coefficient
//!   `K = (εr−1)/(εr+1)`:
//!
//!   ```text
//!   G(ρ) = 1/(2πε₀(1+εr)) Σₙ (−K)ⁿ [ (ρ²+(2nh)²)^{-1/2} − (ρ²+((2n+2)h)²)^{-1/2} ]
//!   ```
//!
//!   which reduces to the perfect-ground image pair for `εr = 1` and
//!   reproduces the parallel-plate capacitance `ε/h` in the wide-plate
//!   limit (both verified in the tests).
//!
//! The magnetostatic vector-potential kernel sees no dielectric at all, so
//! [`LayeredKernel::vector_potential`] is always the perfect-ground pair
//! weighted by `μ₀/4π`.

use crate::panel::{rect_potential, rect_potential_lanes, Rectangle, LANES};
use pdn_num::phys::{EPS0, MU0};
use std::f64::consts::PI;

/// One image source: an inverse-distance term at out-of-plane depth
/// `depth` with weight `coeff`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImageTerm {
    /// Multiplicative weight of the term.
    pub coeff: f64,
    /// Out-of-plane offset of the image, meters (0 = in-plane source).
    pub depth: f64,
}

/// A quasi-static layered-substrate Green's function as a finite image
/// series.
///
/// # Examples
///
/// ```
/// use pdn_greens::LayeredKernel;
///
/// let g = LayeredKernel::free_space(1.0);
/// // Free space: G(1 m) = 1/(4πε₀) ≈ 8.99e9.
/// assert!((g.eval(1.0) - 8.99e9).abs() / 8.99e9 < 1e-3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LayeredKernel {
    terms: Vec<ImageTerm>,
}

impl LayeredKernel {
    /// Builds a kernel from raw image terms.
    pub fn from_terms(terms: Vec<ImageTerm>) -> Self {
        LayeredKernel { terms }
    }

    /// Scalar-potential kernel in a homogeneous dielectric, no ground plane:
    /// `G(ρ) = 1/(4πε₀εr·ρ)`.
    pub fn free_space(eps_r: f64) -> Self {
        LayeredKernel {
            terms: vec![ImageTerm {
                coeff: 1.0 / (4.0 * PI * EPS0 * eps_r),
                depth: 0.0,
            }],
        }
    }

    /// Scalar-potential kernel for a conductor at height `d` over a ground
    /// plane, dielectric `eps_r` treated as homogeneous (field confined
    /// between the plates — the power/ground plane-pair model).
    ///
    /// `G(ρ) = 1/(4πε₀εr) · [ 1/ρ − 1/√(ρ²+(2d)²) ]`
    pub fn scalar_confined(eps_r: f64, d: f64) -> Self {
        let c = 1.0 / (4.0 * PI * EPS0 * eps_r);
        LayeredKernel {
            terms: vec![
                ImageTerm {
                    coeff: c,
                    depth: 0.0,
                },
                ImageTerm {
                    coeff: -c,
                    depth: 2.0 * d,
                },
            ],
        }
    }

    /// Scalar-potential kernel for a conductor **on** a grounded dielectric
    /// slab of thickness `h` and permittivity `eps_r`, air above — the
    /// microstrip patch/trace substrate. Truncated after `n_terms` image
    /// pairs (the series converges geometrically in `K`).
    ///
    /// # Panics
    ///
    /// Panics if `n_terms == 0`.
    pub fn scalar_microstrip(eps_r: f64, h: f64, n_terms: usize) -> Self {
        assert!(n_terms > 0, "need at least one image term");
        let k = (eps_r - 1.0) / (eps_r + 1.0);
        let front = 1.0 / (2.0 * PI * EPS0 * (1.0 + eps_r));
        let mut terms = Vec::with_capacity(2 * n_terms);
        let mut w = front;
        for n in 0..n_terms {
            terms.push(ImageTerm {
                coeff: w,
                depth: 2.0 * n as f64 * h,
            });
            terms.push(ImageTerm {
                coeff: -w,
                depth: 2.0 * (n as f64 + 1.0) * h,
            });
            w *= -k;
        }
        LayeredKernel { terms }
    }

    /// Vector-potential kernel for currents at height `d` over a ground
    /// plane: `G_A(ρ) = μ₀/4π · [ 1/ρ − 1/√(ρ²+(2d)²) ]`.
    ///
    /// The negative image encodes the return current induced in the ground
    /// plane; dielectrics are magnetically transparent.
    pub fn vector_potential(d: f64) -> Self {
        let c = MU0 / (4.0 * PI);
        LayeredKernel {
            terms: vec![
                ImageTerm {
                    coeff: c,
                    depth: 0.0,
                },
                ImageTerm {
                    coeff: -c,
                    depth: 2.0 * d,
                },
            ],
        }
    }

    /// Vector-potential kernel with no ground plane (isolated conductor):
    /// `G_A(ρ) = μ₀/(4πρ)`.
    pub fn vector_potential_free() -> Self {
        LayeredKernel {
            terms: vec![ImageTerm {
                coeff: MU0 / (4.0 * PI),
                depth: 0.0,
            }],
        }
    }

    /// The image terms.
    pub fn terms(&self) -> &[ImageTerm] {
        &self.terms
    }

    /// Evaluates the kernel at in-plane distance `rho`.
    ///
    /// Diverges as `c₀/ρ` for `ρ → 0` (the `depth = 0` source term); use
    /// [`panel_integral`](Self::panel_integral) for self and near terms.
    pub fn eval(&self, rho: f64) -> f64 {
        self.terms
            .iter()
            .map(|t| t.coeff / (rho * rho + t.depth * t.depth).sqrt())
            .sum()
    }

    /// Exact integral of the kernel over a rectangular source panel, as
    /// seen from an in-plane observation point:
    /// `∫_panel G(|r_obs − r'|) dA'`.
    ///
    /// Each image term is integrated with the closed-form potential of a
    /// uniformly charged rectangle, so the result is accurate even for the
    /// singular self term (`obs` inside the panel).
    ///
    /// `obs` is the observation point *relative to the panel center*.
    ///
    /// # Examples
    ///
    /// ```
    /// use pdn_greens::{LayeredKernel, Rectangle};
    ///
    /// let g = LayeredKernel::free_space(1.0);
    /// let panel = Rectangle::new(1e-3, 1e-3);
    /// let self_term = g.panel_integral((0.0, 0.0), panel);
    /// assert!(self_term > 0.0);
    /// ```
    pub fn panel_integral(&self, obs: (f64, f64), panel: Rectangle) -> f64 {
        self.terms
            .iter()
            .map(|t| t.coeff * rect_potential(obs.0, obs.1, t.depth, panel))
            .sum()
    }

    /// Galerkin double integral
    /// `(1/A_obs) ∫_obs ∫_src G dA' dA`,
    /// i.e. the source-panel integral averaged over the observation panel
    /// with an `n × n` Gauss–Legendre rule.
    ///
    /// The inner (singular) integral is closed form; the outer integrand is
    /// continuous, so modest quadrature orders converge fast.
    ///
    /// `offset` is the vector from the source-panel center to the
    /// observation-panel center.
    pub fn panel_galerkin(
        &self,
        offset: (f64, f64),
        obs_panel: Rectangle,
        src_panel: Rectangle,
        quad: &pdn_num::GaussLegendre,
    ) -> f64 {
        let mut sum = 0.0;
        let mut wsum = 0.0;
        for (&xi, &wi) in quad.nodes().iter().zip(quad.weights()) {
            let ox = offset.0 + 0.5 * obs_panel.width * xi;
            for (&yj, &wj) in quad.nodes().iter().zip(quad.weights()) {
                let oy = offset.1 + 0.5 * obs_panel.height * yj;
                sum += wi * wj * self.panel_integral((ox, oy), src_panel);
                wsum += wi * wj;
            }
        }
        sum / wsum
    }

    /// One lane group of panel integrals: [`LANES`] observation points
    /// against one shared source panel, with the per-lane image-term sum
    /// accumulated in exactly the scalar
    /// [`panel_integral`](Self::panel_integral) order.
    fn panel_integral_group(
        &self,
        px: &[f64; LANES],
        py: &[f64; LANES],
        panel: Rectangle,
    ) -> [f64; LANES] {
        let mut acc = [0.0f64; LANES];
        let mut tmp = [0.0f64; LANES];
        for t in &self.terms {
            rect_potential_lanes(px, py, t.depth, panel, &mut tmp);
            for q in 0..LANES {
                acc[q] += t.coeff * tmp[q];
            }
        }
        acc
    }

    /// Batched [`panel_integral`](Self::panel_integral): evaluates the
    /// source-panel integral at every observation point `(obs_x[i],
    /// obs_y[i])` in [`LANES`]-wide groups (final group padded with benign
    /// values).
    ///
    /// Each output element is **bit-identical** to the corresponding scalar
    /// `panel_integral((obs_x[i], obs_y[i]), panel)` call — same corner
    /// combination, same image-term summation order — so dense BEM assembly
    /// built on this batch reproduces the scalar assembly exactly.
    ///
    /// # Panics
    ///
    /// Panics when the slice lengths disagree.
    ///
    /// # Examples
    ///
    /// ```
    /// use pdn_greens::{LayeredKernel, Rectangle};
    ///
    /// let g = LayeredKernel::scalar_confined(4.0, 0.5e-3);
    /// let panel = Rectangle::new(1e-3, 1e-3);
    /// let (px, py) = ([0.0, 3e-3, -2e-3], [0.0, 1e-3, 4e-3]);
    /// let mut out = [0.0; 3];
    /// g.panel_integral_batch(&px, &py, panel, &mut out);
    /// for i in 0..3 {
    ///     assert_eq!(out[i], g.panel_integral((px[i], py[i]), panel));
    /// }
    /// ```
    pub fn panel_integral_batch(
        &self,
        obs_x: &[f64],
        obs_y: &[f64],
        panel: Rectangle,
        out: &mut [f64],
    ) {
        assert_eq!(obs_x.len(), out.len(), "obs_x/out length mismatch");
        assert_eq!(obs_y.len(), out.len(), "obs_y/out length mismatch");
        let mut i = 0;
        while i < out.len() {
            let m = (out.len() - i).min(LANES);
            let mut px = [1.0f64; LANES];
            let mut py = [1.0f64; LANES];
            px[..m].copy_from_slice(&obs_x[i..i + m]);
            py[..m].copy_from_slice(&obs_y[i..i + m]);
            let acc = self.panel_integral_group(&px, &py, panel);
            out[i..i + m].copy_from_slice(&acc[..m]);
            i += m;
        }
    }

    /// Batched [`panel_galerkin`](Self::panel_galerkin): the Galerkin
    /// double integral for every center-to-center offset `(off_x[i],
    /// off_y[i])`, sharing one observation/source panel pair and quadrature
    /// rule across the batch.
    ///
    /// The quadrature nodes are hoisted out of the batch loop (they do not
    /// depend on the offset), and the inner closed-form integral runs
    /// through the lane-group kernel; per-element results are
    /// **bit-identical** to the scalar method.
    ///
    /// # Panics
    ///
    /// Panics when the slice lengths disagree.
    pub fn panel_galerkin_batch(
        &self,
        off_x: &[f64],
        off_y: &[f64],
        obs_panel: Rectangle,
        src_panel: Rectangle,
        quad: &pdn_num::GaussLegendre,
        out: &mut [f64],
    ) {
        assert_eq!(off_x.len(), out.len(), "off_x/out length mismatch");
        assert_eq!(off_y.len(), out.len(), "off_y/out length mismatch");
        let mut i = 0;
        while i < out.len() {
            let m = (out.len() - i).min(LANES);
            let mut gx = [1.0f64; LANES];
            let mut gy = [1.0f64; LANES];
            gx[..m].copy_from_slice(&off_x[i..i + m]);
            gy[..m].copy_from_slice(&off_y[i..i + m]);
            let mut sum = [0.0f64; LANES];
            let mut wsum = 0.0;
            let mut px = [0.0f64; LANES];
            let mut py = [0.0f64; LANES];
            for (&xi, &wi) in quad.nodes().iter().zip(quad.weights()) {
                for q in 0..LANES {
                    px[q] = gx[q] + 0.5 * obs_panel.width * xi;
                }
                for (&yj, &wj) in quad.nodes().iter().zip(quad.weights()) {
                    for q in 0..LANES {
                        py[q] = gy[q] + 0.5 * obs_panel.height * yj;
                    }
                    let g = self.panel_integral_group(&px, &py, src_panel);
                    let w = wi * wj;
                    for q in 0..LANES {
                        sum[q] += w * g[q];
                    }
                    wsum += w;
                }
            }
            for q in 0..m {
                out[i + q] = sum[q] / wsum;
            }
            i += m;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdn_num::approx_eq;

    #[test]
    fn free_space_is_coulomb() {
        let g = LayeredKernel::free_space(1.0);
        let expect = 1.0 / (4.0 * PI * EPS0);
        assert!(approx_eq(g.eval(1.0), expect, 1e-12));
        assert!(approx_eq(g.eval(2.0), expect / 2.0, 1e-12));
    }

    #[test]
    fn confined_matches_microstrip_for_eps_one() {
        // With εr = 1 the slab disappears: both kernels must be the simple
        // perfect-ground image pair.
        let d = 1e-3;
        let a = LayeredKernel::scalar_confined(1.0, d);
        let b = LayeredKernel::scalar_microstrip(1.0, d, 8);
        for &rho in &[1e-4, 1e-3, 5e-3, 2e-2] {
            assert!(approx_eq(a.eval(rho), b.eval(rho), 1e-10), "rho={rho}");
        }
    }

    #[test]
    fn ground_image_creates_dipole_decay() {
        let d = 0.5e-3;
        let g = LayeredKernel::scalar_confined(4.0, d);
        // Far away, a source + opposite image decays like 1/ρ³ (dipole),
        // so doubling ρ should reduce the kernel by ~8×.
        let g1 = g.eval(50e-3);
        let g2 = g.eval(100e-3);
        let ratio = g1 / g2;
        assert!(ratio > 7.0 && ratio < 9.0, "ratio={ratio}");
    }

    #[test]
    fn microstrip_parallel_plate_limit() {
        // Integrating the microstrip kernel over a huge sheet of unit
        // charge density must give V = h/(ε₀·εr): the parallel-plate
        // capacitor result. Integrate term by term analytically:
        // ∫ dA/√(ρ²+a²) over all plane from a disc of radius R →
        // 2π(√(R²+a²) − a) → contributes −2πa relative differences.
        let eps_r = 9.6;
        let h = 280e-6;
        let g = LayeredKernel::scalar_microstrip(eps_r, h, 40);
        let mut v = 0.0;
        let r_big = 1.0; // 1 m disc ≈ infinite for µm-scale h
        for t in g.terms() {
            let integral = 2.0 * PI * ((r_big * r_big + t.depth * t.depth).sqrt() - t.depth);
            v += t.coeff * integral;
        }
        // Subtract the common 2πR part? No: the pairs (+,−) cancel the R
        // dependence exactly; what is left is Σ c·2π(a_minus − a_plus).
        let expect = h / (EPS0 * eps_r);
        assert!(approx_eq(v, expect, 1e-3), "v={v}, parallel-plate={expect}");
    }

    #[test]
    fn confined_parallel_plate_limit() {
        let eps_r = 4.5;
        let d = 0.762e-3;
        let g = LayeredKernel::scalar_confined(eps_r, d);
        let mut v = 0.0;
        for t in g.terms() {
            let r_big = 10.0;
            v += t.coeff * 2.0 * PI * ((r_big * r_big + t.depth * t.depth).sqrt() - t.depth);
        }
        assert!(approx_eq(v, d / (EPS0 * eps_r), 1e-4));
    }

    #[test]
    fn microstrip_series_converges_geometrically() {
        // K = 0.636 for εr = 4.5. Far from the source the residual field is
        // a small difference of large images, so the tail is felt more
        // strongly; 40 terms are converged at every distance.
        let g40 = LayeredKernel::scalar_microstrip(4.5, 1e-3, 40);
        let g160 = LayeredKernel::scalar_microstrip(4.5, 1e-3, 160);
        for &rho in &[1e-4, 1e-3, 1e-2] {
            assert!(approx_eq(g40.eval(rho), g160.eval(rho), 1e-5), "rho={rho}");
        }
    }

    #[test]
    fn vector_kernel_magnetostatic() {
        let g = LayeredKernel::vector_potential(1e-3);
        // Near field dominated by the μ0/4π source term.
        let near = g.eval(1e-5);
        assert!(approx_eq(near, MU0 / (4.0 * PI) / 1e-5, 1e-2));
        // Free variant has no image.
        let gf = LayeredKernel::vector_potential_free();
        assert!(gf.eval(1.0) > 0.0);
        assert_eq!(gf.terms().len(), 1);
    }

    #[test]
    fn panel_integral_far_field_matches_point_kernel() {
        let g = LayeredKernel::scalar_confined(4.0, 0.5e-3);
        let panel = Rectangle::new(1e-3, 1e-3);
        // 50 panel-widths away the patch looks like a point charge of the
        // same total strength.
        let rho = 50e-3;
        let approx = g.eval(rho) * panel.area();
        let exact = g.panel_integral((rho, 0.0), panel);
        assert!(approx_eq(approx, exact, 1e-3));
    }

    #[test]
    fn galerkin_close_to_collocation_for_far_panels() {
        let g = LayeredKernel::free_space(1.0);
        let p = Rectangle::new(1e-3, 1e-3);
        let quad = pdn_num::GaussLegendre::new(4);
        let coll = g.panel_integral((10e-3, 2e-3), p);
        let gal = g.panel_galerkin((10e-3, 2e-3), p, p, &quad);
        assert!(approx_eq(coll, gal, 1e-3));
    }

    #[test]
    fn batch_integrals_bit_identical_to_scalar() {
        let g = LayeredKernel::scalar_microstrip(4.5, 0.8e-3, 12);
        let panel = Rectangle::new(1.1e-3, 0.6e-3);
        // Odd length with self-term / on-axis adversaries.
        let px: Vec<f64> = (0..13).map(|i| (i as f64 - 6.0) * 0.55e-3).collect();
        let py: Vec<f64> = (0..13).map(|i| (i as f64 % 5.0 - 2.0) * 0.3e-3).collect();
        let mut out = vec![0.0; 13];
        g.panel_integral_batch(&px, &py, panel, &mut out);
        for i in 0..13 {
            let scalar = g.panel_integral((px[i], py[i]), panel);
            assert_eq!(out[i].to_bits(), scalar.to_bits(), "lane {i}");
        }
        let quad = pdn_num::GaussLegendre::new(4);
        let mut gal = vec![0.0; 13];
        g.panel_galerkin_batch(&px, &py, panel, panel, &quad, &mut gal);
        for i in 0..13 {
            let scalar = g.panel_galerkin((px[i], py[i]), panel, panel, &quad);
            assert_eq!(gal[i].to_bits(), scalar.to_bits(), "galerkin lane {i}");
        }
    }

    #[test]
    fn galerkin_self_term_exceeds_center_value_decay() {
        // For the self panel, averaging moves the observation away from the
        // center so the Galerkin value is below the collocation value, but
        // both are positive and within a factor ~1.5.
        let g = LayeredKernel::free_space(1.0);
        let p = Rectangle::new(2e-3, 2e-3);
        let quad = pdn_num::GaussLegendre::new(6);
        let coll = g.panel_integral((0.0, 0.0), p);
        let gal = g.panel_galerkin((0.0, 0.0), p, p, &quad);
        assert!(gal > 0.0 && gal < coll && gal > 0.5 * coll);
    }
}
