#![warn(missing_docs)]
//! Static Green's functions for layered substrates, closed-form panel
//! integrals, and conductor surface-impedance models.
//!
//! The paper's mixed-potential integral equation needs two kernels over the
//! conductor surfaces:
//!
//! * the **scalar-potential** Green's function `Gφ`, relating surface charge
//!   to potential, and
//! * the **vector-potential** Green's function `G_A`, relating surface
//!   current to magnetic vector potential.
//!
//! Under the paper's quasi-static approximation (Section 4.1) the
//! retardation factor `e^{-jkr}` is dropped, and both kernels become *real*
//! superpositions of inverse-distance terms — the layered structure enters
//! through an **image series**: each image is an inverse-distance source at
//! an effective out-of-plane depth with a reflection-coefficient weight.
//! [`LayeredKernel`] represents exactly that, which lets every panel
//! integral be evaluated with the closed-form potential of a uniformly
//! charged rectangle ([`panel::rect_potential`]) — no singular numerical
//! quadrature anywhere.
//!
//! # Examples
//!
//! ```
//! use pdn_greens::LayeredKernel;
//!
//! // Scalar kernel for a plane pair: dielectric εr = 4.5, 0.5 mm apart.
//! let g = LayeredKernel::scalar_confined(4.5, 0.5e-3);
//! // The kernel decays much faster than free space because of the ground
//! // image: at 10 mm it is essentially a dipole field.
//! assert!(g.eval(10e-3) < 0.01 * LayeredKernel::free_space(4.5).eval(10e-3));
//! ```

pub mod kernel;
pub mod panel;
pub mod planar2d;
pub mod surface;

pub use kernel::{ImageTerm, LayeredKernel};
pub use panel::{rect_potential, rect_potential_batch, Rectangle, LANES};
pub use planar2d::Microstrip2d;
pub use surface::SurfaceImpedance;
