//! Two-dimensional (per-unit-length) Green's function for traces on a
//! grounded dielectric slab.
//!
//! This is the kernel behind the paper's "fast 2-D field solver" used to
//! extract multiconductor transmission-line parameters. For a line charge
//! on the surface of a slab of thickness `h` and permittivity `εr` over a
//! ground plane, the successive-image expansion gives the surface potential
//!
//! ```text
//! G(x) = 1/(2πε₀(1+εr)) Σₙ (−K)ⁿ ln[ (x² + ((2n+2)h)²) / (x² + (2nh)²) ]
//! ```
//!
//! with `K = (εr−1)/(εr+1)`. For `εr = 1` this collapses to the classic
//! ground-plane image `(1/2πε₀)·ln(r'/r)`, and integrated over a wide strip
//! it reproduces the parallel-plate capacitance `ε₀εr·w/h` — both verified
//! in the tests. Evaluating the same geometry with `εr = 1` gives the
//! air-line capacitance used to obtain the inductance matrix
//! `L = μ₀ε₀·C₀⁻¹`.

use pdn_num::phys::EPS0;
use std::f64::consts::PI;

/// Per-unit-length scalar-potential kernel for conductors on a grounded
/// dielectric slab.
///
/// # Examples
///
/// ```
/// use pdn_greens::Microstrip2d;
///
/// let g = Microstrip2d::new(4.5, 1.5e-3);
/// // The potential decays with distance from the line charge.
/// assert!(g.eval(1e-3) > g.eval(5e-3));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Microstrip2d {
    eps_r: f64,
    h: f64,
    n_terms: usize,
}

impl Microstrip2d {
    /// Creates the kernel with a default 40-term image series (amply
    /// converged for any physical `εr`).
    ///
    /// # Panics
    ///
    /// Panics unless `eps_r >= 1` and `h > 0`.
    pub fn new(eps_r: f64, h: f64) -> Self {
        Self::with_terms(eps_r, h, 40)
    }

    /// Creates the kernel with an explicit image-series truncation.
    ///
    /// # Panics
    ///
    /// Panics unless `eps_r >= 1`, `h > 0` and `n_terms > 0`.
    pub fn with_terms(eps_r: f64, h: f64, n_terms: usize) -> Self {
        assert!(eps_r >= 1.0, "relative permittivity must be >= 1");
        assert!(h > 0.0, "substrate height must be positive");
        assert!(n_terms > 0, "need at least one image term");
        Microstrip2d { eps_r, h, n_terms }
    }

    /// Substrate relative permittivity.
    pub fn eps_r(&self) -> f64 {
        self.eps_r
    }

    /// Substrate height in meters.
    pub fn height(&self) -> f64 {
        self.h
    }

    /// Potential at horizontal distance `x` from a unit line charge (C/m),
    /// both on the substrate surface.
    ///
    /// Diverges logarithmically as `x → 0`; use
    /// [`segment_integral`](Self::segment_integral) for self terms.
    pub fn eval(&self, x: f64) -> f64 {
        let k = (self.eps_r - 1.0) / (self.eps_r + 1.0);
        let front = 1.0 / (2.0 * PI * EPS0 * (1.0 + self.eps_r));
        let x2 = x * x;
        let mut w = 1.0;
        let mut sum = 0.0;
        for n in 0..self.n_terms {
            let a = 2.0 * n as f64 * self.h;
            let b = 2.0 * (n as f64 + 1.0) * self.h;
            sum += w * ((x2 + b * b) / (x2 + a * a)).ln();
            w *= -k;
        }
        front * sum
    }

    /// Exact integral of the kernel over a source segment of width `width`
    /// centered at `seg_center`, observed at `obs_x` (both on the surface):
    /// `∫ G(obs_x − x') dx'`.
    ///
    /// Handles the logarithmic self term in closed form.
    pub fn segment_integral(&self, obs_x: f64, seg_center: f64, width: f64) -> f64 {
        let k = (self.eps_r - 1.0) / (self.eps_r + 1.0);
        let front = 1.0 / (2.0 * PI * EPS0 * (1.0 + self.eps_r));
        // Integration variable u = obs_x − x', limits:
        let u1 = obs_x - (seg_center + 0.5 * width);
        let u2 = obs_x - (seg_center - 0.5 * width);
        let mut w = 1.0;
        let mut sum = 0.0;
        for n in 0..self.n_terms {
            let a = 2.0 * n as f64 * self.h;
            let b = 2.0 * (n as f64 + 1.0) * self.h;
            let ib = log_kernel_antiderivative(u2, b) - log_kernel_antiderivative(u1, b);
            let ia = log_kernel_antiderivative(u2, a) - log_kernel_antiderivative(u1, a);
            sum += w * (ib - ia);
            w *= -k;
        }
        front * sum
    }

    /// Batched [`segment_integral`](Self::segment_integral): evaluates the
    /// segment integral at every observation point against one shared
    /// source segment, in [`LANES`](crate::LANES)-wide groups with the
    /// image-series weights hoisted out of the lane loop.
    ///
    /// Each output element is **bit-identical** to the corresponding scalar
    /// call, so MoM matrix columns filled through this batch match the
    /// scalar fill exactly.
    ///
    /// # Panics
    ///
    /// Panics when the slice lengths disagree.
    ///
    /// # Examples
    ///
    /// ```
    /// use pdn_greens::Microstrip2d;
    ///
    /// let g = Microstrip2d::new(4.5, 1e-3);
    /// let obs = [0.0, 1e-3, -3e-3];
    /// let mut out = [0.0; 3];
    /// g.segment_integral_batch(&obs, 0.0, 2e-3, &mut out);
    /// for i in 0..3 {
    ///     assert_eq!(out[i], g.segment_integral(obs[i], 0.0, 2e-3));
    /// }
    /// ```
    pub fn segment_integral_batch(
        &self,
        obs_x: &[f64],
        seg_center: f64,
        width: f64,
        out: &mut [f64],
    ) {
        assert_eq!(obs_x.len(), out.len(), "obs_x/out length mismatch");
        const W: usize = crate::panel::LANES;
        let k = (self.eps_r - 1.0) / (self.eps_r + 1.0);
        let front = 1.0 / (2.0 * PI * EPS0 * (1.0 + self.eps_r));
        let lo = seg_center + 0.5 * width;
        let hi = seg_center - 0.5 * width;
        let mut i = 0;
        while i < out.len() {
            let m = (out.len() - i).min(W);
            let mut gx = [0.0f64; W];
            gx[..m].copy_from_slice(&obs_x[i..i + m]);
            let mut u1 = [0.0f64; W];
            let mut u2 = [0.0f64; W];
            for q in 0..W {
                u1[q] = gx[q] - lo;
                u2[q] = gx[q] - hi;
            }
            let mut sum = [0.0f64; W];
            let mut w = 1.0;
            for n in 0..self.n_terms {
                let a = 2.0 * n as f64 * self.h;
                let b = 2.0 * (n as f64 + 1.0) * self.h;
                for q in 0..W {
                    let ib =
                        log_kernel_antiderivative(u2[q], b) - log_kernel_antiderivative(u1[q], b);
                    let ia =
                        log_kernel_antiderivative(u2[q], a) - log_kernel_antiderivative(u1[q], a);
                    sum[q] += w * (ib - ia);
                }
                w *= -k;
            }
            for q in 0..m {
                out[i + q] = front * sum[q];
            }
            i += m;
        }
    }
}

/// Antiderivative of `ln(u² + a²)`:
/// `u·ln(u²+a²) − 2u + 2a·atan(u/a)` (limit form for `a = 0`).
fn log_kernel_antiderivative(u: f64, a: f64) -> f64 {
    if a == 0.0 {
        if u == 0.0 {
            0.0
        } else {
            u * (u * u).ln() - 2.0 * u
        }
    } else {
        u * (u * u + a * a).ln() - 2.0 * u + 2.0 * a * (u / a).atan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdn_num::approx_eq;

    #[test]
    fn air_case_is_ground_image() {
        let h = 1e-3;
        let g = Microstrip2d::new(1.0, h);
        for &x in &[0.5e-3, 1e-3, 3e-3] {
            let expect = (1.0 / (2.0 * PI * EPS0)) * ((x * x + 4.0 * h * h).sqrt() / x).ln();
            assert!(approx_eq(g.eval(x), expect, 1e-10), "x={x}");
        }
    }

    #[test]
    fn wide_strip_parallel_plate_capacitance() {
        // A strip w >> h over ground: C ≈ ε0·εr·w/h. Solve the 1-unknown
        // MoM problem: q = V / P_self, C = q/V = 1/P_self per unit length
        // where P_self is the average self potential coefficient. Use the
        // segment integral averaged at the center as a good estimate.
        let eps_r = 4.5;
        let h = 0.1e-3;
        let w = 20e-3; // w/h = 200: fringing negligible
        let g = Microstrip2d::new(eps_r, h);
        let p_self = g.segment_integral(0.0, 0.0, w) / 1.0;
        // crude single-cell MoM: C = 1/(P_self/w·w)??  Work with charge
        // density: V(center) = σ · ∫G = σ · p_self. Parallel-plate:
        // σ = ε V / h → p_self ≈ h/(ε0 εr).
        assert!(
            approx_eq(p_self, h / (EPS0 * eps_r), 0.03),
            "p_self = {p_self}, expect ≈ {}",
            h / (EPS0 * eps_r)
        );
    }

    #[test]
    fn segment_integral_matches_quadrature_off_segment() {
        let g = Microstrip2d::new(4.5, 1e-3);
        let quad = pdn_num::GaussLegendre::new(32);
        let (c, w, obs) = (0.0, 2e-3, 5e-3);
        let exact = g.segment_integral(obs, c, w);
        let numeric = quad.integrate(c - 0.5 * w, c + 0.5 * w, |x| g.eval(obs - x));
        assert!(approx_eq(exact, numeric, 1e-8));
    }

    #[test]
    fn self_term_finite_and_dominant() {
        let g = Microstrip2d::new(4.5, 1e-3);
        let self_t = g.segment_integral(0.0, 0.0, 1e-3);
        let near_t = g.segment_integral(2e-3, 0.0, 1e-3);
        assert!(self_t.is_finite());
        assert!(self_t > near_t && near_t > 0.0);
    }

    #[test]
    fn symmetry_in_observation() {
        let g = Microstrip2d::new(3.0, 0.5e-3);
        let a = g.segment_integral(4e-3, 1e-3, 2e-3);
        let b = g.segment_integral(-2e-3, 1e-3, 2e-3);
        assert!(approx_eq(a, b, 1e-12)); // both 3 mm from center
    }

    #[test]
    fn higher_eps_means_lower_potential() {
        // More dielectric pulls field into the substrate, reducing the
        // surface potential for the same charge.
        let lo = Microstrip2d::new(2.0, 1e-3);
        let hi = Microstrip2d::new(10.0, 1e-3);
        assert!(hi.eval(1e-3) < lo.eval(1e-3));
    }

    #[test]
    fn series_truncation_converges() {
        // εr = 9.6 gives K = 0.811; 40 terms leave a ~2e-4 weight tail.
        let g40 = Microstrip2d::with_terms(9.6, 1e-3, 40);
        let g160 = Microstrip2d::with_terms(9.6, 1e-3, 160);
        assert!(approx_eq(g40.eval(0.5e-3), g160.eval(0.5e-3), 1e-4));
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn sub_unity_eps_rejected() {
        let _ = Microstrip2d::new(0.5, 1e-3);
    }

    #[test]
    fn batch_bit_identical_to_scalar() {
        let g = Microstrip2d::new(4.5, 0.7e-3);
        // Odd length including the self term (obs on segment center and
        // edge) to hit the u == 0 antiderivative branch.
        let obs: Vec<f64> = vec![
            0.0, 1e-3, -1e-3, 0.5e-3, 2.7e-3, -4e-3, 1.5e-3, 0.25e-3, 6e-3, -0.5e-3, 3.3e-3,
        ];
        let (c, w) = (0.5e-3, 1e-3);
        let mut out = vec![0.0; obs.len()];
        g.segment_integral_batch(&obs, c, w, &mut out);
        for i in 0..obs.len() {
            let scalar = g.segment_integral(obs[i], c, w);
            assert_eq!(out[i].to_bits(), scalar.to_bits(), "lane {i}");
        }
    }
}
