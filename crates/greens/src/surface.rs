//! Conductor surface-impedance models.
//!
//! The paper characterizes lossy conductors by their surface impedance `Zs`
//! (the impedance boundary condition of eq. 3) and uses the DC sheet
//! resistance as the first-order low-frequency term (eq. 13). This module
//! provides that model plus an optional √f skin-effect correction for
//! frequency-domain sweeps.

use pdn_num::phys::{skin_depth, MU0};

/// Surface impedance of a thin conductor sheet.
///
/// # Examples
///
/// ```
/// use pdn_greens::SurfaceImpedance;
///
/// // The HP test plane: 6 mΩ/sq tungsten.
/// let zs = SurfaceImpedance::from_sheet_resistance(6e-3);
/// assert_eq!(zs.resistance(0.0), 6e-3);
///
/// // A 35 µm copper foil with skin effect.
/// let cu = SurfaceImpedance::from_conductor(5.8e7, 35e-6);
/// assert!(cu.resistance(10e9) > cu.resistance(0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurfaceImpedance {
    r_dc: f64,
    skin: Option<Skin>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Skin {
    conductivity: f64,
    thickness: f64,
}

impl SurfaceImpedance {
    /// A lossless (perfect) conductor.
    pub fn lossless() -> Self {
        SurfaceImpedance {
            r_dc: 0.0,
            skin: None,
        }
    }

    /// Builds the model from a DC sheet resistance in Ω/square with no
    /// skin-effect correction (the paper's quasi-static choice).
    ///
    /// # Panics
    ///
    /// Panics if `r_sq` is negative.
    pub fn from_sheet_resistance(r_sq: f64) -> Self {
        assert!(r_sq >= 0.0, "sheet resistance must be non-negative");
        SurfaceImpedance {
            r_dc: r_sq,
            skin: None,
        }
    }

    /// Builds the model from bulk conductivity (S/m) and foil thickness
    /// (m); enables the skin-effect correction.
    ///
    /// # Panics
    ///
    /// Panics unless both arguments are positive.
    pub fn from_conductor(conductivity: f64, thickness: f64) -> Self {
        assert!(
            conductivity > 0.0 && thickness > 0.0,
            "conductivity and thickness must be positive"
        );
        SurfaceImpedance {
            r_dc: 1.0 / (conductivity * thickness),
            skin: Some(Skin {
                conductivity,
                thickness,
            }),
        }
    }

    /// DC sheet resistance, Ω/square.
    pub fn dc_resistance(&self) -> f64 {
        self.r_dc
    }

    /// Surface resistance at frequency `f` (Hz), Ω/square.
    ///
    /// Without a conductor model this is frequency independent; with one,
    /// it transitions to `1/(σδ)` once the skin depth drops below the foil
    /// thickness.
    pub fn resistance(&self, f: f64) -> f64 {
        match self.skin {
            None => self.r_dc,
            Some(s) => {
                if f <= 0.0 {
                    return self.r_dc;
                }
                let delta = skin_depth(f, s.conductivity);
                if delta >= s.thickness {
                    self.r_dc
                } else {
                    1.0 / (s.conductivity * delta)
                }
            }
        }
    }

    /// Internal (surface) inductance per square at frequency `f`, H/square.
    ///
    /// In the skin-effect regime the surface reactance equals the surface
    /// resistance, giving `L_int = R_s/(2πf)`; negligible below the skin
    /// transition.
    pub fn internal_inductance(&self, f: f64) -> f64 {
        match self.skin {
            None => 0.0,
            Some(s) => {
                if f <= 0.0 {
                    return 0.0;
                }
                let delta = skin_depth(f, s.conductivity);
                if delta >= s.thickness {
                    // Below transition: roughly μ·t/3 internal inductance of
                    // a uniform current sheet — tiny; report the DC value.
                    MU0 * s.thickness / 3.0
                } else {
                    self.resistance(f) / (2.0 * std::f64::consts::PI * f)
                }
            }
        }
    }
}

impl Default for SurfaceImpedance {
    fn default() -> Self {
        Self::lossless()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdn_num::approx_eq;
    use pdn_num::phys::SIGMA_COPPER;

    #[test]
    fn lossless_is_zero_everywhere() {
        let z = SurfaceImpedance::lossless();
        assert_eq!(z.resistance(0.0), 0.0);
        assert_eq!(z.resistance(10e9), 0.0);
        assert_eq!(z.internal_inductance(1e9), 0.0);
    }

    #[test]
    fn sheet_resistance_flat_in_frequency() {
        let z = SurfaceImpedance::from_sheet_resistance(6e-3);
        assert_eq!(z.resistance(0.0), 6e-3);
        assert_eq!(z.resistance(20e9), 6e-3);
    }

    #[test]
    fn conductor_dc_value() {
        // 35 µm copper: R_dc = 1/(5.8e7 · 35e-6) ≈ 0.49 mΩ/sq.
        let z = SurfaceImpedance::from_conductor(SIGMA_COPPER, 35e-6);
        assert!(approx_eq(z.dc_resistance(), 4.926e-4, 1e-3));
        assert_eq!(z.resistance(0.0), z.dc_resistance());
    }

    #[test]
    fn skin_effect_sqrt_f_regime() {
        let z = SurfaceImpedance::from_conductor(SIGMA_COPPER, 35e-6);
        // Well above the transition, R ∝ √f.
        let r1 = z.resistance(1e9);
        let r4 = z.resistance(4e9);
        assert!(approx_eq(r4 / r1, 2.0, 1e-6));
        assert!(r1 > z.dc_resistance());
    }

    #[test]
    fn transition_is_continuous_enough() {
        let z = SurfaceImpedance::from_conductor(SIGMA_COPPER, 35e-6);
        // Transition frequency where δ = t: f = 1/(π μ σ t²).
        let ft = 1.0 / (std::f64::consts::PI * MU0 * SIGMA_COPPER * 35e-6_f64.powi(2));
        let below = z.resistance(ft * 0.99);
        let above = z.resistance(ft * 1.01);
        assert!(approx_eq(below, above, 0.02));
    }

    #[test]
    fn internal_inductance_positive_in_skin_regime() {
        let z = SurfaceImpedance::from_conductor(SIGMA_COPPER, 35e-6);
        let l = z.internal_inductance(10e9);
        assert!(l > 0.0 && l < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sheet_resistance_panics() {
        let _ = SurfaceImpedance::from_sheet_resistance(-1.0);
    }
}
