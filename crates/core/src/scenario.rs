//! Batched what-if studies over one shared plane extraction.
//!
//! Every question the paper's evaluation section asks — how many decaps,
//! which mounting sites, how many simultaneously switching drivers, what
//! driver corner — varies only the cheap circuit stamped *around* the
//! plane macromodel, never the macromodel itself. [`ScenarioBatch`]
//! exploits this: it runs [`BoardSpec::extract_model`] exactly once, then
//! wires and simulates any number of [`Scenario`] variants against the
//! shared [`ExtractedModel`], dispatching the transient runs over
//! [`pdn_num::parallel`] workers.
//!
//! Two invariants make the batch trustworthy:
//!
//! * **Exactness** — a batched scenario produces *bit-identical* results
//!   to materializing the same scenario as a stand-alone [`BoardSpec`]
//!   (via [`Scenario::apply_to`]) and building it from scratch. Extraction
//!   is deterministic and the wiring code is literally shared, so there is
//!   nothing approximate about the amortization.
//! * **Determinism** — outcome order follows scenario order and every
//!   value is bit-identical for any `PDN_THREADS` worker count; on
//!   failure, the error of the lowest-index failing scenario is reported
//!   regardless of thread scheduling.
//!
//! Scenarios whose stamped MNA matrices are bit-identical (e.g. waveform
//! pattern or supply-level variants) additionally share one LU
//! factorization through [`TransientPlan`].
//!
//! # Examples
//!
//! Sweep decap population against switching activity on one extraction:
//!
//! ```no_run
//! use pdn_core::prelude::*;
//! use pdn_core::scenario::{Scenario, ScenarioBatch};
//! use pdn_geom::Point;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let plane = PlaneSpec::rectangle(mm(40.0), mm(30.0), 0.5e-3, 4.5)?
//!     .with_cell_size(mm(5.0));
//! let board = BoardSpec::new(plane, 3.3, Point::new(mm(2.0), mm(2.0)))
//!     .with_chip(ChipSpec::cmos("U1", Point::new(mm(30.0), mm(20.0)), 4))
//!     .with_decap_site(Point::new(mm(28.0), mm(20.0)));
//! let batch = ScenarioBatch::new(&board, &NodeSelection::PortsAndGrid { stride: 3 })?;
//! let scenarios = vec![
//!     Scenario::switching(4),                       // no decap
//!     Scenario::switching(4).with_decaps(vec![(0, Default::default())]),
//! ];
//! let outcomes = batch.run(&scenarios, 20e-9, 0.05e-9)?;
//! assert!(outcomes[1].plane_noise_peak < outcomes[0].plane_noise_peak);
//! # Ok(())
//! # }
//! ```

use crate::cosim::{
    BoardSpec, BoardSystem, BuildBoardError, DecapSpec, ExtractedModel, SsnOutcome,
};
use pdn_circuit::{SimulateCircuitError, TransientPlan, Waveform};
use pdn_extract::NodeSelection;
use std::error::Error;
use std::fmt;

/// A decoupling-capacitor value to populate at a mounting site: a
/// [`DecapSpec`] minus the location (the site supplies that).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecapValue {
    /// Capacitance (F).
    pub c: f64,
    /// Equivalent series resistance (Ω).
    pub esr: f64,
    /// Equivalent series inductance (H).
    pub esl: f64,
}

impl DecapValue {
    /// A decap value with the given C/ESR/ESL.
    pub fn new(c: f64, esr: f64, esl: f64) -> Self {
        DecapValue { c, esr, esl }
    }

    /// The typical 100 nF X7R ceramic (30 mΩ ESR, 1.2 nH ESL) — matches
    /// [`DecapSpec::ceramic_100nf`].
    pub fn ceramic_100nf() -> Self {
        DecapValue {
            c: 100e-9,
            esr: 0.03,
            esl: 1.2e-9,
        }
    }

    /// Materializes this value at a mounting location.
    pub fn at(&self, location: pdn_geom::Point) -> DecapSpec {
        DecapSpec {
            location,
            c: self.c,
            esr: self.esr,
            esl: self.esl,
        }
    }
}

impl Default for DecapValue {
    /// The 100 nF ceramic.
    fn default() -> Self {
        DecapValue::ceramic_100nf()
    }
}

/// One variant in a scenario batch: everything a what-if study may vary
/// without touching the plane extraction.
///
/// Unset options inherit the base board's values, so
/// `Scenario::switching(n)` alone reproduces the plain
/// `build(selection, n)` study.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Simultaneously switching drivers per chip.
    pub switching: usize,
    /// Decap population as `(site index, value)` pairs over the board's
    /// site plan. `None` keeps the base board's own decaps.
    pub decaps: Option<Vec<(usize, DecapValue)>>,
    /// Supply voltage override (V).
    pub vcc: Option<f64>,
    /// Multiplier on every chip's driver on-resistance (process corner).
    pub r_on_scale: f64,
    /// Multiplier on every chip's driver load capacitance (load sweep).
    pub load_scale: f64,
    /// Gate-drive waveform override applied to every chip.
    pub data: Option<Waveform>,
}

impl Scenario {
    /// A scenario that only sets the switching-driver count.
    pub fn switching(switching: usize) -> Self {
        Scenario {
            switching,
            decaps: None,
            vcc: None,
            r_on_scale: 1.0,
            load_scale: 1.0,
            data: None,
        }
    }

    /// Replaces the decap population with `(site index, value)` pairs
    /// (builder style). An empty list depopulates every site.
    pub fn with_decaps(mut self, decaps: Vec<(usize, DecapValue)>) -> Self {
        self.decaps = Some(decaps);
        self
    }

    /// Overrides the supply voltage (builder style).
    pub fn with_vcc(mut self, vcc: f64) -> Self {
        self.vcc = Some(vcc);
        self
    }

    /// Scales every chip's driver on-resistance (builder style).
    pub fn with_r_on_scale(mut self, scale: f64) -> Self {
        self.r_on_scale = scale;
        self
    }

    /// Scales every chip's driver load capacitance (builder style).
    pub fn with_load_scale(mut self, scale: f64) -> Self {
        self.load_scale = scale;
        self
    }

    /// Overrides every chip's gate-drive waveform (builder style).
    pub fn with_data(mut self, data: Waveform) -> Self {
        self.data = Some(data);
        self
    }

    /// Materializes this scenario as a stand-alone [`BoardSpec`].
    ///
    /// The returned board pins the base board's full site plan as declared
    /// [`decap sites`](BoardSpec::decap_sites), so building it from
    /// scratch extracts the *identical* port layout a [`ScenarioBatch`]
    /// shares — this is what makes batched and rebuilt results
    /// bit-identical, and it is the board the batch itself wires.
    ///
    /// # Errors
    ///
    /// Returns [`BuildBoardError::Wiring`] when a decap references a site
    /// index outside the board's site plan.
    pub fn apply_to(&self, board: &BoardSpec) -> Result<BoardSpec, BuildBoardError> {
        let mut b = board.clone();
        b.decap_sites = board.site_plan();
        if let Some(decaps) = &self.decaps {
            let mut placed = Vec::with_capacity(decaps.len());
            for &(site, value) in decaps {
                let location = *b.decap_sites.get(site).ok_or_else(|| {
                    BuildBoardError::Wiring(format!(
                        "scenario decap site index {site} out of range ({} sites declared)",
                        b.decap_sites.len()
                    ))
                })?;
                placed.push(value.at(location));
            }
            b.decaps = placed;
        }
        if let Some(vcc) = self.vcc {
            b.vcc = vcc;
        }
        for chip in &mut b.chips {
            chip.r_on *= self.r_on_scale;
            chip.load_c *= self.load_scale;
            if let Some(data) = &self.data {
                chip.data = data.clone();
            }
        }
        Ok(b)
    }
}

/// Error from a scenario batch, with the failing scenario's index
/// attached. When several scenarios fail, the lowest index is reported,
/// independent of worker scheduling.
#[derive(Debug)]
pub enum ScenarioBatchError {
    /// The request was malformed before any extraction or scenario work
    /// started (empty scenario list, model/board layout mismatch).
    InvalidInput(String),
    /// The one-time plane extraction failed (no scenario involved).
    Extraction(BuildBoardError),
    /// Applying or wiring scenario `index` failed.
    Build {
        /// Index into the scenario list.
        index: usize,
        /// The underlying build failure.
        source: BuildBoardError,
    },
    /// The transient run of scenario `index` failed.
    Simulation {
        /// Index into the scenario list.
        index: usize,
        /// The underlying simulation failure.
        source: SimulateCircuitError,
    },
}

impl fmt::Display for ScenarioBatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioBatchError::InvalidInput(msg) => write!(f, "invalid batch request: {msg}"),
            ScenarioBatchError::Extraction(e) => write!(f, "shared extraction: {e}"),
            ScenarioBatchError::Build { index, source } => {
                write!(f, "scenario {index}: {source}")
            }
            ScenarioBatchError::Simulation { index, source } => {
                write!(f, "scenario {index}: {source}")
            }
        }
    }
}

impl Error for ScenarioBatchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScenarioBatchError::InvalidInput(_) => None,
            ScenarioBatchError::Extraction(e) => Some(e),
            ScenarioBatchError::Build { source, .. } => Some(source),
            ScenarioBatchError::Simulation { source, .. } => Some(source),
        }
    }
}

/// A batch engine: one shared plane extraction, N scenario runs.
///
/// Construction performs the expensive mesh → BEM → reduction flow once;
/// [`run`](ScenarioBatch::run) then wires and simulates each scenario
/// against the shared [`ExtractedModel`]. See the [module
/// docs](self) for the exactness and determinism guarantees.
#[derive(Debug, Clone)]
pub struct ScenarioBatch {
    board: BoardSpec,
    model: ExtractedModel,
}

impl ScenarioBatch {
    /// Extracts the shared plane macromodel for `board`.
    ///
    /// The board's [site plan](BoardSpec::site_plan) is pinned as declared
    /// sites, so every scenario — populated or not — sees one port per
    /// candidate mounting location.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioBatchError::Extraction`] when the flow fails.
    pub fn new(board: &BoardSpec, selection: &NodeSelection) -> Result<Self, ScenarioBatchError> {
        let mut board = board.clone();
        board.decap_sites = board.site_plan();
        let model = board
            .extract_model(selection)
            .map_err(ScenarioBatchError::Extraction)?;
        Ok(ScenarioBatch { board, model })
    }

    /// Builds a batch around an already-extracted model — the cache-hit
    /// path of `pdn-service`: a model restored from disk (or shared by
    /// another batch) skips the mesh → BEM → reduction flow entirely.
    ///
    /// The board's [site plan](BoardSpec::site_plan) is pinned exactly as
    /// [`new`](ScenarioBatch::new) would, then the model's port layout is
    /// checked against it so a stale or mismatched model fails here, not
    /// as a silent mis-stamp deep inside wiring.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioBatchError::InvalidInput`] when the model's
    /// supply point, chip locations, or sites differ from the board's.
    pub fn with_model(
        board: &BoardSpec,
        model: ExtractedModel,
    ) -> Result<Self, ScenarioBatchError> {
        let mut board = board.clone();
        board.decap_sites = board.site_plan();
        let mismatch = |what: &str| {
            ScenarioBatchError::InvalidInput(format!(
                "extracted model does not match the board: {what} differ"
            ))
        };
        if model.supply_location() != board.supply_location {
            return Err(mismatch("supply locations"));
        }
        let chip_locations: Vec<_> = board.chips.iter().map(|c| c.location).collect();
        if model.chip_locations() != chip_locations.as_slice() {
            return Err(mismatch("chip locations"));
        }
        if model.sites() != board.decap_sites.as_slice() {
            return Err(mismatch("decap site plans"));
        }
        Ok(ScenarioBatch { board, model })
    }

    /// The shared extracted macromodel.
    pub fn model(&self) -> &ExtractedModel {
        &self.model
    }

    /// The base board (site plan pinned) that scenarios are applied to.
    pub fn board(&self) -> &BoardSpec {
        &self.board
    }

    /// Wires one scenario's system around the shared model without
    /// running it.
    ///
    /// # Errors
    ///
    /// Returns [`BuildBoardError`] when the scenario is invalid (bad site
    /// index) or the wiring fails.
    pub fn wire(&self, scenario: &Scenario) -> Result<BoardSystem, BuildBoardError> {
        let board = scenario.apply_to(&self.board)?;
        board.wire(&self.model, scenario.switching)
    }

    /// Wires and simulates every scenario, returning outcomes in scenario
    /// order.
    ///
    /// Wiring and the transient runs execute on [`pdn_num::parallel`]
    /// workers; scenarios whose stamped MNA matrices are bit-identical
    /// share a single [`TransientPlan`] (one LU factorization). Results
    /// are bit-identical for any `PDN_THREADS` setting and bit-identical
    /// to building each scenario's board from scratch.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioBatchError::InvalidInput`] for an empty scenario
    /// list (an easy symptom of a caller-side filtering bug — loudly
    /// rejected rather than silently returning zero outcomes), otherwise
    /// the error of the lowest-index failing scenario, with that index
    /// attached.
    pub fn run(
        &self,
        scenarios: &[Scenario],
        t_stop: f64,
        dt: f64,
    ) -> Result<Vec<SsnOutcome>, ScenarioBatchError> {
        if scenarios.is_empty() {
            return Err(ScenarioBatchError::InvalidInput(
                "scenario list is empty; a batch needs at least one scenario to run".into(),
            ));
        }
        // 1. Wire every scenario (parallel; cheap relative to the runs).
        let systems: Vec<BoardSystem> = pdn_num::parallel::try_par_map(scenarios, |s| self.wire(s))
            .map_err(|e| self.attach_build_index(scenarios, e))?;

        // 2. Group scenarios that share an MNA structure onto one
        //    factored plan. `TransientPlan::matches` re-stamps and
        //    compares bit-exactly (O(n²)), so grouping can never produce
        //    a wrong answer — at worst every scenario gets its own plan.
        let mut plans: Vec<TransientPlan> = Vec::new();
        let mut plan_of = Vec::with_capacity(systems.len());
        for (i, sys) in systems.iter().enumerate() {
            let spec = sys.transient_spec(t_stop, dt);
            match plans.iter().position(|p| p.matches(sys.circuit(), &spec)) {
                Some(k) => plan_of.push(k),
                None => {
                    let plan = TransientPlan::new(sys.circuit(), &spec).map_err(|e| {
                        ScenarioBatchError::Simulation {
                            index: i,
                            source: e,
                        }
                    })?;
                    plans.push(plan);
                    plan_of.push(plans.len() - 1);
                }
            }
        }

        // 3. Run everything in parallel, replaying the shared plans.
        pdn_num::parallel::try_par_map_indexed(systems.len(), |i| {
            systems[i]
                .run_with_plan(t_stop, dt, &plans[plan_of[i]])
                .map_err(|e| ScenarioBatchError::Simulation {
                    index: i,
                    source: e,
                })
        })
    }

    /// Re-derives the failing index for a build error from `try_par_map`
    /// (which returns the lowest-index error but not the index itself):
    /// re-applies scenarios serially until one fails the same way.
    fn attach_build_index(
        &self,
        scenarios: &[Scenario],
        err: BuildBoardError,
    ) -> ScenarioBatchError {
        let index = scenarios
            .iter()
            .position(|s| self.wire(s).is_err())
            .unwrap_or(0);
        ScenarioBatchError::Build { index, source: err }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cosim::ChipSpec;
    use crate::flow::PlaneSpec;
    use pdn_geom::units::mm;
    use pdn_geom::Point;

    fn base_board() -> BoardSpec {
        let plane = PlaneSpec::rectangle(mm(40.0), mm(30.0), 0.5e-3, 4.5)
            .unwrap()
            .with_sheet_resistance(1e-3)
            .with_cell_size(mm(5.0));
        BoardSpec::new(plane, 3.3, Point::new(mm(2.0), mm(2.0)))
            .with_chip(ChipSpec::cmos("U1", Point::new(mm(30.0), mm(20.0)), 4))
            .with_decap_site(Point::new(mm(28.0), mm(20.0)))
            .with_decap_site(Point::new(mm(10.0), mm(25.0)))
    }

    fn sel() -> NodeSelection {
        NodeSelection::PortsAndGrid { stride: 3 }
    }

    #[test]
    fn errors_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ScenarioBatchError>();
        assert_send::<BuildBoardError>();
    }

    #[test]
    fn empty_scenario_list_rejected() {
        let batch = ScenarioBatch::new(&base_board(), &sel()).unwrap();
        let err = batch.run(&[], 5e-9, 0.1e-9).unwrap_err();
        match err {
            ScenarioBatchError::InvalidInput(msg) => {
                assert!(msg.contains("empty"), "got: {msg}");
            }
            other => panic!("expected InvalidInput, got {other}"),
        }
    }

    #[test]
    fn with_model_reuses_extraction_and_rejects_mismatch() {
        let board = base_board();
        let fresh = ScenarioBatch::new(&board, &sel()).unwrap();
        let adopted = ScenarioBatch::with_model(&board, fresh.model().clone()).unwrap();
        let scenarios = [Scenario::switching(2)];
        assert_eq!(
            fresh.run(&scenarios, 5e-9, 0.1e-9).unwrap(),
            adopted.run(&scenarios, 5e-9, 0.1e-9).unwrap(),
            "adopted model wires bit-identical systems"
        );
        let mut moved = board.clone();
        moved.supply_location = Point::new(mm(3.0), mm(3.0));
        match ScenarioBatch::with_model(&moved, fresh.model().clone()).unwrap_err() {
            ScenarioBatchError::InvalidInput(msg) => {
                assert!(msg.contains("supply locations"), "got: {msg}");
            }
            other => panic!("expected InvalidInput, got {other}"),
        }
        let trimmed = {
            let mut b = board.clone();
            b.decap_sites.pop();
            b
        };
        match ScenarioBatch::with_model(&trimmed, fresh.model().clone()).unwrap_err() {
            ScenarioBatchError::InvalidInput(msg) => {
                assert!(msg.contains("site plans"), "got: {msg}");
            }
            other => panic!("expected InvalidInput, got {other}"),
        }
    }

    #[test]
    fn batch_matches_scratch_build_exactly() {
        let board = base_board();
        let batch = ScenarioBatch::new(&board, &sel()).unwrap();
        let scenarios = vec![
            Scenario::switching(4),
            Scenario::switching(4).with_decaps(vec![(0, DecapValue::ceramic_100nf())]),
            Scenario::switching(2).with_vcc(3.0),
        ];
        let batched = batch.run(&scenarios, 10e-9, 0.1e-9).unwrap();
        for (s, b) in scenarios.iter().zip(&batched) {
            let scratch = s
                .apply_to(&board)
                .unwrap()
                .build(&sel(), s.switching)
                .unwrap()
                .run(10e-9, 0.1e-9)
                .unwrap();
            assert_eq!(*b, scratch, "batched result bit-identical to rebuild");
        }
    }

    #[test]
    fn populated_site_reduces_plane_noise() {
        let batch = ScenarioBatch::new(&base_board(), &sel()).unwrap();
        let outs = batch
            .run(
                &[
                    Scenario::switching(4),
                    Scenario::switching(4).with_decaps(vec![(0, DecapValue::ceramic_100nf())]),
                ],
                20e-9,
                0.05e-9,
            )
            .unwrap();
        assert!(
            outs[1].plane_noise_peak < 0.8 * outs[0].plane_noise_peak,
            "decap suppresses plane noise: {} vs {}",
            outs[1].plane_noise_peak,
            outs[0].plane_noise_peak
        );
    }

    #[test]
    fn bad_site_index_reports_scenario_index() {
        let batch = ScenarioBatch::new(&base_board(), &sel()).unwrap();
        let scenarios = vec![
            Scenario::switching(1),
            Scenario::switching(1).with_decaps(vec![(7, DecapValue::ceramic_100nf())]),
        ];
        let err = batch.run(&scenarios, 5e-9, 0.1e-9).unwrap_err();
        match err {
            ScenarioBatchError::Build { index, source } => {
                assert_eq!(index, 1);
                assert!(source.to_string().contains("site index 7 out of range"));
            }
            other => panic!("expected Build error, got {other}"),
        }
    }

    #[test]
    fn extraction_failure_surfaces_from_new() {
        // Supply port far off the conductor: the board-level layout
        // validation rejects it during the one-time extraction, before
        // any scenario exists.
        let mut board = base_board();
        board.supply_location = Point::new(mm(500.0), mm(500.0));
        let err = ScenarioBatch::new(&board, &sel()).unwrap_err();
        match err {
            ScenarioBatchError::Extraction(BuildBoardError::InvalidInput(msg)) => {
                assert!(msg.contains("outside"), "{msg}");
            }
            other => panic!("expected InvalidInput error, got {other}"),
        }
    }

    #[test]
    fn lowest_failing_scenario_index_wins() {
        // Scenarios 1 and 2 both reference invalid sites; the reported
        // index must be 1 (the lowest), independent of worker scheduling.
        let batch = ScenarioBatch::new(&base_board(), &sel()).unwrap();
        let scenarios = vec![
            Scenario::switching(1),
            Scenario::switching(1).with_decaps(vec![(9, DecapValue::ceramic_100nf())]),
            Scenario::switching(1).with_decaps(vec![(8, DecapValue::ceramic_100nf())]),
        ];
        for _ in 0..3 {
            match batch.run(&scenarios, 5e-9, 0.1e-9).unwrap_err() {
                ScenarioBatchError::Build { index, source } => {
                    assert_eq!(index, 1);
                    assert!(source.to_string().contains("site index 9"));
                }
                other => panic!("expected Build error, got {other}"),
            }
        }
    }

    #[test]
    fn simulation_failure_carries_scenario_index() {
        // A transmission line whose modal delay is shorter than dt makes
        // the transient spec invalid for every scenario; index 0 (the
        // lowest) must be reported.
        let board = base_board();
        let chip = ChipSpec::cmos("U2", Point::new(mm(15.0), mm(10.0)), 1)
            .with_line(crate::cosim::SignalLineSpec::z50(0.001));
        let board = board.with_chip(chip);
        let batch = ScenarioBatch::new(&board, &sel()).unwrap();
        let scenarios = vec![Scenario::switching(1), Scenario::switching(0)];
        let err = batch.run(&scenarios, 20e-9, 1e-9).unwrap_err();
        match err {
            ScenarioBatchError::Simulation { index, .. } => assert_eq!(index, 0),
            other => panic!("expected Simulation error, got {other}"),
        }
    }

    #[test]
    fn identical_structures_share_one_plan() {
        // Two waveform-pattern variants with identical decap population
        // and switching count stamp identical matrices; the batch must
        // still produce per-scenario correct (different) waveforms.
        let batch = ScenarioBatch::new(&base_board(), &sel()).unwrap();
        let alt = Waveform::pulse(0.0, 1.0, 4e-9, 1e-9, 1e-9, 8e-9);
        let outs = batch
            .run(
                &[
                    Scenario::switching(4),
                    Scenario::switching(4).with_data(alt),
                ],
                10e-9,
                0.1e-9,
            )
            .unwrap();
        assert_ne!(
            outs[0].rail_noise, outs[1].rail_noise,
            "different drive patterns give different waveforms"
        );
    }
}
