//! Four-subsystem co-simulation (paper Section 5.2, Figure 3).
//!
//! A completely designed digital board is partitioned into chip devices
//! (behavioral CMOS drivers), chip packages (pin R/L/C parasitics), signal
//! nets (transmission lines), and the power/ground planes (the extracted
//! R–L‖C macromodel). [`BoardSpec::build`] wires all four into a single
//! MNA netlist; every power/ground pin is a node of the equivalent
//! circuit, so the switching currents act directly as excitations on the
//! distributed planes and the resulting noise feeds back into the devices
//! — the paper's dynamic interaction, achieved here by solving the
//! combined system.
//!
//! # The extract-once / stamp-many split
//!
//! The expensive half of [`BoardSpec::build`] — meshing the plane and
//! solving the dense BEM system — depends only on the board geometry and
//! the *port layout* (supply point, chip power pins, decap mounting
//! sites). Everything a what-if study varies — which decaps are populated,
//! how many drivers switch, driver corners, supply level — only changes
//! the cheap circuit stamped *around* that macromodel. `build` is
//! therefore split in two:
//!
//! 1. [`BoardSpec::extract_model`] → [`ExtractedModel`]: the
//!    scenario-invariant plane macromodel plus the port-layout bookkeeping
//!    (one port per chip and per declared decap site, populated or not);
//! 2. [`BoardSpec::wire`]: re-stamps the full system netlist around a
//!    shared `ExtractedModel` in milliseconds.
//!
//! [`BoardSpec::build`] is exactly `extract_model` + `wire`, and
//! [`crate::scenario::ScenarioBatch`] amortizes one `extract_model` over N
//! wired scenario variants. Declare candidate mounting sites with
//! [`BoardSpec::with_decap_site`] so every scenario (and the from-scratch
//! rebuild path) sees the identical port layout, making batched and
//! rebuilt results bit-identical.

use crate::flow::{ExtractPlaneError, ExtractedPlane, PlaneSpec};
use pdn_circuit::netlist::SourceId;
use pdn_circuit::{
    Circuit, CoupledLineModel, NodeId, SimulateCircuitError, TransientPlan, TransientSpec, Waveform,
};
use pdn_extract::{NodeSelection, RomSpec};
use pdn_geom::{PlaneMesh, Point};
use pdn_num::{Matrix, PoleResidueModel};
use pdn_shard::{ShardPlan, ShardReport, ShardedExtraction};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// How [`BoardSpec::extract_model`] turns the plane into a macromodel.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum ExtractionStrategy {
    /// One dense BEM system for the whole plane (the default).
    #[default]
    Monolithic,
    /// Domain-decomposed extraction: split the plane along the plan's cut
    /// lines, extract each region independently in parallel, and compose
    /// through interface ports (see [`pdn_shard`] and `docs/SHARDING.md`
    /// for the accuracy contract). Scenario batching, decap optimization,
    /// and rational sweeps run unchanged on the composed model.
    Sharded {
        /// Where to cut the board.
        plan: ShardPlan,
    },
}

/// A signal net driven by one of a chip's drivers: a single transmission
/// line to a far-end load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignalLineSpec {
    /// Per-unit-length inductance (H/m).
    pub l_per_m: f64,
    /// Per-unit-length capacitance (F/m).
    pub c_per_m: f64,
    /// Physical length (m).
    pub length: f64,
    /// Far-end load resistance (Ω).
    pub r_load: f64,
}

impl SignalLineSpec {
    /// A 50 Ω line with the given delay-per-meter velocity and length.
    pub fn z50(length: f64) -> Self {
        let v = 1.5e8; // typical FR4 stripline velocity
        SignalLineSpec {
            l_per_m: 50.0 / v,
            c_per_m: 1.0 / (50.0 * v),
            length,
            r_load: 50.0,
        }
    }

    /// Smallest modal delay (s) — the transient step must stay below it.
    pub fn delay(&self) -> f64 {
        self.length * (self.l_per_m * self.c_per_m).sqrt()
    }
}

/// A chip: several CMOS output drivers behind package pin parasitics.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipSpec {
    /// Instance name (also used for plane port naming).
    pub name: String,
    /// Location of the chip's power pins on the plane.
    pub location: Point,
    /// Number of output drivers.
    pub drivers: usize,
    /// Driver output-stage on-resistance (Ω).
    pub r_on: f64,
    /// Lumped load capacitance per driver output (F).
    pub load_c: f64,
    /// Package pin series resistance (Ω).
    pub pin_r: f64,
    /// Package pin series inductance (H).
    pub pin_l: f64,
    /// Package pin shunt capacitance (F).
    pub pin_c: f64,
    /// Number of parallel Vcc/Gnd pin pairs feeding the die (large parts
    /// spread the switching current over many power pins).
    pub power_pin_pairs: usize,
    /// Gate drive waveform in `[0, 1]` applied to switching drivers.
    pub data: Waveform,
    /// Optional signal net per driver output.
    pub line: Option<SignalLineSpec>,
}

impl ChipSpec {
    /// A CMOS output-buffer bank with typical QFP-class packaging:
    /// `R_on = 15 Ω`, 30 pF loads, 5 nH / 0.5 Ω / 1 pF pins (one Vcc/Gnd
    /// pin pair per four drivers), and a 1 ns-edge switching pattern.
    pub fn cmos(name: impl Into<String>, location: Point, drivers: usize) -> Self {
        ChipSpec {
            name: name.into(),
            location,
            drivers,
            r_on: 15.0,
            load_c: 30e-12,
            pin_r: 0.5,
            pin_l: 5e-9,
            pin_c: 1e-12,
            power_pin_pairs: drivers.div_ceil(4).max(1),
            data: Waveform::pulse(0.0, 1.0, 2e-9, 1e-9, 1e-9, 8e-9),
            line: None,
        }
    }

    /// Sets the gate drive waveform (builder style).
    pub fn with_data(mut self, data: Waveform) -> Self {
        self.data = data;
        self
    }

    /// Sets the driver edge on-resistance (builder style).
    pub fn with_r_on(mut self, r_on: f64) -> Self {
        self.r_on = r_on;
        self
    }

    /// Attaches a signal line to every driver output (builder style).
    pub fn with_line(mut self, line: SignalLineSpec) -> Self {
        self.line = Some(line);
        self
    }
}

/// A decoupling capacitor placed on the plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecapSpec {
    /// Mounting location.
    pub location: Point,
    /// Capacitance (F).
    pub c: f64,
    /// Equivalent series resistance (Ω).
    pub esr: f64,
    /// Equivalent series inductance (H).
    pub esl: f64,
}

impl DecapSpec {
    /// A typical 100 nF X7R ceramic: 30 mΩ ESR, 1.2 nH ESL.
    pub fn ceramic_100nf(location: Point) -> Self {
        DecapSpec {
            location,
            c: 100e-9,
            esr: 0.03,
            esl: 1.2e-9,
        }
    }
}

/// The complete board: plane + supply + chips + decoupling.
///
/// `PartialEq` compares every field exactly (bit-level on `f64`s) — two
/// equal boards extract and simulate bit-identically. For the coarser
/// *extraction* equivalence (same macromodel regardless of declaration
/// order or scenario-only fields), see
/// [`canonical_bytes`](BoardSpec::canonical_bytes).
#[derive(Debug, Clone, PartialEq)]
pub struct BoardSpec {
    /// The power/ground plane structure (ports are added automatically).
    pub plane: PlaneSpec,
    /// Supply voltage (V).
    pub vcc: f64,
    /// Voltage-regulator connection point on the plane.
    pub supply_location: Point,
    /// Supply series resistance (Ω).
    pub supply_r: f64,
    /// Supply series inductance (H) — bulk path.
    pub supply_l: f64,
    /// Chips on the board.
    pub chips: Vec<ChipSpec>,
    /// Decoupling capacitors.
    pub decaps: Vec<DecapSpec>,
    /// Declared decap mounting sites. Every site becomes a plane port
    /// whether or not a capacitor is populated there, so scenario studies
    /// over decap subsets share one extraction. When empty, each entry of
    /// `decaps` implicitly declares its own site (the historical
    /// behavior).
    pub decap_sites: Vec<Point>,
    /// Extraction strategy for the plane macromodel.
    pub extraction: ExtractionStrategy,
    /// Opt-in reduced-order plane model: when set,
    /// [`extract_model`](BoardSpec::extract_model) additionally fits a
    /// passive pole–residue macromodel of the plane's port admittance and
    /// [`wire`](BoardSpec::wire) stamps *that* (simulated by recursive
    /// convolution) instead of the full R–L‖C branch network.
    pub reduction: Option<RomSpec>,
}

impl BoardSpec {
    /// Creates a board around an (un-ported) plane spec.
    pub fn new(plane: PlaneSpec, vcc: f64, supply_location: Point) -> Self {
        BoardSpec {
            plane,
            vcc,
            supply_location,
            supply_r: 0.01,
            supply_l: 10e-9,
            chips: Vec::new(),
            decaps: Vec::new(),
            decap_sites: Vec::new(),
            extraction: ExtractionStrategy::Monolithic,
            reduction: None,
        }
    }

    /// Sets the plane extraction strategy (builder style). Pass
    /// [`ExtractionStrategy::Sharded`] to opt a large board into
    /// domain-decomposed extraction.
    pub fn with_extraction_strategy(mut self, strategy: ExtractionStrategy) -> Self {
        self.extraction = strategy;
        self
    }

    /// Opts the board into a reduced-order plane model (builder style):
    /// after extraction, the port admittance of the as-stamped macromodel
    /// is fitted into a certified passive pole–residue form, and
    /// transient runs simulate it by recursive convolution — per-step
    /// cost scales with `ports × poles` instead of the macromodel node
    /// count. Scenario batching, decap optimization, and switching sweeps
    /// consume the reduced model unchanged. See `docs/ROM.md` for the
    /// accuracy contract.
    pub fn with_reduced_order(mut self, spec: RomSpec) -> Self {
        self.reduction = Some(spec);
        self
    }

    /// Adds a chip (builder style).
    pub fn with_chip(mut self, chip: ChipSpec) -> Self {
        self.chips.push(chip);
        self
    }

    /// Adds a decoupling capacitor (builder style).
    pub fn with_decap(mut self, decap: DecapSpec) -> Self {
        self.decaps.push(decap);
        self
    }

    /// Declares a decap mounting site (builder style). The site is ported
    /// in the extraction even while unpopulated.
    pub fn with_decap_site(mut self, location: Point) -> Self {
        self.decap_sites.push(location);
        self
    }

    /// The effective decap site plan: the declared sites, or — when none
    /// are declared — one implicit site per placed decap.
    pub fn site_plan(&self) -> Vec<Point> {
        if self.decap_sites.is_empty() {
            self.decaps.iter().map(|d| d.location).collect()
        } else {
            self.decap_sites.clone()
        }
    }

    /// The canonical byte encoding of everything
    /// [`extract_model`](BoardSpec::extract_model) depends on — and
    /// *nothing* it does not.
    ///
    /// The `pdn-service` extraction cache hashes these bytes to decide
    /// whether two boards share one extraction, so the encoding obeys two
    /// rules:
    ///
    /// * **Scenario-invariant inputs only.** Geometry, stackup, loss,
    ///   mesh pitch, BEM options, the port layout (supply point, chip
    ///   power-pin locations, the [site plan](BoardSpec::site_plan)), the
    ///   extraction strategy, and the reduced-order spec are included.
    ///   Everything a [`crate::scenario::Scenario`] may vary — `vcc`,
    ///   supply R/L, chip electrical parameters and waveforms, which
    ///   decaps are populated and their values — is excluded.
    /// * **Order-normalized, bit-exact.** Plane ports, chips, and decap
    ///   sites are sorted (by name, then location bits) before encoding,
    ///   so *declaration order never changes the bytes*; every `f64` is
    ///   encoded via its IEEE-754 bits, so any material edit — however
    ///   small — does. Chip names are included (they name plane ports);
    ///   chip electrical fields are not.
    ///
    /// Note the normalization means two boards with the same content but
    /// different declaration orders hash alike even though their
    /// extracted port *tables* list ports in different orders — the cache
    /// layers a layout signature on top; see `docs/SERVICE.md`.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut w = pdn_num::ByteWriter::new();
        let put_point = |w: &mut pdn_num::ByteWriter, p: &Point| {
            w.put_f64(p.x);
            w.put_f64(p.y);
        };
        // Format tag, bumped if the canonical encoding ever changes
        // (old cache entries then simply miss).
        w.put_u32(1);
        self.plane.write_canonical(&mut w);
        put_point(&mut w, &self.supply_location);
        let mut chips: Vec<(&str, Point)> = self
            .chips
            .iter()
            .map(|c| (c.name.as_str(), c.location))
            .collect();
        chips.sort_by(|a, b| {
            (a.0, a.1.x.to_bits(), a.1.y.to_bits()).cmp(&(b.0, b.1.x.to_bits(), b.1.y.to_bits()))
        });
        w.put_usize(chips.len());
        for (name, p) in chips {
            w.put_str(name);
            put_point(&mut w, &p);
        }
        let mut sites = self.site_plan();
        sites.sort_by_key(|p| (p.x.to_bits(), p.y.to_bits()));
        w.put_usize(sites.len());
        for p in &sites {
            put_point(&mut w, p);
        }
        match &self.extraction {
            ExtractionStrategy::Monolithic => w.put_u8(0),
            ExtractionStrategy::Sharded { plan } => {
                w.put_u8(1);
                w.put_f64_slice(plan.x_cuts());
                w.put_f64_slice(plan.y_cuts());
                match plan.grid_dims() {
                    None => w.put_u8(0),
                    Some((nx, ny)) => {
                        w.put_u8(1);
                        w.put_usize(nx);
                        w.put_usize(ny);
                    }
                }
            }
        }
        match &self.reduction {
            None => w.put_u8(0),
            Some(spec) => {
                w.put_u8(1);
                w.put_f64(spec.f_min);
                w.put_f64(spec.f_max);
                w.put_usize(spec.points);
                w.put_f64(spec.rel_tol);
                w.put_f64(spec.cert_tol);
            }
        }
        w.into_bytes()
    }

    /// Extracts the scenario-invariant plane macromodel: ports the plane
    /// (supply + one power port per chip + one per decap site) and runs
    /// the mesh → BEM → reduction flow.
    ///
    /// This is the expensive half of [`build`](BoardSpec::build); the
    /// result can be shared across every scenario wired from boards that
    /// keep the same plane, supply point, chip locations, and site plan.
    ///
    /// The board's [`ExtractionStrategy`] picks the flow: one dense BEM
    /// system, or the sharded region-by-region composition.
    ///
    /// # Errors
    ///
    /// Returns [`BuildBoardError::InvalidInput`] when a port or decap
    /// site lies outside the plane outline or two supply/chip ports land
    /// on the same mesh cell, and [`BuildBoardError::Extraction`] when
    /// the extraction flow itself fails.
    pub fn extract_model(
        &self,
        selection: &NodeSelection,
    ) -> Result<ExtractedModel, BuildBoardError> {
        let sites = self.site_plan();
        let mut ports: Vec<(String, Point)> = vec![("VRM".to_string(), self.supply_location)];
        for chip in &self.chips {
            ports.push((format!("{}_vcc", chip.name), chip.location));
        }
        let site_ports: Vec<(String, Point)> = sites
            .iter()
            .enumerate()
            .map(|(k, site)| (format!("decap{k}"), *site))
            .collect();
        self.validate_port_layout(&ports, &site_ports)?;
        let mut plane = self.plane.clone();
        for (name, p) in ports.iter().chain(&site_ports) {
            plane = plane.with_port(name.clone(), p.x, p.y);
        }
        let model = match &self.extraction {
            ExtractionStrategy::Monolithic => {
                PlaneModel::Monolithic(Box::new(plane.extract(selection)?))
            }
            ExtractionStrategy::Sharded { plan } => {
                PlaneModel::Sharded(Box::new(plane.extract_sharded(plan, selection)?))
            }
        };
        let model = match &self.reduction {
            Some(spec) => {
                let rom = model
                    .equivalent()
                    .reduce_order(spec)
                    .map_err(|e| BuildBoardError::Extraction(ExtractPlaneError::Extraction(e)))?;
                PlaneModel::Reduced {
                    base: Box::new(model),
                    rom: Arc::new(rom),
                }
            }
            None => model,
        };
        Ok(ExtractedModel {
            plane: model,
            supply_location: self.supply_location,
            chip_locations: self.chips.iter().map(|c| c.location).collect(),
            sites,
        })
    }

    /// Checks the board's port layout against the plane outline before
    /// the expensive extraction. Every named location (supply, chip power
    /// pins, decap sites, plus any port already on the plane spec) must
    /// land on a mesh cell. Supply/chip/plane ports must additionally not
    /// share a cell — overlapping footprints would silently short two
    /// distinct injection points into one node. Decap sites are exempt
    /// from the overlap check: a capacitor mounted right at a supply pin
    /// (or two capacitors on one pad) is a legitimate layout, and the
    /// site simply connects at that port's node.
    fn validate_port_layout(
        &self,
        ports: &[(String, Point)],
        sites: &[(String, Point)],
    ) -> Result<(), BuildBoardError> {
        let mesh = PlaneMesh::build_multi(self.plane.shapes(), self.plane.cell_size())
            .map_err(|e| BuildBoardError::Extraction(ExtractPlaneError::Mesh(e)))?;
        let snap = |name: &str, p: &Point| {
            mesh.cell_at(*p).ok_or_else(|| {
                BuildBoardError::InvalidInput(format!(
                    "port '{name}' at ({:.4e}, {:.4e}) lies outside the plane outline",
                    p.x, p.y
                ))
            })
        };
        let mut taken: Vec<(usize, &str)> = Vec::new();
        for (name, p) in self.plane.ports().iter().chain(ports) {
            let cell = snap(name, p)?;
            if let Some((_, first)) = taken.iter().find(|(c, _)| *c == cell) {
                return Err(BuildBoardError::InvalidInput(format!(
                    "ports '{first}' and '{name}' overlap: both snap to the mesh cell \
                     at ({:.4e}, {:.4e}) (cell size {:.4e})",
                    mesh.cell_center(cell).x,
                    mesh.cell_center(cell).y,
                    self.plane.cell_size()
                )));
            }
            taken.push((cell, name.as_str()));
        }
        for (name, p) in sites {
            snap(name, p)?;
        }
        Ok(())
    }

    /// Extracts the plane macromodel and wires the full system netlist.
    ///
    /// `switching` drivers per chip (capped at each chip's driver count)
    /// receive the chip's data waveform; the rest idle low.
    ///
    /// Exactly equivalent to [`extract_model`](BoardSpec::extract_model)
    /// followed by [`wire`](BoardSpec::wire).
    ///
    /// # Errors
    ///
    /// Returns [`BuildBoardError`] when the extraction or wiring fails.
    pub fn build(
        &self,
        selection: &NodeSelection,
        switching: usize,
    ) -> Result<BoardSystem, BuildBoardError> {
        let model = self.extract_model(selection)?;
        self.wire(&model, switching)
    }

    /// Stamps the full system netlist around a shared extracted
    /// macromodel — the cheap, re-runnable half of
    /// [`build`](BoardSpec::build).
    ///
    /// # Errors
    ///
    /// Returns [`BuildBoardError::Wiring`] when the model's port layout
    /// does not match this board (different supply point, chip locations,
    /// or site plan; a decap placed off every declared site), or when an
    /// element model is invalid (bad line parameters…).
    pub fn wire(
        &self,
        model: &ExtractedModel,
        switching: usize,
    ) -> Result<BoardSystem, BuildBoardError> {
        // 1. The model's port layout must be the one this board would
        //    extract: ports are matched positionally below.
        if model.supply_location != self.supply_location {
            return Err(BuildBoardError::Wiring(
                "extracted model was built for a different supply location".into(),
            ));
        }
        let chip_locations: Vec<Point> = self.chips.iter().map(|c| c.location).collect();
        if model.chip_locations != chip_locations {
            return Err(BuildBoardError::Wiring(
                "extracted model was built for different chip locations".into(),
            ));
        }
        if !self.decap_sites.is_empty() && model.sites != self.decap_sites {
            return Err(BuildBoardError::Wiring(
                "extracted model was built for a different decap site plan".into(),
            ));
        }
        // Map each populated decap onto its mounting site. With no
        // declared sites the decaps *are* the site plan (site k = decap
        // k); with declared sites, match by location.
        let mut decap_sites = Vec::with_capacity(self.decaps.len());
        for (k, d) in self.decaps.iter().enumerate() {
            let site = if self.decap_sites.is_empty() {
                if model.sites.get(k) != Some(&d.location) {
                    return Err(BuildBoardError::Wiring(
                        "extracted model was built for a different decap set".into(),
                    ));
                }
                k
            } else {
                model
                    .sites
                    .iter()
                    .position(|&s| s == d.location)
                    .ok_or_else(|| {
                        BuildBoardError::Wiring(format!(
                            "decap at ({:.4e}, {:.4e}) does not sit on any declared site",
                            d.location.x, d.location.y
                        ))
                    })?
            };
            decap_sites.push(site);
        }

        // 2. Stamp the macromodel into the netlist: the full R–L‖C branch
        //    network, or — when the model carries a reduction — one
        //    recursive-convolution block over the port nodes only.
        let mut ckt = Circuit::new();
        let eq = model.equivalent();
        let (port_nodes, pdn_nodes) = match model.reduced_model() {
            Some(rom) => {
                let nodes: Vec<NodeId> = (0..eq.port_count())
                    .map(|p| ckt.node(format!("pg_{}", eq.node_names()[eq.port_node(p)])))
                    .collect();
                ckt.reduced_order_block(&nodes, rom.clone());
                (nodes, eq.port_count())
            }
            None => {
                let nodes = eq.to_circuit(&mut ckt, "pg_", 0.0);
                let ports = (0..eq.port_count())
                    .map(|p| nodes[eq.port_node(p)])
                    .collect();
                (ports, eq.node_count())
            }
        };
        let port_node = |p: usize| port_nodes[p];

        // 3. Supply.
        let vrm_plane = port_node(0);
        let vrm_src = ckt.node("vrm_src");
        let supply = ckt.voltage_source(vrm_src, Circuit::GND, Waveform::dc(self.vcc));
        let mid = ckt.new_node();
        ckt.resistor(vrm_src, mid, self.supply_r.max(1e-6));
        ckt.inductor(mid, vrm_plane, self.supply_l.max(1e-15));

        // 4. Chips.
        let mut chip_rails = Vec::new();
        let mut chip_plane_nodes = Vec::new();
        let mut driver_outputs = Vec::new();
        let mut signal_nets = 0usize;
        let mut devices = 0usize;
        for (ci, chip) in self.chips.iter().enumerate() {
            let plane_node = port_node(1 + ci);
            chip_plane_nodes.push(plane_node);
            let die_vcc = ckt.node(format!("{}_die_vcc", chip.name));
            let die_gnd = ckt.node(format!("{}_die_gnd", chip.name));
            // Parallel power-pin pairs divide the package inductance and
            // resistance seen by the shared rail.
            let pairs = chip.power_pin_pairs.max(1) as f64;
            let (pr, pl, pc) = (chip.pin_r / pairs, chip.pin_l / pairs, chip.pin_c * pairs);
            ckt.package_pin(plane_node, die_vcc, pr, pl, pc);
            ckt.package_pin(Circuit::GND, die_gnd, pr, pl, pc);
            chip_rails.push(die_vcc);
            let mut outs = Vec::new();
            for d in 0..chip.drivers {
                let out = ckt.node(format!("{}_out{d}", chip.name));
                let data = if d < switching {
                    chip.data.clone()
                } else {
                    Waveform::dc(0.0)
                };
                ckt.cmos_driver(out, die_vcc, die_gnd, chip.r_on, data);
                devices += 1;
                match &chip.line {
                    Some(line) => {
                        let far = ckt.node(format!("{}_far{d}", chip.name));
                        let model = CoupledLineModel::new(
                            Matrix::from_rows(&[&[line.l_per_m]]),
                            Matrix::from_rows(&[&[line.c_per_m]]),
                            line.length,
                        )
                        .map_err(|e| BuildBoardError::Wiring(e.to_string()))?;
                        ckt.coupled_line(model, vec![out], vec![far]);
                        ckt.resistor(far, Circuit::GND, line.r_load);
                        if chip.load_c > 0.0 {
                            ckt.capacitor(far, Circuit::GND, chip.load_c);
                        }
                        signal_nets += 1;
                    }
                    None => {
                        if chip.load_c > 0.0 {
                            ckt.capacitor(out, Circuit::GND, chip.load_c);
                        }
                    }
                }
                outs.push(out);
            }
            driver_outputs.push(outs);
        }

        // 5. Decaps, each on its mapped mounting-site port.
        for (d, &site) in self.decaps.iter().zip(&decap_sites) {
            let plane_node = port_node(1 + self.chips.len() + site);
            ckt.decoupling_cap(plane_node, Circuit::GND, d.c, d.esr, d.esl);
        }

        Ok(BoardSystem {
            circuit: ckt,
            chip_rails,
            chip_plane_nodes,
            driver_outputs,
            vcc: self.vcc,
            supply,
            pdn_nodes,
            signal_nets,
            devices,
        })
    }
}

/// Error from building a board system.
#[derive(Debug)]
pub enum BuildBoardError {
    /// The board geometry is inconsistent before extraction even starts:
    /// a port or decap site off the plane outline, or two port footprints
    /// on the same mesh cell.
    InvalidInput(String),
    /// Plane extraction failed.
    Extraction(ExtractPlaneError),
    /// Netlist wiring failed (bad line parameters…).
    Wiring(String),
}

impl fmt::Display for BuildBoardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildBoardError::InvalidInput(s) => write!(f, "invalid board: {s}"),
            BuildBoardError::Extraction(e) => write!(f, "extraction: {e}"),
            BuildBoardError::Wiring(s) => write!(f, "wiring: {s}"),
        }
    }
}

impl Error for BuildBoardError {}

impl From<ExtractPlaneError> for BuildBoardError {
    fn from(e: ExtractPlaneError) -> Self {
        BuildBoardError::Extraction(e)
    }
}

/// The scenario-invariant half of a board build: the extracted plane
/// macromodel plus the port layout it was extracted for (supply point,
/// chip power-pin locations, decap mounting sites).
///
/// Produced once by [`BoardSpec::extract_model`]; any number of scenario
/// variants can then be wired around it with [`BoardSpec::wire`]. The
/// layout fields let `wire` verify a model/board mismatch instead of
/// silently stamping decaps onto the wrong plane ports.
#[derive(Debug, Clone)]
pub struct ExtractedModel {
    plane: PlaneModel,
    supply_location: Point,
    chip_locations: Vec<Point>,
    sites: Vec<Point>,
}

/// The plane macromodel behind an [`ExtractedModel`] — monolithic (with
/// its BEM reference system), sharded (composed from regions), or either
/// of those wrapped with a fitted pole–residue reduction of its port
/// admittance.
#[derive(Debug, Clone)]
enum PlaneModel {
    Monolithic(Box<ExtractedPlane>),
    Sharded(Box<ShardedExtraction>),
    /// A macromodel restored from serialized [`ModelParts`] rather than
    /// produced by an extraction in this process. Behaves exactly like
    /// the model it was saved from for everything [`BoardSpec::wire`]
    /// consumes; the BEM reference system is never serialized, so
    /// [`ExtractedModel::plane`] returns `None`.
    Restored(Box<pdn_extract::EquivalentCircuit>),
    Reduced {
        base: Box<PlaneModel>,
        rom: Arc<PoleResidueModel>,
    },
}

impl PlaneModel {
    /// Strips a reduction wrapper, if any.
    fn base(&self) -> &PlaneModel {
        match self {
            PlaneModel::Reduced { base, .. } => base,
            other => other,
        }
    }

    /// The extracted R–L‖C macromodel behind any wrapper.
    fn equivalent(&self) -> &pdn_extract::EquivalentCircuit {
        match self.base() {
            PlaneModel::Monolithic(p) => p.equivalent(),
            PlaneModel::Sharded(s) => s.equivalent(),
            PlaneModel::Restored(eq) => eq,
            PlaneModel::Reduced { .. } => unreachable!("base() strips the reduction wrapper"),
        }
    }
}

impl ExtractedModel {
    /// The underlying monolithic extraction (BEM reference + equivalent
    /// circuit), or `None` for a sharded extraction — sharding never
    /// assembles a whole-board BEM system, that being its point.
    pub fn plane(&self) -> Option<&ExtractedPlane> {
        match self.plane.base() {
            PlaneModel::Monolithic(p) => Some(p),
            _ => None,
        }
    }

    /// Per-region statistics of a sharded extraction, or `None` for a
    /// monolithic one.
    pub fn shard_report(&self) -> Option<&ShardReport> {
        match self.plane.base() {
            PlaneModel::Sharded(s) => Some(s.report()),
            _ => None,
        }
    }

    /// The extracted R–L‖C macromodel.
    pub fn equivalent(&self) -> &pdn_extract::EquivalentCircuit {
        self.plane.equivalent()
    }

    /// The passive pole–residue port macromodel fitted at extraction, or
    /// `None` when the board did not opt into
    /// [`BoardSpec::with_reduced_order`].
    pub fn reduced_model(&self) -> Option<&Arc<PoleResidueModel>> {
        match &self.plane {
            PlaneModel::Reduced { rom, .. } => Some(rom),
            _ => None,
        }
    }

    /// The decap mounting sites ported in the extraction, in site-index
    /// order.
    pub fn sites(&self) -> &[Point] {
        &self.sites
    }

    /// The chip power-pin locations ported in the extraction.
    pub fn chip_locations(&self) -> &[Point] {
        &self.chip_locations
    }

    /// The supply (VRM) attachment point the extraction was ported for.
    pub fn supply_location(&self) -> Point {
        self.supply_location
    }

    /// Decomposes the model into the serializable [`ModelParts`] closure:
    /// everything [`BoardSpec::wire`] consumes, nothing more. The BEM
    /// reference system of a monolithic extraction is intentionally
    /// dropped — it exists for verification against fresh extractions,
    /// not for wiring — so a round trip through
    /// [`from_parts`](ExtractedModel::from_parts) wires bit-identical
    /// systems while [`plane`](ExtractedModel::plane) returns `None`.
    pub fn to_parts(&self) -> ModelParts {
        ModelParts {
            equivalent: self.equivalent().clone(),
            shard_report: self.shard_report().cloned(),
            reduced: self.reduced_model().cloned(),
            supply_location: self.supply_location,
            chip_locations: self.chip_locations.clone(),
            sites: self.sites.clone(),
        }
    }

    /// Reassembles a model from [`ModelParts`] (the inverse of
    /// [`to_parts`](ExtractedModel::to_parts) up to the documented loss of
    /// the BEM reference system).
    pub fn from_parts(parts: ModelParts) -> Self {
        let base = match parts.shard_report {
            Some(report) => PlaneModel::Sharded(Box::new(ShardedExtraction::from_parts(
                parts.equivalent,
                report,
            ))),
            None => PlaneModel::Restored(Box::new(parts.equivalent)),
        };
        let plane = match parts.reduced {
            Some(rom) => PlaneModel::Reduced {
                base: Box::new(base),
                rom,
            },
            None => base,
        };
        ExtractedModel {
            plane,
            supply_location: parts.supply_location,
            chip_locations: parts.chip_locations,
            sites: parts.sites,
        }
    }
}

/// The serializable closure of an [`ExtractedModel`]: the exact set of
/// fields [`BoardSpec::wire`] reads when stamping scenarios, pulled apart
/// so `pdn-service` can persist and restore extractions bit-exactly
/// without ever serializing mesh or kernel state.
#[derive(Debug, Clone)]
pub struct ModelParts {
    /// The extracted R–L‖C port macromodel.
    pub equivalent: pdn_extract::EquivalentCircuit,
    /// Per-region statistics when the extraction was sharded (restoring
    /// with `Some` keeps [`ExtractedModel::shard_report`] intact).
    pub shard_report: Option<ShardReport>,
    /// The fitted pole–residue reduction, when the board opted in.
    pub reduced: Option<Arc<PoleResidueModel>>,
    /// Supply (VRM) attachment point.
    pub supply_location: Point,
    /// Chip power-pin locations, in chip declaration order.
    pub chip_locations: Vec<Point>,
    /// Decap mounting sites, in site-index order.
    pub sites: Vec<Point>,
}

/// Summary of the paper's Figure 3 partition, as realized in a built
/// system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionSummary {
    /// Behavioral device count (driver output stages).
    pub devices: usize,
    /// Package pin models (two per chip: Vcc and Gnd paths).
    pub packages: usize,
    /// Transmission-line signal nets.
    pub signal_nets: usize,
    /// Power/ground macromodel node count.
    pub pdn_nodes: usize,
}

/// A fully wired board system ready for transient co-simulation.
#[derive(Debug, Clone)]
pub struct BoardSystem {
    circuit: Circuit,
    chip_rails: Vec<NodeId>,
    chip_plane_nodes: Vec<NodeId>,
    driver_outputs: Vec<Vec<NodeId>>,
    vcc: f64,
    supply: SourceId,
    pdn_nodes: usize,
    signal_nets: usize,
    devices: usize,
}

impl BoardSystem {
    /// The underlying netlist (for custom probing or analyses).
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The Figure 3 partition realized by this system.
    pub fn partition(&self) -> PartitionSummary {
        PartitionSummary {
            devices: self.devices,
            packages: 2 * self.chip_rails.len(),
            signal_nets: self.signal_nets,
            pdn_nodes: self.pdn_nodes,
        }
    }

    /// The transient spec [`run`](BoardSystem::run) uses for the given
    /// duration and step — exposed so callers can prepare a
    /// [`TransientPlan`] once and replay it across systems with identical
    /// MNA structure (see [`run_with_plan`](BoardSystem::run_with_plan)).
    pub fn transient_spec(&self, t_stop: f64, dt: f64) -> TransientSpec {
        // The settle phase uses a fixed number of large backward-Euler
        // steps, so its cost does not grow with the requested duration: a
        // very long settle is effectively a DC operating-point iteration
        // that also kills µs-scale supply/decap modes. With transmission
        // lines present the settle step is pinned to `dt` (wave-history
        // sampling), so the duration must stay modest.
        let settle = if self.signal_nets > 0 {
            (400.0 * dt).max(150e-9)
        } else {
            1e-3
        };
        // The partitioned solver (paper Section 5.2) keeps the MNA matrix
        // constant — one factorization for the entire run — with the
        // switching devices coupled through per-step Norton iterations.
        TransientSpec::new(t_stop, dt)
            .with_settle(settle)
            .with_partitioned_solver()
    }

    /// Runs the co-simulation and reports the switching-noise outcome.
    ///
    /// A backward-Euler DC settle phase brings the rails to `vcc` before
    /// recording; the supply inductor ringing into the plane capacitance
    /// needs on the order of 100 ns to die out.
    ///
    /// # Errors
    ///
    /// Propagates circuit-simulation failures.
    pub fn run(&self, t_stop: f64, dt: f64) -> Result<SsnOutcome, SimulateCircuitError> {
        let spec = self.transient_spec(t_stop, dt);
        let res = self.circuit.transient(&spec)?;
        self.outcome(&res)
    }

    /// Like [`run`](BoardSystem::run), but replays a previously prepared
    /// [`TransientPlan`] instead of re-factoring the MNA matrices — the
    /// plan must have been built for a circuit/spec with bit-identical
    /// stamped matrices (verified; a mismatch is an error, never a wrong
    /// answer). Results are bit-identical to [`run`](BoardSystem::run).
    ///
    /// # Errors
    ///
    /// Propagates circuit-simulation failures, including a plan/circuit
    /// structure mismatch.
    pub fn run_with_plan(
        &self,
        t_stop: f64,
        dt: f64,
        plan: &TransientPlan,
    ) -> Result<SsnOutcome, SimulateCircuitError> {
        let spec = self.transient_spec(t_stop, dt);
        let res = self.circuit.transient_with_plan(&spec, plan)?;
        self.outcome(&res)
    }

    /// Reduces a transient result to the switching-noise outcome.
    fn outcome(
        &self,
        res: &pdn_circuit::transient::TransientResult,
    ) -> Result<SsnOutcome, SimulateCircuitError> {
        let time = res.time().to_vec();
        // Worst-chip rail noise.
        let mut worst_peak = 0.0;
        let mut worst_idx = 0;
        let mut per_chip_peak = Vec::with_capacity(self.chip_rails.len());
        for (i, &rail) in self.chip_rails.iter().enumerate() {
            let peak = res
                .voltage(rail)
                .iter()
                .map(|&v| (v - self.vcc).abs())
                .fold(0.0, f64::max);
            per_chip_peak.push(peak);
            if peak > worst_peak {
                worst_peak = peak;
                worst_idx = i;
            }
        }
        let rail_noise = res
            .voltage(self.chip_rails[worst_idx])
            .iter()
            .map(|&v| v - self.vcc)
            .collect();
        // Board-level (plane) noise at the chip power pins — the quantity
        // decoupling capacitors act on.
        let plane_noise_peak = self
            .chip_plane_nodes
            .iter()
            .map(|&node| {
                res.voltage(node)
                    .iter()
                    .map(|&v| (v - self.vcc).abs())
                    .fold(0.0, f64::max)
            })
            .fold(0.0, f64::max);
        let driver_output = self
            .driver_outputs
            .first()
            .and_then(|outs| outs.first())
            .map(|&n| res.voltage(n).to_vec())
            .unwrap_or_default();
        let supply_current = res
            .source_current(self.supply)
            .iter()
            .map(|&i| -i)
            .collect();
        Ok(SsnOutcome {
            time,
            rail_noise,
            per_chip_peak,
            peak_noise: worst_peak,
            plane_noise_peak,
            driver_output,
            supply_current,
        })
    }
}

/// Result of an SSN co-simulation run.
///
/// `PartialEq` is exact (bit-level) — used by the scenario-batch
/// equivalence tests to assert batched and rebuilt runs agree exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct SsnOutcome {
    /// Sample times (s).
    pub time: Vec<f64>,
    /// Rail-voltage deviation waveform of the worst chip (V).
    pub rail_noise: Vec<f64>,
    /// Peak |rail deviation| per chip (V).
    pub per_chip_peak: Vec<f64>,
    /// Worst peak noise across chips (V), measured at the die rail —
    /// includes the package-pin inductive bounce.
    pub peak_noise: f64,
    /// Worst peak noise at the chips' plane connection points (V) — the
    /// board-level PDN noise that decoupling capacitors suppress.
    pub plane_noise_peak: f64,
    /// Output waveform of the first driver (V).
    pub driver_output: Vec<f64>,
    /// Current delivered by the supply (A).
    pub supply_current: Vec<f64>,
}

/// Sweeps the number of simultaneously switching drivers and reports the
/// peak noise for each count — the paper's Study A experiment.
///
/// The sweep is a [`crate::scenario::ScenarioBatch`] client: the plane is
/// extracted once and every switching count is wired and simulated
/// against the shared macromodel on [`pdn_num::parallel`] workers. The
/// output rows follow `counts` order, bit-identical for any worker count.
///
/// # Errors
///
/// Propagates build or simulation failures; with several failing counts,
/// the lowest-index one is reported.
pub fn ssn_switching_sweep(
    board: &BoardSpec,
    selection: &NodeSelection,
    counts: &[usize],
    t_stop: f64,
    dt: f64,
) -> Result<Vec<(usize, f64)>, Box<dyn Error>> {
    if counts.is_empty() {
        return Err(Box::new(BuildBoardError::InvalidInput(
            "switching sweep needs at least one driver count; got an empty list".into(),
        )));
    }
    let batch = crate::scenario::ScenarioBatch::new(board, selection)?;
    let scenarios: Vec<crate::scenario::Scenario> = counts
        .iter()
        .map(|&n| crate::scenario::Scenario::switching(n))
        .collect();
    let outcomes = batch.run(&scenarios, t_stop, dt)?;
    Ok(counts
        .iter()
        .zip(outcomes)
        .map(|(&n, out)| (n, out.peak_noise))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdn_geom::units::mm;

    fn small_board() -> BoardSpec {
        let plane = PlaneSpec::rectangle(mm(40.0), mm(30.0), 0.5e-3, 4.5)
            .unwrap()
            .with_sheet_resistance(1e-3)
            .with_cell_size(mm(5.0));
        BoardSpec::new(plane, 3.3, Point::new(mm(2.0), mm(2.0))).with_chip(ChipSpec::cmos(
            "U1",
            Point::new(mm(30.0), mm(20.0)),
            4,
        ))
    }

    #[test]
    fn canonical_bytes_ignore_declaration_order() {
        let plane = || {
            PlaneSpec::rectangle(mm(40.0), mm(30.0), 0.5e-3, 4.5)
                .unwrap()
                .with_sheet_resistance(1e-3)
                .with_cell_size(mm(5.0))
        };
        let sense_a = plane().with_port("sense_a", mm(10.0), mm(10.0)).with_port(
            "sense_b",
            mm(25.0),
            mm(15.0),
        );
        let sense_b = plane().with_port("sense_b", mm(25.0), mm(15.0)).with_port(
            "sense_a",
            mm(10.0),
            mm(10.0),
        );
        let u1 = || ChipSpec::cmos("U1", Point::new(mm(30.0), mm(20.0)), 4);
        let u2 = || ChipSpec::cmos("U2", Point::new(mm(12.0), mm(8.0)), 2);
        let s1 = Point::new(mm(20.0), mm(10.0));
        let s2 = Point::new(mm(8.0), mm(22.0));
        let a = BoardSpec::new(sense_a, 3.3, Point::new(mm(2.0), mm(2.0)))
            .with_chip(u1())
            .with_chip(u2())
            .with_decap_site(s1)
            .with_decap_site(s2);
        let b = BoardSpec::new(sense_b, 3.3, Point::new(mm(2.0), mm(2.0)))
            .with_chip(u2())
            .with_chip(u1())
            .with_decap_site(s2)
            .with_decap_site(s1);
        assert_ne!(a, b, "declaration order is visible to PartialEq");
        assert_eq!(
            a.canonical_bytes(),
            b.canonical_bytes(),
            "…but not to the canonical encoding"
        );
    }

    #[test]
    fn canonical_bytes_track_material_edits() {
        let base = small_board().with_decap_site(Point::new(mm(20.0), mm(10.0)));
        let bytes = base.canonical_bytes();
        // Scenario-level fields are excluded…
        let mut quiet = base.clone();
        quiet.vcc = 5.0;
        quiet.supply_r = 1.0;
        assert_eq!(bytes, quiet.canonical_bytes());
        // …while every extraction input is included.
        let mut finer = base.clone();
        finer.plane = finer.plane.with_cell_size(mm(2.5));
        assert_ne!(bytes, finer.canonical_bytes());
        let thicker = BoardSpec::new(
            PlaneSpec::rectangle(mm(40.0), mm(30.0), 0.6e-3, 4.5)
                .unwrap()
                .with_sheet_resistance(1e-3)
                .with_cell_size(mm(5.0)),
            3.3,
            Point::new(mm(2.0), mm(2.0)),
        )
        .with_chip(ChipSpec::cmos("U1", Point::new(mm(30.0), mm(20.0)), 4))
        .with_decap_site(Point::new(mm(20.0), mm(10.0)));
        assert_ne!(bytes, thicker.canonical_bytes());
        let wider = BoardSpec::new(
            PlaneSpec::rectangle(mm(41.0), mm(30.0), 0.5e-3, 4.5)
                .unwrap()
                .with_sheet_resistance(1e-3)
                .with_cell_size(mm(5.0)),
            3.3,
            Point::new(mm(2.0), mm(2.0)),
        )
        .with_chip(ChipSpec::cmos("U1", Point::new(mm(30.0), mm(20.0)), 4))
        .with_decap_site(Point::new(mm(20.0), mm(10.0)));
        assert_ne!(bytes, wider.canonical_bytes());
        let mut compressed = base.clone();
        compressed.plane = compressed
            .plane
            .with_compression(pdn_bem::CompressionSpec::default());
        assert_ne!(bytes, compressed.canonical_bytes());
        let sharded = base
            .clone()
            .with_extraction_strategy(ExtractionStrategy::Sharded {
                plan: pdn_shard::ShardPlan::grid(2, 1).unwrap(),
            });
        assert_ne!(bytes, sharded.canonical_bytes());
        let reduced = base.clone().with_reduced_order(RomSpec::default());
        assert_ne!(bytes, reduced.canonical_bytes());
    }

    #[test]
    fn empty_sweep_rejected_before_extraction() {
        // An invalid board (supply off the plane) would fail extraction;
        // the empty-counts validation must fire first.
        let mut bad = small_board();
        bad.supply_location = Point::new(mm(-500.0), mm(-500.0));
        let err =
            ssn_switching_sweep(&bad, &NodeSelection::PortsOnly, &[], 1e-9, 0.05e-9).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("at least one driver count"), "got: {msg}");
    }

    #[test]
    fn partition_reflects_structure() {
        let sys = small_board()
            .build(&NodeSelection::PortsAndGrid { stride: 3 }, 2)
            .unwrap();
        let p = sys.partition();
        assert_eq!(p.devices, 4);
        assert_eq!(p.packages, 2);
        assert_eq!(p.signal_nets, 0);
        assert!(p.pdn_nodes >= 2);
    }

    #[test]
    fn rails_settle_to_vcc_without_switching() {
        let sys = small_board()
            .build(&NodeSelection::PortsAndGrid { stride: 3 }, 0)
            .unwrap();
        let out = sys.run(20e-9, 0.05e-9).unwrap();
        assert!(
            out.peak_noise < 0.02,
            "quiet board stays at Vcc: noise {}",
            out.peak_noise
        );
    }

    #[test]
    fn switching_creates_noise_and_output_toggles() {
        let sys = small_board()
            .build(&NodeSelection::PortsAndGrid { stride: 3 }, 4)
            .unwrap();
        let out = sys.run(20e-9, 0.05e-9).unwrap();
        assert!(out.peak_noise > 0.02, "SSN present: {}", out.peak_noise);
        let out_max = out.driver_output.iter().fold(0.0f64, |m, &v| m.max(v));
        assert!(out_max > 2.5, "driver output reaches the rail: {out_max}");
        // Supply eventually delivers charge.
        let i_max = out.supply_current.iter().fold(0.0f64, |m, &v| m.max(v));
        assert!(i_max > 0.0);
    }

    #[test]
    fn more_switching_drivers_more_noise() {
        let rows = ssn_switching_sweep(
            &small_board(),
            &NodeSelection::PortsAndGrid { stride: 3 },
            &[1, 4],
            20e-9,
            0.05e-9,
        )
        .unwrap();
        assert!(
            rows[1].1 > rows[0].1,
            "noise grows with switchers: {rows:?}"
        );
    }

    #[test]
    fn decap_reduces_noise() {
        let base = small_board();
        let with_decap =
            small_board().with_decap(DecapSpec::ceramic_100nf(Point::new(mm(28.0), mm(20.0))));
        let sel = NodeSelection::PortsAndGrid { stride: 3 };
        let n_base = base.build(&sel, 4).unwrap().run(20e-9, 0.05e-9).unwrap();
        let n_dec = with_decap
            .build(&sel, 4)
            .unwrap()
            .run(20e-9, 0.05e-9)
            .unwrap();
        // The decap acts on the board-level plane noise; the die-rail
        // bounce is dominated by the package pin inductance and is mostly
        // unaffected — exactly the engineering point of the paper's decap
        // study.
        assert!(
            n_dec.plane_noise_peak < 0.8 * n_base.plane_noise_peak,
            "decap suppresses plane noise: {} vs {}",
            n_dec.plane_noise_peak,
            n_base.plane_noise_peak
        );
    }

    #[test]
    fn off_plane_decap_site_rejected_before_extraction() {
        let board = small_board().with_decap_site(Point::new(mm(100.0), mm(100.0)));
        match board.extract_model(&NodeSelection::PortsOnly) {
            Err(BuildBoardError::InvalidInput(msg)) => {
                assert!(msg.contains("decap0"), "{msg}");
                assert!(msg.contains("outside"), "{msg}");
            }
            other => panic!("expected InvalidInput, got {other:?}"),
        }
    }

    #[test]
    fn overlapping_port_footprints_rejected() {
        // 5 mm cells: (28, 18) mm and the U1 chip at (30, 20) mm both
        // snap to the cell centered at (27.5, 17.5) mm.
        let board =
            small_board().with_chip(ChipSpec::cmos("U2", Point::new(mm(28.0), mm(18.0)), 1));
        match board.extract_model(&NodeSelection::PortsOnly) {
            Err(BuildBoardError::InvalidInput(msg)) => {
                assert!(msg.contains("U1_vcc"), "{msg}");
                assert!(msg.contains("U2_vcc"), "{msg}");
                assert!(msg.contains("overlap"), "{msg}");
            }
            other => panic!("expected InvalidInput, got {other:?}"),
        }
    }

    #[test]
    fn decap_site_may_share_a_port_cell() {
        // A capacitor mounted right at the chip pin is a legitimate
        // layout: the site snaps onto U1's cell and connects at its node.
        let board = small_board().with_decap_site(Point::new(mm(28.0), mm(20.0)));
        let model = board.extract_model(&NodeSelection::PortsOnly).unwrap();
        assert_eq!(model.equivalent().port_count(), 3);
    }

    #[test]
    fn sharded_strategy_builds_and_tracks_monolithic() {
        use pdn_shard::max_port_impedance_deviation;
        // Like `small_board`, but meshed at 2.5 mm: sharding accuracy
        // depends on the seam strip being a small fraction of the plane,
        // which an 8x6-cell mesh cannot provide.
        let fine_board = || {
            let plane = PlaneSpec::rectangle(mm(40.0), mm(30.0), 0.5e-3, 4.5)
                .unwrap()
                .with_sheet_resistance(1e-3)
                .with_cell_size(mm(2.5));
            BoardSpec::new(plane, 3.3, Point::new(mm(2.0), mm(2.0))).with_chip(ChipSpec::cmos(
                "U1",
                Point::new(mm(30.0), mm(20.0)),
                4,
            ))
        };
        let sel = NodeSelection::PortsAndGrid { stride: 3 };
        let mono = fine_board().extract_model(&sel).unwrap();
        let board = fine_board().with_extraction_strategy(ExtractionStrategy::Sharded {
            plan: ShardPlan::grid(2, 1).unwrap(),
        });
        let sharded = board.extract_model(&sel).unwrap();
        // The model kinds expose the right introspection...
        assert!(mono.plane().is_some() && mono.shard_report().is_none());
        assert!(sharded.plane().is_none());
        assert_eq!(sharded.shard_report().unwrap().regions.len(), 2);
        // ...the port layouts agree...
        assert_eq!(
            mono.equivalent().port_count(),
            sharded.equivalent().port_count()
        );
        // ...the models agree within the documented low-band tolerance
        // (measured 3.4e-3 on this split)...
        let freqs = [1e8, 3e8, 1e9];
        let dev =
            max_port_impedance_deviation(sharded.equivalent(), mono.equivalent(), &freqs).unwrap();
        assert!(dev < 0.02, "deviation {dev:.3e}");
        // ...and the downstream wiring consumes the sharded model as-is.
        let out = board
            .wire(&sharded, 2)
            .unwrap()
            .run(10e-9, 0.05e-9)
            .unwrap();
        assert!(out.time.len() > 50);
    }

    #[test]
    fn reduced_order_board_runs_and_tracks_full_stamp() {
        let spec = RomSpec {
            f_min: 1e6,
            f_max: 4e9,
            points: 48,
            rel_tol: 1e-5,
            cert_tol: 0.02,
        };
        let sel = NodeSelection::PortsAndGrid { stride: 3 };
        let full_sys = small_board().build(&sel, 4).unwrap();
        let board = small_board().with_reduced_order(spec);
        let model = board.extract_model(&sel).unwrap();
        let rom = model.reduced_model().expect("reduction requested");
        assert_eq!(rom.ports(), model.equivalent().port_count());
        // The base extraction stays reachable behind the wrapper.
        assert!(model.plane().is_some());
        let sys = board.wire(&model, 4).unwrap();
        // The ROM collapses the PDN to its port nodes.
        assert_eq!(sys.partition().pdn_nodes, rom.ports());
        let out = sys.run(15e-9, 0.05e-9).unwrap();
        let full = full_sys.run(15e-9, 0.05e-9).unwrap();
        assert!(
            (out.peak_noise - full.peak_noise).abs() < 0.05 * full.peak_noise,
            "reduced {} vs full {}",
            out.peak_noise,
            full.peak_noise
        );
    }

    #[test]
    fn signal_line_co_simulates() {
        let plane = PlaneSpec::rectangle(mm(40.0), mm(30.0), 0.5e-3, 4.5)
            .unwrap()
            .with_cell_size(mm(5.0));
        let chip = ChipSpec::cmos("U1", Point::new(mm(30.0), mm(20.0)), 1)
            .with_line(SignalLineSpec::z50(0.05));
        let board = BoardSpec::new(plane, 3.3, Point::new(mm(2.0), mm(2.0))).with_chip(chip);
        let sys = board
            .build(&NodeSelection::PortsAndGrid { stride: 3 }, 1)
            .unwrap();
        assert_eq!(sys.partition().signal_nets, 1);
        let out = sys.run(20e-9, 0.05e-9).unwrap();
        assert!(out.time.len() > 100);
    }
}

#[cfg(test)]
mod partitioned_cosim_tests {
    use super::*;
    use pdn_circuit::TransientSpec;
    use pdn_geom::units::mm;

    #[test]
    fn partitioned_board_run_matches_monolithic() {
        let plane = PlaneSpec::rectangle(mm(40.0), mm(30.0), 0.5e-3, 4.5)
            .unwrap()
            .with_sheet_resistance(1e-3)
            .with_cell_size(mm(5.0));
        let board = BoardSpec::new(plane, 3.3, Point::new(mm(2.0), mm(2.0)))
            .with_chip(ChipSpec::cmos("U1", Point::new(mm(30.0), mm(20.0)), 4));
        let sys = board
            .build(&NodeSelection::PortsAndGrid { stride: 3 }, 4)
            .unwrap();
        // run() uses the partitioned solver; compare against an explicit
        // monolithic run of the same netlist.
        let dt = 0.05e-9;
        let fast = sys.run(15e-9, dt).unwrap();
        let slow_spec = TransientSpec::new(15e-9, dt).with_settle(1e-3);
        let slow = sys.circuit().transient(&slow_spec).unwrap();
        // Compare the worst-chip rail waveform.
        let rail = sys.chip_rails[0];
        let mut max_diff = 0.0f64;
        for (a, b) in fast
            .rail_noise
            .iter()
            .zip(slow.voltage(rail).iter().map(|&v| v - 3.3))
        {
            max_diff = max_diff.max((a - b).abs());
        }
        assert!(
            max_diff < 0.05,
            "partitioned co-simulation tracks monolithic: {max_diff}"
        );
    }
}
