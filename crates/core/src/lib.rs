#![warn(missing_docs)]
//! End-to-end power/ground-network modeling and signal-integrity
//! co-simulation — the paper's complete flow.
//!
//! `pdn-core` ties the substrate crates together:
//!
//! 1. **Describe** the structure: a [`PlaneSpec`] (shape, stackup, loss,
//!    ports) or a full [`BoardSpec`] (plane + chips + drivers + decoupling
//!    capacitors).
//! 2. **Extract**: mesh → boundary-element MPIE solve → quasi-static
//!    R–L‖C equivalent circuit ([`ExtractedPlane`]).
//! 3. **Co-simulate** the four subsystems of the paper's Figure 3 — chip
//!    devices, chip packages, signal nets, and the power/ground macromodel
//!    — in one time-domain run ([`cosim::BoardSystem`]).
//! 4. **Verify** against the independent references: direct BEM
//!    frequency sweeps, the 2-D FDTD solver, and analytic cavity modes
//!    ([`verify`]).
//!
//! The [`boards`] module reconstructs every structure in the paper's
//! evaluation section (split MCM planes, the L-shaped patch, the coupled
//! microstrip pair, the HP 5-port test plane, and the two SSN design
//! studies).
//!
//! # Examples
//!
//! Extract a 4-node macromodel of a small power plane (paper Fig. 2):
//!
//! ```
//! use pdn_core::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = PlaneSpec::rectangle(mm(20.0), mm(20.0), 0.5e-3, 4.5)?
//!     .with_sheet_resistance(1e-3)
//!     .with_cell_size(mm(2.5))
//!     .with_port("P1", mm(2.0), mm(2.0))
//!     .with_port("P2", mm(18.0), mm(18.0));
//! let extracted = spec.extract(&NodeSelection::PortsOnly)?;
//! assert_eq!(extracted.equivalent().node_count(), 2);
//! # Ok(())
//! # }
//! ```

pub mod boards;
pub mod cosim;
pub mod flow;
pub mod optimize;
pub mod scenario;
pub mod verify;

pub use cosim::{
    BoardSpec, BoardSystem, BuildBoardError, ChipSpec, DecapSpec, ExtractedModel,
    ExtractionStrategy, ModelParts, SsnOutcome,
};
pub use flow::{ExtractPlaneError, ExtractedPlane, PlaneSpec};
pub use optimize::{
    decap_search_board, optimize_decaps, optimize_decaps_with_batch, DecapPlan, OptimizeSettings,
};
pub use scenario::{DecapValue, Scenario, ScenarioBatch, ScenarioBatchError};

/// Convenience re-exports for downstream users and examples.
pub mod prelude {
    pub use crate::boards;
    pub use crate::cosim::{
        BoardSpec, BoardSystem, BuildBoardError, ChipSpec, DecapSpec, ExtractedModel,
        ExtractionStrategy, SsnOutcome,
    };
    pub use crate::flow::{ExtractPlaneError, ExtractedPlane, PlaneSpec};
    pub use crate::optimize::{optimize_decaps, DecapPlan, OptimizeSettings};
    pub use crate::scenario::{DecapValue, Scenario, ScenarioBatch, ScenarioBatchError};
    pub use crate::verify;
    pub use pdn_bem::{BemOptions, BemSystem, CompressionSpec, Testing};
    pub use pdn_circuit::{
        s_from_z, AcSweep, Circuit, CoupledLineModel, Integration, TransientSpec, Waveform,
    };
    pub use pdn_extract::{EquivalentCircuit, NodeSelection, RomSpec};
    pub use pdn_fdtd::PlaneFdtd;
    pub use pdn_geom::units::{ghz, inch, mhz, mil, mm, nf, nh, ns, pf, ps, uf, um};
    pub use pdn_geom::{PlaneMesh, PlanePair, Point, Polygon, Stackup};
    pub use pdn_greens::{LayeredKernel, SurfaceImpedance};
    pub use pdn_num::{c64, Matrix, PoleResidueModel, SweepAccuracy, SweepStats};
    pub use pdn_shard::{ShardPlan, ShardReport};
    pub use pdn_tline::{simulate_coupled_pair, MicrostripArray};
}
