//! Verification experiments: equivalent circuit vs. independent
//! references (paper Section 6.1).
//!
//! The paper validates its extracted circuits against measurements and a
//! 2-D FDTD simulation. Measured data for the HP test plane is not
//! available, so the FDTD engine (and the analytic cavity model) plays the
//! measurement's role here — it shares no code path with the BEM/circuit
//! flow and discretizes different equations, making it a genuinely
//! independent reference (see `DESIGN.md` for the substitution record).

use crate::flow::{ExtractedPlane, PlaneSpec};
use pdn_circuit::{Circuit, NodeId, TransientSpec, Waveform};
use pdn_extract::EquivalentCircuit;
use pdn_fdtd::PlaneFdtd;
use pdn_num::{c64, fft, next_pow2, SweepAccuracy};
use std::error::Error;

/// `|S21|` (dB) of the extracted macromodel between two ports over a
/// frequency list, reference impedance `z0` — the simulation curve of the
/// paper's Figure 7.
///
/// # Errors
///
/// Propagates solve failures.
pub fn circuit_s21_db(
    eq: &EquivalentCircuit,
    p_in: usize,
    p_out: usize,
    freqs: &[f64],
    z0: f64,
) -> Result<Vec<f64>, Box<dyn Error>> {
    circuit_s21_db_with(eq, p_in, p_out, freqs, z0, SweepAccuracy::Exact)
}

/// [`circuit_s21_db`] with an explicit [`SweepAccuracy`] policy —
/// `Rational` pays an exact solve only at adaptively chosen anchor
/// frequencies and interpolates the rest with a certified rational model.
///
/// # Errors
///
/// Propagates solve failures.
pub fn circuit_s21_db_with(
    eq: &EquivalentCircuit,
    p_in: usize,
    p_out: usize,
    freqs: &[f64],
    z0: f64,
    accuracy: SweepAccuracy,
) -> Result<Vec<f64>, Box<dyn Error>> {
    let sweep = eq.s_parameter_sweep_with(freqs, z0, accuracy)?;
    Ok(sweep.iter().map(|s| s[(p_out, p_in)].db()).collect())
}

/// `|S21|` (dB) between two ports computed by the FDTD reference: a short
/// pulse through a `z0` source at `p_in`, all ports terminated with `z0`,
/// spectra ratioed per `S21(f) = 2·V₂(f)/V_s(f)`.
///
/// `f_max` sets the pulse bandwidth; the returned values are interpolated
/// onto `freqs`.
///
/// # Errors
///
/// Returns an error when the spec holds more than one shape or FDTD setup
/// fails.
pub fn fdtd_s21_db(
    spec: &PlaneSpec,
    p_in: usize,
    p_out: usize,
    freqs: &[f64],
    z0: f64,
    f_max: f64,
) -> Result<Vec<f64>, Box<dyn Error>> {
    let shape = spec.single_shape()?;
    let mut sim = PlaneFdtd::new(shape, spec.pair(), spec.cell_size())?
        .with_loss(2.0 * spec.sheet_resistance());
    let mut port_ids = Vec::new();
    for (name, p) in spec.ports() {
        port_ids.push(sim.add_port(name.clone(), *p, z0)?);
    }
    // Pulse with energy out to f_max: rise ≈ 0.35/f_max.
    let rise = 0.35 / f_max;
    let stim = Waveform::pulse(0.0, 1.0, 0.0, rise, rise, rise);
    sim.drive_port(port_ids[p_in], stim.clone());
    // Run long enough for the (lossy) plane to ring down.
    let res = sim.run(60e-9);
    let dt = sim.dt();
    let n = next_pow2(res.time.len());
    let spectrum = |w: &[f64]| -> Vec<c64> {
        let mut buf: Vec<c64> = w.iter().map(|&x| c64::from_re(x)).collect();
        buf.resize(n, c64::ZERO);
        fft(&mut buf);
        buf
    };
    let v_out = spectrum(&res.port_voltages[p_out]);
    let src: Vec<f64> = res.time.iter().map(|&t| stim.eval(t)).collect();
    let v_src = spectrum(&src);
    let df = 1.0 / (n as f64 * dt);
    let s21_bin = |f: f64| -> f64 {
        let k = (f / df).round() as usize;
        let k = k.clamp(1, n / 2 - 1);
        (2.0 * v_out[k] / v_src[k]).db()
    };
    Ok(freqs.iter().map(|&f| s21_bin(f)).collect())
}

/// Resonant frequencies of the extracted macromodel's input impedance at
/// `port` (ascending) — the paper's Example 1 measurement.
///
/// # Errors
///
/// Propagates solve failures.
pub fn circuit_resonances(
    eq: &EquivalentCircuit,
    port: usize,
    f_start: f64,
    f_stop: f64,
    points: usize,
) -> Result<Vec<f64>, Box<dyn Error>> {
    Ok(eq.find_resonances(port, f_start, f_stop, points)?)
}

/// [`circuit_resonances`] with an explicit [`SweepAccuracy`] policy; under
/// `Rational` the macromodel's rational-interpolant poles seed the peak
/// search.
///
/// # Errors
///
/// Propagates solve failures.
pub fn circuit_resonances_with(
    eq: &EquivalentCircuit,
    port: usize,
    f_start: f64,
    f_stop: f64,
    points: usize,
    accuracy: SweepAccuracy,
) -> Result<Vec<f64>, Box<dyn Error>> {
    Ok(eq.find_resonances_with(port, f_start, f_stop, points, accuracy)?)
}

/// Resonant frequencies seen by the FDTD reference: ring-down spectrum
/// peaks of the port voltage, ascending, within `[f_start, f_stop]`.
///
/// # Errors
///
/// Returns an error when FDTD setup fails.
pub fn fdtd_resonances(
    spec: &PlaneSpec,
    port: usize,
    f_start: f64,
    f_stop: f64,
) -> Result<Vec<f64>, Box<dyn Error>> {
    let shape = spec.single_shape()?;
    let mut sim = PlaneFdtd::new(shape, spec.pair(), spec.cell_size() * 0.5)?
        .with_loss(2.0 * spec.sheet_resistance());
    let mut ids = Vec::new();
    for (name, p) in spec.ports() {
        // Nearly open terminations keep the cavity high-Q.
        ids.push(sim.add_port(name.clone(), *p, 1e6)?);
    }
    let rise = 0.2 / f_stop;
    sim.drive_port(
        ids[port],
        Waveform::pulse(0.0, 1.0, 0.0, rise, rise, 0.5 * rise),
    );
    let res = sim.run(40e-9);
    let (freqs, mags) = pdn_num::real_fft_magnitude(&res.port_voltages[port], sim.dt());
    // Local maxima within the window.
    let mut peaks = Vec::new();
    for k in 1..freqs.len() - 1 {
        if freqs[k] >= f_start
            && freqs[k] <= f_stop
            && mags[k] > mags[k - 1]
            && mags[k] > mags[k + 1]
        {
            peaks.push((freqs[k], mags[k]));
        }
    }
    // Keep peaks at least 10 % of the strongest to suppress FFT ripple.
    let max_mag = peaks.iter().map(|p| p.1).fold(0.0, f64::max);
    Ok(peaks
        .into_iter()
        .filter(|p| p.1 > 0.1 * max_mag)
        .map(|p| p.0)
        .collect())
}

/// Frequency of the strongest input-impedance peak of the macromodel in
/// `[f_start, f_stop]`, with its magnitude.
///
/// Matching engines by their *strongest* mode is robust against small
/// scan-ripple peaks that plain peak lists pick up.
///
/// # Errors
///
/// Propagates solve failures; errors if no peak exists in the window.
pub fn circuit_strongest_peak(
    eq: &EquivalentCircuit,
    port: usize,
    f_start: f64,
    f_stop: f64,
    points: usize,
) -> Result<(f64, f64), Box<dyn Error>> {
    circuit_strongest_peak_with(eq, port, f_start, f_stop, points, SweepAccuracy::Exact)
}

/// [`circuit_strongest_peak`] with an explicit [`SweepAccuracy`] policy.
///
/// # Errors
///
/// Propagates solve failures; errors if no peak exists in the window.
pub fn circuit_strongest_peak_with(
    eq: &EquivalentCircuit,
    port: usize,
    f_start: f64,
    f_stop: f64,
    points: usize,
    accuracy: SweepAccuracy,
) -> Result<(f64, f64), Box<dyn Error>> {
    let freqs: Vec<f64> = (0..points)
        .map(|k| f_start + (f_stop - f_start) * k as f64 / (points - 1) as f64)
        .collect();
    let z = eq.impedance_sweep_with(&freqs, accuracy)?;
    let mags: Vec<f64> = z.iter().map(|zk| zk[(port, port)].norm()).collect();
    let mut best: Option<(f64, f64)> = None;
    for k in 1..points.saturating_sub(1) {
        if mags[k] > mags[k - 1] && mags[k] > mags[k + 1] && best.is_none_or(|m| mags[k] > m.1) {
            best = Some((freqs[k], mags[k]));
        }
    }
    best.ok_or_else(|| "no impedance peak in the scan window".into())
}

/// Frequency of the strongest FDTD ring-down spectral peak in the window.
///
/// # Errors
///
/// Errors when FDTD setup fails or no peak exists in the window.
pub fn fdtd_strongest_peak(
    spec: &PlaneSpec,
    port: usize,
    f_start: f64,
    f_stop: f64,
) -> Result<f64, Box<dyn Error>> {
    let shape = spec.single_shape()?;
    let mut sim = PlaneFdtd::new(shape, spec.pair(), spec.cell_size() * 0.5)?
        .with_loss(2.0 * spec.sheet_resistance());
    let mut ids = Vec::new();
    for (name, p) in spec.ports() {
        ids.push(sim.add_port(name.clone(), *p, 1e6)?);
    }
    let rise = 0.2 / f_stop;
    sim.drive_port(
        ids[port],
        Waveform::pulse(0.0, 1.0, 0.0, rise, rise, 0.5 * rise),
    );
    let res = sim.run(40e-9);
    let (freqs, mags) = pdn_num::real_fft_magnitude(&res.port_voltages[port], sim.dt());
    let mut best: Option<(f64, f64)> = None;
    for k in 1..freqs.len() - 1 {
        if freqs[k] >= f_start
            && freqs[k] <= f_stop
            && mags[k] > mags[k - 1]
            && mags[k] > mags[k + 1]
            && best.is_none_or(|(_, m)| mags[k] > m)
        {
            best = Some((freqs[k], mags[k]));
        }
    }
    best.map(|(f, _)| f)
        .ok_or_else(|| "no spectral peak in the window".into())
}

/// Overlaid transient waveforms at a watch port: extracted circuit vs.
/// FDTD — the paper's Figure 8 experiment.
#[derive(Debug, Clone)]
pub struct TransientComparison {
    /// Common sample times (s).
    pub time: Vec<f64>,
    /// Equivalent-RLC-circuit waveform (V).
    pub circuit: Vec<f64>,
    /// FDTD waveform (V), linearly resampled onto `time`.
    pub fdtd: Vec<f64>,
}

impl TransientComparison {
    /// RMS difference between the two waveforms.
    pub fn rms_difference(&self) -> f64 {
        let n = self.time.len().max(1);
        (self
            .circuit
            .iter()
            .zip(&self.fdtd)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / n as f64)
            .sqrt()
    }

    /// Peak magnitude of the circuit waveform.
    pub fn circuit_peak(&self) -> f64 {
        self.circuit.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    }

    /// Peak magnitude of the FDTD waveform.
    pub fn fdtd_peak(&self) -> f64 {
        self.fdtd.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    }
}

/// Runs the Figure 8 experiment: `stimulus` behind `r_term` at
/// `drive_port`, every port terminated with `r_term`, watching
/// `watch_port`, with both the extracted macromodel and the FDTD
/// reference.
///
/// # Errors
///
/// Propagates extraction, circuit, and FDTD failures.
#[allow(clippy::too_many_arguments)]
pub fn transient_comparison(
    spec: &PlaneSpec,
    extracted: &ExtractedPlane,
    drive_port: usize,
    watch_port: usize,
    stimulus: Waveform,
    r_term: f64,
    t_stop: f64,
    dt: f64,
) -> Result<TransientComparison, Box<dyn Error>> {
    // --- circuit side ----------------------------------------------------
    // The standalone verification netlist uses the Exact realization (the
    // full reluctance matrix including negative Kron residues): with only
    // resistive terminations attached it is stable, and it reproduces the
    // macromodel's frequency response to machine precision.
    let eq = extracted.equivalent();
    let mut ckt = Circuit::new();
    let nodes = eq.to_circuit_with(&mut ckt, "pg_", 0.0, pdn_extract::Realization::Exact);
    let port_nodes: Vec<NodeId> = (0..eq.port_count())
        .map(|p| nodes[eq.port_node(p)])
        .collect();
    for (p, &node) in port_nodes.iter().enumerate() {
        if p == drive_port {
            let src = ckt.node("stim");
            ckt.voltage_source(src, Circuit::GND, stimulus.clone());
            ckt.resistor(src, node, r_term);
        } else {
            ckt.resistor(node, Circuit::GND, r_term);
        }
    }
    let res = ckt.transient(&TransientSpec::new(t_stop, dt))?;
    let time: Vec<f64> = res.time().to_vec();
    let circuit: Vec<f64> = res.voltage(port_nodes[watch_port]).to_vec();

    // --- FDTD side ---------------------------------------------------------
    let shape = spec.single_shape()?;
    let mut sim = PlaneFdtd::new(shape, spec.pair(), spec.cell_size())?
        .with_loss(2.0 * spec.sheet_resistance());
    let mut ids = Vec::new();
    for (name, p) in spec.ports() {
        ids.push(sim.add_port(name.clone(), *p, r_term)?);
    }
    sim.drive_port(ids[drive_port], stimulus);
    let fres = sim.run(t_stop);
    // Resample FDTD onto the circuit time base.
    let f_dt = sim.dt();
    let fv = &fres.port_voltages[watch_port];
    let fdtd: Vec<f64> = time
        .iter()
        .map(|&t| {
            let pos = t / f_dt - 1.0;
            if pos <= 0.0 {
                return fv.first().copied().unwrap_or(0.0);
            }
            let i0 = pos.floor() as usize;
            let frac = pos - i0 as f64;
            let a = fv.get(i0).copied().unwrap_or(0.0);
            let b = fv.get(i0 + 1).copied().unwrap_or(a);
            a + frac * (b - a)
        })
        .collect();
    Ok(TransientComparison {
        time,
        circuit,
        fdtd,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdn_extract::NodeSelection;
    use pdn_geom::units::mm;

    fn small_plane() -> PlaneSpec {
        PlaneSpec::rectangle(mm(20.0), mm(20.0), 0.5e-3, 4.5)
            .unwrap()
            .with_sheet_resistance(2e-3)
            .with_cell_size(mm(2.0))
            .with_port("P1", mm(2.0), mm(2.0))
            .with_port("P2", mm(18.0), mm(18.0))
    }

    #[test]
    fn fig8_style_transient_agrees() {
        let spec = small_plane();
        let extracted = spec
            .extract(&NodeSelection::PortsAndGrid { stride: 2 })
            .unwrap();
        let stim = Waveform::pulse(0.0, 5.0, 0.1e-9, 0.2e-9, 0.2e-9, 1.0e-9);
        let cmp = transient_comparison(&spec, &extracted, 0, 1, stim, 50.0, 4e-9, 2e-12).unwrap();
        assert!(cmp.circuit_peak() > 0.05, "signal couples across the plane");
        assert!(cmp.fdtd_peak() > 0.05);
        // The two independent engines agree in amplitude class and shape.
        let rel = cmp.rms_difference() / cmp.fdtd_peak();
        assert!(rel < 0.35, "rms/peak = {rel}");
        let peak_ratio = cmp.circuit_peak() / cmp.fdtd_peak();
        assert!(
            peak_ratio > 0.6 && peak_ratio < 1.6,
            "peak ratio {peak_ratio}"
        );
    }

    #[test]
    fn s21_curves_track_below_resonance() {
        let spec = small_plane();
        let extracted = spec
            .extract(&NodeSelection::PortsAndGrid { stride: 2 })
            .unwrap();
        let f10 = spec.pair().cavity_resonance(mm(20.0), mm(20.0), 1, 0);
        let freqs: Vec<f64> = (1..=8).map(|k| k as f64 * 0.1 * f10).collect();
        let s_eq = circuit_s21_db(extracted.equivalent(), 0, 1, &freqs, 50.0).unwrap();
        let s_fd = fdtd_s21_db(&spec, 0, 1, &freqs, 50.0, 2.0 * f10).unwrap();
        for ((f, a), b) in freqs.iter().zip(&s_eq).zip(&s_fd) {
            assert!(
                (a - b).abs() < 4.0,
                "f = {f:.3e}: circuit {a:.2} dB vs FDTD {b:.2} dB"
            );
        }
    }

    #[test]
    fn resonances_agree_between_engines() {
        let spec = small_plane();
        let extracted = spec
            .extract(&NodeSelection::PortsAndGrid { stride: 2 })
            .unwrap();
        let f10 = spec.pair().cavity_resonance(mm(20.0), mm(20.0), 1, 0);
        let eq_peaks =
            circuit_resonances(extracted.equivalent(), 0, 0.5 * f10, 1.5 * f10, 41).unwrap();
        let fd_peaks = fdtd_resonances(&spec, 0, 0.5 * f10, 1.5 * f10).unwrap();
        assert!(!eq_peaks.is_empty() && !fd_peaks.is_empty());
        let rel = (eq_peaks[0] - fd_peaks[0]).abs() / fd_peaks[0];
        assert!(
            rel < 0.1,
            "eq {:.3e} vs fdtd {:.3e}",
            eq_peaks[0],
            fd_peaks[0]
        );
    }
}
