//! The extraction flow: plane description → mesh → BEM → macromodel.

use pdn_bem::{AssembleBemError, BemOptions, BemSystem};
use pdn_extract::{EquivalentCircuit, ExtractCircuitError, NodeSelection};
use pdn_geom::mesh::MeshPlaneError;
use pdn_geom::stackup::InvalidPlanePairError;
use pdn_geom::{PlaneMesh, PlanePair, Point, Polygon};
use pdn_greens::SurfaceImpedance;
use pdn_shard::{
    extract_sharded, max_port_impedance_deviation, ShardExtractError, ShardPlan, ShardRequest,
    ShardedExtraction,
};
use std::error::Error;
use std::fmt;
use std::time::Instant;

/// Error from the end-to-end extraction flow.
#[derive(Debug)]
pub enum ExtractPlaneError {
    /// Invalid plane-pair parameters.
    Stackup(InvalidPlanePairError),
    /// Meshing failed (bad cell size, port off the conductor…).
    Mesh(MeshPlaneError),
    /// BEM assembly failed.
    Assembly(AssembleBemError),
    /// Macromodel extraction failed.
    Extraction(ExtractCircuitError),
    /// Sharded (domain-decomposed) extraction failed.
    Sharding(ShardExtractError),
    /// An operation requiring a single net was given split planes.
    MultiNet,
}

impl fmt::Display for ExtractPlaneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractPlaneError::Stackup(e) => write!(f, "stackup: {e}"),
            ExtractPlaneError::Mesh(e) => write!(f, "mesh: {e}"),
            ExtractPlaneError::Assembly(e) => write!(f, "assembly: {e}"),
            ExtractPlaneError::Extraction(e) => write!(f, "extraction: {e}"),
            ExtractPlaneError::Sharding(e) => write!(f, "sharding: {e}"),
            ExtractPlaneError::MultiNet => {
                write!(f, "operation requires a single-net plane, got split planes")
            }
        }
    }
}

impl Error for ExtractPlaneError {}

impl From<InvalidPlanePairError> for ExtractPlaneError {
    fn from(e: InvalidPlanePairError) -> Self {
        ExtractPlaneError::Stackup(e)
    }
}
impl From<MeshPlaneError> for ExtractPlaneError {
    fn from(e: MeshPlaneError) -> Self {
        ExtractPlaneError::Mesh(e)
    }
}
impl From<AssembleBemError> for ExtractPlaneError {
    fn from(e: AssembleBemError) -> Self {
        ExtractPlaneError::Assembly(e)
    }
}
impl From<ExtractCircuitError> for ExtractPlaneError {
    fn from(e: ExtractCircuitError) -> Self {
        ExtractPlaneError::Extraction(e)
    }
}
impl From<ShardExtractError> for ExtractPlaneError {
    fn from(e: ShardExtractError) -> Self {
        ExtractPlaneError::Sharding(e)
    }
}

/// A power/ground plane structure ready for extraction.
///
/// # Examples
///
/// ```
/// use pdn_core::PlaneSpec;
/// use pdn_geom::units::mm;
///
/// # fn main() -> Result<(), pdn_core::ExtractPlaneError> {
/// let spec = PlaneSpec::rectangle(mm(30.0), mm(20.0), 0.3e-3, 4.2)?
///     .with_port("VCC1", mm(5.0), mm(5.0));
/// assert_eq!(spec.port_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PlaneSpec {
    shapes: Vec<Polygon>,
    pair: PlanePair,
    /// Per-plane sheet resistance (Ω/sq); the loop sees twice this value.
    sheet_resistance: f64,
    cell_size: f64,
    ports: Vec<(String, Point)>,
    options: BemOptions,
}

impl PlaneSpec {
    /// A rectangular plane of the given size over a ground plane
    /// `separation` meters below, dielectric `eps_r`.
    ///
    /// The default mesh density is 20 cells across the longer edge.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid pair parameters.
    pub fn rectangle(
        width: f64,
        height: f64,
        separation: f64,
        eps_r: f64,
    ) -> Result<Self, ExtractPlaneError> {
        Self::from_shape(Polygon::rectangle(width, height), separation, eps_r)
    }

    /// A plane of arbitrary shape.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid pair parameters.
    pub fn from_shape(
        shape: Polygon,
        separation: f64,
        eps_r: f64,
    ) -> Result<Self, ExtractPlaneError> {
        Self::from_shapes(vec![shape], separation, eps_r)
    }

    /// Split planes: several galvanically separate islands over a common
    /// ground (the paper's Figure 1).
    ///
    /// # Errors
    ///
    /// Returns an error for invalid pair parameters.
    pub fn from_shapes(
        shapes: Vec<Polygon>,
        separation: f64,
        eps_r: f64,
    ) -> Result<Self, ExtractPlaneError> {
        let pair = PlanePair::new(separation, eps_r)?;
        let (min, max) = shapes
            .iter()
            .map(Polygon::bounding_box)
            .fold((f64::INFINITY, f64::NEG_INFINITY), |acc, (lo, hi)| {
                (acc.0.min(lo.x).min(lo.y), acc.1.max(hi.x).max(hi.y))
            });
        let extent = (max - min).max(1e-6);
        Ok(PlaneSpec {
            shapes,
            pair,
            sheet_resistance: 0.0,
            cell_size: extent / 20.0,
            ports: Vec::new(),
            options: BemOptions::default(),
        })
    }

    /// Sets the per-plane sheet resistance, Ω/square (builder style).
    pub fn with_sheet_resistance(mut self, r_sq: f64) -> Self {
        self.sheet_resistance = r_sq.max(0.0);
        self
    }

    /// Sets the mesh cell size (builder style).
    pub fn with_cell_size(mut self, cell: f64) -> Self {
        self.cell_size = cell;
        self
    }

    /// Adds a named port at `(x, y)` (builder style).
    pub fn with_port(mut self, name: impl Into<String>, x: f64, y: f64) -> Self {
        self.ports.push((name.into(), Point::new(x, y)));
        self
    }

    /// Uses the microstrip (air-above) substrate kernel, for patch
    /// structures rather than buried plane pairs (builder style).
    pub fn with_microstrip_kernel(mut self) -> Self {
        self.options = self.options.with_microstrip();
        self
    }

    /// Uses Galerkin testing of the given order (builder style).
    pub fn with_galerkin(mut self, order: usize) -> Self {
        self.options = self.options.with_galerkin(order);
        self
    }

    /// Enables certified low-rank (ACA) kernel compression with the given
    /// settings (builder style). Extraction then assembles the BEM
    /// kernels hierarchically and runs the iterative reduction path — see
    /// `docs/COMPRESSION.md`.
    pub fn with_compression(mut self, spec: pdn_bem::CompressionSpec) -> Self {
        self.options = self.options.with_compression(spec);
        self
    }

    /// Number of ports defined so far.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// The plane pair.
    pub fn pair(&self) -> &PlanePair {
        &self.pair
    }

    /// The mesh cell size.
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Port names and locations.
    pub fn ports(&self) -> &[(String, Point)] {
        &self.ports
    }

    /// Per-plane sheet resistance, Ω/square.
    pub fn sheet_resistance(&self) -> f64 {
        self.sheet_resistance
    }

    /// The conductor shapes.
    pub fn shapes(&self) -> &[Polygon] {
        &self.shapes
    }

    /// The BEM assembly options.
    pub fn options(&self) -> &BemOptions {
        &self.options
    }

    /// Appends a canonical byte encoding of everything that determines
    /// the extracted *numbers* — shapes, stackup, loss, mesh pitch,
    /// assembly options, and the port set — to `w`, with `f64` values
    /// encoded bit-exactly and ports **order-normalized** (sorted by
    /// name, then location bits): declaring the same ports in a
    /// different order encodes identically, any material edit does not.
    /// Shape order is preserved — with split planes it fixes each
    /// conductor's net index. See [`crate::BoardSpec::canonical_bytes`]
    /// for the board-level rule this feeds.
    pub fn write_canonical(&self, w: &mut pdn_num::ByteWriter) {
        let put_point = |w: &mut pdn_num::ByteWriter, p: &Point| {
            w.put_f64(p.x);
            w.put_f64(p.y);
        };
        w.put_usize(self.shapes.len());
        for shape in &self.shapes {
            w.put_usize(shape.outer().len());
            for p in shape.outer() {
                put_point(w, p);
            }
            w.put_usize(shape.holes().len());
            for hole in shape.holes() {
                w.put_usize(hole.len());
                for p in hole {
                    put_point(w, p);
                }
            }
        }
        w.put_f64(self.pair.separation);
        w.put_f64(self.pair.eps_r);
        w.put_f64(self.pair.sheet_resistance);
        w.put_f64(self.pair.loss_tangent);
        w.put_f64(self.sheet_resistance);
        w.put_f64(self.cell_size);
        self.options.write_canonical(w);
        let mut ports: Vec<&(String, Point)> = self.ports.iter().collect();
        ports.sort_by(|a, b| {
            (&a.0, a.1.x.to_bits(), a.1.y.to_bits()).cmp(&(&b.0, b.1.x.to_bits(), b.1.y.to_bits()))
        });
        w.put_usize(ports.len());
        for (name, p) in ports {
            w.put_str(name);
            put_point(w, p);
        }
    }

    /// The single conductor shape, for flows (like the FDTD reference)
    /// that operate on one net.
    ///
    /// # Errors
    ///
    /// Returns an error when the spec describes split planes.
    pub fn single_shape(&self) -> Result<&Polygon, ExtractPlaneError> {
        if self.shapes.len() == 1 {
            Ok(&self.shapes[0])
        } else {
            Err(ExtractPlaneError::MultiNet)
        }
    }

    /// The loop surface impedance of the pair: the current flows out on
    /// one plane and back on the other, so both sheet resistances appear
    /// in series.
    fn loop_impedance(&self) -> SurfaceImpedance {
        SurfaceImpedance::from_sheet_resistance(2.0 * self.sheet_resistance)
    }

    /// Builds the mesh, runs the BEM, and extracts the macromodel.
    ///
    /// Set `PDN_EXTRACT_STATS=1` to print a one-line stderr summary
    /// (cells, dense matrix dimensions, ports, wall time).
    ///
    /// # Errors
    ///
    /// Returns [`ExtractPlaneError`] describing which stage failed.
    pub fn extract(&self, selection: &NodeSelection) -> Result<ExtractedPlane, ExtractPlaneError> {
        let t0 = Instant::now();
        let mut mesh = PlaneMesh::build_multi(&self.shapes, self.cell_size)?;
        for (name, p) in &self.ports {
            mesh.bind_port(name.clone(), *p)?;
        }
        let (cells, links, nports) = (mesh.cell_count(), mesh.link_count(), mesh.ports().len());
        let bem = BemSystem::assemble(mesh, &self.pair, &self.loop_impedance(), &self.options)?;
        let equivalent = EquivalentCircuit::from_bem(&bem, selection)?;
        pdn_shard::emit_extract_stats(
            "plane",
            cells,
            links,
            nports,
            t0.elapsed().as_secs_f64() * 1e3,
        );
        Ok(ExtractedPlane { bem, equivalent })
    }

    /// Extracts the plane region by region under the given [`ShardPlan`]
    /// and composes the regional macromodels through interface ports —
    /// the domain-decomposed alternative to [`extract`](Self::extract)
    /// for boards whose dense monolithic system would be too large.
    ///
    /// The returned model has the same port layout as a monolithic
    /// extraction and is bit-identical for any `PDN_THREADS` setting; see
    /// `docs/SHARDING.md` for the accuracy contract.
    ///
    /// # Errors
    ///
    /// Returns [`ExtractPlaneError::Sharding`] describing the failing
    /// stage (plan, meshing, a region, or the composition).
    pub fn extract_sharded(
        &self,
        plan: &ShardPlan,
        selection: &NodeSelection,
    ) -> Result<ShardedExtraction, ExtractPlaneError> {
        let zs = self.loop_impedance();
        let req = ShardRequest {
            shapes: &self.shapes,
            pair: &self.pair,
            zs: &zs,
            cell_size: self.cell_size,
            ports: &self.ports,
            options: &self.options,
            selection,
        };
        Ok(extract_sharded(&req, plan)?)
    }

    /// Validation mode: extracts this plane both monolithically and under
    /// `plan`, and returns the maximum relative port-impedance deviation
    /// over `freqs` (see
    /// [`max_port_impedance_deviation`](pdn_shard::max_port_impedance_deviation)
    /// for the metric). Use on a small representative board to check a
    /// shard plan against the documented tolerance before trusting it on
    /// the full-size layout.
    ///
    /// # Errors
    ///
    /// Returns [`ExtractPlaneError`] when either extraction or the
    /// comparison fails.
    pub fn validate_sharding(
        &self,
        plan: &ShardPlan,
        selection: &NodeSelection,
        freqs: &[f64],
    ) -> Result<f64, ExtractPlaneError> {
        let sharded = self.extract_sharded(plan, selection)?;
        let mono = self.extract(selection)?;
        Ok(max_port_impedance_deviation(
            sharded.equivalent(),
            mono.equivalent(),
            freqs,
        )?)
    }
}

/// The result of the extraction flow: the BEM system (reference solution)
/// and the macromodel derived from it.
#[derive(Debug, Clone)]
pub struct ExtractedPlane {
    bem: BemSystem,
    equivalent: EquivalentCircuit,
}

impl ExtractedPlane {
    /// The assembled BEM system (direct frequency-domain reference).
    pub fn bem(&self) -> &BemSystem {
        &self.bem
    }

    /// The extracted R–L‖C macromodel.
    pub fn equivalent(&self) -> &EquivalentCircuit {
        &self.equivalent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdn_geom::units::mm;

    #[test]
    fn end_to_end_extraction() {
        let spec = PlaneSpec::rectangle(mm(20.0), mm(15.0), 0.5e-3, 4.5)
            .unwrap()
            .with_sheet_resistance(3e-3)
            .with_cell_size(mm(2.5))
            .with_port("A", mm(2.0), mm(2.0))
            .with_port("B", mm(18.0), mm(13.0));
        let ex = spec
            .extract(&NodeSelection::PortsAndGrid { stride: 2 })
            .unwrap();
        assert_eq!(ex.equivalent().port_count(), 2);
        assert!(ex.equivalent().has_loss());
        // Sanity: macromodel tracks the direct solve at a benign frequency.
        let z_bem = ex.bem().port_impedance(200e6).unwrap();
        let z_eq = ex.equivalent().impedance(200e6).unwrap();
        let rel = (z_bem[(0, 1)] - z_eq[(0, 1)]).norm() / z_bem[(0, 1)].norm();
        assert!(rel < 0.05, "rel = {rel}");
    }

    #[test]
    fn compressed_extraction_tracks_dense_flow() {
        let base = || {
            PlaneSpec::rectangle(mm(20.0), mm(15.0), 0.5e-3, 4.5)
                .unwrap()
                .with_sheet_resistance(3e-3)
                .with_cell_size(mm(1.0))
                .with_port("A", mm(2.0), mm(2.0))
                .with_port("B", mm(18.0), mm(13.0))
        };
        let sel = NodeSelection::PortsAndGrid { stride: 3 };
        let dense = base().extract(&sel).unwrap();
        let compressed = base()
            .with_compression(pdn_bem::CompressionSpec::default())
            .extract(&sel)
            .unwrap();
        assert!(compressed.bem().is_compressed());
        let zd = dense.equivalent().impedance(200e6).unwrap();
        let zc = compressed.equivalent().impedance(200e6).unwrap();
        let rel = (zd[(0, 1)] - zc[(0, 1)]).norm() / zd[(0, 1)].norm();
        assert!(rel < 1e-4, "rel = {rel:.3e}");
    }

    #[test]
    fn split_planes_extract_with_port_per_net() {
        let left = Polygon::rectangle(mm(10.0), mm(10.0));
        let right = Polygon::rectangle_at(mm(11.0), 0.0, mm(10.0), mm(10.0));
        let spec = PlaneSpec::from_shapes(vec![left, right], 0.5e-3, 4.5)
            .unwrap()
            .with_cell_size(mm(2.0))
            .with_port("V33", mm(2.0), mm(5.0))
            .with_port("V50", mm(19.0), mm(5.0));
        let ex = spec.extract(&NodeSelection::PortsOnly).unwrap();
        // The two islands have no galvanic path: the cross-net branch must
        // carry zero DC conductance. Magnetic (mutual-inductance) and
        // capacitive coupling remain — that is exactly the split-plane
        // noise-coupling mechanism the paper analyzes.
        let branches = ex.equivalent().branches();
        let cross = branches.iter().find(|b| (b.m, b.n) == (0, 1)).unwrap();
        assert_eq!(cross.conductance, 0.0, "no DC path between nets");
        let intra = ex.equivalent().reluctance()[(0, 0)].abs();
        assert!(
            cross.inverse_inductance.abs() < 0.5 * intra,
            "cross-net magnetic coupling is weaker than intra-net"
        );
    }

    #[test]
    fn port_off_plane_fails_cleanly() {
        let spec = PlaneSpec::rectangle(mm(10.0), mm(10.0), 0.5e-3, 4.5)
            .unwrap()
            .with_port("X", mm(50.0), mm(50.0));
        match spec.extract(&NodeSelection::PortsOnly) {
            Err(ExtractPlaneError::Mesh(MeshPlaneError::PortOutsideShape { .. })) => {}
            other => panic!("expected mesh error, got {other:?}"),
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = ExtractPlaneError::Mesh(MeshPlaneError::EmptyMesh);
        assert!(e.to_string().contains("mesh"));
        let e = ExtractPlaneError::Sharding(ShardExtractError::InvalidPlan("nope".into()));
        assert!(e.to_string().contains("sharding"));
    }

    #[test]
    fn validate_sharding_reports_small_deviation() {
        let spec = PlaneSpec::rectangle(mm(30.0), mm(20.0), 0.4e-3, 4.5)
            .unwrap()
            .with_sheet_resistance(2e-3)
            .with_cell_size(mm(2.0))
            .with_port("A", mm(3.0), mm(10.0))
            .with_port("B", mm(27.0), mm(10.0));
        let plan = ShardPlan::grid(2, 1).unwrap();
        let freqs = [1e8, 5e8, 1e9];
        let dev = spec
            .validate_sharding(&plan, &NodeSelection::PortsOnly, &freqs)
            .unwrap();
        // Measured 3.2e-2: 1 GHz is ~0.6x the first resonance here, where
        // the documented seam-error contract is a few percent.
        assert!(dev < 0.05, "deviation {dev:.3e}");
        assert!(dev > 0.0, "a real split never matches exactly");
    }
}
