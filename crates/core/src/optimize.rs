//! Decoupling-capacitor strategy optimization.
//!
//! The paper names this as the major application of the whole flow:
//! decaps are used "in a way of *play it safe and put as much as you
//! could*", and the tool exists "to simulate the effect of de-caps and
//! thus optimize the decoupling strategy which includes the placement,
//! number, and value of decaps necessary for noise reduction against
//! design margin."
//!
//! [`optimize_decaps`] is that loop: a greedy search over candidate
//! mounting sites that adds, one at a time, the capacitor producing the
//! largest plane-noise reduction, stopping when the design margin is met
//! or no candidate helps anymore.

use crate::cosim::{BoardSpec, BuildBoardError, DecapSpec};
use pdn_extract::NodeSelection;
use std::error::Error;
use std::fmt;

/// One step of the greedy optimization history.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecapStep {
    /// Index into the candidate list that was chosen.
    pub candidate: usize,
    /// Plane noise after placing it (V).
    pub noise_after: f64,
}

/// The optimizer's result.
#[derive(Debug, Clone)]
pub struct DecapPlan {
    /// Chosen capacitors, in placement order.
    pub chosen: Vec<DecapSpec>,
    /// Plane noise before any decap (V).
    pub baseline_noise: f64,
    /// Greedy history, one entry per placed capacitor.
    pub history: Vec<DecapStep>,
    /// Whether the target margin was reached.
    pub target_met: bool,
}

impl DecapPlan {
    /// Final plane noise (V).
    pub fn final_noise(&self) -> f64 {
        self.history
            .last()
            .map_or(self.baseline_noise, |s| s.noise_after)
    }
}

/// Error from the optimization loop.
#[derive(Debug)]
pub enum OptimizeDecapsError {
    /// A co-simulation run failed.
    Simulation(Box<dyn Error>),
    /// No candidate sites were provided.
    NoCandidates,
}

impl fmt::Display for OptimizeDecapsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizeDecapsError::Simulation(e) => write!(f, "simulation failed: {e}"),
            OptimizeDecapsError::NoCandidates => write!(f, "no candidate decap sites"),
        }
    }
}

impl Error for OptimizeDecapsError {}

impl From<BuildBoardError> for OptimizeDecapsError {
    fn from(e: BuildBoardError) -> Self {
        OptimizeDecapsError::Simulation(Box::new(e))
    }
}

/// Evaluation settings for each trial co-simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizeSettings {
    /// Retained-node policy for the plane extraction.
    pub selection: NodeSelection,
    /// Drivers switching per chip during the trial.
    pub switching: usize,
    /// Trial duration (s).
    pub t_stop: f64,
    /// Trial time step (s).
    pub dt: f64,
    /// Stop when plane noise falls to this level (V).
    pub target_noise: f64,
    /// Upper bound on placed capacitors.
    pub max_decaps: usize,
}

/// Greedy decap placement: repeatedly add the candidate that lowers the
/// board-level plane noise the most.
///
/// Candidates already used are not reconsidered; the loop stops when the
/// target is met, the budget is exhausted, or no remaining candidate
/// improves the noise.
///
/// # Errors
///
/// Returns [`OptimizeDecapsError`] when there are no candidates or a
/// trial simulation fails.
pub fn optimize_decaps(
    board: &BoardSpec,
    candidates: &[DecapSpec],
    settings: &OptimizeSettings,
) -> Result<DecapPlan, OptimizeDecapsError> {
    if candidates.is_empty() {
        return Err(OptimizeDecapsError::NoCandidates);
    }
    let evaluate = |chosen: &[DecapSpec]| -> Result<f64, OptimizeDecapsError> {
        let mut b = board.clone();
        for d in chosen {
            b = b.with_decap(*d);
        }
        let out = b
            .build(&settings.selection, settings.switching)?
            .run(settings.t_stop, settings.dt)
            .map_err(|e| OptimizeDecapsError::Simulation(Box::new(e)))?;
        Ok(out.plane_noise_peak)
    };

    let baseline_noise = evaluate(&[])?;
    let mut chosen: Vec<DecapSpec> = Vec::new();
    let mut used = vec![false; candidates.len()];
    let mut history = Vec::new();
    let mut current = baseline_noise;
    while current > settings.target_noise && chosen.len() < settings.max_decaps {
        // Try every unused candidate; keep the best.
        let mut best: Option<(usize, f64)> = None;
        for (k, cand) in candidates.iter().enumerate() {
            if used[k] {
                continue;
            }
            let mut trial = chosen.clone();
            trial.push(*cand);
            let noise = evaluate(&trial)?;
            if best.is_none_or(|(_, n)| noise < n) {
                best = Some((k, noise));
            }
        }
        match best {
            Some((k, noise)) if noise < current => {
                used[k] = true;
                chosen.push(candidates[k]);
                history.push(DecapStep {
                    candidate: k,
                    noise_after: noise,
                });
                current = noise;
            }
            _ => break, // nothing helps anymore
        }
    }
    Ok(DecapPlan {
        chosen,
        baseline_noise,
        history,
        target_met: current <= settings.target_noise,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cosim::ChipSpec;
    use crate::flow::PlaneSpec;
    use pdn_geom::units::mm;
    use pdn_geom::Point;

    fn test_board() -> BoardSpec {
        let plane = PlaneSpec::rectangle(mm(40.0), mm(30.0), 0.5e-3, 4.5)
            .unwrap()
            .with_sheet_resistance(1e-3)
            .with_cell_size(mm(5.0));
        BoardSpec::new(plane, 3.3, Point::new(mm(2.0), mm(2.0))).with_chip(ChipSpec::cmos(
            "U1",
            Point::new(mm(30.0), mm(20.0)),
            4,
        ))
    }

    fn settings(target: f64) -> OptimizeSettings {
        OptimizeSettings {
            selection: NodeSelection::PortsAndGrid { stride: 3 },
            switching: 4,
            t_stop: 15e-9,
            dt: 0.1e-9,
            target_noise: target,
            max_decaps: 2,
        }
    }

    fn candidates() -> Vec<DecapSpec> {
        vec![
            // Near the chip (useful) and at a far corner (less useful).
            DecapSpec::ceramic_100nf(Point::new(mm(27.0), mm(20.0))),
            DecapSpec::ceramic_100nf(Point::new(mm(5.0), mm(25.0))),
        ]
    }

    #[test]
    fn optimizer_reduces_noise_and_prefers_the_better_site() {
        let plan = optimize_decaps(&test_board(), &candidates(), &settings(0.0)).unwrap();
        assert!(!plan.chosen.is_empty(), "something was placed");
        assert!(
            plan.final_noise() < plan.baseline_noise,
            "noise reduced: {} -> {}",
            plan.baseline_noise,
            plan.final_noise()
        );
        // The first placement is the near-chip site.
        assert_eq!(plan.history[0].candidate, 0, "near-chip decap wins first");
        // History is monotone decreasing.
        let mut prev = plan.baseline_noise;
        for step in &plan.history {
            assert!(step.noise_after < prev);
            prev = step.noise_after;
        }
    }

    #[test]
    fn generous_target_needs_no_decaps() {
        let plan = optimize_decaps(&test_board(), &candidates(), &settings(100.0)).unwrap();
        assert!(plan.target_met);
        assert!(plan.chosen.is_empty());
    }

    #[test]
    fn empty_candidate_list_rejected() {
        let err = optimize_decaps(&test_board(), &[], &settings(0.1)).unwrap_err();
        assert!(matches!(err, OptimizeDecapsError::NoCandidates));
    }
}
