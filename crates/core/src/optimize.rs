//! Decoupling-capacitor strategy optimization.
//!
//! The paper names this as the major application of the whole flow:
//! decaps are used "in a way of *play it safe and put as much as you
//! could*", and the tool exists "to simulate the effect of de-caps and
//! thus optimize the decoupling strategy which includes the placement,
//! number, and value of decaps necessary for noise reduction against
//! design margin."
//!
//! [`optimize_decaps`] is that loop: a greedy search over candidate
//! mounting sites that adds, one at a time, the capacitor producing the
//! largest plane-noise reduction, stopping when the design margin is met
//! or no candidate helps anymore.
//!
//! The search is a [`ScenarioBatch`] client: the plane (with every
//! candidate site ported) is extracted **once**, and each greedy round
//! evaluates all remaining candidates as one parallel batch of scenarios
//! against the shared macromodel. Candidate order breaks noise ties, so
//! the chosen plan is deterministic for any `PDN_THREADS` worker count.

use crate::cosim::{BoardSpec, BuildBoardError, DecapSpec};
use crate::scenario::{DecapValue, Scenario, ScenarioBatch, ScenarioBatchError};
use pdn_extract::NodeSelection;
use std::error::Error;
use std::fmt;

/// One step of the greedy optimization history.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecapStep {
    /// Index into the candidate list that was chosen.
    pub candidate: usize,
    /// Plane noise after placing it (V).
    pub noise_after: f64,
}

/// The optimizer's result.
#[derive(Debug, Clone)]
pub struct DecapPlan {
    /// Chosen capacitors, in placement order.
    pub chosen: Vec<DecapSpec>,
    /// Plane noise before any decap (V).
    pub baseline_noise: f64,
    /// Greedy history, one entry per placed capacitor.
    pub history: Vec<DecapStep>,
    /// Whether the target margin was reached.
    pub target_met: bool,
}

impl DecapPlan {
    /// Final plane noise (V).
    pub fn final_noise(&self) -> f64 {
        self.history
            .last()
            .map_or(self.baseline_noise, |s| s.noise_after)
    }
}

/// Error from the optimization loop.
#[derive(Debug)]
pub enum OptimizeDecapsError {
    /// A co-simulation run failed.
    Simulation(Box<dyn Error>),
    /// The candidate list is invalid (empty, duplicate sites, a board
    /// decap off every declared site…).
    InvalidInput(String),
}

impl fmt::Display for OptimizeDecapsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizeDecapsError::Simulation(e) => write!(f, "simulation failed: {e}"),
            OptimizeDecapsError::InvalidInput(s) => write!(f, "invalid input: {s}"),
        }
    }
}

impl Error for OptimizeDecapsError {}

impl From<BuildBoardError> for OptimizeDecapsError {
    fn from(e: BuildBoardError) -> Self {
        OptimizeDecapsError::Simulation(Box::new(e))
    }
}

impl From<ScenarioBatchError> for OptimizeDecapsError {
    fn from(e: ScenarioBatchError) -> Self {
        OptimizeDecapsError::Simulation(Box::new(e))
    }
}

/// Evaluation settings for each trial co-simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizeSettings {
    /// Retained-node policy for the plane extraction.
    pub selection: NodeSelection,
    /// Drivers switching per chip during the trial.
    pub switching: usize,
    /// Trial duration (s).
    pub t_stop: f64,
    /// Trial time step (s).
    pub dt: f64,
    /// Stop when plane noise falls to this level (V).
    pub target_noise: f64,
    /// Upper bound on placed capacitors.
    pub max_decaps: usize,
}

/// Greedy decap placement: repeatedly add the candidate that lowers the
/// board-level plane noise the most.
///
/// Candidates already used are not reconsidered; the loop stops when the
/// target is met, the budget is exhausted, or no remaining candidate
/// improves the noise. The plane is extracted once with every candidate
/// site ported ([`ScenarioBatch`]); each greedy round then evaluates all
/// remaining candidates in parallel. Noise ties break toward the lowest
/// candidate index, so the result is deterministic for any worker count.
///
/// # Errors
///
/// Returns [`OptimizeDecapsError::InvalidInput`] when the candidate list
/// is empty or contains duplicate mounting sites, and
/// [`OptimizeDecapsError::Simulation`] when a trial build/run fails.
pub fn optimize_decaps(
    board: &BoardSpec,
    candidates: &[DecapSpec],
    settings: &OptimizeSettings,
) -> Result<DecapPlan, OptimizeDecapsError> {
    let base = decap_search_board(board, candidates)?;
    let batch = ScenarioBatch::new(&base, &settings.selection)?;
    optimize_decaps_with_batch(&batch, candidates, settings)
}

/// The board the greedy search extracts: the input board with every
/// candidate mounting site ported alongside its own site plan, so one
/// extraction serves the whole search.
///
/// Split out from [`optimize_decaps`] so a caller that owns the
/// extraction (the `pdn-service` cache keys on this board's
/// [`canonical bytes`](BoardSpec::canonical_bytes)) can build the
/// [`ScenarioBatch`] itself and hand it to
/// [`optimize_decaps_with_batch`].
///
/// # Errors
///
/// Returns [`OptimizeDecapsError::InvalidInput`] when the candidate list
/// is empty or contains duplicate mounting sites.
pub fn decap_search_board(
    board: &BoardSpec,
    candidates: &[DecapSpec],
) -> Result<BoardSpec, OptimizeDecapsError> {
    if candidates.is_empty() {
        return Err(OptimizeDecapsError::InvalidInput(
            "no candidate decap sites provided".into(),
        ));
    }
    for (k, c) in candidates.iter().enumerate() {
        if let Some(j) = candidates[..k]
            .iter()
            .position(|p| p.location == c.location)
        {
            return Err(OptimizeDecapsError::InvalidInput(format!(
                "candidates {j} and {k} share the mounting site ({:.4e}, {:.4e})",
                c.location.x, c.location.y
            )));
        }
    }
    let mut base = board.clone();
    base.decap_sites = board.site_plan();
    for c in candidates {
        base.decap_sites.push(c.location);
    }
    Ok(base)
}

/// The greedy loop of [`optimize_decaps`], running against a caller-owned
/// batch whose board must come from [`decap_search_board`] with the same
/// `candidates` (the last `candidates.len()` sites are the trial ports).
///
/// # Errors
///
/// Returns [`OptimizeDecapsError::InvalidInput`] when the batch's site
/// plan does not end with the candidate sites (the batch was built for a
/// different search), or when a pre-placed board decap sits on no
/// declared site; [`OptimizeDecapsError::Simulation`] when a trial run
/// fails.
pub fn optimize_decaps_with_batch(
    batch: &ScenarioBatch,
    candidates: &[DecapSpec],
    settings: &OptimizeSettings,
) -> Result<DecapPlan, OptimizeDecapsError> {
    let board = batch.board();
    let sites = &board.decap_sites;
    let offset = sites
        .len()
        .checked_sub(candidates.len())
        .filter(|&off| {
            candidates
                .iter()
                .zip(&sites[off..])
                .all(|(c, &s)| c.location == s)
        })
        .ok_or_else(|| {
            OptimizeDecapsError::InvalidInput(
                "batch board's site plan does not end with the candidate sites; \
                 build it with decap_search_board"
                    .into(),
            )
        })?;
    // The board's pre-placed decaps, re-expressed as (site, value) pairs
    // every trial scenario starts from.
    let base_pairs: Vec<(usize, DecapValue)> = board
        .decaps
        .iter()
        .map(|d| {
            let site = sites[..offset]
                .iter()
                .position(|&s| s == d.location)
                .ok_or_else(|| {
                    OptimizeDecapsError::InvalidInput(format!(
                        "board decap at ({:.4e}, {:.4e}) does not sit on any declared site",
                        d.location.x, d.location.y
                    ))
                })?;
            Ok((site, DecapValue::new(d.c, d.esr, d.esl)))
        })
        .collect::<Result<_, OptimizeDecapsError>>()?;

    let scenario_for = |chosen: &[usize]| -> Scenario {
        let mut pairs = base_pairs.clone();
        for &k in chosen {
            let c = &candidates[k];
            pairs.push((offset + k, DecapValue::new(c.c, c.esr, c.esl)));
        }
        Scenario::switching(settings.switching).with_decaps(pairs)
    };
    let noise_of = |outs: &[crate::cosim::SsnOutcome]| -> Vec<f64> {
        outs.iter().map(|o| o.plane_noise_peak).collect()
    };

    let baseline_noise =
        noise_of(&batch.run(&[scenario_for(&[])], settings.t_stop, settings.dt)?)[0];
    let mut chosen: Vec<usize> = Vec::new();
    let mut used = vec![false; candidates.len()];
    let mut history = Vec::new();
    let mut current = baseline_noise;
    while current > settings.target_noise && chosen.len() < settings.max_decaps {
        // Evaluate every unused candidate as one parallel batch.
        let trial_ids: Vec<usize> = (0..candidates.len()).filter(|&k| !used[k]).collect();
        if trial_ids.is_empty() {
            break;
        }
        let scenarios: Vec<Scenario> = trial_ids
            .iter()
            .map(|&k| {
                let mut trial = chosen.clone();
                trial.push(k);
                scenario_for(&trial)
            })
            .collect();
        let noises = noise_of(&batch.run(&scenarios, settings.t_stop, settings.dt)?);
        // Strict `<` keeps the earliest (lowest-index) candidate on ties.
        let mut best: Option<(usize, f64)> = None;
        for (&k, &noise) in trial_ids.iter().zip(&noises) {
            if best.is_none_or(|(_, n)| noise < n) {
                best = Some((k, noise));
            }
        }
        match best {
            Some((k, noise)) if noise < current => {
                used[k] = true;
                chosen.push(k);
                history.push(DecapStep {
                    candidate: k,
                    noise_after: noise,
                });
                current = noise;
            }
            _ => break, // nothing helps anymore
        }
    }
    Ok(DecapPlan {
        chosen: chosen.iter().map(|&k| candidates[k]).collect(),
        baseline_noise,
        history,
        target_met: current <= settings.target_noise,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cosim::ChipSpec;
    use crate::flow::PlaneSpec;
    use pdn_geom::units::mm;
    use pdn_geom::Point;

    fn test_board() -> BoardSpec {
        let plane = PlaneSpec::rectangle(mm(40.0), mm(30.0), 0.5e-3, 4.5)
            .unwrap()
            .with_sheet_resistance(1e-3)
            .with_cell_size(mm(5.0));
        BoardSpec::new(plane, 3.3, Point::new(mm(2.0), mm(2.0))).with_chip(ChipSpec::cmos(
            "U1",
            Point::new(mm(30.0), mm(20.0)),
            4,
        ))
    }

    fn settings(target: f64) -> OptimizeSettings {
        OptimizeSettings {
            selection: NodeSelection::PortsAndGrid { stride: 3 },
            switching: 4,
            t_stop: 15e-9,
            dt: 0.1e-9,
            target_noise: target,
            max_decaps: 2,
        }
    }

    fn candidates() -> Vec<DecapSpec> {
        vec![
            // Near the chip (useful) and at a far corner (less useful).
            DecapSpec::ceramic_100nf(Point::new(mm(27.0), mm(20.0))),
            DecapSpec::ceramic_100nf(Point::new(mm(5.0), mm(25.0))),
        ]
    }

    #[test]
    fn optimizer_reduces_noise_and_prefers_the_better_site() {
        let plan = optimize_decaps(&test_board(), &candidates(), &settings(0.0)).unwrap();
        assert!(!plan.chosen.is_empty(), "something was placed");
        assert!(
            plan.final_noise() < plan.baseline_noise,
            "noise reduced: {} -> {}",
            plan.baseline_noise,
            plan.final_noise()
        );
        // The first placement is the near-chip site.
        assert_eq!(plan.history[0].candidate, 0, "near-chip decap wins first");
        // History is monotone decreasing.
        let mut prev = plan.baseline_noise;
        for step in &plan.history {
            assert!(step.noise_after < prev);
            prev = step.noise_after;
        }
    }

    #[test]
    fn generous_target_needs_no_decaps() {
        let plan = optimize_decaps(&test_board(), &candidates(), &settings(100.0)).unwrap();
        assert!(plan.target_met);
        assert!(plan.chosen.is_empty());
    }

    #[test]
    fn empty_candidate_list_rejected() {
        let err = optimize_decaps(&test_board(), &[], &settings(0.1)).unwrap_err();
        match err {
            OptimizeDecapsError::InvalidInput(msg) => {
                assert!(msg.contains("no candidate"), "descriptive message: {msg}");
            }
            other => panic!("expected InvalidInput, got {other}"),
        }
    }

    #[test]
    fn duplicate_candidate_sites_rejected() {
        let site = Point::new(mm(27.0), mm(20.0));
        let dups = vec![
            DecapSpec::ceramic_100nf(site),
            DecapSpec::ceramic_100nf(Point::new(mm(5.0), mm(25.0))),
            DecapSpec::ceramic_100nf(site),
        ];
        let err = optimize_decaps(&test_board(), &dups, &settings(0.1)).unwrap_err();
        match err {
            OptimizeDecapsError::InvalidInput(msg) => {
                assert!(
                    msg.contains("candidates 0 and 2"),
                    "names the colliding pair: {msg}"
                );
            }
            other => panic!("expected InvalidInput, got {other}"),
        }
    }
}
