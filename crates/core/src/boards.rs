//! The evaluation structures of the paper, reconstructed.
//!
//! Every structure in Section 6 is available as a constructor:
//!
//! * [`split_mcm_planes`] — Figure 1: complementary 3.3 V / 5 V MCM power
//!   islands over a common ground, 0.5 mm dielectric.
//! * [`lshape_patch`] — Example 1: the L-shaped microstrip patch
//!   (dimensions chosen to place the first resonances near 1 GHz, the
//!   regime of the published numbers; Mosig's exact plate dimensions are
//!   not given in the paper, see `DESIGN.md`).
//! * [`coupled_microstrip_pair`] — Figure 4: 6 mm strips, 6 mm gap,
//!   εr = 4.5, 5 mm substrate.
//! * [`hp_test_plane`] — Figure 6: the HP Labs 5-port test plane on
//!   280 µm alumina (εr = 9.6) with 6 mΩ/sq tungsten planes and probing
//!   pads 8 mm apart.
//! * [`ssn_study_a_board`] — Section 6.2 study A: 7 × 10 inch six-layer
//!   FR4 board, plane pair 30 mil apart, one chip with sixteen CMOS
//!   drivers.
//! * [`post_layout_study_b_board`] — Section 6.2 study B: a synthetic
//!   4-layer, 26-chip board with 155 Vcc and 80 Gnd pins matching every
//!   disclosed parameter of the customer design.

use crate::cosim::{BoardSpec, ChipSpec, DecapSpec};
use crate::flow::{ExtractPlaneError, PlaneSpec};
use pdn_geom::units::{inch, mil, mm, um};
use pdn_geom::{Point, Polygon};
use pdn_tline::MicrostripArray;

/// Figure 1: complementary split MCM power planes (3.3 V and 5 V nets)
/// sharing a 50 × 50 mm footprint over a common ground plane 0.5 mm below.
///
/// The 3.3 V net is an L-shaped region; the 5 V net is its complement.
/// Returns the two polygons `(vcc0_3v3, vcc1_5v)`.
pub fn split_mcm_planes() -> (Polygon, Polygon) {
    let side = mm(50.0);
    // 3.3 V: L-shaped region occupying the left band plus the bottom band.
    let vcc0 = Polygon::l_shape(side, side, mm(30.0), mm(30.0));
    // 5 V: the complementary rectangle in the upper-right corner (with a
    // 1 mm moat so the nets do not touch).
    let moat = mm(1.0);
    let vcc1 = Polygon::rectangle_at(
        side - mm(30.0) + moat,
        side - mm(30.0) + moat,
        mm(30.0) - moat,
        mm(30.0) - moat,
    );
    (vcc0, vcc1)
}

/// The Figure 1 structure as an extractable [`PlaneSpec`] with one port
/// per net.
///
/// # Errors
///
/// Propagates spec-construction failures.
pub fn split_mcm_plane_spec() -> Result<PlaneSpec, ExtractPlaneError> {
    let (vcc0, vcc1) = split_mcm_planes();
    Ok(PlaneSpec::from_shapes(vec![vcc0, vcc1], mm(0.5), 4.5)?
        .with_sheet_resistance(1e-3)
        .with_cell_size(mm(2.5))
        .with_port("VCC0", mm(5.0), mm(5.0))
        .with_port("VCC1", mm(40.0), mm(40.0)))
}

/// Example 1: the L-shaped microstrip patch.
///
/// The paper cites Mosig's plate without dimensions; this stand-in is an
/// L-shaped patch on a 0.787 mm εr = 2.33 substrate (a classic microstrip
/// laminate) sized so the first two resonances land near 1.0 and 1.6 GHz
/// — the regime of the published comparison. The input port sits at the
/// inner corner ("node A").
///
/// # Errors
///
/// Propagates spec-construction failures.
pub fn lshape_patch() -> Result<PlaneSpec, ExtractPlaneError> {
    // Full arm length 90 mm, arm width 45 mm.
    let shape = Polygon::l_shape(mm(90.0), mm(90.0), mm(45.0), mm(45.0));
    Ok(PlaneSpec::from_shape(shape, um(787.0), 2.33)?
        .with_microstrip_kernel()
        .with_cell_size(mm(5.0))
        .with_port("A", mm(42.0), mm(42.0)))
}

/// Figure 4: the coupled microstrip pair cross-section (6 mm wide strips,
/// 6 mm edge gap, εr = 4.5, 5 mm substrate).
pub fn coupled_microstrip_pair() -> MicrostripArray {
    MicrostripArray::uniform(2, mm(6.0), mm(6.0), mm(5.0), 4.5)
}

/// Figure 6: the HP Labs test plane.
///
/// 280 µm alumina (εr = 9.6), 6 mΩ/sq tungsten planes, five probing pads
/// in a row 8 mm apart. The paper's figure shows the pads spanning 4 × 8
/// = 32 mm; the plane outline is taken as 40 × 16 mm (the figure is not
/// dimensioned beyond the pad pitch; see `DESIGN.md`).
///
/// Ports are named `P1`…`P5`, left to right.
///
/// # Errors
///
/// Propagates spec-construction failures.
pub fn hp_test_plane() -> Result<PlaneSpec, ExtractPlaneError> {
    let mut spec = PlaneSpec::rectangle(mm(40.0), mm(16.0), um(280.0), 9.6)?
        .with_sheet_resistance(6e-3)
        .with_cell_size(mm(1.0));
    for k in 0..5 {
        spec = spec.with_port(format!("P{}", k + 1), mm(4.0 + 8.0 * k as f64), mm(8.0));
    }
    Ok(spec)
}

/// Section 6.2 study A: pre-layout SSN evaluation board.
///
/// 7 × 10 inch FR4 board, power/ground plane pair 30 mil apart, one chip
/// with sixteen CMOS drivers near the board center, VRM at a corner.
///
/// `cell_inch` controls the mesh density (0.5 in is fast, 0.25 in is the
/// bench setting).
///
/// # Errors
///
/// Propagates spec-construction failures.
pub fn ssn_study_a_board(cell_inch: f64) -> Result<BoardSpec, ExtractPlaneError> {
    let plane = PlaneSpec::rectangle(inch(10.0), inch(7.0), mil(30.0), 4.5)?
        .with_sheet_resistance(0.6e-3) // ~1 oz copper
        .with_cell_size(inch(cell_inch));
    let chip = ChipSpec::cmos("U1", Point::new(inch(5.0), inch(3.5)), 16);
    Ok(BoardSpec::new(plane, 5.0, Point::new(inch(0.5), inch(0.5))).with_chip(chip))
}

/// The decap arrangement used in study A: `n` ceramic capacitors in a
/// ring around the chip at (5, 3.5) inches.
pub fn ssn_study_a_decaps(n: usize) -> Vec<DecapSpec> {
    (0..n)
        .map(|k| {
            let ang = 2.0 * std::f64::consts::PI * k as f64 / n.max(1) as f64;
            let r = inch(0.7);
            DecapSpec::ceramic_100nf(Point::new(
                inch(5.0) + r * ang.cos(),
                inch(3.5) + r * ang.sin(),
            ))
        })
        .collect()
}

/// Section 6.2 study B: the post-layout 26-chip board, synthesized to the
/// disclosed statistics — 4-layer board, plane pair 10 mil apart, 26
/// chips, 155 Vcc + 80 Gnd pins (≈ 6 Vcc and 3 Gnd pins per chip).
///
/// Chip locations are deterministic (golden-angle spiral) so runs are
/// reproducible; every chip gets six drivers to stand in for its six Vcc
/// pins' worth of switching capability.
///
/// # Errors
///
/// Propagates spec-construction failures.
pub fn post_layout_study_b_board(cell_inch: f64) -> Result<BoardSpec, ExtractPlaneError> {
    let (w, h) = (inch(10.0), inch(7.0));
    let plane = PlaneSpec::rectangle(w, h, mil(10.0), 4.5)?
        .with_sheet_resistance(0.6e-3)
        .with_cell_size(inch(cell_inch));
    let mut board = BoardSpec::new(plane, 3.3, Point::new(inch(0.4), inch(0.4)));
    let golden = std::f64::consts::PI * (3.0 - 5.0f64.sqrt());
    for k in 0..26 {
        // Deterministic scatter keeping a margin from the edges.
        let t = (k as f64 + 0.5) / 26.0;
        let r = t.sqrt();
        let ang = golden * k as f64;
        let x = 0.5 * w + 0.42 * w * r * ang.cos();
        let y = 0.5 * h + 0.42 * h * r * ang.sin();
        let chip = ChipSpec::cmos(format!("U{}", k + 1), Point::new(x, y), 6);
        board = board.with_chip(chip);
    }
    Ok(board)
}

// `post_layout_study_b_board` returns Result for interface consistency.

#[cfg(test)]
mod tests {
    use super::*;
    use pdn_extract::NodeSelection;

    #[test]
    fn split_planes_are_disjoint() {
        let (a, b) = split_mcm_planes();
        // Sample the 5 V region: inside b, outside a.
        let p = Point::new(mm(40.0), mm(40.0));
        assert!(b.contains(p) && !a.contains(p));
        // And the L region.
        let q = Point::new(mm(5.0), mm(5.0));
        assert!(a.contains(q) && !b.contains(q));
        // Total area is close to the full square minus the moat sliver.
        let total = a.area() + b.area();
        assert!(total > 0.95 * mm(50.0) * mm(50.0));
    }

    #[test]
    fn split_plane_spec_extracts_two_nets() {
        let ex = split_mcm_plane_spec()
            .unwrap()
            .extract(&NodeSelection::PortsOnly)
            .unwrap();
        assert_eq!(ex.equivalent().port_count(), 2);
        assert_eq!(ex.bem().mesh().net_count(), 2);
    }

    #[test]
    fn hp_plane_has_five_ports_in_a_row() {
        let spec = hp_test_plane().unwrap();
        assert_eq!(spec.port_count(), 5);
        let ports = spec.ports();
        for w in ports.windows(2) {
            assert!((w[1].1.x - w[0].1.x - mm(8.0)).abs() < 1e-12);
            assert_eq!(w[0].1.y, w[1].1.y);
        }
    }

    #[test]
    fn lshape_patch_is_microstrip() {
        let spec = lshape_patch().unwrap();
        assert_eq!(spec.port_count(), 1);
        assert!((spec.pair().eps_r - 2.33).abs() < 1e-12);
    }

    #[test]
    fn fig4_pair_matches_paper_dimensions() {
        let pair = coupled_microstrip_pair();
        assert_eq!(pair.conductor_count(), 2);
        assert!((pair.substrate_height() - mm(5.0)).abs() < 1e-12);
        assert!((pair.eps_r() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn study_a_board_structure() {
        let board = ssn_study_a_board(0.5).unwrap();
        assert_eq!(board.chips.len(), 1);
        assert_eq!(board.chips[0].drivers, 16);
        assert!((board.vcc - 5.0).abs() < 1e-12);
        let decaps = ssn_study_a_decaps(8);
        assert_eq!(decaps.len(), 8);
        // All decaps within the board outline.
        for d in &decaps {
            assert!(d.location.x > 0.0 && d.location.x < inch(10.0));
            assert!(d.location.y > 0.0 && d.location.y < inch(7.0));
        }
    }

    #[test]
    fn study_b_board_statistics() {
        let board = post_layout_study_b_board(0.5).unwrap();
        assert_eq!(board.chips.len(), 26);
        let total_drivers: usize = board.chips.iter().map(|c| c.drivers).sum();
        assert_eq!(total_drivers, 26 * 6);
        // All chips on the board.
        for c in &board.chips {
            assert!(c.location.x > 0.0 && c.location.x < inch(10.0));
            assert!(c.location.y > 0.0 && c.location.y < inch(7.0));
        }
        // Disclosed pin statistics: 26 chips ≈ 155 Vcc pins → ≈ 6 per chip.
        assert!((155f64 / 26.0 - 6.0).abs() < 0.05);
    }
}
