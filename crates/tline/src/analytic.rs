//! Closed-form microstrip formulas (Hammerstad–Jensen).
//!
//! Used as the independent reference for the 2-D MoM extractor, exactly as
//! the paper validates its field solver against "well known structures
//! like microstrip line" where "more efficient and natural approaches
//! exist".

/// Effective relative permittivity of a microstrip of width `w` on a
/// substrate of height `h` with permittivity `eps_r` (Hammerstad).
///
/// # Panics
///
/// Panics for non-positive dimensions or `eps_r < 1`.
///
/// # Examples
///
/// ```
/// let ee = pdn_tline::analytic::microstrip_eps_eff(2e-3, 1e-3, 4.5);
/// assert!(ee > 1.0 && ee < 4.5);
/// ```
pub fn microstrip_eps_eff(w: f64, h: f64, eps_r: f64) -> f64 {
    assert!(w > 0.0 && h > 0.0, "dimensions must be positive");
    assert!(eps_r >= 1.0, "eps_r must be >= 1");
    let u = w / h;
    let base = (eps_r + 1.0) / 2.0 + (eps_r - 1.0) / 2.0 * (1.0 + 12.0 / u).powf(-0.5);
    if u < 1.0 {
        base + (eps_r - 1.0) / 2.0 * 0.04 * (1.0 - u).powi(2)
    } else {
        base
    }
}

/// Characteristic impedance (Ω) of a microstrip (Hammerstad).
///
/// # Panics
///
/// Panics for non-positive dimensions or `eps_r < 1`.
///
/// # Examples
///
/// ```
/// // A classic ~50 Ω microstrip on FR4: w/h ≈ 1.9.
/// let z0 = pdn_tline::analytic::microstrip_z0(1.9e-3, 1e-3, 4.5);
/// assert!((z0 - 50.0).abs() < 3.0);
/// ```
pub fn microstrip_z0(w: f64, h: f64, eps_r: f64) -> f64 {
    let ee = microstrip_eps_eff(w, h, eps_r);
    let u = w / h;
    if u <= 1.0 {
        60.0 / ee.sqrt() * (8.0 / u + 0.25 * u).ln()
    } else {
        120.0 * std::f64::consts::PI / (ee.sqrt() * (u + 1.393 + 0.667 * (u + 1.444).ln()))
    }
}

/// Per-unit-length capacitance (F/m) of a microstrip from the closed-form
/// impedance and effective permittivity: `C = √ε_eff/(c₀·Z₀)`.
pub fn microstrip_capacitance(w: f64, h: f64, eps_r: f64) -> f64 {
    let z0 = microstrip_z0(w, h, eps_r);
    let ee = microstrip_eps_eff(w, h, eps_r);
    ee.sqrt() / (pdn_num::phys::C0 * z0)
}

/// Per-unit-length inductance (H/m) of a microstrip:
/// `L = Z₀·√ε_eff/c₀`.
pub fn microstrip_inductance(w: f64, h: f64, eps_r: f64) -> f64 {
    let z0 = microstrip_z0(w, h, eps_r);
    let ee = microstrip_eps_eff(w, h, eps_r);
    z0 * ee.sqrt() / pdn_num::phys::C0
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdn_num::approx_eq;
    use pdn_num::phys::C0;

    #[test]
    fn eps_eff_limits() {
        // Very wide strip: ε_eff → εr; very narrow: ε_eff → (εr+1)/2.
        let wide = microstrip_eps_eff(100e-3, 1e-3, 4.5);
        assert!(wide > 4.0, "wide limit {wide}");
        let narrow = microstrip_eps_eff(0.05e-3, 1e-3, 4.5);
        assert!((narrow - 2.75).abs() < 0.35, "narrow limit {narrow}");
    }

    #[test]
    fn z0_monotone_in_width() {
        let z_narrow = microstrip_z0(0.5e-3, 1e-3, 4.5);
        let z_mid = microstrip_z0(2e-3, 1e-3, 4.5);
        let z_wide = microstrip_z0(8e-3, 1e-3, 4.5);
        assert!(z_narrow > z_mid && z_mid > z_wide);
    }

    #[test]
    fn known_design_points() {
        // FR4 50 Ω: w/h ≈ 1.9; alumina (εr = 9.6) 50 Ω: w/h ≈ 0.95.
        assert!((microstrip_z0(1.9e-3, 1e-3, 4.5) - 50.0).abs() < 3.0);
        assert!((microstrip_z0(0.95e-3, 1e-3, 9.6) - 50.0).abs() < 3.0);
    }

    #[test]
    fn lc_consistent_with_z0_and_velocity() {
        let (w, h, er) = (2e-3, 1e-3, 4.5);
        let l = microstrip_inductance(w, h, er);
        let c = microstrip_capacitance(w, h, er);
        let z0 = microstrip_z0(w, h, er);
        let ee = microstrip_eps_eff(w, h, er);
        assert!(approx_eq((l / c).sqrt(), z0, 1e-12));
        assert!(approx_eq(1.0 / (l * c).sqrt(), C0 / ee.sqrt(), 1e-12));
    }

    #[test]
    fn air_line_travels_at_c0() {
        let l = microstrip_inductance(2e-3, 1e-3, 1.0);
        let c = microstrip_capacitance(2e-3, 1e-3, 1.0);
        assert!(approx_eq(1.0 / (l * c).sqrt(), C0, 1e-12));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn invalid_dims_panic() {
        let _ = microstrip_z0(0.0, 1e-3, 4.5);
    }
}
