//! 2-D method-of-moments extraction of per-unit-length line parameters.
//!
//! Each trace cross-section is a zero-thickness strip on the substrate
//! surface, discretized into segments carrying pulse-basis line-charge
//! densities. Point matching at segment centers against the image-series
//! Green's function gives the potential-coefficient system; solving it
//! with each conductor at 1 V in turn yields the Maxwell capacitance
//! matrix. Repeating with the dielectric removed (`εr = 1`) gives `C₀`,
//! and the lossless inductance follows from `L = μ₀ε₀·C₀⁻¹`.

use pdn_circuit::tline_elem::BuildLineError;
use pdn_circuit::CoupledLineModel;
use pdn_greens::Microstrip2d;
use pdn_num::phys::{EPS0, MU0};
use pdn_num::{LuDecomposition, Matrix};
use std::error::Error;
use std::fmt;

/// Error from line-parameter extraction.
#[derive(Debug, Clone, PartialEq)]
pub enum ExtractLineError {
    /// The MoM system could not be solved.
    Singular(String),
    /// Derived matrices were not physical (e.g. non-SPD `L`).
    NotPassive(String),
}

impl fmt::Display for ExtractLineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractLineError::Singular(s) => write!(f, "MoM solve failed: {s}"),
            ExtractLineError::NotPassive(s) => write!(f, "non-physical extraction: {s}"),
        }
    }
}

impl Error for ExtractLineError {}

impl From<BuildLineError> for ExtractLineError {
    fn from(e: BuildLineError) -> Self {
        ExtractLineError::NotPassive(e.to_string())
    }
}

/// An array of parallel strips on a grounded dielectric slab.
///
/// # Examples
///
/// ```
/// use pdn_tline::MicrostripArray;
///
/// // The paper's Fig. 4 cross-section: two 6 mm strips, 6 mm apart,
/// // on a 5 mm εr = 4.5 substrate.
/// let pair = MicrostripArray::uniform(2, 6e-3, 6e-3, 5e-3, 4.5);
/// assert_eq!(pair.conductor_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MicrostripArray {
    /// `(center_x, width)` of each strip, meters.
    strips: Vec<(f64, f64)>,
    h: f64,
    eps_r: f64,
    segments_per_strip: usize,
}

impl MicrostripArray {
    /// `n` identical strips of the given `width` separated by `gap`
    /// (edge-to-edge), centered on `x = 0`, on a slab of height `h` and
    /// permittivity `eps_r`.
    ///
    /// # Panics
    ///
    /// Panics for non-positive `n`, `width`, or `h`, negative `gap`, or
    /// `eps_r < 1`.
    pub fn uniform(n: usize, width: f64, gap: f64, h: f64, eps_r: f64) -> Self {
        assert!(n > 0, "need at least one strip");
        assert!(width > 0.0 && h > 0.0, "width and height must be positive");
        assert!(gap >= 0.0, "gap cannot be negative");
        assert!(eps_r >= 1.0, "relative permittivity must be >= 1");
        let pitch = width + gap;
        let x0 = -0.5 * (n as f64 - 1.0) * pitch;
        let strips = (0..n).map(|i| (x0 + i as f64 * pitch, width)).collect();
        MicrostripArray {
            strips,
            h,
            eps_r,
            segments_per_strip: 24,
        }
    }

    /// Builds from explicit `(center, width)` strips.
    ///
    /// # Panics
    ///
    /// Panics for empty strips, non-positive widths/height, or `eps_r < 1`.
    pub fn from_strips(strips: Vec<(f64, f64)>, h: f64, eps_r: f64) -> Self {
        assert!(!strips.is_empty(), "need at least one strip");
        assert!(
            strips.iter().all(|&(_, w)| w > 0.0),
            "widths must be positive"
        );
        assert!(h > 0.0 && eps_r >= 1.0, "invalid substrate");
        MicrostripArray {
            strips,
            h,
            eps_r,
            segments_per_strip: 24,
        }
    }

    /// Sets the MoM discretization density (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `segments == 0`.
    pub fn with_segments(mut self, segments: usize) -> Self {
        assert!(segments > 0, "need at least one segment per strip");
        self.segments_per_strip = segments;
        self
    }

    /// Number of signal conductors.
    pub fn conductor_count(&self) -> usize {
        self.strips.len()
    }

    /// Substrate height, meters.
    pub fn substrate_height(&self) -> f64 {
        self.h
    }

    /// Substrate relative permittivity.
    pub fn eps_r(&self) -> f64 {
        self.eps_r
    }

    /// Maxwell capacitance matrix (F/m) with the given permittivity.
    fn capacitance_with_eps(&self, eps_r: f64) -> Result<Matrix<f64>, ExtractLineError> {
        let kernel = Microstrip2d::new(eps_r, self.h);
        let n_str = self.strips.len();
        let nseg = self.segments_per_strip;
        let total = n_str * nseg;
        // Segment centers and widths.
        let mut centers = Vec::with_capacity(total);
        let mut widths = Vec::with_capacity(total);
        let mut owner = Vec::with_capacity(total);
        for (s, &(cx, w)) in self.strips.iter().enumerate() {
            let dw = w / nseg as f64;
            for k in 0..nseg {
                centers.push(cx - 0.5 * w + (k as f64 + 0.5) * dw);
                widths.push(dw);
                owner.push(s);
            }
        }
        // Potential coefficients: V_i = Σ_j P_ij q_j, with q_j the charge
        // per unit length on segment j. Columns share a source segment, so
        // each is filled with one lane-batched kernel call (bit-identical
        // per entry to the scalar fill).
        let mut p = Matrix::zeros(total, total);
        let mut col = vec![0.0; total];
        for j in 0..total {
            kernel.segment_integral_batch(&centers, centers[j], widths[j], &mut col);
            for (i, &v) in col.iter().enumerate() {
                p[(i, j)] = v / widths[j];
            }
        }
        let lu = LuDecomposition::new(p).map_err(|e| ExtractLineError::Singular(e.to_string()))?;
        let mut c = Matrix::<f64>::zeros(n_str, n_str);
        for exc in 0..n_str {
            let v: Vec<f64> = (0..total)
                .map(|i| if owner[i] == exc { 1.0 } else { 0.0 })
                .collect();
            let q = lu
                .solve(&v)
                .map_err(|e| ExtractLineError::Singular(e.to_string()))?;
            for i in 0..total {
                c[(owner[i], exc)] += q[i];
            }
        }
        // Symmetrize assembly round-off.
        Ok(Matrix::from_fn(n_str, n_str, |i, j| {
            0.5 * (c[(i, j)] + c[(j, i)])
        }))
    }

    /// Maxwell capacitance matrix with the dielectric present (F/m).
    ///
    /// # Errors
    ///
    /// Returns [`ExtractLineError`] when the MoM system is singular.
    pub fn capacitance_matrix(&self) -> Result<Matrix<f64>, ExtractLineError> {
        self.capacitance_with_eps(self.eps_r)
    }

    /// Maxwell capacitance matrix with the dielectric replaced by air.
    ///
    /// # Errors
    ///
    /// Returns [`ExtractLineError`] when the MoM system is singular.
    pub fn air_capacitance_matrix(&self) -> Result<Matrix<f64>, ExtractLineError> {
        self.capacitance_with_eps(1.0)
    }

    /// Per-unit-length inductance matrix `L = μ₀ε₀·C₀⁻¹` (H/m).
    ///
    /// # Errors
    ///
    /// Returns [`ExtractLineError`] when `C₀` cannot be inverted.
    pub fn inductance_matrix(&self) -> Result<Matrix<f64>, ExtractLineError> {
        let c0 = self.air_capacitance_matrix()?;
        let inv = pdn_num::lu::invert(c0).map_err(|e| ExtractLineError::Singular(e.to_string()))?;
        let n = inv.nrows();
        Ok(Matrix::from_fn(n, n, |i, j| {
            MU0 * EPS0 * 0.5 * (inv[(i, j)] + inv[(j, i)])
        }))
    }

    /// Characteristic impedance of a single line (first conductor),
    /// `Z₀ = √(L₁₁/C₁₁)` — exact for one conductor.
    ///
    /// # Errors
    ///
    /// Propagates extraction failures.
    pub fn characteristic_impedance(&self) -> Result<f64, ExtractLineError> {
        let c = self.capacitance_matrix()?;
        let l = self.inductance_matrix()?;
        Ok((l[(0, 0)] / c[(0, 0)]).sqrt())
    }

    /// Effective relative permittivity of a single line,
    /// `ε_eff = C/C₀`.
    ///
    /// # Errors
    ///
    /// Propagates extraction failures.
    pub fn effective_permittivity(&self) -> Result<f64, ExtractLineError> {
        let c = self.capacitance_matrix()?;
        let c0 = self.air_capacitance_matrix()?;
        Ok(c[(0, 0)] / c0[(0, 0)])
    }

    /// Builds the circuit-level coupled-line model for a line of the given
    /// physical `length` (m).
    ///
    /// # Errors
    ///
    /// Propagates extraction and modal-decomposition failures.
    pub fn line_model(&self, length: f64) -> Result<CoupledLineModel, ExtractLineError> {
        let l = self.inductance_matrix()?;
        let c = self.capacitance_matrix()?;
        Ok(CoupledLineModel::new(l, c, length)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic;
    use pdn_num::approx_eq;
    use pdn_num::phys::C0;

    #[test]
    fn air_single_strip_travels_at_light_speed() {
        // In air L·C = μ₀ε₀ exactly: v = c₀ regardless of geometry.
        let line = MicrostripArray::uniform(1, 2e-3, 0.0, 1e-3, 1.0);
        let model = line.line_model(0.1).unwrap();
        assert!(approx_eq(model.velocities()[0], C0, 1e-9));
    }

    #[test]
    fn z0_matches_hammerstad_wide_strip() {
        for &(w_over_h, eps_r) in &[(2.0, 4.5), (1.0, 4.5), (3.0, 9.6), (0.8, 2.2)] {
            let h = 1e-3;
            let line = MicrostripArray::uniform(1, w_over_h * h, 0.0, h, eps_r).with_segments(40);
            let z_mom = line.characteristic_impedance().unwrap();
            let z_ham = analytic::microstrip_z0(w_over_h * h, h, eps_r);
            let rel = (z_mom - z_ham).abs() / z_ham;
            assert!(
                rel < 0.06,
                "w/h={w_over_h} εr={eps_r}: MoM {z_mom:.2} vs Hammerstad {z_ham:.2}"
            );
        }
    }

    #[test]
    fn eps_eff_between_one_and_eps_r() {
        let line = MicrostripArray::uniform(1, 2e-3, 0.0, 1e-3, 4.5);
        let ee = line.effective_permittivity().unwrap();
        assert!(ee > 1.0 && ee < 4.5, "eps_eff = {ee}");
        let ee_ham = analytic::microstrip_eps_eff(2e-3, 1e-3, 4.5);
        assert!(
            approx_eq(ee, ee_ham, 0.05),
            "MoM {ee} vs Hammerstad {ee_ham}"
        );
    }

    #[test]
    fn capacitance_matrix_structure() {
        let pair = MicrostripArray::uniform(2, 2e-3, 1e-3, 1e-3, 4.5);
        let c = pair.capacitance_matrix().unwrap();
        assert!(c[(0, 0)] > 0.0 && c[(1, 1)] > 0.0);
        assert!(c[(0, 1)] < 0.0, "mutual Maxwell capacitance is negative");
        assert!(c.symmetry_defect() < 1e-9 * c.max_abs());
        // Symmetric pair: equal diagonals.
        assert!(approx_eq(c[(0, 0)], c[(1, 1)], 1e-9));
    }

    #[test]
    fn coupling_decreases_with_gap() {
        let k = |gap: f64| {
            let pair = MicrostripArray::uniform(2, 2e-3, gap, 1e-3, 4.5);
            let l = pair.inductance_matrix().unwrap();
            l[(0, 1)] / l[(0, 0)]
        };
        let k_close = k(0.5e-3);
        let k_far = k(4e-3);
        assert!(
            k_close > k_far,
            "inductive coupling decays: {k_close} vs {k_far}"
        );
        assert!(k_close > 0.0 && k_close < 1.0);
    }

    #[test]
    fn inductance_independent_of_dielectric() {
        let a = MicrostripArray::uniform(2, 2e-3, 1e-3, 1e-3, 4.5);
        let b = MicrostripArray::uniform(2, 2e-3, 1e-3, 1e-3, 9.6);
        let la = a.inductance_matrix().unwrap();
        let lb = b.inductance_matrix().unwrap();
        assert!((la[(0, 0)] - lb[(0, 0)]).abs() < 1e-12 * la[(0, 0)]);
    }

    #[test]
    fn segment_refinement_converges() {
        let coarse = MicrostripArray::uniform(1, 2e-3, 0.0, 1e-3, 4.5)
            .with_segments(12)
            .characteristic_impedance()
            .unwrap();
        let fine = MicrostripArray::uniform(1, 2e-3, 0.0, 1e-3, 4.5)
            .with_segments(60)
            .characteristic_impedance()
            .unwrap();
        assert!((coarse - fine).abs() / fine < 0.02, "{coarse} vs {fine}");
    }

    #[test]
    fn paper_fig4_cross_section_modes() {
        // 6 mm strips, 6 mm gap, 5 mm substrate, εr = 4.5 (paper Fig. 4).
        let pair = MicrostripArray::uniform(2, 6e-3, 6e-3, 5e-3, 4.5);
        let model = pair.line_model(0.2).unwrap();
        // Two distinct modes, both slower than light, faster than the
        // fully-immersed limit.
        let v_full = C0 / 4.5f64.sqrt();
        for &v in model.velocities() {
            assert!(v < C0 && v > v_full, "mode velocity {v}");
        }
        assert!(model.velocities()[0] != model.velocities()[1]);
    }

    #[test]
    #[should_panic(expected = "at least one strip")]
    fn empty_array_panics() {
        let _ = MicrostripArray::uniform(0, 1e-3, 0.0, 1e-3, 4.5);
    }
}
