#![warn(missing_docs)]
//! Multiconductor transmission lines: 2-D parameter extraction, modal
//! analysis, and crosstalk simulation.
//!
//! The paper models signal nets as multiconductor transmission lines whose
//! per-unit-length parameters come from a "fast 2-D field solver" and whose
//! time-domain behaviour comes from modal analysis. This crate provides:
//!
//! * [`MicrostripArray`] — a 2-D method-of-moments solver for traces on a
//!   grounded dielectric slab (pulse basis, point matching, image-series
//!   Green's function from [`pdn_greens::Microstrip2d`]): capacitance
//!   matrix with dielectric, air capacitance, and `L = μ₀ε₀·C₀⁻¹`;
//! * [`analytic`] — Hammerstad–Jensen closed-form microstrip formulas used
//!   to validate the MoM;
//! * [`xtalk`] — the paper's Figure 5 experiment: drive one line of a
//!   coupled pair and record near/far-end waveforms on both lines.
//!
//! # Examples
//!
//! ```
//! use pdn_tline::MicrostripArray;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 50 Ω-ish microstrip: w/h = 2, εr = 4.5.
//! let line = MicrostripArray::uniform(1, 2e-3, 0.0, 1e-3, 4.5);
//! let z0 = line.characteristic_impedance()?;
//! assert!(z0 > 40.0 && z0 < 60.0);
//! # Ok(())
//! # }
//! ```

pub mod analytic;
pub mod mom2d;
pub mod xtalk;

pub use mom2d::{ExtractLineError, MicrostripArray};
pub use xtalk::{simulate_coupled_pair, CrosstalkResult};
