//! Coupled-line crosstalk simulation (the paper's Figure 5 experiment).
//!
//! One line of a coupled pair is driven by a pulse source with a series
//! resistance; every other termination is a resistive load. The result
//! carries the four waveforms the paper plots: near/far end of the active
//! line, near/far end of the victim.

use pdn_circuit::{Circuit, CoupledLineModel, SimulateCircuitError, TransientSpec, Waveform};

/// Waveforms from a coupled-pair crosstalk run.
#[derive(Debug, Clone)]
pub struct CrosstalkResult {
    /// Sample times (s).
    pub time: Vec<f64>,
    /// Active line, near (driven) end.
    pub active_near: Vec<f64>,
    /// Active line, far end.
    pub active_far: Vec<f64>,
    /// Victim line, near end.
    pub victim_near: Vec<f64>,
    /// Victim line, far end.
    pub victim_far: Vec<f64>,
}

impl CrosstalkResult {
    /// Peak magnitude of the near-end crosstalk.
    pub fn next_peak(&self) -> f64 {
        self.victim_near.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    }

    /// Peak magnitude of the far-end crosstalk.
    pub fn fext_peak(&self) -> f64 {
        self.victim_far.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    }
}

/// Simulates a two-conductor coupled line with the paper's termination
/// scheme: `source` behind `r_source` drives conductor 0 at the near end;
/// all other terminals see `r_load` to ground.
///
/// # Errors
///
/// Propagates circuit-simulation failures (e.g. a time step larger than
/// the smallest modal delay).
///
/// # Panics
///
/// Panics unless the model has exactly two conductors.
///
/// # Examples
///
/// ```
/// use pdn_circuit::Waveform;
/// use pdn_tline::{simulate_coupled_pair, MicrostripArray};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pair = MicrostripArray::uniform(2, 2e-3, 1e-3, 1e-3, 4.5);
/// let model = pair.line_model(0.1)?;
/// let pulse = Waveform::pulse(0.0, 5.0, 0.2e-9, 0.3e-9, 0.3e-9, 1.0e-9);
/// let res = simulate_coupled_pair(&model, pulse, 50.0, 50.0, 6e-9, 5e-12)?;
/// assert!(res.next_peak() > 0.0); // some crosstalk couples over
/// # Ok(())
/// # }
/// ```
pub fn simulate_coupled_pair(
    model: &CoupledLineModel,
    source: Waveform,
    r_source: f64,
    r_load: f64,
    t_stop: f64,
    dt: f64,
) -> Result<CrosstalkResult, SimulateCircuitError> {
    assert_eq!(
        model.conductor_count(),
        2,
        "simulate_coupled_pair requires a two-conductor model"
    );
    let mut ckt = Circuit::new();
    let src = ckt.node("src");
    let a_near = ckt.node("active_near");
    let a_far = ckt.node("active_far");
    let v_near = ckt.node("victim_near");
    let v_far = ckt.node("victim_far");
    ckt.voltage_source(src, Circuit::GND, source);
    ckt.resistor(src, a_near, r_source);
    ckt.resistor(v_near, Circuit::GND, r_load);
    ckt.resistor(a_far, Circuit::GND, r_load);
    ckt.resistor(v_far, Circuit::GND, r_load);
    ckt.coupled_line(model.clone(), vec![a_near, v_near], vec![a_far, v_far]);
    let res = ckt.transient(&TransientSpec::new(t_stop, dt))?;
    Ok(CrosstalkResult {
        time: res.time().to_vec(),
        active_near: res.voltage(a_near).to_vec(),
        active_far: res.voltage(a_far).to_vec(),
        victim_near: res.voltage(v_near).to_vec(),
        victim_far: res.voltage(v_far).to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MicrostripArray;

    fn paper_pair() -> CoupledLineModel {
        // Paper Fig. 4: 6 mm strips, 6 mm gap, 5 mm substrate, εr = 4.5.
        MicrostripArray::uniform(2, 6e-3, 6e-3, 5e-3, 4.5)
            .line_model(0.3)
            .unwrap()
    }

    fn run(model: &CoupledLineModel) -> CrosstalkResult {
        let pulse = Waveform::pulse(0.0, 5.0, 0.2e-9, 0.3e-9, 0.3e-9, 1.0e-9);
        simulate_coupled_pair(model, pulse, 50.0, 50.0, 8e-9, 2e-12).unwrap()
    }

    #[test]
    fn active_line_launch_amplitude() {
        let model = paper_pair();
        let res = run(&model);
        // Launch amplitude ≈ 5·Z0/(Z0+50); with Z0 near 50 it is near 2.5 V.
        let peak_near = res.active_near.iter().fold(0.0f64, |m, &v| m.max(v));
        assert!(peak_near > 1.0 && peak_near < 5.0, "launch {peak_near}");
    }

    #[test]
    fn far_end_pulse_arrives_after_delay() {
        let model = paper_pair();
        let tau = model.delays()[0].min(model.delays()[1]);
        let res = run(&model);
        for (t, v) in res.time.iter().zip(&res.active_far) {
            if *t < 0.9 * tau {
                assert!(v.abs() < 1e-6, "no signal before the line delay");
            }
        }
        let peak_far = res.active_far.iter().fold(0.0f64, |m, &v| m.max(v));
        assert!(peak_far > 1.0, "pulse arrives at the far end");
    }

    #[test]
    fn crosstalk_polarities_microstrip() {
        // Classic microstrip signatures for a rising step with matched
        // terminations: NEXT positive, FEXT a negative spike (inductive
        // coupling exceeds capacitive in an inhomogeneous medium).
        let model = MicrostripArray::uniform(2, 2e-3, 1e-3, 1e-3, 4.5)
            .line_model(0.2)
            .unwrap();
        let z0 = 1.0 / model.characteristic_admittance()[(0, 0)];
        let step = Waveform::step(5.0, 0.2e-9);
        let res = simulate_coupled_pair(&model, step, z0, z0, 8e-9, 2e-12).unwrap();
        let next_max = res.victim_near.iter().fold(0.0f64, |m, &v| m.max(v));
        let next_min = res.victim_near.iter().fold(0.0f64, |m, &v| m.min(v));
        let fext_min = res.victim_far.iter().fold(0.0f64, |m, &v| m.min(v));
        let fext_max = res.victim_far.iter().fold(0.0f64, |m, &v| m.max(v));
        assert!(next_max > 0.01, "NEXT positive plateau: {next_max}");
        assert!(next_min > -0.1 * next_max, "NEXT stays positive");
        assert!(fext_min < -0.05, "FEXT negative spike: {fext_min}");
        assert!(
            fext_max < 0.1 * fext_min.abs(),
            "FEXT predominantly negative"
        );
    }

    #[test]
    fn crosstalk_much_smaller_than_signal() {
        let model = paper_pair();
        let res = run(&model);
        let signal = res.active_far.iter().fold(0.0f64, |m, &v| m.max(v));
        assert!(res.next_peak() < 0.5 * signal);
        assert!(res.fext_peak() < 0.5 * signal);
    }

    #[test]
    fn tighter_coupling_increases_crosstalk() {
        let far = MicrostripArray::uniform(2, 2e-3, 6e-3, 1e-3, 4.5)
            .line_model(0.2)
            .unwrap();
        let near = MicrostripArray::uniform(2, 2e-3, 0.5e-3, 1e-3, 4.5)
            .line_model(0.2)
            .unwrap();
        let xt_far = run(&far).next_peak();
        let xt_near = run(&near).next_peak();
        assert!(
            xt_near > 2.0 * xt_far,
            "coupling gap effect: {xt_near} vs {xt_far}"
        );
    }

    #[test]
    fn homogeneous_medium_has_no_fext() {
        // In a homogeneous dielectric the modes are degenerate and forward
        // crosstalk cancels. Matched terminations keep the delayed-NEXT
        // reflections from polluting the measurement.
        let build = |er: f64| {
            MicrostripArray::uniform(2, 2e-3, 1e-3, 1e-3, er)
                .line_model(0.2)
                .unwrap()
        };
        let measure = |model: &CoupledLineModel| {
            let z0 = 1.0 / model.characteristic_admittance()[(0, 0)];
            let step = Waveform::step(5.0, 0.2e-9);
            let res = simulate_coupled_pair(model, step, z0, z0, 8e-9, 2e-12).unwrap();
            let signal = res.active_far.iter().fold(0.0f64, |m, &v| m.max(v));
            res.fext_peak() / signal
        };
        let homog = measure(&build(1.0));
        let inhomog = measure(&build(4.5));
        assert!(homog < 0.005, "homogeneous FEXT ratio {homog}");
        assert!(
            inhomog > 20.0 * homog,
            "dielectric inhomogeneity creates FEXT: {inhomog} vs {homog}"
        );
    }
}
