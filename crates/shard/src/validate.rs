//! Sharded-vs-monolithic validation mode.

use crate::error::ShardExtractError;
use pdn_extract::EquivalentCircuit;

/// Maximum relative port-impedance deviation between two macromodels over
/// a frequency grid — the shard validation metric.
///
/// At each frequency the deviation is `max_ij |Za_ij − Zb_ij|` normalized
/// by the largest entry magnitude of the **reference** matrix `Zb` at
/// that frequency; the result is the maximum over the grid. Per-frequency
/// matrix-scale normalization keeps the metric meaningful at transfer
/// nulls, where an entry-wise relative error would divide by ≈ 0.
///
/// Both sweeps run on [`pdn_num::parallel`] workers and the result is
/// bit-identical for any worker count.
///
/// # Errors
///
/// [`ShardExtractError::Validation`] when the port counts differ, the
/// grid is empty/invalid, the reference response is identically zero at
/// some frequency, or a solve fails.
pub fn max_port_impedance_deviation(
    a: &EquivalentCircuit,
    b: &EquivalentCircuit,
    freqs: &[f64],
) -> Result<f64, ShardExtractError> {
    if a.port_count() != b.port_count() {
        return Err(ShardExtractError::Validation(format!(
            "port counts differ: {} vs {}",
            a.port_count(),
            b.port_count()
        )));
    }
    let sweep = |eq: &EquivalentCircuit, which: &str| {
        eq.impedance_sweep(freqs)
            .map_err(|e| ShardExtractError::Validation(format!("{which} model sweep: {e}")))
    };
    let za = sweep(a, "first")?;
    let zb = sweep(b, "reference")?;
    let np = a.port_count();
    let mut worst = 0.0f64;
    for (k, (ma, mb)) in za.iter().zip(&zb).enumerate() {
        let scale = mb.max_abs();
        if scale == 0.0 {
            return Err(ShardExtractError::Validation(format!(
                "reference impedance is identically zero at {} Hz",
                freqs[k]
            )));
        }
        for i in 0..np {
            for j in 0..np {
                worst = worst.max((ma[(i, j)] - mb[(i, j)]).norm() / scale);
            }
        }
    }
    Ok(worst)
}
